#!/usr/bin/env python3
"""Run the fig12_lock_strategies bench and commit its numbers to BENCH_lock.json.

Usage: python3 scripts/bench_lock.py

Runs `cargo bench -p pepc-bench --bench fig12_lock_strategies`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_lock.json with the
per-visit cost of each locking design both uncontended and racing a
control-plane writer that holds each store's control critical section for
a 200us op window at ~50% duty, plus each design's speedup over the
giant lock.

Exits non-zero if the measured ordering violates the design claim:
seqlock must beat the fine-grained RwLock baseline, and both must beat
the giant lock, under contention.
"""
import json
import re
import statistics
import subprocess
import sys

STORES = ["giant_lock", "datapath_writer", "rwlock_fine", "seqlock"]
# Repeated whole-bench runs: single-run store-vs-store deltas sit inside
# scheduler noise on small hosts; medians across runs are stable.
RUNS = 3


def bench_once():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "fig12_lock_strategies"],
        capture_output=True,
        text=True,
        cwd=".",
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)
    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    return cases


def main():
    samples = {}
    for _ in range(RUNS):
        for name, ns in bench_once().items():
            samples.setdefault(name, []).append(ns)
    cases = {name: statistics.median(vals) for name, vals in samples.items()}

    results = {
        "bench": "fig12_lock_strategies",
        # Mirrors CTRL_HOLD/CTRL_GAP in benches/fig12_lock_strategies.rs.
        "contended_ctrl_hold_us": 200,
        "contended_ctrl_duty": 0.5,
        "median_of_runs": RUNS,
    }
    for group, key in [("fig12_visit", "uncontended"), ("fig12_contended", "contended")]:
        rows = {}
        for store in STORES:
            name = f"{group}/{store}"
            if name not in cases:
                sys.stderr.write(f"missing {name} in bench output\n")
                sys.exit(1)
            rows[store] = {"ns_per_visit": round(cases[name], 2)}
        giant = rows["giant_lock"]["ns_per_visit"]
        for store in STORES:
            rows[store]["speedup_vs_giant"] = round(giant / rows[store]["ns_per_visit"], 2)
        results[key] = rows

    with open("BENCH_lock.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))

    cont = results["contended"]
    seq, rwf, giant = (cont[s]["ns_per_visit"] for s in ("seqlock", "rwlock_fine", "giant_lock"))
    if not (seq < rwf < giant):
        sys.stderr.write(
            f"ordering violated under contention: seqlock {seq} ns, rwlock_fine {rwf} ns, giant {giant} ns\n"
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
