#!/usr/bin/env python3
"""Run the storm bench and commit its numbers to BENCH_storm.json.

Usage: python3 scripts/bench_storm.py

Runs `cargo bench -p pepc-bench --bench storm`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_storm.json with, per
offered-load multiplier (0, 1, 2, 5, 10 x a 120-device wave) and mode
(`none` = no admission control, `admission` = per-eNodeB token bucket +
in-flight ceiling):

- steady-traffic goodput (% of offered attaches completing within the
  50 ms deadline),
- steady attach latency p99 (ms),
- PDUs shed by admission control,
- measured wall-clock ns per handle_s1ap call.

The model is deterministic (virtual ticks, fixed seeds); only handle_ns
varies by host, so the gates below are hard numbers, not tolerances.

Exits non-zero when the degradation contract is violated:
- with admission, goodput at 10x overload >= 70% of the no-storm
  baseline and steady p99 stays within the deadline,
- without admission, goodput at 10x must show the collapse the admission
  layer exists to prevent (below 50%) — if the unprotected control plane
  stops collapsing, the model went soft and the comparison means nothing.
"""
import json
import re
import statistics
import subprocess
import sys

MULTS = [0, 1, 2, 5, 10]
MODES = ["none", "admission"]
METRICS = ["goodput_pct", "steady_p99_ms", "shed", "handle_ns"]
# Admission must preserve at least this fraction of baseline goodput at
# 10x overload.
MIN_GOODPUT_FRACTION_AT_10X = 0.70
# Steady p99 with admission on, at any offered load (the bench deadline).
MAX_ADMISSION_P99_MS = 50.0
# Without admission the 10x storm must actually collapse goodput.
MAX_UNPROTECTED_GOODPUT_AT_10X = 50.0
# Medians across whole-bench runs; everything but handle_ns is exact.
RUNS = 3


def bench_once():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "storm"],
        capture_output=True,
        text=True,
        cwd=".",
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)
    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    return cases


def main():
    samples = {}
    for _ in range(RUNS):
        for name, ns in bench_once().items():
            samples.setdefault(name, []).append(ns)
    cases = {name: statistics.median(vals) for name, vals in samples.items()}

    results = {
        "bench": "storm",
        "devices_per_mult": 120,
        "steady_rate_per_tick": 4,
        "budget_full_steps_per_tick": 48,
        "deadline_ms": 50,
        "median_of_runs": RUNS,
        "modes": {},
    }
    for mode in MODES:
        rows = {}
        for mult in MULTS:
            row = {}
            for metric in METRICS:
                name = f"storm/{metric}/{mode}/{mult}x"
                if name not in cases:
                    sys.stderr.write(f"missing {name} in bench output\n")
                    sys.exit(1)
                row[metric] = round(cases[name], 1)
            rows[f"{mult}x"] = row
        results["modes"][mode] = rows

    with open("BENCH_storm.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))

    failed = False
    baseline = results["modes"]["admission"]["0x"]["goodput_pct"]
    protected = results["modes"]["admission"]["10x"]["goodput_pct"]
    unprotected = results["modes"]["none"]["10x"]["goodput_pct"]
    if protected < MIN_GOODPUT_FRACTION_AT_10X * baseline:
        sys.stderr.write(
            f"admission goodput regression: {protected}% at 10x overload "
            f"(floor {MIN_GOODPUT_FRACTION_AT_10X:.0%} of {baseline}% baseline)\n"
        )
        failed = True
    for mult in MULTS:
        p99 = results["modes"]["admission"][f"{mult}x"]["steady_p99_ms"]
        if p99 > MAX_ADMISSION_P99_MS:
            sys.stderr.write(
                f"admission steady p99 unbounded at {mult}x: {p99} ms "
                f"(ceiling {MAX_ADMISSION_P99_MS} ms)\n"
            )
            failed = True
    if unprotected > MAX_UNPROTECTED_GOODPUT_AT_10X:
        sys.stderr.write(
            f"unprotected control plane no longer collapses at 10x "
            f"({unprotected}% goodput, expected < {MAX_UNPROTECTED_GOODPUT_AT_10X}%) — "
            f"the overload model went soft\n"
        )
        failed = True
    if results["modes"]["admission"]["10x"]["shed"] == 0:
        sys.stderr.write("admission shed nothing at 10x overload — limiter not engaging\n")
        failed = True
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
