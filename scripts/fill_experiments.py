#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from a figures --all output file.

Usage: python3 scripts/fill_experiments.py figures_quick.txt

Also fills {STORM_ROWS} (the Fig 6 storm extension) from BENCH_storm.json
and {CAPACITY_ROWS} (the Fig 5 capacity extension) from
BENCH_capacity.json when those files exist — regenerate them with
`python3 scripts/bench_storm.py` / `python3 scripts/bench_capacity.py`.
"""
import json
import os
import re
import sys


def section(text, fig, next_fig):
    start = text.index(f"Figure {fig} ")
    try:
        end = text.index(f"Figure {next_fig} ")
    except ValueError:
        end = len(text)
    return text[start:end].strip()


def rows_only(sec):
    lines = sec.splitlines()
    return "\n".join(lines[1:]).strip()


def storm_rows():
    """Render BENCH_storm.json as the Fig 6 extension degradation table."""
    if not os.path.exists("BENCH_storm.json"):
        return None
    data = json.load(open("BENCH_storm.json"))
    lines = ["admission    offered    goodput %    steady p99 (ms)       shed"]
    for mode, label in [("none", "off"), ("admission", "on")]:
        for mult, row in data["modes"][mode].items():
            lines.append(
                f"{label:<12} {mult:>7} {row['goodput_pct']:>12.1f} "
                f"{row['steady_p99_ms']:>18.1f} {int(row['shed']):>10}"
            )
    return "\n".join(lines)


def capacity_rows():
    """Render BENCH_capacity.json as the Fig 5 capacity-extension table."""
    if not os.path.exists("BENCH_capacity.json"):
        return None
    data = json.load(open("BENCH_capacity.json"))
    lines = []
    for label, row in data["milestones"].items():
        lines.append(
            f"{label:<8} {row['rss_bytes'] / 1e6:>11.0f} {row['state_bytes_per_user']:>15.0f} "
            f"{row['pkt_ns']:>12.1f} {int(row['attach_ramp_p99_ns']):>14} / {int(row['attach_steady_p99_ns'])}"
        )
    return "\n".join(lines)


def main(path):
    out = open(path).read()
    exp = open("EXPERIMENTS.md").read()

    # Figure 4 table values.
    fig4 = section(out, 4, 5)
    vals = {}
    for line in fig4.splitlines():
        m = re.match(r"(PEPC|Industrial#1|Industrial#2|OpenAirInterface|OpenEPC)\s+\d+\s+\d+\s+([\d.]+)", line)
        if m:
            vals[m.group(1)] = float(m.group(2))
    pepc = vals["PEPC"]
    exp = exp.replace("{FIG4_PEPC}", f"{pepc:.2f}")
    exp = exp.replace("{FIG4_IND1}", f"{vals['Industrial#1']:.2f}")
    exp = exp.replace("{FIG4_IND2}", f"{vals['Industrial#2']:.2f}")
    exp = exp.replace("{FIG4_OAI}", f"{vals['OpenAirInterface']:.2f}")
    exp = exp.replace("{FIG4_OEPC}", f"{vals['OpenEPC']:.2f}")
    exp = exp.replace("{FIG4_R1}", f"{pepc / vals['Industrial#1']:.1f}")
    exp = exp.replace("{FIG4_R2}", f"{pepc / vals['Industrial#2']:.1f}")
    exp = exp.replace("{FIG4_R3}", f"{pepc / vals['OpenAirInterface']:.1f}")
    exp = exp.replace("{FIG4_R4}", f"{pepc / vals['OpenEPC']:.1f}")

    for fig, nxt in [(5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11), (11, 12), (12, 13), (13, 14), (14, 15)]:
        exp = exp.replace("{FIG%d_ROWS}" % fig, rows_only(section(out, fig, nxt)))
    exp = exp.replace("{FIG15_ROWS}", rows_only(section(out, 15, 99)))

    storm = storm_rows()
    if storm is not None:
        exp = exp.replace("{STORM_ROWS}", storm)
    capacity = capacity_rows()
    if capacity is not None:
        exp = exp.replace("{CAPACITY_ROWS}", capacity)

    open("EXPERIMENTS.md", "w").write(exp)
    print("EXPERIMENTS.md filled from", path)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures_quick.txt")
