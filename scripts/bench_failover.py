#!/usr/bin/env python3
"""Run the ha_failover bench and commit its numbers to BENCH_failover.json.

Usage: python3 scripts/bench_failover.py

Runs `cargo bench -p pepc-bench --bench ha_failover`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_failover.json.
The headline number is the blackout duration — time from killing a node
to the first forwarded packet for a recovered user — derived as
`kill_to_first_forward - setup_only` (the two kernels are identical
except for the kill / detect / failover / first-packet sequence).
"""
import json
import re
import subprocess
import sys

REQUIRED = [
    "ha_failover/ctrl_event_replicated",
    "ha_failover/counter_delta_tick",
    "ha_failover/setup_only",
    "ha_failover/kill_to_first_forward",
]


def main():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "ha_failover"],
        capture_output=True,
        text=True,
        cwd=".",
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)

    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    missing = [name for name in REQUIRED if name not in cases]
    if missing:
        sys.stderr.write(f"missing bench cases {missing} in output:\n" + proc.stdout)
        sys.exit(1)

    setup_ns = cases["ha_failover/setup_only"]
    kill_ns = cases["ha_failover/kill_to_first_forward"]
    blackout_ns = max(0.0, kill_ns - setup_ns)
    results = {
        "bench": "ha_failover",
        "nodes": 3,
        "users": 64,
        "blackout_ns": round(blackout_ns, 1),
        "blackout_us": round(blackout_ns / 1e3, 2),
        "ctrl_event_replicated_ns": round(cases["ha_failover/ctrl_event_replicated"], 1),
        "counter_delta_tick_ns": round(cases["ha_failover/counter_delta_tick"], 1),
        "setup_only_ns": round(setup_ns, 1),
        "kill_to_first_forward_ns": round(kill_ns, 1),
    }

    with open("BENCH_failover.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
