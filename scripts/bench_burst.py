#!/usr/bin/env python3
"""Run the fig13b_burst bench and commit its numbers to BENCH_burst.json.

Usage: python3 scripts/bench_burst.py

Runs `cargo bench -p pepc-bench --bench fig13b_burst`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_burst.json with
per-packet latency (every case processes 64 packets per iteration) and
the speedup of each burst size over the scalar baseline.
"""
import json
import re
import subprocess
import sys

PKTS_PER_ITER = 64


def main():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "fig13b_burst"],
        capture_output=True,
        text=True,
        cwd=".",
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)

    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    if "fig13b_burst/scalar" not in cases:
        sys.stderr.write("no scalar baseline in bench output:\n" + proc.stdout)
        sys.exit(1)

    scalar_ns = cases["fig13b_burst/scalar"]
    results = {
        "bench": "fig13b_burst",
        "packets_per_iter": PKTS_PER_ITER,
        "scalar_ns_per_packet": round(scalar_ns / PKTS_PER_ITER, 2),
        "burst": {},
    }
    for name, ns in sorted(cases.items()):
        m = re.match(r"fig13b_burst/burst/(\d+)$", name)
        if not m:
            continue
        size = int(m.group(1))
        results["burst"][str(size)] = {
            "ns_per_packet": round(ns / PKTS_PER_ITER, 2),
            "speedup_vs_scalar": round(scalar_ns / ns, 2),
        }

    with open("BENCH_burst.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
