#!/usr/bin/env python3
"""Run the fig13b_burst bench and commit its numbers to BENCH_burst.json.

Usage: python3 scripts/bench_burst.py

Runs `cargo bench -p pepc-bench --bench fig13b_burst`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_burst.json with
per-packet latency (every case processes 64 packets per iteration), the
speedup of each burst size over the scalar baseline, and the per-stage
(parse / lookup / enforce) ns/packet medians of the burst-64 pipeline.

Exits non-zero if burst size 1 falls below 0.95x scalar: the size-1
bypass (scalar path, no burst-machinery tax) is a pinned contract.
"""
import json
import re
import statistics
import subprocess
import sys

PKTS_PER_ITER = 64
# Burst-1 must stay within noise of the scalar path (the size-1 bypass).
BURST1_MIN_SPEEDUP = 0.95
# Repeated whole-bench runs: single-run deltas sit inside scheduler
# noise on small hosts; medians across runs are stable.
RUNS = 3


def bench_once():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "fig13b_burst"],
        capture_output=True,
        text=True,
        cwd=".",
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)
    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    return cases


def main():
    samples = {}
    for _ in range(RUNS):
        for name, ns in bench_once().items():
            samples.setdefault(name, []).append(ns)
    cases = {name: statistics.median(vals) for name, vals in samples.items()}
    if "fig13b_burst/scalar" not in cases:
        sys.stderr.write("no scalar baseline in bench output\n")
        sys.exit(1)

    scalar_ns = cases["fig13b_burst/scalar"]
    results = {
        "bench": "fig13b_burst",
        "packets_per_iter": PKTS_PER_ITER,
        "median_of_runs": RUNS,
        "scalar_ns_per_packet": round(scalar_ns / PKTS_PER_ITER, 2),
        "burst": {},
        "stage_ns_per_packet": {},
    }
    for name, ns in sorted(cases.items()):
        m = re.match(r"fig13b_burst/burst/(\d+)$", name)
        if m:
            size = int(m.group(1))
            results["burst"][str(size)] = {
                "ns_per_packet": round(ns / PKTS_PER_ITER, 2),
                "speedup_vs_scalar": round(scalar_ns / ns, 2),
            }
            continue
        m = re.match(r"fig13b_burst/stage/(\w+)$", name)
        if m:
            # Stage lines are already per-packet medians, not per-iter.
            results["stage_ns_per_packet"][m.group(1)] = round(ns, 1)

    with open("BENCH_burst.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))

    burst1 = results["burst"].get("1")
    if burst1 is None:
        sys.stderr.write("no burst/1 case in bench output\n")
        sys.exit(1)
    if burst1["speedup_vs_scalar"] < BURST1_MIN_SPEEDUP:
        sys.stderr.write(
            f"burst-1 regression: {burst1['speedup_vs_scalar']}x scalar "
            f"(floor {BURST1_MIN_SPEEDUP}x) — the size-1 bypass is broken\n"
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
