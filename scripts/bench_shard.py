#!/usr/bin/env python3
"""Run the shard_scale bench and commit its numbers to BENCH_shard.json.

Usage: python3 scripts/bench_shard.py

Runs `cargo bench -p pepc-bench --bench shard_scale`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_shard.json with, per
shard count (1, 2, 4, 8):

- aggregate ns/packet (max per-shard busy time over packets — the
  wall-clock the slowest shard imposes when each runs on its own core)
  and the aggregate Mpps it implies,
- scaling vs the 1-shard pipeline plus the perfect-scaling reference,
- per-stage (parse / lookup / enforce) ns/packet medians,
- steering imbalance (max/mean packets).

Exits non-zero when the pinned perf contract is violated:
- aggregate throughput must scale >= 3x from 1 to 4 shards,
- every per-stage median must stay within its ns/packet budget.
"""
import json
import re
import statistics
import subprocess
import sys

SHARD_COUNTS = [1, 2, 4, 8]
STAGES = ["parse", "lookup", "enforce"]
# 1 -> 4 shards must buy at least this much aggregate throughput.
MIN_SCALING_1_TO_4 = 3.0
# Per-stage ns/packet ceilings: ~3x the medians measured at commit time
# (parse 24-30, lookup 22-31, enforce 38-50 ns), so the gate trips on a
# real pipeline regression, not on a slower CI host.
STAGE_BUDGET_NS = {"parse": 100, "lookup": 120, "enforce": 160}
# Medians across whole-bench runs shed one-off scheduler outliers.
RUNS = 3


def bench_once():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "shard_scale"],
        capture_output=True,
        text=True,
        cwd=".",
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)
    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    return cases


def main():
    samples = {}
    for _ in range(RUNS):
        for name, ns in bench_once().items():
            samples.setdefault(name, []).append(ns)
    cases = {name: statistics.median(vals) for name, vals in samples.items()}

    results = {
        "bench": "shard_scale",
        "users": 10000,
        "burst": 64,
        "median_of_runs": RUNS,
        "stage_budget_ns": STAGE_BUDGET_NS,
        "shards": {},
    }
    for n in SHARD_COUNTS:
        name = f"shard_scale/aggregate/{n}"
        if name not in cases:
            sys.stderr.write(f"missing {name} in bench output\n")
            sys.exit(1)
        ns_pkt = cases[name]
        row = {
            "aggregate_ns_per_packet": round(ns_pkt, 2),
            "aggregate_mpps": round(1e3 / ns_pkt, 2),
            "stage_ns_per_packet": {},
            # max/mean steered packets; the bench prints it x1000.
            "imbalance": round(cases.get(f"shard_scale/imbalance/{n}", 0.0) / 1000.0, 3),
        }
        for stage in STAGES:
            sname = f"shard_scale/stage_{stage}/{n}"
            if sname not in cases:
                sys.stderr.write(f"missing {sname} in bench output\n")
                sys.exit(1)
            row["stage_ns_per_packet"][stage] = round(cases[sname], 1)
        results["shards"][str(n)] = row

    base = results["shards"]["1"]["aggregate_ns_per_packet"]
    for n in SHARD_COUNTS:
        row = results["shards"][str(n)]
        row["scaling_vs_1"] = round(base / row["aggregate_ns_per_packet"], 2)
        row["perfect_scaling"] = float(n)

    with open("BENCH_shard.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))

    failed = False
    scaling4 = results["shards"]["4"]["scaling_vs_1"]
    if scaling4 < MIN_SCALING_1_TO_4:
        sys.stderr.write(
            f"shard scaling regression: 4 shards only {scaling4}x the "
            f"1-shard pipeline (floor {MIN_SCALING_1_TO_4}x)\n"
        )
        failed = True
    for n in SHARD_COUNTS:
        for stage, budget in STAGE_BUDGET_NS.items():
            got = results["shards"][str(n)]["stage_ns_per_packet"][stage]
            if got > budget:
                sys.stderr.write(
                    f"stage budget exceeded at {n} shard(s): {stage} "
                    f"{got} ns/packet (budget {budget})\n"
                )
                failed = True
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
