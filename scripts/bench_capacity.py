#!/usr/bin/env python3
"""Run the capacity bench and commit its numbers to BENCH_capacity.json.

Usage: python3 scripts/bench_capacity.py

Runs `cargo bench -p pepc-bench --bench capacity`, parses the
`bench <name> <ns> ns/iter` lines, and writes BENCH_capacity.json with,
per milestone population (default 1M / 5M / 10M, override with
CAPACITY_SCALES=a,b,c — CI runs a reduced curve, the committed file is
a full-scale dev-box run):

- process RSS and the RSS delta per user over the pre-population
  baseline (measurement buffers are allocated before the baseline, so
  the delta is state, not harness),
- the arena's own audit: slab bytes, table bytes, and state bytes per
  user ((slab + tables) / users),
- per-packet pipeline cost against uniformly random users (the fig5
  lookup-scaling curve extended past the paper's populations),
- attach latency p99 over the ramp segment (which contains every
  incremental table-growth round) vs a steady window of equal-work
  attaches at constant occupancy, plus the single worst ramp attach.

Exits non-zero when the capacity contract is violated:
- state bytes per user above budget at any milestone (the slab +
  incremental tables must hold their density as the population grows),
- ramp attach p99 above 5x steady attach p99 at any milestone (growth
  must be incremental: a stop-the-world rehash parks a users-sized
  stall in the ramp, visible orders of magnitude before this gate),
- the ns/packet curve collapsing (forwarding must stay flat-ish in
  users: the fig5 claim this extends).
"""
import json
import os
import re
import statistics
import subprocess
import sys

SCALES = [int(s) for s in os.environ.get("CAPACITY_SCALES", "1000000,5000000,10000000").split(",")]
METRICS = [
    "users",
    "rss_bytes",
    "rss_delta_per_user",
    "slab_bytes",
    "table_bytes",
    "state_bytes_per_user",
    "pkt_ns",
    "attach_ramp_p99_ns",
    "attach_ramp_max_ns",
    "attach_steady_p99_ns",
]
# Slab slot + two incremental-table entries, with growth headroom. The
# measured figure is ~460 B/user (UeContext ~384 B + 2 x ~17 B/bucket
# tables at post-doubling load); the budget leaves room for load-factor
# phase, not for a per-user regression (an Arc + Box per user blows
# straight through it).
MAX_STATE_BYTES_PER_USER = 640
# Incremental growth: attaches that land during a table-growth round
# must stay within this multiple of steady-state attach p99.
MAX_RAMP_P99_OVER_STEADY = 5.0
# ns/packet from the smallest to the largest milestone may grow with
# cache footprint, but must not collapse (fig5's flat-ish claim).
MAX_PKT_NS_GROWTH = 4.0
# Whole-bench runs; medians per metric. The ramp is 10M timed attaches,
# so even one run has enormous sample depth — keep CI wall-clock sane.
RUNS = 2


def bench_once():
    proc = subprocess.run(
        ["cargo", "bench", "-p", "pepc-bench", "--bench", "capacity"],
        capture_output=True,
        text=True,
        cwd=".",
        env={**os.environ, "CAPACITY_SCALES": ",".join(str(s) for s in SCALES)},
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(proc.returncode)
    cases = {}
    for line in proc.stdout.splitlines():
        m = re.match(r"bench\s+(\S+)\s+([\d.]+)\s+ns/iter", line)
        if m:
            cases[m.group(1)] = float(m.group(2))
    return cases


def label(n):
    if n % 1_000_000 == 0:
        return f"{n // 1_000_000}M"
    if n % 1_000 == 0:
        return f"{n // 1_000}k"
    return str(n)


def main():
    samples = {}
    for _ in range(RUNS):
        for name, ns in bench_once().items():
            samples.setdefault(name, []).append(ns)
    cases = {name: statistics.median(vals) for name, vals in samples.items()}

    results = {
        "bench": "capacity",
        "scales": SCALES,
        "median_of_runs": RUNS,
        "max_state_bytes_per_user": MAX_STATE_BYTES_PER_USER,
        "milestones": {},
    }
    for n in SCALES:
        row = {}
        for metric in METRICS:
            name = f"capacity/{metric}/{n}"
            if name not in cases:
                sys.stderr.write(f"missing {name} in bench output\n")
                sys.exit(1)
            row[metric] = round(cases[name], 1)
        results["milestones"][label(n)] = row

    with open("BENCH_capacity.json", "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(json.dumps(results, indent=2))

    failed = False
    for n in SCALES:
        row = results["milestones"][label(n)]
        bpu = row["state_bytes_per_user"]
        if bpu > MAX_STATE_BYTES_PER_USER:
            sys.stderr.write(
                f"state density regression at {label(n)}: {bpu} bytes/user "
                f"(budget {MAX_STATE_BYTES_PER_USER})\n"
            )
            failed = True
        ramp, steady = row["attach_ramp_p99_ns"], row["attach_steady_p99_ns"]
        if ramp > MAX_RAMP_P99_OVER_STEADY * steady:
            sys.stderr.write(
                f"growth spike at {label(n)}: ramp attach p99 {ramp} ns vs steady "
                f"{steady} ns (ceiling {MAX_RAMP_P99_OVER_STEADY}x) — table growth "
                f"is no longer incremental\n"
            )
            failed = True
    first, last = results["milestones"][label(SCALES[0])], results["milestones"][label(SCALES[-1])]
    if last["pkt_ns"] > MAX_PKT_NS_GROWTH * first["pkt_ns"]:
        sys.stderr.write(
            f"lookup scaling collapsed: {last['pkt_ns']} ns/packet at {label(SCALES[-1])} vs "
            f"{first['pkt_ns']} at {label(SCALES[0])} (ceiling {MAX_PKT_NS_GROWTH}x)\n"
        )
        failed = True
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
