// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Live user migration between slices under traffic — the paper's §6.6
//! scenario: state moves, tunnels stay valid, no packet is lost, and
//! charging counters travel with the user.
//!
//! ```sh
//! cargo run --release --example live_migration
//! ```

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::node::PepcNode;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};

fn uplink(teid: u32, ue_ip: u32, seq: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 4).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40000, 53, 4).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&seq.to_be_bytes());
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
    m
}

fn main() {
    let config = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    };
    let mut node = PepcNode::new(config, None);

    let imsi = 404_01_0000000007u64;
    let home = node.attach(imsi);
    println!("user {imsi} attached on slice {home}");

    let ctx = node.slice(home).ctrl.context_of(imsi).unwrap();
    let (teid, ue_ip) = {
        let c = ctx.ctrl_read();
        (c.tunnels.gw_teid, c.ue_ip)
    };

    // Traffic before the migration.
    for seq in 0..1000u32 {
        assert!(node.process(uplink(teid, ue_ip, seq)).is_forward());
    }
    let before = node.slice(home).ctrl.counters_of(imsi).unwrap();
    println!("pre-migration:  {} packets counted on slice {home}", before.uplink_packets);

    // Migrate to the other slice with the paper's protocol: the Demux
    // parks in-flight packets in a per-user queue, the source control
    // thread hands over the consolidated context, the queue drains to
    // the target.
    let target = 1 - home;
    let t = std::time::Instant::now();
    assert!(node.migrate(imsi, target));
    println!("migration {home} → {target} completed in {:?}", t.elapsed());

    // Same tunnel keeps working — no handover signalling needed, because
    // the TEID and UE IP moved with the state.
    for seq in 1000..2000u32 {
        assert!(node.process(uplink(teid, ue_ip, seq)).is_forward());
    }
    assert_eq!(node.slice(home).ctrl.user_count(), 0);
    let after = node.slice(target).ctrl.counters_of(imsi).unwrap();
    println!(
        "post-migration: {} packets counted on slice {target} (counters travelled: {})",
        after.uplink_packets,
        after.uplink_packets == 2000
    );
    assert_eq!(after.uplink_packets, 2000);
    println!("no packets lost, no tunnel re-established, one user slice moved.");
}
