//! Handover storm on a *threaded* slice: the control thread absorbs a
//! flood of S1 handovers while the data thread keeps forwarding — the
//! performance-isolation property of PEPC's two-thread slice design
//! (paper §3.2: control and data threads on separate cores, single-writer
//! shared state, so signaling bursts do not stall the pipeline).
//!
//! ```sh
//! cargo run --release --example handover_storm
//! ```

use pepc::config::{BatchingConfig, SliceConfig};
use pepc::ctrl::{Allocator, CtrlEvent};
use pepc::slice::{CtrlCmd, Slice};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const USERS: u64 = 1_000;

fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 32).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40000, 80, 32).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 32]);
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
    m
}

fn main() {
    let config = SliceConfig {
        batching: BatchingConfig { sync_every_packets: 32 },
        expected_users: USERS as usize,
        ..SliceConfig::default()
    };
    let alloc = Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD000, mme_ue_id_base: 1 };
    let mut handle = Slice::spawn(&config, 0x0AFE_0001, 1, alloc, None);

    // Attach a population through the control thread.
    for imsi in 0..USERS {
        handle.ctrl_tx.send(CtrlCmd::Event(CtrlEvent::Attach { imsi })).unwrap();
    }
    while handle.stats.attaches.load(Ordering::Relaxed) < USERS {
        std::hint::spin_loop();
    }
    println!("{USERS} users attached on the control thread");

    // Feed data traffic and a handover storm concurrently.
    let start = Instant::now();
    let mut sent = 0u64;
    let mut handovers = 0u64;
    let mut drain = Vec::new();
    while start.elapsed() < Duration::from_secs(1) {
        for i in 0..64u64 {
            let uid = (sent + i) % USERS;
            // Count only packets the (bounded) rx ring accepted: on a
            // single-CPU host the generator easily outruns the pipeline.
            if handle.data_in.push(uplink(0x1000 + uid as u32, 0x0A00_0001 + uid as u32)).is_ok() {
                sent += 1;
            }
        }
        // Storm: every loop iteration rehomes a user to a new eNodeB.
        let imsi = handovers % USERS;
        handle
            .ctrl_tx
            .send(CtrlCmd::Event(CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000_0000 + handovers as u32,
                new_enb_ip: 0xC0A8_0001 + (handovers % 64) as u32,
            }))
            .unwrap();
        handovers += 1;
        handle.data_out.pop_burst(&mut drain, 256);
        drain.clear();
    }

    // Let the pipeline settle, then report.
    std::thread::sleep(Duration::from_millis(50));
    let forwarded = handle.stats.forwarded();
    let applied = handle.stats.handovers.load(Ordering::Relaxed);
    println!("in 1s of storm:");
    println!("  handovers applied by the control thread: {applied}");
    println!("  packets forwarded by the data thread:    {forwarded} of {sent} offered");
    println!(
        "  ({:.1}% delivered while every user's tunnel state was being rewritten)",
        forwarded as f64 / sent as f64 * 100.0
    );
    let (ctrl, _data) = handle.shutdown();
    println!("control thread final state: {} users, {} handovers", ctrl.user_count(), ctrl.metrics().handovers);
}
