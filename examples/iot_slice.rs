//! Stateless-IoT customization (paper §4.2 / Figure 15): devices that run
//! a single best-effort application get TEIDs and IPs from a pre-assigned
//! pool, and the data plane skips the per-user state lookup entirely.
//!
//! ```sh
//! cargo run --release --example iot_slice
//! ```

use pepc::config::{IotConfig, SliceConfig, TwoLevelConfig};
use pepc::ctrl::Allocator;
use pepc::slice::Slice;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use std::time::Instant;

const POOL: u32 = 100_000;
const IOT_TEID_BASE: u32 = 0xF000_0000;
const IOT_IP_BASE: u32 = 0x6400_0000;

fn sensor_reading(teid: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(0x0A00_0001, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + 16).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(5683, 5683, 16).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap(); // CoAP
    m.extend(&hdr);
    m.extend(&[0u8; 16]); // 16-byte telemetry payload
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
    m
}

fn main() {
    // An operator dedicates one slice to 100K stateless IoT sensors.
    let config = SliceConfig {
        iot: IotConfig { enabled: true, teid_base: IOT_TEID_BASE, ip_base: IOT_IP_BASE, pool_size: POOL },
        two_level: TwoLevelConfig::default(),
        ..SliceConfig::default()
    };
    let mut slice = Slice::new(
        &config,
        0x0AFE_0001,
        1,
        Allocator { teid_base: 0x0100_0000, ue_ip_base: 0x0A00_0001, guti_base: 0xD000, mme_ue_id_base: 1 },
        None,
    );

    // NOTE: no attach, no per-device state. A sensor's TEID membership in
    // the pool is its service definition.
    println!("slice up: IoT pool of {POOL} devices, zero per-device state\n");

    let t = Instant::now();
    const N: u32 = 500_000;
    for i in 0..N {
        let teid = IOT_TEID_BASE + (i % POOL);
        let v = slice.process_packet(sensor_reading(teid));
        assert!(v.is_forward());
    }
    let elapsed = t.elapsed();
    println!(
        "processed {N} sensor readings from {POOL} devices in {elapsed:?} \
         ({:.2} Mpps incl. generation)",
        N as f64 / elapsed.as_secs_f64() / 1e6
    );

    let m = slice.data.metrics();
    println!("fast-path packets: {} (state lookups skipped)", m.iot_fast_path);
    println!("aggregate charging for the pool: {} packets, {} bytes", slice.data.iot_packets, slice.data.iot_bytes);
    assert_eq!(m.iot_fast_path as u32, N);

    // A packet from outside the pool still requires state (and is dropped
    // here, since nobody attached).
    let v = slice.process_packet(sensor_reading(0x0100_0099));
    println!("\nnon-pool TEID without attach: {:?} (per-user state still enforced)", v);
}
