// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Quickstart: bring up a PEPC node with real HSS/PCRF backends, attach a
//! subscriber over the full S1AP/NAS call flow, and push traffic both
//! ways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::ctrl::run_attach_with;
use pepc::node::PepcNode;
use pepc_backend::{Hss, Pcrf};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use std::sync::Arc;

fn main() {
    // 1. Backends: provision 1000 subscribers in the HSS; standard
    //    operator policy rules in the PCRF.
    let hss = Arc::new(Hss::new());
    hss.provision_range(404_01_0000000000, 1000, 100_000);
    let pcrf = Arc::new(Pcrf::with_standard_rules());

    // 2. A PEPC node with two slices.
    let config = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..Default::default() },
        ..EpcConfig::default()
    };
    let mut node = PepcNode::new(config, Some((hss, pcrf)));

    // 3. Full attach over S1AP/NAS: InitialUEMessage → authentication
    //    against the HSS → security mode → context setup → complete.
    let imsi = 404_01_0000000042;
    let (guti, ue_ip, gw_teid) =
        run_attach_with(|pdu| node.handle_s1ap(pdu), imsi, 1, 0xE100, 0xC0A8_0001).expect("attach procedure");
    println!("attached imsi {imsi}");
    println!("  GUTI    {guti:#x}");
    println!("  UE IP   {}", Ipv4Hdr::addr_to_string(ue_ip));
    println!("  S1-U TEID {gw_teid:#x} (eNodeB → PEPC uplink tunnel)");

    // 4. Uplink: the eNodeB tunnels the UE's packet in GTP-U.
    let mut up = Mbuf::new();
    let payload = b"hello from the UE";
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + payload.len()).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(40000, 53, payload.len()).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    up.extend(&hdr);
    up.extend(payload);
    encap_gtpu(&mut up, 0xC0A8_0001, node.config().gw_ip, gw_teid).unwrap();

    match node.process(up) {
        pepc::node::NodeVerdict::Forward(m) => {
            let ip = Ipv4Hdr::parse(m.data()).unwrap();
            println!("uplink: decapsulated and forwarded to {} ({} bytes)", Ipv4Hdr::addr_to_string(ip.dst), m.len());
        }
        other => panic!("uplink failed: {other:?}"),
    }

    // 5. Downlink: a plain IP packet for the UE gets tunnelled to its
    //    serving eNodeB.
    let mut down = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(0x0808_0808, ue_ip, IpProto::Udp, UDP_HDR_LEN + 4).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(53, 40000, 4).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    down.extend(&hdr);
    down.extend(b"pong");

    match node.process(down) {
        pepc::node::NodeVerdict::Forward(mut m) => {
            let (gtp, outer) = pepc_net::gtp::decap_gtpu(&mut m).unwrap();
            println!("downlink: tunnelled to eNodeB {} with TEID {:#x}", Ipv4Hdr::addr_to_string(outer.dst), gtp.teid);
        }
        other => panic!("downlink failed: {other:?}"),
    }

    // 6. Charging counters accumulated in the user's consolidated state.
    let k = node.demux().slice_for_imsi(imsi).unwrap();
    let counters = node.slice(k).ctrl.counters_of(imsi).unwrap();
    println!(
        "counters: {} uplink / {} downlink packets, {} / {} bytes",
        counters.uplink_packets, counters.downlink_packets, counters.uplink_bytes, counters.downlink_bytes
    );
}
