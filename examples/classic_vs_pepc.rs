//! Head-to-head: PEPC vs the classic MME/S-GW/P-GW decomposition under
//! the paper's default workload (Table 2 mix, attach storms) — a
//! miniature of Figure 4.
//!
//! ```sh
//! cargo run --release --example classic_vs_pepc
//! ```

use pepc_baseline::{BaselinePreset, ClassicConfig, ClassicEpc};
use pepc_workload::harness::{default_pepc_slice, measure, ClassicSut, MeasureOpts, PepcSut, SystemUnderTest};
use pepc_workload::params::Defaults;
use pepc_workload::signaling::{EventMix, SignalingGen};
use pepc_workload::traffic::TrafficGen;
use std::time::Duration;

const USERS: u64 = 50_000;
const ATTACH_PER_SEC: u64 = 10_000;

fn run(sut: &mut dyn SystemUnderTest, users: u64) -> (f64, u64) {
    let keys = sut.attach_all(&(0..users).map(|i| Defaults::IMSI_BASE + i).collect::<Vec<_>>());
    let mut gen = TrafficGen::new(keys);
    let mut sig = SignalingGen::new(Defaults::IMSI_BASE, users, ATTACH_PER_SEC, EventMix::attaches_only());
    let m = measure(
        sut,
        &mut gen,
        Some(&mut sig),
        &MeasureOpts { duration: Duration::from_millis(500), ..Default::default() },
    );
    (m.mpps(), m.events)
}

fn main() {
    println!(
        "workload: {USERS} users, UL:DL {:?}, {ATTACH_PER_SEC} attach/s (Table 2 defaults)\n",
        Defaults::UPLINK_PER_DOWNLINK
    );

    let mut pepc = PepcSut::new(default_pepc_slice(USERS as usize, true, 32));
    let (pepc_mpps, ev) = run(&mut pepc, USERS);
    println!("PEPC          : {pepc_mpps:.3} Mpps  ({ev} signaling events absorbed)");

    for (preset, name) in
        [(BaselinePreset::Industrial1, "Industrial#1 "), (BaselinePreset::Industrial2, "Industrial#2 ")]
    {
        // Provision without the calibrated stalls, measure with them.
        let mut sut = ClassicSut::new(ClassicEpc::new(ClassicConfig::mechanisms_only(preset)), name);
        let keys = sut.attach_all(&(0..USERS).map(|i| Defaults::IMSI_BASE + i).collect::<Vec<_>>());
        *sut.epc.config_mut() = ClassicConfig::preset(preset);
        let mut gen = TrafficGen::new(keys);
        let mut sig = SignalingGen::new(Defaults::IMSI_BASE, USERS, ATTACH_PER_SEC, EventMix::attaches_only());
        let m = measure(
            &mut sut,
            &mut gen,
            Some(&mut sig),
            &MeasureOpts { duration: Duration::from_millis(500), ..Default::default() },
        );
        println!(
            "{name}: {:.3} Mpps  ({:.1}x slower — every attach synchronizes 3 state copies over GTP-C)",
            m.mpps(),
            pepc_mpps / m.mpps()
        );
    }

    println!(
        "\nwhy: the classic EPC duplicates each user's state at the MME, S-GW and\n\
         P-GW and reconciles the copies on every signaling event, stalling the\n\
         gateway pipeline; PEPC keeps one consolidated copy per user, so a\n\
         signaling event is a single in-place write the data thread reads\n\
         through shared memory."
    );
}
