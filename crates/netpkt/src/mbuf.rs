//! Owned packet buffer with headroom, in the spirit of DPDK's `rte_mbuf`.
//!
//! EPC data paths repeatedly encapsulate and decapsulate (GTP-U adds an
//! outer Ethernet/IPv4/UDP/GTP stack in front of the inner user packet).
//! To avoid copying the payload on every hop, an [`Mbuf`] keeps the packet
//! in the middle of a fixed allocation: [`Mbuf::push`] claims bytes from
//! the headroom in front of the current data, [`Mbuf::pull`] returns bytes
//! to it. Both are O(1).

use crate::error::{NetError, Result};

/// Default headroom reserved in front of the payload — enough for an outer
/// Ethernet (14) + IPv4 (20) + UDP (8) + GTP-U (8..16) stack twice over.
pub const DEFAULT_HEADROOM: usize = 128;

/// Default total buffer capacity (headroom + data + tailroom).
pub const DEFAULT_BUF_CAP: usize = 2048;

/// An owned packet buffer with O(1) header push/pull.
#[derive(Clone)]
pub struct Mbuf {
    buf: Box<[u8]>,
    /// Offset of the first valid byte.
    head: usize,
    /// Offset one past the last valid byte.
    tail: usize,
}

impl Mbuf {
    /// Create an empty buffer with [`DEFAULT_HEADROOM`] headroom and
    /// [`DEFAULT_BUF_CAP`] capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BUF_CAP, DEFAULT_HEADROOM)
    }

    /// Create an empty buffer with explicit capacity and headroom.
    ///
    /// # Panics
    /// Panics if `headroom > capacity`.
    pub fn with_capacity(capacity: usize, headroom: usize) -> Self {
        assert!(headroom <= capacity, "headroom must fit in capacity");
        Mbuf { buf: vec![0u8; capacity].into_boxed_slice(), head: headroom, tail: headroom }
    }

    /// Create a buffer whose data section is a copy of `payload`, leaving
    /// [`DEFAULT_HEADROOM`] bytes of headroom in front of it.
    pub fn from_payload(payload: &[u8]) -> Self {
        let cap = (DEFAULT_HEADROOM + payload.len()).max(DEFAULT_BUF_CAP);
        let mut m = Self::with_capacity(cap, DEFAULT_HEADROOM);
        m.extend(payload);
        m
    }

    /// Number of valid data bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// True when the buffer holds no data bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Bytes available in front of the data for [`push`](Self::push).
    #[inline]
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Bytes available behind the data for [`extend`](Self::extend).
    #[inline]
    pub fn tailroom(&self) -> usize {
        self.buf.len() - self.tail
    }

    /// The valid data bytes.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.buf[self.head..self.tail]
    }

    /// Mutable view of the valid data bytes.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.head..self.tail]
    }

    /// Claim `n` bytes of headroom and return a mutable view of them so a
    /// header can be written in place. The new bytes become the front of
    /// the packet.
    #[inline]
    pub fn push(&mut self, n: usize) -> Result<&mut [u8]> {
        if n > self.head {
            return Err(NetError::NoHeadroom { need: n, have: self.head });
        }
        self.head -= n;
        Ok(&mut self.buf[self.head..self.head + n])
    }

    /// Push `bytes` in front of the packet.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let dst = self.push(bytes.len())?;
        dst.copy_from_slice(bytes);
        Ok(())
    }

    /// Drop `n` bytes from the front of the packet (decapsulation),
    /// returning them to headroom. Returns the removed bytes.
    #[inline]
    pub fn pull(&mut self, n: usize) -> Result<&[u8]> {
        if n > self.len() {
            return Err(NetError::Truncated { what: "pull", need: n, have: self.len() });
        }
        let start = self.head;
        self.head += n;
        Ok(&self.buf[start..self.head])
    }

    /// Append `bytes` after the current data.
    ///
    /// # Panics
    /// Panics if there is not enough tailroom; payload sizing is under the
    /// caller's control, unlike header pushes which depend on packet
    /// provenance and therefore return `Result`.
    pub fn extend(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= self.tailroom(), "tailroom exhausted: need {}, have {}", bytes.len(), self.tailroom());
        self.buf[self.tail..self.tail + bytes.len()].copy_from_slice(bytes);
        self.tail += bytes.len();
    }

    /// Truncate the packet to `n` data bytes (dropping from the tail).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.tail = self.head + n;
        }
    }

    /// Remove all data, restoring headroom to the front of the allocation
    /// split originally chosen. The buffer can then be reused for a new
    /// packet without reallocating.
    pub fn clear(&mut self, headroom: usize) {
        let headroom = headroom.min(self.buf.len());
        self.head = headroom;
        self.tail = headroom;
    }
}

impl Default for Mbuf {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mbuf")
            .field("len", &self.len())
            .field("headroom", &self.headroom())
            .field("tailroom", &self.tailroom())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty_with_headroom() {
        let m = Mbuf::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.headroom(), DEFAULT_HEADROOM);
        assert_eq!(m.tailroom(), DEFAULT_BUF_CAP - DEFAULT_HEADROOM);
    }

    #[test]
    fn from_payload_copies_data() {
        let m = Mbuf::from_payload(b"hello");
        assert_eq!(m.data(), b"hello");
        assert_eq!(m.headroom(), DEFAULT_HEADROOM);
    }

    #[test]
    fn push_then_pull_roundtrips() {
        let mut m = Mbuf::from_payload(b"payload");
        m.push_bytes(b"HDR:").unwrap();
        assert_eq!(m.data(), b"HDR:payload");
        let pulled = m.pull(4).unwrap().to_vec();
        assert_eq!(pulled, b"HDR:");
        assert_eq!(m.data(), b"payload");
        assert_eq!(m.headroom(), DEFAULT_HEADROOM);
    }

    #[test]
    fn push_fails_without_headroom() {
        let mut m = Mbuf::with_capacity(64, 4);
        let err = m.push(8).unwrap_err();
        assert_eq!(err, NetError::NoHeadroom { need: 8, have: 4 });
    }

    #[test]
    fn pull_fails_past_end() {
        let mut m = Mbuf::from_payload(b"ab");
        assert!(m.pull(3).is_err());
        assert_eq!(m.data(), b"ab"); // unchanged on failure
    }

    #[test]
    fn push_returns_writable_region() {
        let mut m = Mbuf::from_payload(b"xy");
        let region = m.push(2).unwrap();
        region.copy_from_slice(b"AB");
        assert_eq!(m.data(), b"ABxy");
    }

    #[test]
    fn extend_appends() {
        let mut m = Mbuf::new();
        m.extend(b"abc");
        m.extend(b"def");
        assert_eq!(m.data(), b"abcdef");
    }

    #[test]
    #[should_panic(expected = "tailroom exhausted")]
    fn extend_past_capacity_panics() {
        let mut m = Mbuf::with_capacity(8, 4);
        m.extend(&[0u8; 16]);
    }

    #[test]
    fn truncate_drops_tail() {
        let mut m = Mbuf::from_payload(b"abcdef");
        m.truncate(3);
        assert_eq!(m.data(), b"abc");
        m.truncate(10); // no-op when longer than data
        assert_eq!(m.data(), b"abc");
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut m = Mbuf::from_payload(b"abcdef");
        m.clear(32);
        assert!(m.is_empty());
        assert_eq!(m.headroom(), 32);
        m.extend(b"new");
        assert_eq!(m.data(), b"new");
    }

    #[test]
    fn repeated_encap_decap_is_stable() {
        let mut m = Mbuf::from_payload(&[0xAAu8; 64]);
        for _ in 0..1000 {
            m.push_bytes(&[0x55; 42]).unwrap();
            m.pull(42).unwrap();
        }
        assert_eq!(m.len(), 64);
        assert!(m.data().iter().all(|&b| b == 0xAA));
    }
}
