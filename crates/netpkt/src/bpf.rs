//! A small BPF-style match virtual machine.
//!
//! The paper implements the PCEF "as a match-action table, consisting of
//! BPF programs over the 5-tuple and operator specified actions" (§4.2).
//! This module provides those programs: a branching classifier over the
//! [`FiveTuple`](crate::FiveTuple) with bounded, verifiable control flow
//! (forward jumps only, like real BPF), so a malformed operator rule can
//! never hang the data plane.

use crate::error::{NetError, Result};
use crate::fivetuple::FiveTuple;

/// A field of the five-tuple a [`Insn`] can load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    SrcIp,
    DstIp,
    SrcPort,
    DstPort,
    Proto,
}

/// One instruction of a filter program.
///
/// The machine has a single accumulator loaded by `Ld`, tested by the
/// conditional jumps. Programs terminate with `Ret`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// Load a five-tuple field into the accumulator.
    Ld(Field),
    /// Bitwise-AND the accumulator with an immediate (prefix matching).
    And(u32),
    /// Jump `jt`/`jf` instructions forward when accumulator == k / != k.
    JmpEq { k: u32, jt: u8, jf: u8 },
    /// Jump `jt`/`jf` instructions forward when accumulator >= k / < k.
    JmpGe { k: u32, jt: u8, jf: u8 },
    /// Terminate, returning `verdict` (0 = no match; >0 = rule class).
    Ret(u32),
}

/// A verified filter program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpfProgram {
    insns: Vec<Insn>,
}

impl BpfProgram {
    /// Maximum program length accepted by the verifier.
    pub const MAX_LEN: usize = 256;

    /// Verify and wrap a program.
    ///
    /// Verification guarantees: non-empty, bounded length, every jump lands
    /// inside the program, every path ends in `Ret` (ensured by forward
    /// jumps + final instruction being `Ret`).
    pub fn new(insns: Vec<Insn>) -> Result<Self> {
        if insns.is_empty() {
            return Err(NetError::BadProgram { reason: "empty program" });
        }
        if insns.len() > Self::MAX_LEN {
            return Err(NetError::BadProgram { reason: "program too long" });
        }
        for (i, insn) in insns.iter().enumerate() {
            if let Insn::JmpEq { jt, jf, .. } | Insn::JmpGe { jt, jf, .. } = insn {
                // Target is pc + 1 + offset; both branches must stay in range.
                for off in [*jt, *jf] {
                    if i + 1 + usize::from(off) >= insns.len() {
                        return Err(NetError::BadProgram { reason: "jump out of range" });
                    }
                }
            }
        }
        if !matches!(insns.last(), Some(Insn::Ret(_))) {
            return Err(NetError::BadProgram { reason: "program must end in Ret" });
        }
        Ok(BpfProgram { insns })
    }

    /// Run the program over a five-tuple; returns the `Ret` verdict.
    ///
    /// Execution is O(program length): only forward jumps exist, so each
    /// instruction runs at most once.
    pub fn run(&self, ft: &FiveTuple) -> u32 {
        let mut acc: u32 = 0;
        let mut pc = 0usize;
        while pc < self.insns.len() {
            match self.insns[pc] {
                Insn::Ld(f) => {
                    acc = match f {
                        Field::SrcIp => ft.src_ip,
                        Field::DstIp => ft.dst_ip,
                        Field::SrcPort => u32::from(ft.src_port),
                        Field::DstPort => u32::from(ft.dst_port),
                        Field::Proto => u32::from(ft.proto),
                    };
                    pc += 1;
                }
                Insn::And(k) => {
                    acc &= k;
                    pc += 1;
                }
                Insn::JmpEq { k, jt, jf } => {
                    pc += 1 + usize::from(if acc == k { jt } else { jf });
                }
                Insn::JmpGe { k, jt, jf } => {
                    pc += 1 + usize::from(if acc >= k { jt } else { jf });
                }
                Insn::Ret(v) => return v,
            }
        }
        // Unreachable for verified programs; defensive default: no match.
        0
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True if the program has no instructions (never true post-verify).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Convenience constructor: match an exact destination port.
    pub fn match_dst_port(port: u16, verdict: u32) -> Self {
        BpfProgram::new(vec![
            Insn::Ld(Field::DstPort),
            Insn::JmpEq { k: u32::from(port), jt: 0, jf: 1 },
            Insn::Ret(verdict),
            Insn::Ret(0),
        ])
        .expect("static program verifies")
    }

    /// Convenience constructor: match a destination prefix `ip/len`.
    pub fn match_dst_prefix(prefix: u32, len: u8, verdict: u32) -> Self {
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
        BpfProgram::new(vec![
            Insn::Ld(Field::DstIp),
            Insn::And(mask),
            Insn::JmpEq { k: prefix & mask, jt: 0, jf: 1 },
            Insn::Ret(verdict),
            Insn::Ret(0),
        ])
        .expect("static program verifies")
    }

    /// Convenience constructor: match a protocol + destination port range
    /// `[lo, hi)` — a typical operator TFT (traffic flow template).
    pub fn match_proto_port_range(proto: u8, lo: u16, hi: u16, verdict: u32) -> Self {
        BpfProgram::new(vec![
            Insn::Ld(Field::Proto),
            Insn::JmpEq { k: u32::from(proto), jt: 0, jf: 4 },
            Insn::Ld(Field::DstPort),
            Insn::JmpGe { k: u32::from(lo), jt: 0, jf: 2 },
            Insn::JmpGe { k: u32::from(hi), jt: 1, jf: 0 },
            Insn::Ret(verdict),
            Insn::Ret(0),
        ])
        .expect("static program verifies")
    }

    /// A program that classifies everything into `verdict`.
    pub fn match_all(verdict: u32) -> Self {
        BpfProgram::new(vec![Insn::Ret(verdict)]).expect("static program verifies")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(dst_port: u16, proto: u8) -> FiveTuple {
        FiveTuple { src_ip: 0x0A000001, dst_ip: 0x08080808, src_port: 40000, dst_port, proto }
    }

    #[test]
    fn match_all_always_matches() {
        assert_eq!(BpfProgram::match_all(7).run(&ft(1, 17)), 7);
    }

    #[test]
    fn dst_port_matcher() {
        let p = BpfProgram::match_dst_port(53, 3);
        assert_eq!(p.run(&ft(53, 17)), 3);
        assert_eq!(p.run(&ft(54, 17)), 0);
    }

    #[test]
    fn prefix_matcher() {
        let p = BpfProgram::match_dst_prefix(0x08080000, 16, 9);
        assert_eq!(p.run(&ft(1, 6)), 9); // 8.8.8.8 in 8.8.0.0/16
        let other = FiveTuple { dst_ip: 0x08090808, ..ft(1, 6) };
        assert_eq!(p.run(&other), 0);
    }

    #[test]
    fn zero_length_prefix_matches_everything() {
        let p = BpfProgram::match_dst_prefix(0, 0, 5);
        assert_eq!(p.run(&ft(1, 6)), 5);
    }

    #[test]
    fn port_range_matcher() {
        let p = BpfProgram::match_proto_port_range(6, 8000, 9000, 4);
        assert_eq!(p.run(&ft(8000, 6)), 4); // inclusive low
        assert_eq!(p.run(&ft(8999, 6)), 4);
        assert_eq!(p.run(&ft(9000, 6)), 0); // exclusive high
        assert_eq!(p.run(&ft(7999, 6)), 0);
        assert_eq!(p.run(&ft(8500, 17)), 0); // wrong proto
    }

    #[test]
    fn verifier_rejects_bad_programs() {
        assert!(BpfProgram::new(vec![]).is_err());
        // Doesn't end in Ret.
        assert!(BpfProgram::new(vec![Insn::Ld(Field::Proto)]).is_err());
        // Jump past the end.
        assert!(BpfProgram::new(vec![Insn::JmpEq { k: 0, jt: 200, jf: 0 }, Insn::Ret(0),]).is_err());
        // Over-long program.
        let long = vec![Insn::Ret(0); BpfProgram::MAX_LEN + 1];
        assert!(BpfProgram::new(long).is_err());
    }

    #[test]
    fn forward_jumps_terminate() {
        // A pathological-but-legal chain of jumps still runs in O(n).
        let mut insns = Vec::new();
        for _ in 0..100 {
            insns.push(Insn::JmpEq { k: 12345, jt: 0, jf: 0 });
        }
        insns.push(Insn::Ret(1));
        let p = BpfProgram::new(insns).unwrap();
        assert_eq!(p.run(&ft(1, 6)), 1);
    }
}
