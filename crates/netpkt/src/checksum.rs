//! Internet checksum (RFC 1071) helpers for IPv4/UDP/TCP.

/// Sum 16-bit big-endian words with end-around carry folding deferred.
#[inline]
fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into a 16-bit one's-complement checksum.
#[inline]
fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Compute the Internet checksum over `data`.
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum_words(data, 0))
}

/// Verify a buffer whose checksum field is already in place: the sum over
/// the whole buffer must fold to zero.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data, 0)) == 0
}

/// Compute a UDP/TCP checksum including the IPv4 pseudo-header.
///
/// `proto` is the IP protocol number (17 UDP / 6 TCP); `segment` is the
/// transport header + payload with its checksum field zeroed.
pub fn pseudo_header_checksum(src: u32, dst: u32, proto: u8, segment: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc += src >> 16;
    acc += src & 0xFFFF;
    acc += dst >> 16;
    acc += dst & 0xFFFF;
    acc += u32::from(proto);
    acc += segment.len() as u32;
    fold(sum_words(segment, acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1071 worked example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
    // checksum 0x220d.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xFF]), checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn verify_accepts_inserted_checksum() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00, 0x40, 0x11, 0, 0];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 1;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_buffer_checksum_is_all_ones() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn pseudo_header_differs_by_addresses() {
        let seg = [0x12, 0x34, 0x56, 0x78, 0x00, 0x08, 0x00, 0x00];
        let a = pseudo_header_checksum(0x0a000001, 0x0a000002, 17, &seg);
        let b = pseudo_header_checksum(0x0a000001, 0x0a000003, 17, &seg);
        assert_ne!(a, b);
    }

    #[test]
    fn pseudo_header_verifies_like_kernel() {
        // Insert computed checksum into the segment, recompute with the
        // field populated: folding the sum must give zero (i.e. !0xFFFF).
        let mut seg = vec![0xC0, 0x00, 0x00, 0x35, 0x00, 0x0A, 0x00, 0x00, 0xde, 0xad];
        let c = pseudo_header_checksum(0xc0a80001, 0x08080808, 17, &seg);
        seg[6..8].copy_from_slice(&c.to_be_bytes());
        let again = pseudo_header_checksum(0xc0a80001, 0x08080808, 17, &seg);
        assert_eq!(again, 0);
    }
}
