//! Ethernet II framing.

use crate::error::{NetError, Result};

/// Length of an Ethernet II header (no 802.1Q tag support, as in the
/// paper's testbed configuration).
pub const ETHER_HDR_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Build a locally-administered unicast MAC from a small integer,
    /// handy for synthesizing distinct eNodeB/server endpoints in tests.
    pub fn from_index(i: u32) -> Self {
        let b = i.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = &self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", m[0], m[1], m[2], m[3], m[4], m[5])
    }
}

/// EtherType values this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EtherType {
    Ipv4 = 0x0800,
    Arp = 0x0806,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }

    pub fn as_u16(&self) -> u16 {
        match *self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// A decoded Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtherHdr {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EtherHdr {
    /// Parse the header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < ETHER_HDR_LEN {
            return Err(NetError::Truncated { what: "ethernet", need: ETHER_HDR_LEN, have: buf.len() });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EtherHdr {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
        })
    }

    /// Serialize into the first [`ETHER_HDR_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ETHER_HDR_LEN {
            return Err(NetError::Truncated { what: "ethernet emit", need: ETHER_HDR_LEN, have: buf.len() });
        }
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.as_u16().to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EtherHdr { dst: MacAddr::from_index(7), src: MacAddr::from_index(9), ethertype: EtherType::Ipv4 };
        let mut buf = [0u8; ETHER_HDR_LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(EtherHdr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(EtherHdr::parse(&[0u8; 13]), Err(NetError::Truncated { .. })));
        let h = EtherHdr { dst: MacAddr::BROADCAST, src: MacAddr::default(), ethertype: EtherType::Arp };
        assert!(h.emit(&mut [0u8; 5]).is_err());
    }

    #[test]
    fn unknown_ethertype_preserved() {
        let t = EtherType::from_u16(0x88CC);
        assert_eq!(t, EtherType::Other(0x88CC));
        assert_eq!(t.as_u16(), 0x88CC);
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_index(3).is_multicast());
    }

    #[test]
    fn display_format() {
        assert_eq!(MacAddr([0, 1, 2, 0xab, 0xcd, 0xef]).to_string(), "00:01:02:ab:cd:ef");
    }
}
