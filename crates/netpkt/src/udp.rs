//! UDP header codec (RFC 768).

use crate::checksum;
use crate::error::{NetError, Result};

/// Length of a UDP header.
pub const UDP_HDR_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHdr {
    pub src_port: u16,
    pub dst_port: u16,
    /// Header + payload length from the wire.
    pub len: u16,
}

impl UdpHdr {
    /// A fresh header for `payload_len` payload bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHdr { src_port, dst_port, len: (UDP_HDR_LEN + payload_len) as u16 }
    }

    /// Parse the header at the front of `buf` (checksum not verified here;
    /// use [`UdpHdr::verify_checksum`] where the pseudo-header is known).
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < UDP_HDR_LEN {
            return Err(NetError::Truncated { what: "udp", need: UDP_HDR_LEN, have: buf.len() });
        }
        let len = u16::from_be_bytes([buf[4], buf[5]]);
        if usize::from(len) < UDP_HDR_LEN {
            return Err(NetError::BadLength { what: "udp", value: len as usize });
        }
        Ok(UdpHdr {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            len,
        })
    }

    /// Serialize with checksum zeroed (legal for UDP over IPv4; GTP-U
    /// stacks commonly do exactly this on the fast path).
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < UDP_HDR_LEN {
            return Err(NetError::Truncated { what: "udp emit", need: UDP_HDR_LEN, have: buf.len() });
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.len.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]);
        Ok(())
    }

    /// Serialize and fill in the pseudo-header checksum. `segment` must be
    /// the emitted header immediately followed by the payload.
    pub fn emit_with_checksum(&self, segment: &mut [u8], src_ip: u32, dst_ip: u32) -> Result<()> {
        self.emit(segment)?;
        let c = checksum::pseudo_header_checksum(src_ip, dst_ip, 17, segment);
        // RFC 768: a computed zero checksum is transmitted as all-ones.
        let c = if c == 0 { 0xFFFF } else { c };
        segment[6..8].copy_from_slice(&c.to_be_bytes());
        Ok(())
    }

    /// Verify a received segment's checksum (zero means "not computed").
    pub fn verify_checksum(segment: &[u8], src_ip: u32, dst_ip: u32) -> bool {
        if segment.len() < UDP_HDR_LEN {
            return false;
        }
        if segment[6] == 0 && segment[7] == 0 {
            return true; // sender opted out
        }
        checksum::pseudo_header_checksum(src_ip, dst_ip, 17, segment) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = UdpHdr::new(2152, 2152, 32);
        let mut buf = [0u8; UDP_HDR_LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(UdpHdr::parse(&buf).unwrap(), h);
        assert_eq!(h.len as usize, UDP_HDR_LEN + 32);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(UdpHdr::parse(&[0u8; 7]).is_err());
    }

    #[test]
    fn bad_length_field_rejected() {
        let mut buf = [0u8; UDP_HDR_LEN];
        UdpHdr::new(1, 2, 0).emit(&mut buf).unwrap();
        buf[4..6].copy_from_slice(&3u16.to_be_bytes());
        assert!(matches!(UdpHdr::parse(&buf), Err(NetError::BadLength { .. })));
    }

    #[test]
    fn checksum_roundtrip() {
        let payload = b"dns query bytes";
        let h = UdpHdr::new(53000, 53, payload.len());
        let mut seg = vec![0u8; UDP_HDR_LEN + payload.len()];
        seg[UDP_HDR_LEN..].copy_from_slice(payload);
        h.emit_with_checksum(&mut seg, 0x0a000001, 0x08080808).unwrap();
        assert!(UdpHdr::verify_checksum(&seg, 0x0a000001, 0x08080808));
        assert!(!UdpHdr::verify_checksum(&seg, 0x0a000001, 0x08080809));
        seg[9] ^= 1;
        assert!(!UdpHdr::verify_checksum(&seg, 0x0a000001, 0x08080808));
    }

    #[test]
    fn zero_checksum_accepted() {
        let h = UdpHdr::new(1, 2, 4);
        let mut seg = vec![0u8; UDP_HDR_LEN + 4];
        h.emit(&mut seg).unwrap();
        assert!(UdpHdr::verify_checksum(&seg, 1, 2));
    }
}
