//! GPRS Tunnelling Protocol.
//!
//! Two faces of GTP appear in an EPC:
//!
//! * **GTP-U** (user plane, 3GPP TS 29.281): the eNodeB wraps every user IP
//!   packet in outer IP/UDP/GTP-U headers addressed to the S-GW; the S-GW
//!   re-tunnels toward the P-GW. [`GtpuHdr`] plus the [`encap_gtpu`] /
//!   [`decap_gtpu`] helpers implement this over [`Mbuf`]s.
//! * **GTP-C** (control plane, TS 29.274): session management messages on
//!   S11/S5 used by the *classic* EPC decomposition to synchronize the
//!   per-user state that it duplicates across MME, S-GW and P-GW — the very
//!   synchronization PEPC eliminates. [`GtpcMsg`] implements the subset the
//!   baseline needs (Create Session, Modify Bearer, Delete Session).

use crate::error::{NetError, Result};
use crate::ipv4::{IpProto, Ipv4Hdr, IPV4_HDR_LEN};
use crate::mbuf::Mbuf;
use crate::udp::{UdpHdr, UDP_HDR_LEN};

/// UDP port registered for GTP-U.
pub const GTPU_PORT: u16 = 2152;

/// UDP port registered for GTP-C.
pub const GTPC_PORT: u16 = 2123;

/// Length of the mandatory GTP-U header (no optional sequence/extension
/// fields — flags byte 0x30, as emitted on LTE fast paths).
pub const GTPU_HDR_LEN: usize = 8;

/// Full outer stack a GTP-U encapsulation adds: IPv4 + UDP + GTP-U.
pub const GTPU_OVERHEAD: usize = IPV4_HDR_LEN + UDP_HDR_LEN + GTPU_HDR_LEN;

/// GTP message types used on the user plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GtpMsgType {
    EchoRequest = 1,
    EchoResponse = 2,
    ErrorIndication = 26,
    EndMarker = 254,
    /// G-PDU: carries a tunnelled user packet.
    GPdu = 255,
}

impl GtpMsgType {
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => GtpMsgType::EchoRequest,
            2 => GtpMsgType::EchoResponse,
            26 => GtpMsgType::ErrorIndication,
            254 => GtpMsgType::EndMarker,
            255 => GtpMsgType::GPdu,
            other => return Err(NetError::Unsupported { what: "gtp-u message type", value: other.into() }),
        })
    }
}

/// The 8-byte GTP-U v1 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtpuHdr {
    pub msg_type: GtpMsgType,
    /// Payload length (everything after this header).
    pub length: u16,
    /// Tunnel Endpoint IDentifier selecting the bearer at the receiver.
    pub teid: u32,
}

impl GtpuHdr {
    /// Header for a G-PDU carrying `payload_len` tunnelled bytes.
    pub fn gpdu(teid: u32, payload_len: usize) -> Self {
        GtpuHdr { msg_type: GtpMsgType::GPdu, length: payload_len as u16, teid }
    }

    /// Parse the header at the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < GTPU_HDR_LEN {
            return Err(NetError::Truncated { what: "gtp-u", need: GTPU_HDR_LEN, have: buf.len() });
        }
        let flags = buf[0];
        if flags >> 5 != 1 {
            return Err(NetError::Unsupported { what: "gtp version", value: u32::from(flags >> 5) });
        }
        if flags & 0x10 == 0 {
            return Err(NetError::Unsupported { what: "gtp protocol type (gtp')", value: 0 });
        }
        if flags & 0x07 != 0 {
            // E/S/PN bits would add a 4-byte extension; the LTE user-plane
            // fast path we reproduce never sets them.
            return Err(NetError::Unsupported { what: "gtp-u optional fields", value: u32::from(flags & 7) });
        }
        Ok(GtpuHdr {
            msg_type: GtpMsgType::from_u8(buf[1])?,
            length: u16::from_be_bytes([buf[2], buf[3]]),
            teid: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }

    /// Serialize into the first [`GTPU_HDR_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < GTPU_HDR_LEN {
            return Err(NetError::Truncated { what: "gtp-u emit", need: GTPU_HDR_LEN, have: buf.len() });
        }
        buf[0] = 0x30; // version 1, protocol type GTP, no optional fields
        buf[1] = self.msg_type as u8;
        buf[2..4].copy_from_slice(&self.length.to_be_bytes());
        buf[4..8].copy_from_slice(&self.teid.to_be_bytes());
        Ok(())
    }
}

/// Encapsulate the packet currently in `m` (an inner user IP packet) in
/// outer IPv4 + UDP + GTP-U headers, exactly as an eNodeB or S-GW does.
pub fn encap_gtpu(m: &mut Mbuf, src_ip: u32, dst_ip: u32, teid: u32) -> Result<()> {
    let inner_len = m.len();
    let hdr = m.push(GTPU_OVERHEAD)?;
    Ipv4Hdr::new(src_ip, dst_ip, IpProto::Udp, UDP_HDR_LEN + GTPU_HDR_LEN + inner_len)
        .emit(&mut hdr[..IPV4_HDR_LEN])?;
    UdpHdr::new(GTPU_PORT, GTPU_PORT, GTPU_HDR_LEN + inner_len)
        .emit(&mut hdr[IPV4_HDR_LEN..IPV4_HDR_LEN + UDP_HDR_LEN])?;
    GtpuHdr::gpdu(teid, inner_len).emit(&mut hdr[IPV4_HDR_LEN + UDP_HDR_LEN..])?;
    Ok(())
}

/// Strip an outer IPv4 + UDP + GTP-U stack from the front of `m`, returning
/// the tunnel header (with TEID) and the outer IP header. The inner user
/// packet remains in `m`.
pub fn decap_gtpu(m: &mut Mbuf) -> Result<(GtpuHdr, Ipv4Hdr)> {
    let data = m.data();
    let ip = Ipv4Hdr::parse(data)?;
    if ip.proto != IpProto::Udp {
        return Err(NetError::Unsupported { what: "gtp-u outer proto", value: ip.proto.as_u8().into() });
    }
    let udp = UdpHdr::parse(&data[IPV4_HDR_LEN..])?;
    if udp.dst_port != GTPU_PORT {
        return Err(NetError::Unsupported { what: "gtp-u udp port", value: udp.dst_port.into() });
    }
    let gtp = GtpuHdr::parse(&data[IPV4_HDR_LEN + UDP_HDR_LEN..])?;
    let inner_len = m.len() - GTPU_OVERHEAD;
    if usize::from(gtp.length) != inner_len {
        return Err(NetError::BadLength { what: "gtp-u payload", value: gtp.length as usize });
    }
    m.pull(GTPU_OVERHEAD)?;
    Ok((gtp, ip))
}

// ---------------------------------------------------------------------------
// GTP-C (control plane) — used only by the classic baseline EPC.
// ---------------------------------------------------------------------------

/// GTP-C v2 session-management messages, carrying the IEs the baseline's
/// MME → S-GW → P-GW synchronization needs. Encoding is a compact fixed
/// layout (type, teid, sequence, then message-specific fields) rather than
/// full TS 29.274 TLV grammar; the information content matches what the
/// paper's state-synchronization analysis (Table 1) requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GtpcMsg {
    /// MME→S-GW / S-GW→P-GW on attach: install per-user session state.
    CreateSessionRequest {
        seq: u32,
        imsi: u64,
        /// Sender's control TEID for return messages.
        sender_cteid: u32,
        /// Data-plane TEID the sender will use for this user's bearer.
        bearer_teid: u32,
        /// UE IP address to install (0 = allocate).
        ue_ip: u32,
        /// QoS class identifier for the default bearer.
        qci: u8,
        /// Aggregate maximum bit rate (kbps).
        ambr_kbps: u32,
    },
    CreateSessionResponse {
        seq: u32,
        /// Echoes the request's control TEID.
        sender_cteid: u32,
        /// Responder's data-plane TEID for this bearer.
        bearer_teid: u32,
        /// UE IP actually allocated.
        ue_ip: u32,
        cause: u8,
    },
    /// Mobility / S1 handover: repoint the downlink tunnel.
    ModifyBearerRequest {
        seq: u32,
        imsi: u64,
        /// New eNodeB data TEID.
        enb_teid: u32,
        /// New eNodeB transport address.
        enb_ip: u32,
    },
    ModifyBearerResponse {
        seq: u32,
        cause: u8,
    },
    DeleteSessionRequest {
        seq: u32,
        imsi: u64,
    },
    DeleteSessionResponse {
        seq: u32,
        cause: u8,
    },
}

impl GtpcMsg {
    const T_CSREQ: u8 = 32;
    const T_CSRSP: u8 = 33;
    const T_MBREQ: u8 = 34;
    const T_MBRSP: u8 = 35;
    const T_DSREQ: u8 = 36;
    const T_DSRSP: u8 = 37;

    /// GTP-C cause value "request accepted".
    pub const CAUSE_ACCEPTED: u8 = 16;
    /// GTP-C cause value "context not found".
    pub const CAUSE_CONTEXT_NOT_FOUND: u8 = 64;

    /// Serialize to a standalone byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        match self {
            GtpcMsg::CreateSessionRequest { seq, imsi, sender_cteid, bearer_teid, ue_ip, qci, ambr_kbps } => {
                out.push(Self::T_CSREQ);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
                out.extend_from_slice(&sender_cteid.to_be_bytes());
                out.extend_from_slice(&bearer_teid.to_be_bytes());
                out.extend_from_slice(&ue_ip.to_be_bytes());
                out.push(*qci);
                out.extend_from_slice(&ambr_kbps.to_be_bytes());
            }
            GtpcMsg::CreateSessionResponse { seq, sender_cteid, bearer_teid, ue_ip, cause } => {
                out.push(Self::T_CSRSP);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&sender_cteid.to_be_bytes());
                out.extend_from_slice(&bearer_teid.to_be_bytes());
                out.extend_from_slice(&ue_ip.to_be_bytes());
                out.push(*cause);
            }
            GtpcMsg::ModifyBearerRequest { seq, imsi, enb_teid, enb_ip } => {
                out.push(Self::T_MBREQ);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
                out.extend_from_slice(&enb_teid.to_be_bytes());
                out.extend_from_slice(&enb_ip.to_be_bytes());
            }
            GtpcMsg::ModifyBearerResponse { seq, cause } => {
                out.push(Self::T_MBRSP);
                out.extend_from_slice(&seq.to_be_bytes());
                out.push(*cause);
            }
            GtpcMsg::DeleteSessionRequest { seq, imsi } => {
                out.push(Self::T_DSREQ);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
            }
            GtpcMsg::DeleteSessionResponse { seq, cause } => {
                out.push(Self::T_DSRSP);
                out.extend_from_slice(&seq.to_be_bytes());
                out.push(*cause);
            }
        }
        out
    }

    /// Decode from bytes produced by [`GtpcMsg::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        fn need(buf: &[u8], n: usize) -> Result<()> {
            if buf.len() < n {
                Err(NetError::Truncated { what: "gtp-c", need: n, have: buf.len() })
            } else {
                Ok(())
            }
        }
        fn u32_at(buf: &[u8], o: usize) -> u32 {
            u32::from_be_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
        }
        fn u64_at(buf: &[u8], o: usize) -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_be_bytes(b)
        }
        need(buf, 1)?;
        match buf[0] {
            Self::T_CSREQ => {
                need(buf, 30)?;
                Ok(GtpcMsg::CreateSessionRequest {
                    seq: u32_at(buf, 1),
                    imsi: u64_at(buf, 5),
                    sender_cteid: u32_at(buf, 13),
                    bearer_teid: u32_at(buf, 17),
                    ue_ip: u32_at(buf, 21),
                    qci: buf[25],
                    ambr_kbps: u32_at(buf, 26),
                })
            }
            Self::T_CSRSP => {
                need(buf, 18)?;
                Ok(GtpcMsg::CreateSessionResponse {
                    seq: u32_at(buf, 1),
                    sender_cteid: u32_at(buf, 5),
                    bearer_teid: u32_at(buf, 9),
                    ue_ip: u32_at(buf, 13),
                    cause: buf[17],
                })
            }
            Self::T_MBREQ => {
                need(buf, 21)?;
                Ok(GtpcMsg::ModifyBearerRequest {
                    seq: u32_at(buf, 1),
                    imsi: u64_at(buf, 5),
                    enb_teid: u32_at(buf, 13),
                    enb_ip: u32_at(buf, 17),
                })
            }
            Self::T_MBRSP => {
                need(buf, 6)?;
                Ok(GtpcMsg::ModifyBearerResponse { seq: u32_at(buf, 1), cause: buf[5] })
            }
            Self::T_DSREQ => {
                need(buf, 13)?;
                Ok(GtpcMsg::DeleteSessionRequest { seq: u32_at(buf, 1), imsi: u64_at(buf, 5) })
            }
            Self::T_DSRSP => {
                need(buf, 6)?;
                Ok(GtpcMsg::DeleteSessionResponse { seq: u32_at(buf, 1), cause: buf[5] })
            }
            other => Err(NetError::Unsupported { what: "gtp-c message type", value: other.into() }),
        }
    }

    /// The sequence number, present in every message for request/response
    /// correlation.
    pub fn seq(&self) -> u32 {
        match self {
            GtpcMsg::CreateSessionRequest { seq, .. }
            | GtpcMsg::CreateSessionResponse { seq, .. }
            | GtpcMsg::ModifyBearerRequest { seq, .. }
            | GtpcMsg::ModifyBearerResponse { seq, .. }
            | GtpcMsg::DeleteSessionRequest { seq, .. }
            | GtpcMsg::DeleteSessionResponse { seq, .. } => *seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Hdr;

    #[test]
    fn gtpu_header_roundtrip() {
        let h = GtpuHdr::gpdu(0x12345678, 100);
        let mut buf = [0u8; GTPU_HDR_LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(GtpuHdr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn gtpu_rejects_wrong_version() {
        let mut buf = [0u8; GTPU_HDR_LEN];
        GtpuHdr::gpdu(1, 0).emit(&mut buf).unwrap();
        buf[0] = 0x50; // version 2
        assert!(matches!(GtpuHdr::parse(&buf), Err(NetError::Unsupported { .. })));
    }

    #[test]
    fn gtpu_rejects_optional_fields() {
        let mut buf = [0u8; GTPU_HDR_LEN];
        GtpuHdr::gpdu(1, 0).emit(&mut buf).unwrap();
        buf[0] |= 0x02; // sequence-number flag
        assert!(GtpuHdr::parse(&buf).is_err());
    }

    fn inner_packet() -> Mbuf {
        // A little inner IPv4/UDP user packet.
        let mut m = Mbuf::new();
        let payload = b"user data";
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(0x0A00_0001, 0x08080808, IpProto::Udp, UDP_HDR_LEN + payload.len())
            .emit(&mut hdr[..IPV4_HDR_LEN])
            .unwrap();
        UdpHdr::new(5555, 53, payload.len()).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(payload);
        m
    }

    #[test]
    fn encap_decap_roundtrip() {
        let mut m = inner_packet();
        let original = m.data().to_vec();
        encap_gtpu(&mut m, 0xC0A80001, 0xC0A80002, 0xBEEF).unwrap();
        assert_eq!(m.len(), original.len() + GTPU_OVERHEAD);

        let outer = Ipv4Hdr::parse(m.data()).unwrap();
        assert_eq!(outer.src, 0xC0A80001);
        assert_eq!(outer.dst, 0xC0A80002);

        let (gtp, outer_ip) = decap_gtpu(&mut m).unwrap();
        assert_eq!(gtp.teid, 0xBEEF);
        assert_eq!(outer_ip.dst, 0xC0A80002);
        assert_eq!(m.data(), &original[..]);
    }

    #[test]
    fn decap_rejects_non_gtp_port() {
        let mut m = inner_packet();
        // inner packet is plain UDP to port 53 — not GTP
        assert!(matches!(decap_gtpu(&mut m), Err(NetError::Unsupported { .. })));
    }

    #[test]
    fn decap_rejects_length_mismatch() {
        let mut m = inner_packet();
        encap_gtpu(&mut m, 1, 2, 3).unwrap();
        // Corrupt the GTP length field.
        let off = IPV4_HDR_LEN + UDP_HDR_LEN + 2;
        m.data_mut()[off] ^= 0x01;
        assert!(matches!(decap_gtpu(&mut m), Err(NetError::BadLength { .. })));
    }

    #[test]
    fn double_encap_for_s5_tunnel() {
        // S-GW re-tunnels toward the P-GW: two nested GTP-U stacks.
        let mut m = inner_packet();
        let original = m.data().to_vec();
        encap_gtpu(&mut m, 1, 2, 0xA).unwrap();
        encap_gtpu(&mut m, 3, 4, 0xB).unwrap();
        let (g1, _) = decap_gtpu(&mut m).unwrap();
        assert_eq!(g1.teid, 0xB);
        let (g2, _) = decap_gtpu(&mut m).unwrap();
        assert_eq!(g2.teid, 0xA);
        assert_eq!(m.data(), &original[..]);
    }

    #[test]
    fn gtpc_all_variants_roundtrip() {
        let msgs = vec![
            GtpcMsg::CreateSessionRequest {
                seq: 9,
                imsi: 404_01_0000000001,
                sender_cteid: 0x11,
                bearer_teid: 0x22,
                ue_ip: 0x0A00002A,
                qci: 9,
                ambr_kbps: 100_000,
            },
            GtpcMsg::CreateSessionResponse {
                seq: 9,
                sender_cteid: 0x11,
                bearer_teid: 0x33,
                ue_ip: 0x0A00002A,
                cause: GtpcMsg::CAUSE_ACCEPTED,
            },
            GtpcMsg::ModifyBearerRequest { seq: 10, imsi: 1, enb_teid: 0x44, enb_ip: 0xC0A80005 },
            GtpcMsg::ModifyBearerResponse { seq: 10, cause: GtpcMsg::CAUSE_ACCEPTED },
            GtpcMsg::DeleteSessionRequest { seq: 11, imsi: 1 },
            GtpcMsg::DeleteSessionResponse { seq: 11, cause: GtpcMsg::CAUSE_CONTEXT_NOT_FOUND },
        ];
        for m in msgs {
            let enc = m.encode();
            assert_eq!(GtpcMsg::decode(&enc).unwrap(), m, "roundtrip failed for {m:?}");
            assert_eq!(GtpcMsg::decode(&enc).unwrap().seq(), m.seq());
        }
    }

    #[test]
    fn gtpc_truncated_and_unknown_rejected() {
        assert!(GtpcMsg::decode(&[]).is_err());
        assert!(GtpcMsg::decode(&[GtpcMsg::T_CSREQ, 0, 0]).is_err());
        assert!(matches!(GtpcMsg::decode(&[0xEE]), Err(NetError::Unsupported { .. })));
    }
}
