//! Five-tuple extraction — the key the PCEF/ADC classifier matches on.

use crate::error::Result;
use crate::ipv4::{IpProto, Ipv4Hdr, IPV4_HDR_LEN};
use crate::tcp::TcpHdr;
use crate::udp::UdpHdr;

/// The classic (src ip, dst ip, src port, dst port, proto) connection key.
///
/// For non-TCP/UDP protocols, ports are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FiveTuple {
    pub src_ip: u32,
    pub dst_ip: u32,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

impl FiveTuple {
    /// Extract the five-tuple from an IPv4 packet (header + payload).
    pub fn from_ipv4(buf: &[u8]) -> Result<Self> {
        let ip = Ipv4Hdr::parse(buf)?;
        let l4 = &buf[IPV4_HDR_LEN..];
        let (src_port, dst_port) = match ip.proto {
            IpProto::Udp => {
                let u = UdpHdr::parse(l4)?;
                (u.src_port, u.dst_port)
            }
            IpProto::Tcp => {
                let t = TcpHdr::parse(l4)?;
                (t.src_port, t.dst_port)
            }
            _ => (0, 0),
        };
        Ok(FiveTuple { src_ip: ip.src, dst_ip: ip.dst, src_port, dst_port, proto: ip.proto.as_u8() })
    }

    /// The same flow seen from the opposite direction.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A direction-insensitive 64-bit flow hash (same value for both
    /// directions of a connection), used to pick per-flow QoS queues.
    pub fn symmetric_hash(&self) -> u64 {
        let a = (u64::from(self.src_ip) << 16) | u64::from(self.src_port);
        let b = (u64::from(self.dst_ip) << 16) | u64::from(self.dst_port);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Fibonacci-style mix; quality only needs to be "spreads buckets".
        (lo ^ hi.rotate_left(25) ^ u64::from(self.proto)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            Ipv4Hdr::addr_to_string(self.src_ip),
            self.src_port,
            Ipv4Hdr::addr_to_string(self.dst_ip),
            self.dst_port,
            self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NetError;
    use crate::udp::UDP_HDR_LEN;

    fn udp_packet(src: u32, dst: u32, sp: u16, dp: u16) -> Vec<u8> {
        let mut buf = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN + 4];
        Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + 4).emit(&mut buf).unwrap();
        UdpHdr::new(sp, dp, 4).emit(&mut buf[IPV4_HDR_LEN..]).unwrap();
        buf
    }

    #[test]
    fn extracts_udp() {
        let pkt = udp_packet(0x0A000001, 0x08080808, 40000, 53);
        let ft = FiveTuple::from_ipv4(&pkt).unwrap();
        assert_eq!(ft.src_port, 40000);
        assert_eq!(ft.dst_port, 53);
        assert_eq!(ft.proto, 17);
    }

    #[test]
    fn extracts_tcp() {
        let mut buf = vec![0u8; IPV4_HDR_LEN + crate::tcp::TCP_HDR_LEN];
        Ipv4Hdr::new(1, 2, IpProto::Tcp, crate::tcp::TCP_HDR_LEN).emit(&mut buf).unwrap();
        TcpHdr {
            src_port: 443,
            dst_port: 50123,
            seq: 0,
            ack: 0,
            data_offset: crate::tcp::TCP_HDR_LEN,
            flags: 0x10,
            window: 1,
        }
        .emit(&mut buf[IPV4_HDR_LEN..])
        .unwrap();
        let ft = FiveTuple::from_ipv4(&buf).unwrap();
        assert_eq!((ft.src_port, ft.dst_port, ft.proto), (443, 50123, 6));
    }

    #[test]
    fn other_protocols_get_zero_ports() {
        let mut buf = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(1, 2, IpProto::Icmp, 8).emit(&mut buf).unwrap();
        let ft = FiveTuple::from_ipv4(&buf).unwrap();
        assert_eq!((ft.src_port, ft.dst_port), (0, 0));
        assert_eq!(ft.proto, 1);
    }

    #[test]
    fn truncated_l4_rejected() {
        let mut buf = vec![0u8; IPV4_HDR_LEN + 2];
        // total_len claims 2-byte UDP payload region, but UDP needs 8
        Ipv4Hdr::new(1, 2, IpProto::Udp, 2).emit(&mut buf).unwrap();
        assert!(matches!(FiveTuple::from_ipv4(&buf), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn reverse_is_involution() {
        let ft = FiveTuple { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 6 };
        assert_eq!(ft.reversed().reversed(), ft);
        assert_ne!(ft.reversed(), ft);
    }

    #[test]
    fn symmetric_hash_is_direction_invariant() {
        let ft = FiveTuple { src_ip: 7, dst_ip: 9, src_port: 1000, dst_port: 80, proto: 6 };
        assert_eq!(ft.symmetric_hash(), ft.reversed().symmetric_hash());
        let other = FiveTuple { dst_port: 81, ..ft };
        assert_ne!(ft.symmetric_hash(), other.symmetric_hash());
    }
}
