//! Branchless packet classification for the data-plane hot path.
//!
//! The data plane's first pipeline pass answers one question per packet:
//! is this an uplink GTP-U tunnel packet (decap, steer by TEID), a plain
//! downlink IPv4 packet (steer by destination address), or garbage? The
//! straightforward answer chains the header parsers in [`crate::ipv4`],
//! [`crate::udp`] and [`crate::gtp`] — a dozen data-dependent branches per
//! packet, each a potential mispredict when traffic mixes directions.
//!
//! [`classify_fast`] computes the same three-way verdict with the field
//! checks evaluated as arithmetic predicates over a fixed 36-byte window
//! (zero-padded when the packet is shorter, with explicit length
//! predicates standing in for the parsers' truncation errors), combined
//! with bitwise AND, and resolved by a single final select. Under
//! `target_feature = "sse2"` (always on for x86_64) the IPv4 header
//! checksum — the widest predicate, 10 summed words — is verified with
//! SIMD: the one's-complement sum is invariant under byte swapping, so the
//! "folds to zero" test works on native-endian lanes directly.
//!
//! [`classify_reference`] is the literal parser-chain composition; the
//! two are proven equivalent by the unit tests here and fuzzed in
//! `tests/prop_roundtrips.rs` (arbitrary bytes, every truncation, bit
//! flips). The data plane calls [`classify_fast`]; differential tests
//! against the parsers keep it honest.

use crate::gtp::{GtpuHdr, GTPU_OVERHEAD, GTPU_PORT};
use crate::ipv4::{IpProto, Ipv4Hdr, IPV4_HDR_LEN};
use crate::udp::{UdpHdr, UDP_HDR_LEN};

/// Three-way classification of a raw packet as it enters the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktClass {
    /// Well-formed outer IPv4/UDP/GTP-U stack; `teid` selects the bearer.
    /// The caller may strip [`GTPU_OVERHEAD`] bytes without re-validating.
    GtpU { teid: u32 },
    /// Well-formed plain IPv4 packet; `dst` is the host-order destination.
    Ipv4 { dst: u32 },
    /// Fails validation on whichever branch its shape selected.
    Malformed,
}

/// The window every predicate reads from: the longest prefix a
/// classification decision can touch (outer IPv4 + UDP + GTP-U header).
const WINDOW: usize = GTPU_OVERHEAD;

/// Reference classifier: the literal composition of the header parsers,
/// structured exactly like the data plane's original branchy pass.
///
/// A packet is *GTP-shaped* when it is long enough to hold an outer
/// IPv4+UDP stack, claims an options-free IPv4 header, carries UDP, and
/// addresses the GTP-U port. GTP-shaped packets must then survive full
/// outer-stack validation; everything else must parse as plain IPv4.
/// Note the deliberate quirk inherited from the original pass: a packet
/// shorter than 28 bytes is never GTP-shaped and so is judged as plain
/// IPv4 even if its first bytes look like a tunnel header.
pub fn classify_reference(d: &[u8]) -> PktClass {
    let gtp_shaped = d.len() >= IPV4_HDR_LEN + UDP_HDR_LEN
        && d[0] == 0x45
        && d[9] == 17
        && u16::from_be_bytes([d[22], d[23]]) == GTPU_PORT;
    if gtp_shaped {
        match parse_gtp_outer(d) {
            Some(teid) => PktClass::GtpU { teid },
            None => PktClass::Malformed,
        }
    } else {
        match Ipv4Hdr::parse(d) {
            Ok(ip) => PktClass::Ipv4 { dst: ip.dst },
            Err(_) => PktClass::Malformed,
        }
    }
}

/// Validate a GTP-shaped packet's outer stack with the real parsers,
/// mirroring `decap_gtpu` up to (but not including) the payload pull.
fn parse_gtp_outer(d: &[u8]) -> Option<u32> {
    let ip = Ipv4Hdr::parse(d).ok()?;
    if ip.proto != IpProto::Udp {
        return None;
    }
    let udp = UdpHdr::parse(&d[IPV4_HDR_LEN..]).ok()?;
    if udp.dst_port != GTPU_PORT {
        return None;
    }
    let gtp = GtpuHdr::parse(&d[IPV4_HDR_LEN + UDP_HDR_LEN..]).ok()?;
    // GtpuHdr::parse succeeding implies d.len() >= GTPU_OVERHEAD.
    if usize::from(gtp.length) != d.len() - GTPU_OVERHEAD {
        return None;
    }
    Some(gtp.teid)
}

/// Branchless classifier: byte-equivalent to [`classify_reference`].
///
/// Every field check becomes a 0/1 predicate over a zero-padded copy of
/// the first [`WINDOW`] bytes; length checks that the parsers express as
/// truncation errors become explicit predicates on the real length. The
/// predicates are AND-ed per branch and a single final select picks the
/// verdict — no data-dependent branch depends on packet *contents* until
/// that select.
pub fn classify_fast(d: &[u8]) -> PktClass {
    let len = d.len();
    let mut w = [0u8; WINDOW];
    let n = len.min(WINDOW);
    w[..n].copy_from_slice(&d[..n]);

    // Length predicates (stand-ins for the parsers' Truncated errors).
    let has_ip = (len >= IPV4_HDR_LEN) as u32;
    let has_udp = (len >= IPV4_HDR_LEN + UDP_HDR_LEN) as u32;
    let has_gtp = (len >= WINDOW) as u32;

    // Shape predicates: which branch would the reference take?
    let v45 = (w[0] == 0x45) as u32;
    let proto_udp = (w[9] == 17) as u32;
    let gtp_port = (u16::from_be_bytes([w[22], w[23]]) == GTPU_PORT) as u32;
    let gtp_shaped = has_udp & v45 & proto_udp & gtp_port;

    // Shared IPv4 validation: checksum over the 20 fixed header bytes
    // (fully present whenever `has_ip`), total-length sanity.
    let csum_ok = ipv4_checksum_folds_to_zero(&w) as u32;
    let total_len_ok = (u16::from_be_bytes([w[2], w[3]]) as usize >= IPV4_HDR_LEN) as u32;
    let ip_valid = has_ip & v45 & csum_ok & total_len_ok;

    // GTP-branch predicates. The padded window makes reads safe; `has_gtp`
    // carries the truncation semantics.
    let udp_len_ok = (u16::from_be_bytes([w[24], w[25]]) as usize >= UDP_HDR_LEN) as u32;
    let flags = w[28];
    let flags_ok = ((flags >> 5 == 1) as u32) & ((flags & 0x10 != 0) as u32) & ((flags & 0x07 == 0) as u32);
    let mt = w[29];
    let mtype_ok =
        ((mt == 255) as u32) | ((mt == 1) as u32) | ((mt == 2) as u32) | ((mt == 26) as u32) | ((mt == 254) as u32);
    // Written additively so it cannot underflow for short packets.
    let gtp_len_ok = (u16::from_be_bytes([w[30], w[31]]) as usize + GTPU_OVERHEAD == len) as u32;
    let gtp_ok = ip_valid & udp_len_ok & has_gtp & flags_ok & mtype_ok & gtp_len_ok;

    let teid = u32::from_be_bytes([w[32], w[33], w[34], w[35]]);
    let dst = u32::from_be_bytes([w[16], w[17], w[18], w[19]]);

    // The one select. `gtp_shaped` routes exactly as the reference does.
    match (gtp_shaped, gtp_ok, ip_valid) {
        (1, 1, _) => PktClass::GtpU { teid },
        (0, _, 1) => PktClass::Ipv4 { dst },
        _ => PktClass::Malformed,
    }
}

/// Does the RFC 1071 sum over the first 20 bytes fold to zero?
///
/// The one's-complement sum is invariant under byte swapping (swapping
/// every word swaps the sum), so `fold == 0` — i.e. the raw sum folds to
/// `0xFFFF` — can be tested on native-endian words, which is what lets
/// the SSE2 path load lanes without shuffling.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
#[inline]
fn ipv4_checksum_folds_to_zero(w: &[u8; WINDOW]) -> bool {
    // SAFETY: SSE2 is statically enabled (cfg above); loads are unaligned
    // (`loadu`) from a 36-byte array, so the 16-byte read is in bounds.
    unsafe {
        use core::arch::x86_64::*;
        let v = _mm_loadu_si128(w.as_ptr() as *const __m128i);
        let zero = _mm_setzero_si128();
        // Zero-extend the eight u16 lanes to u32 and add pairwise.
        let s = _mm_add_epi32(_mm_unpacklo_epi16(v, zero), _mm_unpackhi_epi16(v, zero));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        let mut acc = _mm_cvtsi128_si32(s) as u32;
        acc += u32::from(u16::from_ne_bytes([w[16], w[17]]));
        acc += u32::from(u16::from_ne_bytes([w[18], w[19]]));
        // Ten u16 words sum below 0xA_0000: two folds reach 16 bits.
        acc = (acc & 0xFFFF) + (acc >> 16);
        acc = (acc & 0xFFFF) + (acc >> 16);
        acc as u16 == 0xFFFF
    }
}

#[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
#[inline]
fn ipv4_checksum_folds_to_zero(w: &[u8; WINDOW]) -> bool {
    let mut acc = 0u32;
    let mut i = 0;
    while i < IPV4_HDR_LEN {
        acc += u32::from(u16::from_be_bytes([w[i], w[i + 1]]));
        i += 2;
    }
    acc = (acc & 0xFFFF) + (acc >> 16);
    acc = (acc & 0xFFFF) + (acc >> 16);
    acc as u16 == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum;
    use crate::gtp::encap_gtpu;
    use crate::mbuf::Mbuf;

    fn inner_packet(dst: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let payload = b"classify me";
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(0x0A00_0001, dst, IpProto::Udp, UDP_HDR_LEN + payload.len())
            .emit(&mut hdr[..IPV4_HDR_LEN])
            .unwrap();
        UdpHdr::new(5555, 53, payload.len()).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(payload);
        m
    }

    fn uplink_packet(teid: u32) -> Mbuf {
        let mut m = inner_packet(0x0808_0808);
        encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
        m
    }

    fn assert_both(d: &[u8], want: PktClass) {
        assert_eq!(classify_reference(d), want, "reference on {d:02x?}");
        assert_eq!(classify_fast(d), want, "fast on {d:02x?}");
    }

    #[test]
    fn classifies_valid_uplink_and_downlink() {
        assert_both(uplink_packet(0xBEEF).data(), PktClass::GtpU { teid: 0xBEEF });
        assert_both(inner_packet(0x0A00_0042).data(), PktClass::Ipv4 { dst: 0x0A00_0042 });
    }

    #[test]
    fn fast_matches_reference_on_every_truncation() {
        for pkt in [uplink_packet(7), inner_packet(3)] {
            let d = pkt.data();
            for cut in 0..=d.len() {
                assert_eq!(classify_fast(&d[..cut]), classify_reference(&d[..cut]), "truncated to {cut} bytes");
            }
        }
    }

    #[test]
    fn fast_matches_reference_on_every_single_bit_flip() {
        for pkt in [uplink_packet(0x1234_5678), inner_packet(0x0A00_0001)] {
            let d = pkt.data();
            let mut buf = d.to_vec();
            for byte in 0..buf.len().min(WINDOW + 4) {
                for bit in 0..8 {
                    buf[byte] ^= 1 << bit;
                    assert_eq!(classify_fast(&buf), classify_reference(&buf), "flip byte {byte} bit {bit}");
                    buf[byte] ^= 1 << bit;
                }
            }
        }
    }

    #[test]
    fn each_gtp_check_failure_is_malformed_in_both() {
        let base = uplink_packet(0xAA);
        let d = base.data();
        // (offset, value) corruptions that keep the packet GTP-shaped but
        // break exactly one downstream check. Checksum-affecting edits are
        // covered by the bit-flip sweep above; here target post-IP fields.
        for (off, val, what) in [
            (25usize, 7u8, "udp wire length below 8"),
            (28, 0x50, "gtp version 2"),
            (28, 0x20, "gtp protocol-type bit clear"),
            (28, 0x32, "gtp sequence flag set"),
            (29, 3, "unknown gtp message type"),
            (30, 0xFF, "gtp length != payload"),
        ] {
            let mut buf = d.to_vec();
            buf[off] = val;
            assert_both(&buf, PktClass::Malformed);
            let _ = what;
        }
    }

    #[test]
    fn gtp_shaped_but_short_falls_to_ipv4_branch() {
        // The inherited quirk: 20..28 bytes of a tunnel packet are not
        // GTP-shaped, so they are judged as plain IPv4 — and the outer
        // header alone is valid IPv4 only if total_len happens to agree;
        // here it does not matter, equivalence is what is pinned.
        let pkt = uplink_packet(0x42);
        let d = pkt.data();
        for cut in IPV4_HDR_LEN..IPV4_HDR_LEN + UDP_HDR_LEN {
            assert_eq!(classify_fast(&d[..cut]), classify_reference(&d[..cut]));
        }
    }

    #[test]
    fn checksum_predicate_agrees_with_checksum_module() {
        let mut w = [0u8; WINDOW];
        let pkt = uplink_packet(1);
        w[..WINDOW].copy_from_slice(&pkt.data()[..WINDOW]);
        assert!(ipv4_checksum_folds_to_zero(&w));
        assert!(checksum::verify(&w[..IPV4_HDR_LEN]));
        w[7] ^= 0x10;
        assert!(!ipv4_checksum_folds_to_zero(&w));
        assert!(!checksum::verify(&w[..IPV4_HDR_LEN]));
    }

    #[test]
    fn zero_and_tiny_inputs_are_malformed_in_both() {
        assert_both(&[], PktClass::Malformed);
        assert_both(&[0x45], PktClass::Malformed);
        assert_both(&[0u8; 19], PktClass::Malformed);
        assert_both(&[0u8; 64], PktClass::Malformed);
    }
}
