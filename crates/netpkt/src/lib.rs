// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! # pepc-net — packet representation and wire protocols for PEPC
//!
//! This crate is the lowest layer of the PEPC reproduction. It provides:
//!
//! * [`Mbuf`] — an owned packet buffer with headroom, modelled after the
//!   DPDK `rte_mbuf` / NetBricks packet abstraction: headers are *pushed*
//!   in front of the payload and *pulled* off without copying the payload.
//! * Header codecs for Ethernet II ([`ether`]), IPv4 ([`ipv4`]),
//!   UDP ([`udp`]) and TCP ([`tcp`]).
//! * The GPRS Tunnelling Protocol: GTP-U encapsulation used on S1-U/S5
//!   data paths and the GTP-C session-management messages used on S11/S5
//!   control paths by the classic (baseline) EPC ([`gtp`]).
//! * Internet checksum helpers ([`checksum`]).
//! * Five-tuple extraction ([`fivetuple`]) and a small BPF-like match
//!   virtual machine ([`bpf`]) used by the Policy and Charging Enforcement
//!   Function (PCEF) and Application Detection and Control (ADC).
//!
//! All multi-byte fields are network byte order (big endian) on the wire.
//! Codecs are allocation-free over `&[u8]` / `&mut [u8]` views.

pub mod bpf;
pub mod checksum;
pub mod classify;
pub mod error;
pub mod ether;
pub mod fivetuple;
pub mod gtp;
pub mod ipv4;
pub mod mbuf;
pub mod tcp;
pub mod udp;

pub use bpf::{BpfProgram, Insn};
pub use classify::{classify_fast, classify_reference, PktClass};
pub use error::{NetError, Result};
pub use ether::{EtherHdr, EtherType, MacAddr, ETHER_HDR_LEN};
pub use fivetuple::FiveTuple;
pub use gtp::{GtpMsgType, GtpuHdr, GTPU_HDR_LEN, GTPU_PORT};
pub use ipv4::{IpProto, Ipv4Hdr, IPV4_HDR_LEN};
pub use mbuf::Mbuf;
pub use tcp::{TcpHdr, TCP_HDR_LEN};
pub use udp::{UdpHdr, UDP_HDR_LEN};
