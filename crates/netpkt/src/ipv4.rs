//! IPv4 header codec (RFC 791), options-free as emitted by GTP-U stacks.

use crate::checksum;
use crate::error::{NetError, Result};

/// Length of an option-free IPv4 header.
pub const IPV4_HDR_LEN: usize = 20;

/// IP protocol numbers understood by the EPC pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IpProto {
    Icmp = 1,
    Tcp = 6,
    Udp = 17,
    Sctp = 132,
    Other(u8),
}

impl IpProto {
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            132 => IpProto::Sctp,
            other => IpProto::Other(other),
        }
    }

    pub fn as_u8(&self) -> u8 {
        match *self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Sctp => 132,
            IpProto::Other(v) => v,
        }
    }
}

/// A decoded IPv4 header. Addresses are host-order `u32`s; use
/// [`Ipv4Hdr::addr_to_string`] for dotted-quad rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Hdr {
    pub dscp: u8,
    pub identification: u16,
    pub ttl: u8,
    pub proto: IpProto,
    pub src: u32,
    pub dst: u32,
    /// Total length (header + payload) as found on the wire.
    pub total_len: u16,
}

impl Ipv4Hdr {
    /// A fresh header for a payload of `payload_len` bytes.
    pub fn new(src: u32, dst: u32, proto: IpProto, payload_len: usize) -> Self {
        Ipv4Hdr { dscp: 0, identification: 0, ttl: 64, proto, src, dst, total_len: (IPV4_HDR_LEN + payload_len) as u16 }
    }

    /// Parse and validate the header at the front of `buf`.
    ///
    /// Verifies version, IHL and the header checksum; headers carrying
    /// options are rejected as [`NetError::Unsupported`] (GTP stacks never
    /// emit them and the paper's pipeline does not parse them).
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < IPV4_HDR_LEN {
            return Err(NetError::Truncated { what: "ipv4", need: IPV4_HDR_LEN, have: buf.len() });
        }
        let vihl = buf[0];
        if vihl >> 4 != 4 {
            return Err(NetError::Unsupported { what: "ip version", value: u32::from(vihl >> 4) });
        }
        let ihl = usize::from(vihl & 0xF) * 4;
        if ihl != IPV4_HDR_LEN {
            return Err(NetError::Unsupported { what: "ipv4 options (ihl)", value: ihl as u32 });
        }
        if !checksum::verify(&buf[..IPV4_HDR_LEN]) {
            return Err(NetError::BadChecksum { what: "ipv4 header" });
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if usize::from(total_len) < IPV4_HDR_LEN {
            return Err(NetError::BadLength { what: "ipv4 total", value: total_len as usize });
        }
        Ok(Ipv4Hdr {
            dscp: buf[1] >> 2,
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            proto: IpProto::from_u8(buf[9]),
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
            total_len,
        })
    }

    /// Serialize with a freshly computed header checksum.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < IPV4_HDR_LEN {
            return Err(NetError::Truncated { what: "ipv4 emit", need: IPV4_HDR_LEN, have: buf.len() });
        }
        buf[0] = 0x45;
        buf[1] = self.dscp << 2;
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]); // flags / fragment offset: DF not set, no frags
        buf[8] = self.ttl;
        buf[9] = self.proto.as_u8();
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&self.src.to_be_bytes());
        buf[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let c = checksum::checksum(&buf[..IPV4_HDR_LEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        Ok(())
    }

    /// Render a host-order address as a dotted quad.
    pub fn addr_to_string(addr: u32) -> String {
        let b = addr.to_be_bytes();
        format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }

    /// Parse `a.b.c.d` into a host-order address (test/config helper).
    pub fn addr_from_str(s: &str) -> Option<u32> {
        let mut parts = s.split('.');
        let mut out = [0u8; 4];
        for slot in &mut out {
            *slot = parts.next()?.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(u32::from_be_bytes(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Hdr {
        Ipv4Hdr::new(
            Ipv4Hdr::addr_from_str("192.168.1.10").unwrap(),
            Ipv4Hdr::addr_from_str("10.0.0.1").unwrap(),
            IpProto::Udp,
            100,
        )
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = [0u8; IPV4_HDR_LEN];
        h.emit(&mut buf).unwrap();
        let parsed = Ipv4Hdr::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.total_len as usize, IPV4_HDR_LEN + 100);
    }

    #[test]
    fn checksum_enforced() {
        let mut buf = [0u8; IPV4_HDR_LEN];
        sample().emit(&mut buf).unwrap();
        buf[15] ^= 0xFF;
        assert_eq!(Ipv4Hdr::parse(&buf), Err(NetError::BadChecksum { what: "ipv4 header" }));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = [0u8; IPV4_HDR_LEN];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x65; // IPv6 nibble
        assert!(matches!(Ipv4Hdr::parse(&buf), Err(NetError::Unsupported { .. })));
    }

    #[test]
    fn options_rejected() {
        let mut buf = [0u8; 24];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x46; // IHL 6 => 24-byte header
        assert!(matches!(Ipv4Hdr::parse(&buf), Err(NetError::Unsupported { .. })));
    }

    #[test]
    fn addr_string_roundtrip() {
        let a = Ipv4Hdr::addr_from_str("172.16.254.3").unwrap();
        assert_eq!(Ipv4Hdr::addr_to_string(a), "172.16.254.3");
        assert!(Ipv4Hdr::addr_from_str("1.2.3").is_none());
        assert!(Ipv4Hdr::addr_from_str("1.2.3.4.5").is_none());
        assert!(Ipv4Hdr::addr_from_str("1.2.3.999").is_none());
    }

    #[test]
    fn proto_mapping_total() {
        for v in 0u8..=255 {
            assert_eq!(IpProto::from_u8(v).as_u8(), v);
        }
    }
}
