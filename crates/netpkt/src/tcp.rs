//! Minimal TCP header codec — enough for five-tuple classification and
//! PCEF/ADC matching; PEPC is a middlebox and never terminates TCP.

use crate::error::{NetError, Result};

/// Length of an option-free TCP header.
pub const TCP_HDR_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

/// A decoded TCP header (options are skipped, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHdr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    /// Header length in bytes, including options.
    pub data_offset: usize,
    pub flags: u8,
    pub window: u16,
}

impl TcpHdr {
    /// Parse the header at the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < TCP_HDR_LEN {
            return Err(NetError::Truncated { what: "tcp", need: TCP_HDR_LEN, have: buf.len() });
        }
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if !(TCP_HDR_LEN..=60).contains(&data_offset) {
            return Err(NetError::BadLength { what: "tcp data offset", value: data_offset });
        }
        if buf.len() < data_offset {
            return Err(NetError::Truncated { what: "tcp options", need: data_offset, have: buf.len() });
        }
        Ok(TcpHdr {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            data_offset,
            flags: buf[13],
            window: u16::from_be_bytes([buf[14], buf[15]]),
        })
    }

    /// Serialize an option-free header with checksum zeroed (classification
    /// paths never originate TCP segments).
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < TCP_HDR_LEN {
            return Err(NetError::Truncated { what: "tcp emit", need: TCP_HDR_LEN, have: buf.len() });
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = ((TCP_HDR_LEN / 4) as u8) << 4;
        buf[13] = self.flags;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..20].fill(0); // checksum + urgent pointer
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = TcpHdr {
            src_port: 443,
            dst_port: 51000,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            data_offset: TCP_HDR_LEN,
            flags: flags::SYN | flags::ACK,
            window: 65535,
        };
        let mut buf = [0u8; TCP_HDR_LEN];
        h.emit(&mut buf).unwrap();
        assert_eq!(TcpHdr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn options_skipped() {
        let mut buf = [0u8; 28];
        TcpHdr { src_port: 1, dst_port: 2, seq: 0, ack: 0, data_offset: TCP_HDR_LEN, flags: flags::ACK, window: 1000 }
            .emit(&mut buf)
            .unwrap();
        buf[12] = 7 << 4; // 28-byte header, 8 bytes of options
        let h = TcpHdr::parse(&buf).unwrap();
        assert_eq!(h.data_offset, 28);
    }

    #[test]
    fn bogus_offset_rejected() {
        let mut buf = [0u8; TCP_HDR_LEN];
        buf[12] = 2 << 4; // 8 bytes, below minimum
        assert!(matches!(TcpHdr::parse(&buf), Err(NetError::BadLength { .. })));
    }

    #[test]
    fn options_past_buffer_rejected() {
        let mut buf = [0u8; TCP_HDR_LEN];
        buf[12] = 10 << 4; // claims 40-byte header in a 20-byte buffer
        assert!(matches!(TcpHdr::parse(&buf), Err(NetError::Truncated { .. })));
    }
}
