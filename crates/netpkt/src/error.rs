//! Error type shared by all codecs in this crate.

use std::fmt;

/// Errors raised while parsing or building packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the header or payload being decoded.
    Truncated {
        /// What was being parsed when the buffer ran out.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version / type / flag field holds a value this stack does not speak.
    Unsupported { what: &'static str, value: u32 },
    /// A length field is inconsistent with the enclosing buffer.
    BadLength { what: &'static str, value: usize },
    /// A checksum failed verification.
    BadChecksum { what: &'static str },
    /// There is not enough headroom in the [`crate::Mbuf`] to push a header.
    NoHeadroom { need: usize, have: usize },
    /// A BPF program was malformed (e.g. jump out of range).
    BadProgram { reason: &'static str },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            NetError::Unsupported { what, value } => {
                write!(f, "unsupported {what}: {value:#x}")
            }
            NetError::BadLength { what, value } => write!(f, "bad {what} length: {value}"),
            NetError::BadChecksum { what } => write!(f, "bad {what} checksum"),
            NetError::NoHeadroom { need, have } => {
                write!(f, "insufficient headroom: need {need}, have {have}")
            }
            NetError::BadProgram { reason } => write!(f, "malformed BPF program: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::Truncated { what: "ipv4", need: 20, have: 7 };
        assert_eq!(e.to_string(), "truncated ipv4: need 20 bytes, have 7");
        let e = NetError::BadChecksum { what: "udp" };
        assert!(e.to_string().contains("udp"));
        let e = NetError::NoHeadroom { need: 36, have: 0 };
        assert!(e.to_string().contains("36"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NetError::BadProgram { reason: "x" }, NetError::BadProgram { reason: "x" });
        assert_ne!(NetError::Unsupported { what: "v", value: 1 }, NetError::Unsupported { what: "v", value: 2 });
    }
}
