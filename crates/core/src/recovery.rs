//! Slice checkpoint / restore — the paper's §8 failure-handling
//! discussion made concrete.
//!
//! "In PEPC, there is primarily a single failure mode (a PEPC node
//! fails). [...] To handle failures in PEPC, we can borrow from recent
//! work on providing fault tolerance for middleboxes." Because all of a
//! user's state is consolidated in one place, a checkpoint is just the
//! serialized list of `(ControlState, CounterState)` pairs — no
//! cross-component cut, no coordination with an MME or S-GW whose copies
//! might be mid-synchronization. The same property that makes migration
//! trivial makes recovery trivial.
//!
//! The wire format is a one-byte format version followed by a versioned
//! JSON document (human-inspectable, schema-evolvable); the raw leading
//! byte lets a reader reject a future incompatible format before
//! attempting to parse the body at all. A production deployment would
//! swap in a binary codec without touching callers.

use crate::ctrl::ControlPlane;
use crate::state::{ControlState, CounterState};
use serde::{Deserialize, Serialize};

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One user's full consolidated state, as serialized.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct UserRecord {
    pub ctrl: ControlState,
    pub counters: CounterState,
}

/// A whole slice's user population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceCheckpoint {
    pub version: u32,
    pub users: Vec<UserRecord>,
}

/// Errors during checkpoint / restore.
#[derive(Debug)]
pub enum RecoveryError {
    /// The checkpoint bytes were not a valid document.
    Malformed(String),
    /// Version mismatch.
    WrongVersion { found: u32, expected: u32 },
    /// The same IMSI appears more than once in one checkpoint; applying
    /// it would silently overwrite one record with the other.
    DuplicateImsi(u64),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            RecoveryError::WrongVersion { found, expected } => {
                write!(f, "checkpoint version {found}, expected {expected}")
            }
            RecoveryError::DuplicateImsi(imsi) => {
                write!(f, "checkpoint lists imsi {imsi} more than once")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Snapshot every user of a control plane into checkpoint bytes.
///
/// Consistency note: the control thread calls this on itself, so control
/// state is quiescent; counters are read as acquire/retry seqlock
/// snapshots ([`crate::state::UeContext::counters`]), so each user's
/// record is internally consistent (the paper's rollback-recovery
/// citations handle cross-packet output consistency, which an EPC data
/// plane — idempotent per packet — does not need).
pub fn checkpoint(cp: &ControlPlane) -> Vec<u8> {
    let mut users = Vec::with_capacity(cp.user_count());
    for imsi in cp.imsis() {
        if let Some(ctx) = cp.context_of(imsi) {
            users.push(UserRecord { ctrl: ctx.ctrl_read().clone(), counters: ctx.counters() });
        }
    }
    encode(&SliceCheckpoint { version: CHECKPOINT_VERSION, users })
}

/// Serialize a checkpoint document: raw format-version byte, then JSON.
pub fn encode(cp: &SliceCheckpoint) -> Vec<u8> {
    let body = serde_json::to_vec(cp).expect("checkpoint types always serialize");
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(cp.version as u8);
    out.extend_from_slice(&body);
    out
}

/// Parse checkpoint bytes: the header byte gates the format before the
/// body is touched, then the document's own `version` field is checked.
pub fn parse(bytes: &[u8]) -> Result<SliceCheckpoint, RecoveryError> {
    let (&header, body) = bytes.split_first().ok_or_else(|| RecoveryError::Malformed("empty checkpoint".into()))?;
    if u32::from(header) != CHECKPOINT_VERSION {
        return Err(RecoveryError::WrongVersion { found: u32::from(header), expected: CHECKPOINT_VERSION });
    }
    let cp: SliceCheckpoint = serde_json::from_slice(body).map_err(|e| RecoveryError::Malformed(e.to_string()))?;
    if cp.version != CHECKPOINT_VERSION {
        return Err(RecoveryError::WrongVersion { found: cp.version, expected: CHECKPOINT_VERSION });
    }
    Ok(cp)
}

/// Rebuild users into a (fresh) control plane from a checkpoint. Returns
/// how many users were restored. Data-plane membership updates are queued
/// exactly as attaches would queue them.
///
/// All validation — parse errors and intra-checkpoint duplicate IMSIs —
/// happens before the first record is applied, so a rejected checkpoint
/// never partially applies.
pub fn restore(cp: &mut ControlPlane, bytes: &[u8]) -> Result<usize, RecoveryError> {
    let parsed = parse(bytes)?;
    let mut seen = std::collections::HashSet::with_capacity(parsed.users.len());
    for rec in &parsed.users {
        if !seen.insert(rec.ctrl.imsi) {
            return Err(RecoveryError::DuplicateImsi(rec.ctrl.imsi));
        }
    }
    let n = parsed.users.len();
    for rec in parsed.users {
        cp.restore_user(rec.ctrl, rec.counters);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::{Allocator, CtrlEvent};

    fn cp() -> ControlPlane {
        ControlPlane::new(
            0x0AFE0001,
            1,
            Allocator { teid_base: 0x1000, ue_ip_base: 0x0A000001, guti_base: 0xD000, mme_ue_id_base: 1 },
            None,
        )
    }

    fn populated(n: u64) -> ControlPlane {
        let mut c = cp();
        for imsi in 0..n {
            c.apply_event(CtrlEvent::Attach { imsi });
            c.apply_event(CtrlEvent::S1Handover { imsi, new_enb_teid: 0xE000 + imsi as u32, new_enb_ip: 0xC0A80001 });
            let ctx = c.context_of(imsi).unwrap();
            ctx.update_counters(|c| c.uplink_bytes = imsi * 100);
        }
        c.take_updates();
        c
    }

    #[test]
    fn checkpoint_restore_roundtrips_everything() {
        let original = populated(50);
        let bytes = checkpoint(&original);

        let mut recovered = cp();
        let n = restore(&mut recovered, &bytes).unwrap();
        assert_eq!(n, 50);
        assert_eq!(recovered.user_count(), 50);
        for imsi in 0..50u64 {
            let a = original.context_of(imsi).unwrap();
            let b = recovered.context_of(imsi).unwrap();
            assert_eq!(*a.ctrl_read(), *b.ctrl_read(), "control state imsi {imsi}");
            assert_eq!(a.counters(), b.counters(), "counters imsi {imsi}");
        }
        // Restoration queued data-plane inserts like attaches do.
        assert!(recovered.has_updates());
    }

    #[test]
    fn restored_users_keep_identifiers_and_tunnels() {
        let original = populated(5);
        let bytes = checkpoint(&original);
        let mut recovered = cp();
        restore(&mut recovered, &bytes).unwrap();
        let c = recovered.context_of(3).unwrap();
        let s = c.ctrl_read();
        assert_eq!(s.tunnels.enb_teid, 0xE003);
        assert_eq!(s.tunnels.gw_teid, 0x1000 + 3);
        // GUTI index rebuilt: a detach-by-guti style lookup still works.
        drop(s);
        assert!(recovered.apply_event(CtrlEvent::Detach { imsi: 3 }));
    }

    #[test]
    fn malformed_and_wrong_version_rejected() {
        let mut c = cp();
        assert!(matches!(restore(&mut c, &[]), Err(RecoveryError::Malformed(_))));
        // Valid header byte, garbage body.
        assert!(matches!(restore(&mut c, b"\x01not json"), Err(RecoveryError::Malformed(_))));
        // Wrong header byte is rejected before the body is even parsed.
        assert!(matches!(restore(&mut c, b"\x63garbage"), Err(RecoveryError::WrongVersion { found: 99, .. })));
        // Header passes but the document's own version field disagrees.
        let mut doc = parse(&checkpoint(&populated(1))).unwrap();
        doc.version = 99;
        let mut bytes = vec![CHECKPOINT_VERSION as u8];
        bytes.extend_from_slice(&serde_json::to_vec(&doc).unwrap());
        assert!(matches!(restore(&mut c, &bytes), Err(RecoveryError::WrongVersion { found: 99, .. })));
        assert_eq!(c.user_count(), 0, "failed restore leaves nothing behind");
    }

    #[test]
    fn duplicate_imsis_rejected_without_partial_apply() {
        let mut doc = parse(&checkpoint(&populated(3))).unwrap();
        let dup = doc.users[1].clone();
        let dup_imsi = dup.ctrl.imsi;
        doc.users.push(dup);
        let bytes = encode(&doc);
        let mut c = cp();
        match restore(&mut c, &bytes) {
            Err(RecoveryError::DuplicateImsi(i)) => assert_eq!(i, dup_imsi),
            other => panic!("expected DuplicateImsi, got {other:?}"),
        }
        assert_eq!(c.user_count(), 0, "duplicate checkpoint must not partially apply");
        assert!(!c.has_updates());
    }

    #[test]
    fn empty_slice_checkpoints_cleanly() {
        let bytes = checkpoint(&cp());
        let mut c = cp();
        assert_eq!(restore(&mut c, &bytes).unwrap(), 0);
    }

    #[test]
    fn checkpoint_is_version_byte_then_json() {
        let bytes = checkpoint(&populated(1));
        assert_eq!(bytes[0], CHECKPOINT_VERSION as u8);
        let v: serde_json::Value = serde_json::from_slice(&bytes[1..]).unwrap();
        assert_eq!(v["version"], 1);
        assert!(v["users"].is_array());
    }
}
