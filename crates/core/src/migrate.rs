//! User state migration — paper §4.3, §6.6.
//!
//! PEPC's by-user organisation makes moving a user trivial compared to
//! the classic EPC (where MME, S-GW and P-GW copies must all move in
//! concert): the *single* consolidated [`crate::state::UeContext`] is
//! handed from the source slice's control thread to the destination's.
//!
//! Protocol (intra-node, orchestrated by the node scheduler):
//!
//! 1. scheduler → source slice: [`StateTransferMessage::Request`];
//!    the node Demux simultaneously starts parking the user's packets in
//!    a per-user migration queue (no loss, no reordering);
//! 2. source control thread copies the consolidated state out **by
//!    value**, removes the user from its tables, tells its data thread to
//!    forget the user (freeing the user's slab slot), and answers with
//!    [`StateTransferMessage::Response`] carrying the [`UserSnapshot`];
//! 3. scheduler installs the snapshot at the destination slice — which
//!    allocates a fresh slot in *its* arena — and repoints the Demux
//!    mapping;
//! 4. the parked packets drain to the destination slice.
//!
//! Since PR 9, contexts live in per-slice slab arenas addressed by
//! generational handles, so a snapshot is a plain value (control state +
//! counters), never a pointer into the source arena: it serializes
//! unchanged for the cross-node variant, and the source slot can be
//! reused the moment the data thread applies the Remove. Packets still
//! in flight on the source during the handoff window resolve a stale
//! generation and drop — exactly the post-detach semantics — instead of
//! reading a recycled slot.

use crate::state::{ControlState, CounterState, Uid};

/// Everything needed to re-home a user: a by-value copy of both halves
/// of the consolidated state, plus the data-plane keys (preserved across
/// the move so in-flight tunnels stay valid).
#[derive(Debug, Clone)]
pub struct UserSnapshot {
    pub uid: Uid,
    pub imsi: u64,
    /// Uplink tunnel key (gateway-side TEID).
    pub gw_teid: u32,
    /// Downlink key (UE IP).
    pub ue_ip: u32,
    /// The control half (control-thread-written).
    pub ctrl: ControlState,
    /// The counter half (data-thread-written), including token-bucket
    /// fill levels so rate limiting is seamless across the move.
    pub counters: CounterState,
}

/// Messages on a slice's migration channel (paper Listing 1's
/// `from_node_sched` / `to_node_sched`).
#[derive(Debug, Clone)]
pub enum StateTransferMessage {
    /// Scheduler → slice: hand over this user.
    Request { imsi: u64 },
    /// Slice → scheduler: here it is (`None` = user not on this slice).
    Response { imsi: u64, snapshot: Option<UserSnapshot> },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(imsi: u64) -> UserSnapshot {
        let mut ctrl = ControlState::new(imsi);
        ctrl.ue_ip = 3;
        ctrl.tunnels.gw_teid = 2;
        let counters = CounterState { uplink_bytes: 777, ambr_tokens: 1234, ..Default::default() };
        UserSnapshot { uid: 1, imsi, gw_teid: 2, ue_ip: 3, ctrl, counters }
    }

    #[test]
    fn snapshot_is_a_value_not_an_alias() {
        // Both halves travel by value: counter totals and limiter fill
        // levels are frozen at extraction time, and nothing in the
        // snapshot can dangle into the source slice's arena.
        let s = snap(42);
        let copied = s.clone();
        assert_eq!(copied.counters.uplink_bytes, 777);
        assert_eq!(copied.counters.ambr_tokens, 1234, "bucket fill moves with the user");
        assert_eq!(copied.ctrl.imsi, 42);
        assert_eq!((copied.gw_teid, copied.ue_ip), (2, 3), "keys preserved");
    }

    #[test]
    fn frozen_handoff_readers_fall_back_to_the_lock() {
        use crate::state::{CtrlView, UeContext};
        // The freeze/hold mechanism remains available for in-place
        // handoff windows (the view cell is held odd while a context is
        // being handed over): an optimistic reader exhausts its bounded
        // retries and projects from the control lock — consistent, never
        // torn, never blocked.
        let ctx = UeContext::new(ControlState::new(42));
        let hold = ctx.freeze_view();
        let (view, retries) = ctx.ctrl_view_with_retries();
        assert!(retries > 0, "frozen cell must force the fallback");
        assert_eq!(view, CtrlView::project(&ctx.ctrl_read()));
        drop(hold);
        assert_eq!(ctx.ctrl_view_with_retries().1, 0, "optimistic again after the hold drops");
    }

    #[test]
    fn transfer_messages_roundtrip_clone() {
        let req = StateTransferMessage::Request { imsi: 9 };
        match req.clone() {
            StateTransferMessage::Request { imsi } => assert_eq!(imsi, 9),
            _ => panic!(),
        }
        let rsp = StateTransferMessage::Response { imsi: 9, snapshot: None };
        assert!(matches!(rsp, StateTransferMessage::Response { snapshot: None, .. }));
    }
}
