//! User state migration — paper §4.3, §6.6.
//!
//! PEPC's by-user organisation makes moving a user trivial compared to
//! the classic EPC (where MME, S-GW and P-GW copies must all move in
//! concert): the *single* consolidated [`UeContext`](crate::state) is
//! handed from the source slice's control thread to the destination's.
//!
//! Protocol (intra-node, orchestrated by the node scheduler):
//!
//! 1. scheduler → source slice: [`StateTransferMessage::Request`];
//!    the node Demux simultaneously starts parking the user's packets in
//!    a per-user migration queue (no loss, no reordering);
//! 2. source control thread removes the user from its tables, tells its
//!    data thread to forget the user, and answers with
//!    [`StateTransferMessage::Response`] carrying the [`UserSnapshot`].
//!    During this handoff window the user's seqlock view cell is held
//!    frozen (sequence odd, see [`crate::seqlock::SeqHold`]): a racing
//!    data-path reader falls back to projecting from the control lock
//!    rather than acting on a stale published view;
//! 3. scheduler installs the snapshot at the destination slice and
//!    repoints the Demux mapping;
//! 4. the parked packets drain to the destination slice.
//!
//! Because the context travels as an `Arc` within the node, counters and
//! rate-limiter fill levels move losslessly; a cross-node variant would
//! serialize the same snapshot.

use crate::state::{UeContext, Uid};
use std::sync::Arc;

/// Everything needed to re-home a user.
#[derive(Debug, Clone)]
pub struct UserSnapshot {
    pub uid: Uid,
    pub imsi: u64,
    /// Uplink tunnel key (gateway-side TEID).
    pub gw_teid: u32,
    /// Downlink key (UE IP).
    pub ue_ip: u32,
    /// The consolidated state itself.
    pub ctx: Arc<UeContext>,
}

/// Messages on a slice's migration channel (paper Listing 1's
/// `from_node_sched` / `to_node_sched`).
#[derive(Debug, Clone)]
pub enum StateTransferMessage {
    /// Scheduler → slice: hand over this user.
    Request { imsi: u64 },
    /// Slice → scheduler: here it is (`None` = user not on this slice).
    Response { imsi: u64, snapshot: Option<UserSnapshot> },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ControlState;

    #[test]
    fn snapshot_carries_live_context() {
        let ctx = UeContext::new(ControlState::new(42));
        ctx.update_counters(|c| c.uplink_bytes = 777);
        let snap = UserSnapshot { uid: 1, imsi: 42, gw_teid: 2, ue_ip: 3, ctx: Arc::clone(&ctx) };
        // The snapshot aliases the same context — counter state moves with
        // the user, not a copy.
        ctx.update_counters(|c| c.uplink_bytes += 1);
        assert_eq!(snap.ctx.counters().uplink_bytes, 778);
    }

    #[test]
    fn frozen_handoff_readers_fall_back_to_the_lock() {
        use crate::state::CtrlView;
        let ctx = UeContext::new(ControlState::new(42));
        let snap = UserSnapshot { uid: 1, imsi: 42, gw_teid: 2, ue_ip: 3, ctx: Arc::clone(&ctx) };
        let hold = snap.ctx.freeze_view();
        // An optimistic reader during the handoff window exhausts its
        // bounded retries and projects from the control lock —
        // consistent, never torn, never blocked.
        let (view, retries) = ctx.ctrl_view_with_retries();
        assert!(retries > 0, "frozen cell must force the fallback");
        assert_eq!(view, CtrlView::project(&ctx.ctrl_read()));
        drop(hold);
        assert_eq!(ctx.ctrl_view_with_retries().1, 0, "optimistic again after the hold drops");
    }

    #[test]
    fn transfer_messages_roundtrip_clone() {
        let req = StateTransferMessage::Request { imsi: 9 };
        match req.clone() {
            StateTransferMessage::Request { imsi } => assert_eq!(imsi, 9),
            _ => panic!(),
        }
        let rsp = StateTransferMessage::Response { imsi: 9, snapshot: None };
        assert!(matches!(rsp, StateTransferMessage::Response { snapshot: None, .. }));
    }
}
