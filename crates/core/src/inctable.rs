//! Incrementally-resizing open-addressing table (DESIGN.md §16).
//!
//! The std `HashMap` doubles by rehashing *everything at once*: at 5M
//! entries that is a multi-hundred-millisecond stop-the-world stall on
//! whichever thread's insert crossed the load threshold — a rehash spike
//! the capacity bench (fig 5 extension) would show as an attach-latency
//! cliff mid-ramp. [`IncrementalTable`] amortizes resizing instead:
//!
//! * Two internal open-addressing arrays: `live` (where inserts land)
//!   and an optional `old` being drained.
//! * Crossing the grow threshold (3/4 load — kept moderate because the
//!   old array's probe chains are frozen at swap time, and every insert
//!   during a drain pays one absent-key probe there) swaps `live` into
//!   `old` and allocates a double-size `live`; crossing the shrink
//!   threshold (1/8 load, after mass detach) does the same with a
//!   smaller `live`.
//! * Every subsequent **mutating** operation migrates at most
//!   [`MIGRATE_STEP`] old buckets — a bounded number of relocations per
//!   insert — until `old` is empty and dropped. Lookups probe `live`
//!   then `old`; reads never relocate (the per-packet path stays
//!   read-only).
//!
//! Layout per bucket: 1 control byte (empty/full/tombstone), an 8-byte
//! key, and the value, in three parallel arrays, so probing scans a
//! dense byte array. Keys hash through the same splitmix64 finalizer as the shard
//! steering. The `live` array uses backward-shift deletion (no
//! tombstones, probe chains never rot); the `old` array tombstones
//! drained/removed buckets since it only ever shrinks.
//!
//! Not internally synchronized: like [`crate::twolevel::TwoLevelTable`]
//! (which this backs) it belongs to exactly one thread.

use crate::twolevel::splitmix64;
use std::mem::MaybeUninit;

/// Old buckets migrated per mutating operation. Total drain work per
/// doubling is fixed (every old bucket relocates once), so the step
/// only chooses between many mildly-slow migrating inserts and few
/// slower ones. Small steps stretch each drain across most of the
/// inter-growth window — several percent of all inserts then pay extra
/// cache misses (an old-array probe plus relocations), which lands
/// growth squarely in the attach p99 the capacity bench gates (ramp p99
/// ≤ 5× steady p99). 512 finishes a drain in cap/512 inserts, ≈ 0.5%
/// of the ≈ 3/4 × cap-insert window a grow leaves — outside the p99 —
/// while the worst single attach stays bounded and *table-size
/// independent* at 512 bucket scans (tens of µs; a stop-the-world
/// rehash at 10M users is ~4 orders of magnitude worse). Idle
/// `maintain()` calls (slice tick / sync) finish drains sooner still.
const MIGRATE_STEP: usize = 512;

/// Smallest capacity the table shrinks to.
const MIN_CAP: usize = 16;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMB: u8 = 2;

/// A bucket location from [`IncrementalTable::locate`]; valid until the
/// next mutating call.
#[derive(Debug, Clone, Copy)]
pub struct Loc {
    in_old: bool,
    idx: usize,
}

struct RawTable<V> {
    ctrl: Box<[u8]>,
    keys: Box<[u64]>,
    vals: Box<[MaybeUninit<V>]>,
    len: usize,
    mask: usize,
}

impl<V> RawTable<V> {
    fn with_capacity(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_CAP);
        RawTable {
            ctrl: vec![EMPTY; cap].into_boxed_slice(),
            keys: vec![0u64; cap].into_boxed_slice(),
            vals: (0..cap).map(|_| MaybeUninit::uninit()).collect(),
            len: 0,
            mask: cap - 1,
        }
    }

    fn capacity(&self) -> usize {
        self.ctrl.len()
    }

    #[inline]
    fn ideal(&self, key: u64) -> usize {
        splitmix64(key) as usize & self.mask
    }

    /// Probe for `key`: skips tombstones, stops at the first empty
    /// bucket. Works for both the tombstone-free `live` array and the
    /// tombstoned `old` array.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.ideal(key);
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == key => return Some(i),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Insert into a tombstone-free array (`live` only). Returns the
    /// previous value if the key was present.
    fn insert(&mut self, key: u64, val: V) -> Option<V> {
        let mut i = self.ideal(key);
        loop {
            match self.ctrl[i] {
                EMPTY => {
                    self.ctrl[i] = FULL;
                    self.keys[i] = key;
                    self.vals[i].write(val);
                    self.len += 1;
                    return None;
                }
                FULL if self.keys[i] == key => {
                    // SAFETY: FULL buckets hold initialized values.
                    let prev = unsafe { self.vals[i].assume_init_read() };
                    self.vals[i].write(val);
                    return Some(prev);
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Remove by backward-shifting the rest of the probe cluster (`live`
    /// only — keeps the array tombstone-free so probe chains never rot).
    fn remove_shift(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        // SAFETY: `find` only returns FULL buckets.
        let out = unsafe { self.vals[hole].assume_init_read() };
        let mask = self.mask;
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            if self.ctrl[j] != FULL {
                break;
            }
            // An element may fill the hole iff its ideal bucket is not
            // in the (cyclic) gap between the hole and it — the standard
            // Robin-Hood/backward-shift condition.
            let ideal = self.ideal(self.keys[j]);
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.keys[hole] = self.keys[j];
                // SAFETY: relocating an initialized value bitwise; the
                // source bucket is overwritten or emptied below.
                self.vals[hole] = unsafe { std::ptr::read(&self.vals[j]) };
                hole = j;
            }
        }
        self.ctrl[hole] = EMPTY;
        self.len -= 1;
        Some(out)
    }

    /// Remove by tombstoning (`old` only — it is drain-only, so rotting
    /// chains cost nothing: the array dies as soon as the scan finishes).
    fn remove_tomb(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        self.ctrl[i] = TOMB;
        self.len -= 1;
        // SAFETY: `find` only returns FULL buckets.
        Some(unsafe { self.vals[i].assume_init_read() })
    }

    /// Take the contents of FULL bucket `i` (migration drain).
    fn take_at(&mut self, i: usize) -> (u64, V) {
        debug_assert_eq!(self.ctrl[i], FULL);
        self.ctrl[i] = TOMB;
        self.len -= 1;
        // SAFETY: asserted FULL above.
        (self.keys[i], unsafe { self.vals[i].assume_init_read() })
    }
}

impl<V> Drop for RawTable<V> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<V>() {
            for i in 0..self.ctrl.len() {
                if self.ctrl[i] == FULL {
                    // SAFETY: FULL buckets hold initialized values.
                    unsafe { self.vals[i].assume_init_drop() };
                }
            }
        }
    }
}

/// `u64 → V` map with `HashMap`-compatible semantics and bounded-work
/// resizing. See the module docs.
pub struct IncrementalTable<V> {
    live: RawTable<V>,
    old: Option<RawTable<V>>,
    /// Drain cursor into `old`.
    scan: usize,
}

impl<V> Default for IncrementalTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IncrementalTable<V> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size for `expected` entries (rounded so the grow threshold is
    /// not crossed while filling to `expected`).
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.saturating_mul(4) / 3 + 1).next_power_of_two().max(MIN_CAP);
        IncrementalTable { live: RawTable::with_capacity(cap), old: None, scan: 0 }
    }

    pub fn len(&self) -> usize {
        self.live.len + self.old.as_ref().map_or(0, |o| o.len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bucket count across both arrays.
    pub fn capacity(&self) -> usize {
        self.live.capacity() + self.old.as_ref().map_or(0, RawTable::capacity)
    }

    /// Resident bytes: ctrl byte + key + value per bucket, both arrays.
    pub fn bytes(&self) -> u64 {
        let per = |t: &RawTable<V>| (t.capacity() * (1 + 8 + std::mem::size_of::<V>())) as u64;
        per(&self.live) + self.old.as_ref().map_or(0, per)
    }

    /// Whether an incremental migration is in progress.
    pub fn is_migrating(&self) -> bool {
        self.old.is_some()
    }

    /// Locate `key` without touching it. The returned [`Loc`] is
    /// invalidated by any mutating call.
    #[inline]
    pub fn locate(&self, key: u64) -> Option<Loc> {
        if let Some(i) = self.live.find(key) {
            return Some(Loc { in_old: false, idx: i });
        }
        let i = self.old.as_ref()?.find(key)?;
        Some(Loc { in_old: true, idx: i })
    }

    /// Read the value at a [`Loc`] from [`Self::locate`].
    #[inline]
    pub fn at(&self, loc: Loc) -> &V {
        let t = if loc.in_old { self.old.as_ref().unwrap() } else { &self.live };
        debug_assert_eq!(t.ctrl[loc.idx], FULL);
        // SAFETY: locate only returns FULL buckets, and Loc is
        // invalidated by mutation per its contract.
        unsafe { t.vals[loc.idx].assume_init_ref() }
    }

    /// Mutable access at a [`Loc`] from [`Self::locate`].
    #[inline]
    pub fn at_mut(&mut self, loc: Loc) -> &mut V {
        let t = if loc.in_old { self.old.as_mut().unwrap() } else { &mut self.live };
        debug_assert_eq!(t.ctrl[loc.idx], FULL);
        // SAFETY: as in `at`.
        unsafe { t.vals[loc.idx].assume_init_mut() }
    }

    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.locate(key).map(|l| self.at(l))
    }

    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let loc = self.locate(key)?;
        Some(self.at_mut(loc))
    }

    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.locate(key).is_some()
    }

    /// Insert (`HashMap` semantics: returns the displaced value). Also
    /// performs one bounded migration step and, if the load threshold is
    /// crossed, *begins* a grow — never a full rehash.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        // The key may still sit in the draining array; evict it first so
        // it never exists in both.
        let displaced = self.old.as_mut().and_then(|o| o.remove_tomb(key));
        let prev = self.live.insert(key, val).or(displaced);
        self.migrate_step();
        if self.live.len * 4 >= self.live.capacity() * 3 {
            let cap = self.live.capacity() * 2;
            self.begin_resize(cap);
        }
        prev
    }

    /// Remove (`HashMap` semantics). Also steps migration and, on low
    /// occupancy, begins a shrink so mass detach releases memory.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let out = match self.live.remove_shift(key) {
            Some(v) => Some(v),
            None => self.old.as_mut().and_then(|o| o.remove_tomb(key)),
        };
        self.migrate_step();
        if out.is_some()
            && self.old.is_none()
            && self.live.capacity() > MIN_CAP
            && self.live.len * 8 < self.live.capacity()
        {
            let cap = (self.live.len * 2).next_power_of_two().max(MIN_CAP);
            self.begin_resize(cap);
        }
        out
    }

    /// Run one bounded migration step without mutating any entry. The
    /// owner may call this when idle to finish a drain sooner.
    pub fn maintain(&mut self) {
        self.migrate_step();
    }

    /// Iterate all entries (live array first, then the draining one).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        fn walk<V>(t: &RawTable<V>) -> Vec<(u64, &V)> {
            // SAFETY: FULL buckets hold initialized values.
            (0..t.capacity())
                .filter(|&i| t.ctrl[i] == FULL)
                .map(|i| (t.keys[i], unsafe { t.vals[i].assume_init_ref() }))
                .collect()
        }
        walk(&self.live).into_iter().chain(self.old.as_ref().map(walk).unwrap_or_default())
    }

    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Swap `live` into the drain position and start a fresh array. If a
    /// drain is already running (double resize — only reachable through
    /// pathological flapping) it is finished first; that backstop is the
    /// sole non-amortized path.
    fn begin_resize(&mut self, cap: usize) {
        while self.old.is_some() {
            self.migrate_step();
        }
        let old = std::mem::replace(&mut self.live, RawTable::with_capacity(cap));
        self.scan = 0;
        if old.len > 0 {
            self.old = Some(old);
        }
    }

    /// Relocate at most [`MIGRATE_STEP`] old buckets into `live`.
    fn migrate_step(&mut self) {
        let Some(old) = self.old.as_mut() else { return };
        let cap = old.capacity();
        let mut budget = MIGRATE_STEP;
        while self.scan < cap && budget > 0 {
            if old.ctrl[self.scan] == FULL {
                let (k, v) = old.take_at(self.scan);
                let clash = self.live.insert(k, v);
                debug_assert!(clash.is_none(), "key live in both arrays");
            }
            self.scan += 1;
            budget -= 1;
        }
        if self.scan >= cap || old.len == 0 {
            self.old = None;
            self.scan = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = IncrementalTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(7, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"), "replace returns the old value");
        assert_eq!(t.get(7), Some(&"b"));
        assert!(t.contains_key(7));
        assert_eq!(t.remove(7), Some("b"));
        assert_eq!(t.remove(7), None);
        assert!(t.get(7).is_none());
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut t = IncrementalTable::with_capacity(0);
        const N: u64 = 10_000;
        for k in 0..N {
            t.insert(k, k * 3);
        }
        assert_eq!(t.len(), N as usize);
        for k in 0..N {
            assert_eq!(t.get(k), Some(&(k * 3)), "key {k} lost across incremental growth");
        }
    }

    #[test]
    fn growth_is_incremental_not_stop_the_world() {
        // Crossing the load threshold must leave the old array draining,
        // not rehash everything inside one insert.
        let mut t = IncrementalTable::with_capacity(0);
        let mut k = 0u64;
        while !t.is_migrating() {
            t.insert(k, k);
            k += 1;
            assert!(k < 100_000, "never grew");
        }
        // All entries remain reachable mid-drain.
        for i in 0..k {
            assert_eq!(t.get(i), Some(&i));
        }
        // A bounded number of further ops completes the drain.
        let mut steps = 0;
        while t.is_migrating() {
            t.maintain();
            steps += 1;
            assert!(steps < 10_000, "drain never completes");
        }
        for i in 0..k {
            assert_eq!(t.get(i), Some(&i));
        }
    }

    #[test]
    fn mass_detach_releases_capacity() {
        // The regression the satellite task pins: tables must shrink
        // after mass detach, not hold peak capacity forever.
        let mut t = IncrementalTable::new();
        const N: u64 = 10_000;
        for k in 0..N {
            t.insert(k, k);
        }
        let peak_cap = t.capacity();
        let peak_bytes = t.bytes();
        for k in 0..(N * 9 / 10) {
            assert_eq!(t.remove(k), Some(k));
        }
        while t.is_migrating() {
            t.maintain();
        }
        assert!(t.capacity() <= peak_cap / 4, "capacity {} did not fall from peak {peak_cap}", t.capacity());
        assert!(t.bytes() <= peak_bytes / 4);
        for k in (N * 9 / 10)..N {
            assert_eq!(t.get(k), Some(&k), "survivor {k} lost in shrink");
        }
    }

    #[test]
    fn shrink_stops_at_minimum_capacity() {
        let mut t = IncrementalTable::new();
        for k in 0..100u64 {
            t.insert(k, ());
        }
        for k in 0..100u64 {
            t.remove(k);
        }
        while t.is_migrating() {
            t.maintain();
        }
        assert!(t.capacity() >= MIN_CAP);
        assert!(t.is_empty());
    }

    #[test]
    fn locate_at_roundtrip_in_both_arrays() {
        let mut t = IncrementalTable::with_capacity(0);
        let mut k = 0u64;
        while !t.is_migrating() {
            t.insert(k, k + 100);
            k += 1;
        }
        let mut seen_old = false;
        for i in 0..k {
            let loc = t.locate(i).unwrap();
            seen_old |= loc.in_old;
            assert_eq!(*t.at(loc), i + 100);
            *t.at_mut(loc) += 1;
            assert_eq!(t.get(i), Some(&(i + 101)));
        }
        assert!(seen_old, "drain still had entries to exercise the old-array path");
    }

    #[test]
    fn iter_covers_both_arrays_exactly_once() {
        let mut t = IncrementalTable::with_capacity(0);
        let mut k = 0u64;
        while !t.is_migrating() {
            t.insert(k, ());
            k += 1;
        }
        let mut keys: Vec<u64> = t.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..k).collect::<Vec<_>>());
    }

    #[test]
    fn values_drop_exactly_once() {
        use std::rc::Rc;
        let marker = Rc::new(());
        {
            let mut t = IncrementalTable::new();
            for k in 0..1000u64 {
                t.insert(k, Rc::clone(&marker));
            }
            for k in 0..500u64 {
                t.remove(k);
            }
            assert_eq!(Rc::strong_count(&marker), 501);
        }
        assert_eq!(Rc::strong_count(&marker), 1, "drop imbalance across resize/tombstone paths");
    }

    // Differential property: byte-equal behavior vs the std HashMap
    // model under arbitrary op sequences (the satellite-task pin).
    mod differential {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Op {
            Insert(u64, u64),
            Remove(u64),
            Get(u64),
            Maintain,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            // Small key space so inserts/removes/gets collide often.
            prop_oneof![
                (0u64..64, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
                (0u64..64).prop_map(Op::Remove),
                (0u64..64).prop_map(Op::Get),
                Just(Op::Maintain),
            ]
        }

        proptest! {
            #[test]
            fn matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 0..400)) {
                let mut t: IncrementalTable<u64> = IncrementalTable::new();
                let mut m: HashMap<u64, u64> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Insert(k, v) => prop_assert_eq!(t.insert(k, v), m.insert(k, v)),
                        Op::Remove(k) => prop_assert_eq!(t.remove(k), m.remove(&k)),
                        Op::Get(k) => prop_assert_eq!(t.get(k).copied(), m.get(&k).copied()),
                        Op::Maintain => t.maintain(),
                    }
                    prop_assert_eq!(t.len(), m.len());
                }
                let mut got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
                let mut want: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }
}
