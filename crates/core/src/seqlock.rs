//! Sequence-lock cells — the single-writer publication protocol behind
//! [`crate::state::UeContext`].
//!
//! The paper's state refactoring (§2.3, §4.2) gives every piece of
//! per-user state exactly one writer. A classic reader/writer lock spends
//! two atomic read-modify-writes per acquisition *even when uncontended*,
//! and that cost lands on the per-packet path. With a single writer we
//! can do better: publish under an even/odd **sequence counter**
//! (a seqlock) so readers pay two plain loads and a copy, and writers pay
//! two plain stores — no RMW on either side.
//!
//! Protocol:
//!
//! * the writer bumps `seq` to odd, writes the payload, bumps `seq` to
//!   even (release);
//! * a reader loads `seq` (acquire), copies the payload, re-loads `seq`:
//!   if the value was odd or changed, the copy may be torn and is
//!   discarded and retried.
//!
//! Writers are **not** serialized by the cell — that is the caller's
//! contract (the single-writer discipline of Table 1, or an external
//! lock, as [`crate::state::UeContext::ctrl_write`] does). A `debug_assert`
//! in [`SeqCell::publish`] catches violations in test builds.
//!
//! The payload copy runs at 64-bit-word granularity (see [`SeqPayload`]):
//! a `read_volatile` of a mixed-width struct scalarizes into per-field
//! volatile loads, which measures ~3× slower than word loads for the
//! control-view payload — enough to lose to the RwLock it replaces.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Payload contract for [`SeqCell`].
///
/// # Safety
///
/// Implementors guarantee, on top of `Copy`:
///
/// * **any bit pattern is a valid value** (all-integer: no `bool`, no
///   enums, no references, no niches) — a reader's copy of a mid-write
///   cell is torn, and although always discarded, materializing it must
///   not be undefined behaviour;
/// * **no padding bytes** (every byte initialized) and **size a nonzero
///   multiple of 8, alignment ≥ 8** — the cell copies payloads as whole
///   `u64` words.
pub unsafe trait SeqPayload: Copy {}

// SAFETY: integers and integer arrays — any bit pattern valid, no
// padding; the word-size/alignment requirements are checked by the
// `WORDS` const assertion at first use.
unsafe impl SeqPayload for u64 {}
unsafe impl<const N: usize> SeqPayload for [u64; N] {}

/// How many torn/odd observations a bounded read tolerates before giving
/// up. Writers hold the sequence odd for a handful of stores, so any
/// honest retry resolves in one or two attempts; hitting the limit means
/// the cell is *held* (a migration freeze) and the caller should take its
/// fallback path.
pub const READ_RETRY_LIMIT: u32 = 64;

/// A single-writer seqlock cell.
///
/// Cache-line aligned so two adjacent cells (the control-view cell and
/// the counter cell of one user) never false-share: the data thread
/// hammers one while the control thread reads the other.
#[repr(C, align(64))]
pub struct SeqCell<T: SeqPayload> {
    /// Even = stable, odd = write (or freeze) in progress.
    seq: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: all shared access to `data` is mediated by the sequence
// protocol above — readers discard any copy whose bracketing sequence
// loads disagree, and writers are serialized by the caller's
// single-writer contract. `T: SeqPayload` (no drop, no interior
// references, all bit patterns valid) keeps torn intermediate copies
// inert.
unsafe impl<T: SeqPayload + Send> Sync for SeqCell<T> {}

impl<T: SeqPayload> SeqCell<T> {
    /// Payload size in 64-bit words; evaluating it enforces the
    /// [`SeqPayload`] size/alignment contract at compile (monomorphization)
    /// time.
    const WORDS: usize = {
        assert!(std::mem::size_of::<T>() != 0 && std::mem::size_of::<T>().is_multiple_of(8));
        assert!(std::mem::align_of::<T>() >= 8 && std::mem::align_of::<T>() <= 64);
        std::mem::size_of::<T>() / 8
    };

    pub fn new(value: T) -> Self {
        SeqCell { seq: AtomicU64::new(0), data: UnsafeCell::new(value) }
    }

    /// Current sequence value (even = stable; odd = held/in-write).
    pub fn version(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// One optimistic read attempt: `None` if a write was in progress or
    /// raced the copy.
    #[inline]
    pub fn try_read(&self) -> Option<T> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        // SAFETY: this may race `publish` and produce a torn copy; the
        // sequence re-check below discards any such copy before it is
        // used, and `T`'s all-bit-patterns-valid + no-padding contract
        // ([`SeqPayload`]) keeps the torn temporary itself well-defined.
        // Volatile word loads stop the compiler caching or eliding the
        // racy copy; `WORDS` guarantees size/alignment make the word
        // view exact.
        let v = unsafe {
            let mut out = MaybeUninit::<T>::uninit();
            let src = self.data.get() as *const u64;
            let dst = out.as_mut_ptr() as *mut u64;
            for i in 0..Self::WORDS {
                dst.add(i).write(src.add(i).read_volatile());
            }
            out.assume_init()
        };
        // Order the payload copy before the confirming sequence load.
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some(v)
    }

    /// Retry [`Self::try_read`] up to `limit` extra times. `Ok((value,
    /// retries))` on success; `Err(retries)` when the cell stayed
    /// unreadable (held by [`Self::hold`]).
    #[inline]
    pub fn read_bounded(&self, limit: u32) -> Result<(T, u32), u32> {
        let mut retries = 0;
        loop {
            if let Some(v) = self.try_read() {
                return Ok((v, retries));
            }
            if retries >= limit {
                return Err(retries);
            }
            retries += 1;
            std::hint::spin_loop();
        }
    }

    /// Read, retrying until consistent. Returns the value and the retry
    /// count. For cells that are never held odd for long (the counter
    /// cell: publishes are a few stores); after a spin budget each retry
    /// also yields so a descheduled writer (single-CPU hosts) can finish
    /// its two-store window.
    #[inline]
    pub fn read(&self) -> (T, u32) {
        let mut retries = 0u32;
        loop {
            if let Some(v) = self.try_read() {
                return (v, retries);
            }
            retries = retries.saturating_add(1);
            if retries < 1 << 10 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Writer-side publish: bump odd, store, bump even. The caller must
    /// be the cell's only concurrent writer (single-writer discipline or
    /// an external lock) and must not publish while a [`SeqHold`] is
    /// outstanding.
    #[inline]
    pub fn publish(&self, value: T) {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "SeqCell::publish while held or from a second writer");
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        // Order the odd marker before the payload stores.
        fence(Ordering::Release);
        // SAFETY: the sequence is odd, so every concurrent reader will
        // discard copies taken during this window; the single-writer
        // contract excludes concurrent writers. `SeqPayload` (no padding,
        // size/alignment via `WORDS`) makes the word view of `value`
        // fully initialized and exact.
        unsafe {
            let src = &value as *const T as *const u64;
            let dst = self.data.get() as *mut u64;
            for i in 0..Self::WORDS {
                dst.add(i).write_volatile(src.add(i).read());
            }
        }
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Writer-side freeze: hold the sequence odd until the guard drops,
    /// making every optimistic read fail (migration's "user in transfer"
    /// window — readers take their fallback path). The caller must be
    /// the cell's only writer and must not publish while held.
    pub fn hold(&self) -> SeqHold<'_, T> {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "SeqCell::hold while already held");
        self.seq.store(s.wrapping_add(1), Ordering::Release);
        SeqHold { cell: self }
    }

    /// Whether a [`SeqHold`] (or an in-flight publish) currently holds
    /// the cell odd.
    pub fn is_held(&self) -> bool {
        self.version() & 1 != 0
    }
}

impl<T: SeqPayload> std::fmt::Debug for SeqCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqCell").field("seq", &self.version()).finish_non_exhaustive()
    }
}

/// Guard returned by [`SeqCell::hold`]: releases the freeze (bumps the
/// sequence back to even) on drop.
#[must_use = "dropping the hold immediately unfreezes the cell"]
pub struct SeqHold<'a, T: SeqPayload> {
    cell: &'a SeqCell<T>,
}

impl<T: SeqPayload> Drop for SeqHold<'_, T> {
    fn drop(&mut self) {
        let s = self.cell.seq.load(Ordering::Relaxed);
        self.cell.seq.store(s.wrapping_add(1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_read_roundtrips() {
        let c = SeqCell::new([1u64, 2, 3]);
        assert_eq!(c.try_read(), Some([1, 2, 3]));
        c.publish([4, 5, 6]);
        let (v, retries) = c.read();
        assert_eq!(v, [4, 5, 6]);
        assert_eq!(retries, 0, "uncontended reads never retry");
        assert_eq!(c.version(), 2, "one publish = two sequence bumps");
    }

    #[test]
    fn hold_blocks_optimistic_reads_until_dropped() {
        let c = SeqCell::new(7u64);
        let h = c.hold();
        assert!(c.is_held());
        assert!(c.try_read().is_none());
        assert!(matches!(c.read_bounded(3), Err(3)));
        drop(h);
        assert!(!c.is_held());
        assert_eq!(c.try_read(), Some(7));
    }

    #[test]
    fn bounded_read_reports_zero_retries_when_stable() {
        let c = SeqCell::new(9u64);
        assert_eq!(c.read_bounded(READ_RETRY_LIMIT), Ok((9, 0)));
    }

    #[test]
    fn cell_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<SeqCell<u64>>(), 64);
        assert_eq!(std::mem::size_of::<SeqCell<u64>>(), 64);
    }

    #[test]
    fn concurrent_writer_never_tears_a_read() {
        // Writer publishes pairs (i, !i); any torn read breaks the
        // invariant. Smoke-level here; the heavy version lives in
        // tests/seqlock_stress.rs.
        let c = std::sync::Arc::new(SeqCell::new([0u64, !0u64]));
        let w = std::sync::Arc::clone(&c);
        let writer = std::thread::spawn(move || {
            for i in 0..200_000u64 {
                w.publish([i, !i]);
            }
        });
        let mut reads = 0u64;
        while reads < 200_000 {
            let ([a, b], _) = c.read();
            assert_eq!(b, !a, "torn read: {a:#x} / {b:#x}");
            reads += 1;
        }
        writer.join().unwrap();
    }
}
