//! The shared-state implementations compared in paper §7.1 / Figure 12.
//!
//! All stores hold the same per-user state; they differ in lock
//! granularity and in who may write:
//!
//! * [`GiantLockStore`] — one reader/writer lock over the entire state
//!   table ("Giant lock"). Any control-plane update write-locks the whole
//!   table, stalling every data-plane packet.
//! * [`DatapathWriterStore`] — a fine-grained lock per user, but a single
//!   combined state record, so the data plane takes the *write* lock on
//!   the same lock the control plane writes ("Datapath writer").
//! * [`RwLockFineStore`] — fine-grained per-user locks *and* the
//!   single-writer split across two `RwLock`s per user (control half /
//!   counter half) — this repo's pre-seqlock `UeContext` design, kept as
//!   the "RwLock fine-grained" baseline: still two atomic RMW lock
//!   acquisitions on every data-path visit.
//! * [`PepcStore`] — the shipping design: per-user [`UeContext`]s under
//!   the single-writer seqlock protocol. A data-path visit is a lock-free
//!   view read plus a plain-store counter publish — no RMW at all.
//!
//! The [`StateStore`] trait exposes the operations the planes perform so
//! benchmarks drive all stores through identical code; the data-path
//! callback receives the [`CtrlView`] projection (what the enforcement
//! pass actually consumes), which every store materializes per visit so
//! the comparison isolates the locking discipline.

use crate::slab::{UeHandle, UeRef, UeSlab};
use crate::state::{ControlState, CounterSnapshot, CounterState, CtrlView, Uid};
use crate::twolevel::BuildKeyHasher;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Operations both planes perform against a user-state store.
///
/// Implementations are `Sync`: in a slice the control thread and data
/// thread share the store.
pub trait StateStore: Send + Sync + 'static {
    /// Control plane: create a user (attach).
    fn insert(&self, uid: Uid, ctrl: ControlState);

    /// Control plane: remove a user (detach). Returns true if present.
    fn remove(&self, uid: Uid) -> bool;

    /// Control plane: apply a signaling update to a user's control state
    /// (e.g. an S1 handover rewriting tunnel endpoints). Returns false if
    /// the user is unknown.
    fn update_ctrl(&self, uid: Uid, f: &mut dyn FnMut(&mut ControlState)) -> bool;

    /// Data plane: read the user's control-state projection and charge
    /// the packet to the user's counters in one visit. Returns `None` if
    /// the user is unknown; otherwise the value produced by `f`.
    ///
    /// `charge` is `(uplink, bytes, now_ns)`.
    fn data_path_visit(
        &self,
        uid: Uid,
        uplink: bool,
        bytes: u64,
        now_ns: u64,
        f: &mut dyn FnMut(&CtrlView) -> bool,
    ) -> Option<bool>;

    /// Control plane: snapshot a user's counters (for PCRF reporting).
    fn read_counters(&self, uid: Uid) -> Option<CounterSnapshot>;

    /// Number of users in the store.
    fn len(&self) -> usize;

    /// True when no users are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn charge(counters: &mut CounterState, uplink: bool, bytes: u64, now_ns: u64) {
    if uplink {
        counters.uplink_packets += 1;
        counters.uplink_bytes += bytes;
    } else {
        counters.downlink_packets += 1;
        counters.downlink_bytes += bytes;
    }
    counters.last_activity_ns = now_ns;
}

// ---------------------------------------------------------------------------
// Giant lock
// ---------------------------------------------------------------------------

struct GiantEntry {
    ctrl: ControlState,
    counters: CounterState,
}

/// One lock over everything: the design the paper attributes to EPC
/// implementations that "store all user state in a single table".
///
/// Entries are boxed so the memory layout (one pointer chase per visit)
/// matches the fine-grained stores — the three implementations differ
/// ONLY in locking, as in the paper's Figure 12.
pub struct GiantLockStore {
    table: RwLock<HashMap<Uid, Box<GiantEntry>, BuildKeyHasher>>,
}

impl GiantLockStore {
    pub fn new(capacity: usize) -> Self {
        GiantLockStore { table: RwLock::new(HashMap::with_capacity_and_hasher(capacity, Default::default())) }
    }
}

impl StateStore for GiantLockStore {
    fn insert(&self, uid: Uid, ctrl: ControlState) {
        self.table.write().insert(uid, Box::new(GiantEntry { ctrl, counters: CounterState::default() }));
    }

    fn remove(&self, uid: Uid) -> bool {
        self.table.write().remove(&uid).is_some()
    }

    fn update_ctrl(&self, uid: Uid, f: &mut dyn FnMut(&mut ControlState)) -> bool {
        let mut t = self.table.write();
        match t.get_mut(&uid) {
            Some(e) => {
                f(&mut e.ctrl);
                true
            }
            None => false,
        }
    }

    fn data_path_visit(
        &self,
        uid: Uid,
        uplink: bool,
        bytes: u64,
        now_ns: u64,
        f: &mut dyn FnMut(&CtrlView) -> bool,
    ) -> Option<bool> {
        // Counters are written per packet, so the data plane needs the
        // *write* lock on the whole table — this is the collapse mechanism.
        let mut t = self.table.write();
        let e = t.get_mut(&uid)?;
        let verdict = f(&CtrlView::project(&e.ctrl));
        charge(&mut e.counters, uplink, bytes, now_ns);
        Some(verdict)
    }

    fn read_counters(&self, uid: Uid) -> Option<CounterSnapshot> {
        self.table.read().get(&uid).map(|e| e.counters.snapshot())
    }

    fn len(&self) -> usize {
        self.table.read().len()
    }
}

// ---------------------------------------------------------------------------
// Datapath writer
// ---------------------------------------------------------------------------

struct DwEntry {
    state: RwLock<DwState>,
}

struct DwState {
    ctrl: ControlState,
    counters: CounterState,
}

/// Fine-grained per-user locks, but one combined record per user: both
/// planes contend for the same write lock ("Datapath writer" in Fig 12).
pub struct DatapathWriterStore {
    table: RwLock<HashMap<Uid, Arc<DwEntry>, BuildKeyHasher>>,
}

impl DatapathWriterStore {
    pub fn new(capacity: usize) -> Self {
        DatapathWriterStore { table: RwLock::new(HashMap::with_capacity_and_hasher(capacity, Default::default())) }
    }
}

impl StateStore for DatapathWriterStore {
    fn insert(&self, uid: Uid, ctrl: ControlState) {
        let entry = Arc::new(DwEntry { state: RwLock::new(DwState { ctrl, counters: CounterState::default() }) });
        self.table.write().insert(uid, entry);
    }

    fn remove(&self, uid: Uid) -> bool {
        self.table.write().remove(&uid).is_some()
    }

    fn update_ctrl(&self, uid: Uid, f: &mut dyn FnMut(&mut ControlState)) -> bool {
        let t = self.table.read();
        match t.get(&uid) {
            Some(entry) => {
                f(&mut entry.state.write().ctrl);
                true
            }
            None => false,
        }
    }

    fn data_path_visit(
        &self,
        uid: Uid,
        uplink: bool,
        bytes: u64,
        now_ns: u64,
        f: &mut dyn FnMut(&CtrlView) -> bool,
    ) -> Option<bool> {
        let t = self.table.read();
        let entry = t.get(&uid)?;
        // Single combined record: counters force a write lock, which also
        // excludes the control plane's readers/writers of the same user.
        let mut s = entry.state.write();
        let verdict = f(&CtrlView::project(&s.ctrl));
        charge(&mut s.counters, uplink, bytes, now_ns);
        Some(verdict)
    }

    fn read_counters(&self, uid: Uid) -> Option<CounterSnapshot> {
        let t = self.table.read();
        let s = t.get(&uid)?.state.read();
        Some(s.counters.snapshot())
    }

    fn len(&self) -> usize {
        self.table.read().len()
    }
}

// ---------------------------------------------------------------------------
// RwLock fine-grained (the pre-seqlock UeContext design)
// ---------------------------------------------------------------------------

struct RwFineEntry {
    ctrl: RwLock<ControlState>,
    counters: RwLock<CounterState>,
}

/// Fine-grained per-user locks with the single-writer split — control
/// and counter halves behind *separate* `RwLock`s, each plane
/// write-locking only its own half. This was this repo's `UeContext`
/// before the seqlock protocol; a data-path visit still pays two lock
/// acquisitions (ctrl read + counters write), i.e. four atomic RMWs,
/// per packet even uncontended.
pub struct RwLockFineStore {
    table: RwLock<HashMap<Uid, Arc<RwFineEntry>, BuildKeyHasher>>,
}

impl RwLockFineStore {
    pub fn new(capacity: usize) -> Self {
        RwLockFineStore { table: RwLock::new(HashMap::with_capacity_and_hasher(capacity, Default::default())) }
    }
}

impl StateStore for RwLockFineStore {
    fn insert(&self, uid: Uid, ctrl: ControlState) {
        let entry = Arc::new(RwFineEntry { ctrl: RwLock::new(ctrl), counters: RwLock::new(CounterState::default()) });
        self.table.write().insert(uid, entry);
    }

    fn remove(&self, uid: Uid) -> bool {
        self.table.write().remove(&uid).is_some()
    }

    fn update_ctrl(&self, uid: Uid, f: &mut dyn FnMut(&mut ControlState)) -> bool {
        let t = self.table.read();
        match t.get(&uid) {
            Some(entry) => {
                f(&mut entry.ctrl.write());
                true
            }
            None => false,
        }
    }

    fn data_path_visit(
        &self,
        uid: Uid,
        uplink: bool,
        bytes: u64,
        now_ns: u64,
        f: &mut dyn FnMut(&CtrlView) -> bool,
    ) -> Option<bool> {
        let t = self.table.read();
        let entry = t.get(&uid)?;
        // Read lock on the control half, write lock on the counter half
        // — correct single-writer semantics, but two RMW acquisitions.
        let verdict = f(&CtrlView::project(&entry.ctrl.read()));
        charge(&mut entry.counters.write(), uplink, bytes, now_ns);
        Some(verdict)
    }

    fn read_counters(&self, uid: Uid) -> Option<CounterSnapshot> {
        let t = self.table.read();
        let s = t.get(&uid)?.counters.read().snapshot();
        Some(s)
    }

    fn len(&self) -> usize {
        self.table.read().len()
    }
}

// ---------------------------------------------------------------------------
// PEPC (seqlock single-writer)
// ---------------------------------------------------------------------------

/// The PEPC design: per-user contexts in a slab arena under the
/// single-writer seqlock protocol — lock-free view reads and plain-store
/// counter publishes on the data path, and an 8-byte generational
/// [`UeHandle`] per table entry instead of a 16-byte `Arc` pointer.
pub struct PepcStore {
    slab: Arc<UeSlab>,
    table: RwLock<HashMap<Uid, UeHandle, BuildKeyHasher>>,
}

impl PepcStore {
    pub fn new(capacity: usize) -> Self {
        Self::with_slab(Arc::new(UeSlab::new()), capacity)
    }

    /// Build a store over a shared arena. Two stores over one slab model
    /// two slices of a node: migration moves a *handle* between their
    /// tables while the context never moves in memory.
    pub fn with_slab(slab: Arc<UeSlab>, capacity: usize) -> Self {
        PepcStore { slab, table: RwLock::new(HashMap::with_capacity_and_hasher(capacity, Default::default())) }
    }

    /// The arena contexts resolve against.
    pub fn slab(&self) -> &Arc<UeSlab> {
        &self.slab
    }

    /// Borrow a user's context — what the control thread shares with the
    /// data thread at attach ("shares a read-only reference", §3.4), now
    /// a generational handle resolved against the arena.
    pub fn get(&self, uid: Uid) -> Option<UeRef<'_>> {
        let h = *self.table.read().get(&uid)?;
        self.slab.resolve(h)
    }

    /// Index a pre-allocated context by handle (used by migration, which
    /// moves the user between same-arena stores without copying).
    pub fn insert_handle(&self, uid: Uid, handle: UeHandle) {
        self.table.write().insert(uid, handle);
    }

    /// Remove and return the user's handle, keeping the slot live
    /// (migration source side; the destination re-indexes the handle).
    pub fn take(&self, uid: Uid) -> Option<UeHandle> {
        self.table.write().remove(&uid)
    }
}

impl StateStore for PepcStore {
    fn insert(&self, uid: Uid, ctrl: ControlState) {
        let handle = self.slab.alloc(ctrl, CounterState::default());
        self.table.write().insert(uid, handle);
    }

    fn remove(&self, uid: Uid) -> bool {
        match self.table.write().remove(&uid) {
            Some(h) => self.slab.free(h),
            None => false,
        }
    }

    fn update_ctrl(&self, uid: Uid, f: &mut dyn FnMut(&mut ControlState)) -> bool {
        let h = match self.table.read().get(&uid) {
            Some(h) => *h,
            None => return false,
        };
        match self.slab.resolve(h) {
            Some(ctx) => {
                f(&mut ctx.ctrl_write());
                true
            }
            None => false,
        }
    }

    fn data_path_visit(
        &self,
        uid: Uid,
        uplink: bool,
        bytes: u64,
        now_ns: u64,
        f: &mut dyn FnMut(&CtrlView) -> bool,
    ) -> Option<bool> {
        // Copy the 8-byte handle out and release the table lock before
        // touching the context: slot storage is stable for the slab's
        // lifetime, so the visit itself runs with no lock held at all.
        let h = *self.table.read().get(&uid)?;
        let ctx = self.slab.resolve(h)?;
        // Seqlock view read (no RMW; retries only if a control publish
        // races), then a local counter mutation and a plain-store publish
        // — we are the counter cell's only writer.
        let verdict = f(&ctx.ctrl_view());
        let mut c = ctx.counters();
        charge(&mut c, uplink, bytes, now_ns);
        ctx.publish_counters(c);
        Some(verdict)
    }

    fn read_counters(&self, uid: Uid) -> Option<CounterSnapshot> {
        let h = *self.table.read().get(&uid)?;
        Some(self.slab.resolve(h)?.counters().snapshot())
    }

    fn len(&self) -> usize {
        self.table.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn stores() -> Vec<(&'static str, Box<dyn StateStore>)> {
        vec![
            ("giant", Box::new(GiantLockStore::new(16))),
            ("datapath-writer", Box::new(DatapathWriterStore::new(16))),
            ("rwlock-fine", Box::new(RwLockFineStore::new(16))),
            ("pepc", Box::new(PepcStore::new(16))),
        ]
    }

    #[test]
    fn insert_visit_remove_semantics_identical_across_stores() {
        for (name, s) in stores() {
            assert!(s.is_empty(), "{name}");
            let mut ctrl = ControlState::new(100);
            ctrl.tunnels.gw_teid = 0x1234;
            s.insert(1, ctrl);
            s.insert(2, ControlState::new(200));
            assert_eq!(s.len(), 2, "{name}");

            // The callback sees the CtrlView projection, not the raw
            // ControlState — check a tunnel field carried by the view.
            let verdict =
                s.data_path_visit(1, true, 64, 1000, &mut |v| v.tunnels.gw_teid == 0x1234).expect("user exists");
            assert!(verdict, "{name}");
            s.data_path_visit(1, false, 128, 2000, &mut |_| true).unwrap();

            let snap = s.read_counters(1).unwrap();
            assert_eq!(snap.uplink_packets, 1, "{name}");
            assert_eq!(snap.uplink_bytes, 64, "{name}");
            assert_eq!(snap.downlink_packets, 1, "{name}");
            assert_eq!(snap.downlink_bytes, 128, "{name}");
            assert_eq!(snap.last_activity_ns, 2000, "{name}");

            assert!(s.remove(1), "{name}");
            assert!(!s.remove(1), "{name}");
            assert!(s.data_path_visit(1, true, 1, 1, &mut |_| true).is_none(), "{name}");
            assert_eq!(s.len(), 1, "{name}");
        }
    }

    #[test]
    fn update_ctrl_is_visible_to_data_path() {
        for (name, s) in stores() {
            s.insert(7, ControlState::new(7));
            assert!(s.update_ctrl(7, &mut |c| {
                c.tunnels.enb_teid = 0xBEEF;
                c.tunnels.enb_ip = 0x0A000001;
            }));
            let teid = s.data_path_visit(7, false, 10, 1, &mut |c| c.tunnels.enb_teid == 0xBEEF);
            assert_eq!(teid, Some(true), "{name}");
            assert!(!s.update_ctrl(99, &mut |_| {}), "{name}: unknown uid");
        }
    }

    #[test]
    fn pepc_store_shares_contexts() {
        let s = PepcStore::new(4);
        s.insert(1, ControlState::new(42));
        let ctx = s.get(1).unwrap();
        // Data-plane write through the trait is visible through the
        // shared arena slot — the "consolidated state, no copies"
        // property, now with a handle instead of an Arc.
        s.data_path_visit(1, true, 50, 9, &mut |_| true).unwrap();
        assert_eq!(ctx.counters().uplink_bytes, 50);
        // take() removes the index entry but keeps the slot live.
        let moved = s.take(1).unwrap();
        assert_eq!(moved.bits(), ctx.handle().bits(), "same slot, same generation");
        assert!(s.get(1).is_none());
        // ... and back in at a destination store over the SAME arena:
        // the context never moved in memory.
        let s2 = PepcStore::with_slab(Arc::clone(s.slab()), 4);
        s2.insert_handle(1, moved);
        assert_eq!(s2.read_counters(1).unwrap().uplink_bytes, 50);
        assert_eq!(
            std::ptr::from_ref(s2.get(1).unwrap().context()),
            std::ptr::from_ref(ctx.context()),
            "zero-copy migration: both stores resolve to one slot"
        );
    }

    #[test]
    fn pepc_store_remove_frees_the_slot_and_reuse_keeps_handles_safe() {
        let s = PepcStore::new(4);
        s.insert(1, ControlState::new(42));
        let stale = s.get(1).unwrap().handle();
        assert_eq!(s.slab().live_slots(), 1);
        assert!(s.remove(1));
        assert_eq!(s.slab().live_slots(), 0, "detach released the slot");
        // The freed slot is recycled for the next attach under a new
        // generation, so the stale handle cannot alias the new tenant.
        s.insert(2, ControlState::new(43));
        assert_eq!(s.slab().live_slots(), 1);
        assert!(s.slab().resolve(stale).is_none(), "stale generation stays dead");
        assert_eq!(s.get(2).unwrap().ctrl_read().imsi, 43);
    }

    #[test]
    fn pepc_data_path_does_not_block_on_ctrl_readers() {
        // A control-plane reader holding the ctrl read lock must not stop
        // the data path (which reads the seqlock view, never the lock).
        let s = Arc::new(PepcStore::new(4));
        s.insert(1, ControlState::new(1));
        let ctx = s.get(1).unwrap();
        let _ctrl_reader = ctx.ctrl_read();
        let done = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&done);
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            s2.data_path_visit(1, true, 1, 1, &mut |_| true).unwrap();
            d2.store(true, Ordering::SeqCst);
        });
        t.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn counters_sum_correctly_under_concurrency() {
        // Hammer the pepc store from a "data thread" while a "control
        // thread" performs updates; totals must be exact (no lost writes).
        let s = Arc::new(PepcStore::new(4));
        s.insert(1, ControlState::new(1));
        let s_data = Arc::clone(&s);
        let data = std::thread::spawn(move || {
            for i in 0..100_000u64 {
                s_data.data_path_visit(1, i % 2 == 0, 10, i, &mut |_| true).unwrap();
            }
        });
        let s_ctrl = Arc::clone(&s);
        let ctrl = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                s_ctrl.update_ctrl(1, &mut |c| c.tunnels.enb_teid = i);
            }
        });
        data.join().unwrap();
        ctrl.join().unwrap();
        let snap = s.read_counters(1).unwrap();
        assert_eq!(snap.uplink_packets + snap.downlink_packets, 100_000);
        assert_eq!(snap.uplink_bytes + snap.downlink_bytes, 1_000_000);
    }
}
