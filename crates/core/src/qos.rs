//! QoS enforcement: token-bucket rate limiting for AMBR/MBR.
//!
//! Cellular operators enforce per-user aggregate maximum bit rates and
//! per-class maximum bit rates (paper §3.1). The enforcement primitive is
//! a token bucket refilled continuously from the slice clock. Bucket
//! state for a user's AMBR lives in the user's
//! [`CounterState`](crate::state::CounterState) (data-thread-written, so
//! it migrates with the user); this module holds the arithmetic.

/// Continuous-refill token bucket over nanosecond timestamps.
///
/// Stateless functions over `(tokens, last_refill_ns)` pairs so callers
/// can keep the two words wherever the ownership discipline wants them.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    /// Refill rate in tokens (bytes) per second.
    rate_bytes_per_sec: u64,
    /// Bucket depth: maximum burst, bytes.
    burst_bytes: u64,
}

impl TokenBucket {
    /// A bucket enforcing `rate_kbps` with a default burst of 1/10 s of
    /// traffic (at least one MTU so single packets always fit).
    pub fn from_kbps(rate_kbps: u32) -> Self {
        let rate_bytes_per_sec = u64::from(rate_kbps) * 1000 / 8;
        TokenBucket { rate_bytes_per_sec, burst_bytes: (rate_bytes_per_sec / 10).max(1500) }
    }

    /// An explicitly-sized bucket.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        TokenBucket { rate_bytes_per_sec, burst_bytes: burst_bytes.max(1) }
    }

    /// The burst capacity, bytes — also the correct initial token count.
    pub fn burst(&self) -> u64 {
        self.burst_bytes
    }

    /// Try to debit `bytes` at time `now_ns`. `tokens` / `last_refill_ns`
    /// are the caller-owned bucket state. Returns true when the packet
    /// conforms (and debits it), false when it must be dropped.
    #[inline]
    pub fn admit(&self, tokens: &mut u64, last_refill_ns: &mut u64, now_ns: u64, bytes: u64) -> bool {
        if self.rate_bytes_per_sec == 0 {
            return true; // unlimited
        }
        if *last_refill_ns == 0 {
            // Fresh (or migrated-in zeroed) state: start with a full
            // bucket anchored at the current time.
            *last_refill_ns = now_ns.max(1);
            *tokens = self.burst_bytes;
        } else {
            let elapsed = now_ns.saturating_sub(*last_refill_ns);
            let refill = (elapsed as u128 * self.rate_bytes_per_sec as u128 / 1_000_000_000) as u64;
            if refill > 0 {
                *tokens = (*tokens + refill).min(self.burst_bytes);
                // Only advance the stamp by the time actually converted to
                // tokens, so sub-token intervals accumulate.
                *last_refill_ns += refill * 1_000_000_000 / self.rate_bytes_per_sec;
            }
        }
        if *tokens >= bytes {
            *tokens -= bytes;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn fresh(bucket: &TokenBucket) -> (u64, u64) {
        (bucket.burst(), 1) // non-zero stamp: bucket starts full at t=1
    }

    #[test]
    fn zero_rate_means_unlimited() {
        let b = TokenBucket::from_kbps(0);
        let (mut tok, mut ts) = (0, 0);
        for i in 0..1000 {
            assert!(b.admit(&mut tok, &mut ts, i, 1_000_000));
        }
    }

    #[test]
    fn burst_admits_then_blocks() {
        let b = TokenBucket::new(1000, 500); // 1000 B/s, 500 B burst
        let (mut tok, mut ts) = fresh(&b);
        assert!(b.admit(&mut tok, &mut ts, 1, 300));
        assert!(b.admit(&mut tok, &mut ts, 1, 200));
        assert!(!b.admit(&mut tok, &mut ts, 1, 1), "bucket exhausted");
    }

    #[test]
    fn refill_restores_tokens_at_rate() {
        let b = TokenBucket::new(1000, 500);
        let (mut tok, mut ts) = fresh(&b);
        assert!(b.admit(&mut tok, &mut ts, 1, 500));
        // After 0.1 s at 1000 B/s: 100 bytes available.
        assert!(b.admit(&mut tok, &mut ts, 1 + SEC / 10, 100));
        assert!(!b.admit(&mut tok, &mut ts, 1 + SEC / 10, 10));
    }

    #[test]
    fn refill_caps_at_burst() {
        let b = TokenBucket::new(1000, 500);
        let (mut tok, mut ts) = fresh(&b);
        b.admit(&mut tok, &mut ts, 1, 500);
        // A long idle period refills to the cap only.
        assert!(b.admit(&mut tok, &mut ts, 100 * SEC, 500));
        assert!(!b.admit(&mut tok, &mut ts, 100 * SEC, 1));
    }

    #[test]
    fn sustained_rate_converges_to_configured_rate() {
        let b = TokenBucket::new(10_000, 1500); // 10 kB/s
        let (mut tok, mut ts) = fresh(&b);
        let mut admitted = 0u64;
        // Offer 100 B every ms for 10 s => offered 1 MB, expect ~100 kB+burst.
        for ms in 0..10_000u64 {
            if b.admit(&mut tok, &mut ts, 1 + ms * SEC / 1000, 100) {
                admitted += 100;
            }
        }
        let expected = 10_000u64 * 10 + b.burst();
        let tolerance = expected / 10;
        assert!(admitted.abs_diff(expected) <= tolerance, "admitted {admitted}, expected ~{expected}");
    }

    #[test]
    fn from_kbps_burst_floor_is_one_mtu() {
        let b = TokenBucket::from_kbps(8); // 1000 B/s => burst would be 100 B
        assert_eq!(b.burst(), 1500, "single full-size packets must be admissible");
        let (mut tok, mut ts) = fresh(&b);
        assert!(b.admit(&mut tok, &mut ts, 1, 1500));
    }

    #[test]
    fn zeroed_state_initializes_full() {
        // Migrated-in or fresh contexts start with (0, 0) state words; the
        // first admit initializes the bucket full rather than starving.
        let b = TokenBucket::new(1000, 500);
        let (mut tok, mut ts) = (0u64, 0u64);
        assert!(b.admit(&mut tok, &mut ts, 123_456, 400));
    }

    #[test]
    fn sub_token_intervals_accumulate() {
        // 1 B/s: a packet of 1 byte needs a full second of accumulation;
        // polling every 100 ms must not reset progress.
        let b = TokenBucket::new(1, 2);
        let (mut tok, mut ts) = (0u64, 1u64);
        let mut admitted_at = None;
        for step in 1..=30u64 {
            let now = 1 + step * SEC / 10;
            if b.admit(&mut tok, &mut ts, now, 1) {
                admitted_at = Some(step);
                break;
            }
        }
        let step = admitted_at.expect("eventually admits");
        assert!((9..=11).contains(&step), "admitted at step {step}, expected ~10");
    }
}
