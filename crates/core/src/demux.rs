//! The PEPC node Demux — paper §3.3 / §4.3 `LookUpSlice`.
//!
//! "PEPC's Demux function is responsible for steering incoming signaling
//! and data traffic to its associated slice. [...] it uses the TEID (for
//! uplink) or user device IP address (for downlink) to map incoming
//! traffic to a specific slice", and IMSI/GUTI for signaling.
//!
//! The Demux also owns the **per-user migration queues** (§4.3): while a
//! user is mid-migration its packets are parked here and drained to the
//! new slice once the transfer completes, so migration loses no packets
//! and never exposes two slices writing one user's state.

use pepc_net::Mbuf;
use std::collections::HashMap;

/// Where the Demux wants a packet to go.
#[derive(Debug, PartialEq, Eq)]
pub enum Steer {
    /// Deliver to this slice index.
    ToSlice(usize),
    /// The user is migrating; the packet has been parked.
    Parked,
    /// No mapping for this packet's key.
    Unknown,
    /// The packet could not be parsed.
    Malformed,
}

/// The steering table.
#[derive(Debug, Default)]
pub struct Demux {
    by_teid: HashMap<u32, usize>,
    by_ue_ip: HashMap<u32, usize>,
    by_imsi: HashMap<u64, usize>,
    /// IMSIs currently migrating, with their parked packets.
    migrating: HashMap<u64, Vec<Mbuf>>,
    /// Reverse key index so parking can recognise a migrating user's
    /// packets by TEID/IP.
    teid_to_imsi: HashMap<u32, u64>,
    ip_to_imsi: HashMap<u32, u64>,
}

impl Demux {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user's keys as served by `slice`.
    pub fn map_user(&mut self, imsi: u64, gw_teid: u32, ue_ip: u32, slice: usize) {
        self.by_imsi.insert(imsi, slice);
        self.by_teid.insert(gw_teid, slice);
        self.by_ue_ip.insert(ue_ip, slice);
        self.teid_to_imsi.insert(gw_teid, imsi);
        self.ip_to_imsi.insert(ue_ip, imsi);
    }

    /// Remove a user entirely.
    pub fn unmap_user(&mut self, imsi: u64, gw_teid: u32, ue_ip: u32) {
        self.by_imsi.remove(&imsi);
        self.by_teid.remove(&gw_teid);
        self.by_ue_ip.remove(&ue_ip);
        self.teid_to_imsi.remove(&gw_teid);
        self.ip_to_imsi.remove(&ue_ip);
        self.migrating.remove(&imsi);
    }

    /// Slice serving a signaling-plane identifier.
    pub fn slice_for_imsi(&self, imsi: u64) -> Option<usize> {
        self.by_imsi.get(&imsi).copied()
    }

    /// Steer one data packet. Uplink GTP-U is keyed by TEID; downlink IP
    /// by destination address. Packets of migrating users are parked.
    pub fn steer(&mut self, m: Mbuf) -> (Steer, Option<Mbuf>) {
        let key = match packet_key(&m) {
            Some(k) => k,
            None => return (Steer::Malformed, Some(m)),
        };
        let (imsi, slice) = match key {
            PacketKey::Teid(teid) => (self.teid_to_imsi.get(&teid), self.by_teid.get(&teid)),
            PacketKey::UeIp(ip) => (self.ip_to_imsi.get(&ip), self.by_ue_ip.get(&ip)),
        };
        if let Some(imsi) = imsi {
            if let Some(queue) = self.migrating.get_mut(imsi) {
                queue.push(m);
                return (Steer::Parked, None);
            }
        }
        match slice {
            Some(&s) => (Steer::ToSlice(s), Some(m)),
            None => (Steer::Unknown, Some(m)),
        }
    }

    /// Steer a whole burst, appending one `(steer, packet)` pair per
    /// packet to `out` in input order. The burst vector is drained.
    /// Parked packets are consumed by their migration queue (the `Mbuf`
    /// side of the pair is `None`), exactly as in [`Self::steer`].
    pub fn steer_burst(&mut self, burst: &mut Vec<Mbuf>, out: &mut Vec<(Steer, Option<Mbuf>)>) {
        out.reserve(burst.len());
        for m in burst.drain(..) {
            out.push(self.steer(m));
        }
    }

    /// Begin parking packets for `imsi` (migration started).
    pub fn begin_migration(&mut self, imsi: u64) {
        self.migrating.entry(imsi).or_default();
    }

    /// Finish a migration: repoint the user's keys at `new_slice` and
    /// return the parked packets for delivery there.
    pub fn finish_migration(&mut self, imsi: u64, gw_teid: u32, ue_ip: u32, new_slice: usize) -> Vec<Mbuf> {
        self.by_imsi.insert(imsi, new_slice);
        self.by_teid.insert(gw_teid, new_slice);
        self.by_ue_ip.insert(ue_ip, new_slice);
        self.teid_to_imsi.insert(gw_teid, imsi);
        self.ip_to_imsi.insert(ue_ip, imsi);
        self.migrating.remove(&imsi).unwrap_or_default()
    }

    /// Abort a migration (source keeps the user); parked packets are
    /// returned for redelivery to the original slice.
    pub fn abort_migration(&mut self, imsi: u64) -> Vec<Mbuf> {
        self.migrating.remove(&imsi).unwrap_or_default()
    }

    /// Number of users currently mapped.
    pub fn user_count(&self) -> usize {
        self.by_imsi.len()
    }

    /// Number of packets currently parked across all migrations.
    pub fn parked_count(&self) -> usize {
        self.migrating.values().map(Vec::len).sum()
    }
}

/// Steering key of one data packet: the same identifier the data plane
/// will look the user up by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKey {
    /// Uplink GTP-U: the tunnel endpoint id.
    Teid(u32),
    /// Downlink plain IPv4: the destination (UE) address.
    UeIp(u32),
}

/// Extract the steering key without fully parsing the packet: uplink
/// GTP-U (outer UDP :2152) → TEID at a fixed offset; otherwise downlink
/// IPv4 → destination address. Shared by the slice-level [`Demux`] and
/// the software-RSS shard steering ([`crate::shard`]) so both layers
/// agree on what a packet is keyed by.
pub fn packet_key(m: &Mbuf) -> Option<PacketKey> {
    let d = m.data();
    if d.len() >= 20 && d[0] == 0x45 {
        if d.len() >= 36 && d[9] == 17 && u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT {
            // outer IPv4 (20) + UDP (8) + GTP flags/type/len (4) → TEID.
            return Some(PacketKey::Teid(u32::from_be_bytes([d[32], d[33], d[34], d[35]])));
        }
        return Some(PacketKey::UeIp(u32::from_be_bytes([d[16], d[17], d[18], d[19]])));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc_net::gtp::encap_gtpu;
    use pepc_net::ipv4::IpProto;
    use pepc_net::{Ipv4Hdr, IPV4_HDR_LEN};

    fn downlink(dst: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(1, dst, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        m
    }

    fn uplink(teid: u32) -> Mbuf {
        let mut m = downlink(0x08080808);
        encap_gtpu(&mut m, 2, 3, teid).unwrap();
        m
    }

    #[test]
    fn steers_uplink_by_teid_and_downlink_by_ip() {
        let mut d = Demux::new();
        d.map_user(7, 0x1000, 0x0A000001, 3);
        let (s, m) = d.steer(uplink(0x1000));
        assert_eq!(s, Steer::ToSlice(3));
        assert!(m.is_some());
        let (s, _) = d.steer(downlink(0x0A000001));
        assert_eq!(s, Steer::ToSlice(3));
    }

    #[test]
    fn unknown_keys_reported() {
        let mut d = Demux::new();
        assert_eq!(d.steer(uplink(0x9999)).0, Steer::Unknown);
        assert_eq!(d.steer(downlink(0x0B000001)).0, Steer::Unknown);
    }

    #[test]
    fn malformed_packets_reported() {
        let mut d = Demux::new();
        assert_eq!(d.steer(Mbuf::from_payload(&[0u8; 4])).0, Steer::Malformed);
    }

    #[test]
    fn signaling_steered_by_imsi() {
        let mut d = Demux::new();
        d.map_user(7, 1, 2, 5);
        assert_eq!(d.slice_for_imsi(7), Some(5));
        assert_eq!(d.slice_for_imsi(8), None);
    }

    #[test]
    fn migration_parks_and_drains_in_order() {
        let mut d = Demux::new();
        d.map_user(7, 0x1000, 0x0A000001, 0);
        d.begin_migration(7);
        // Both directions get parked.
        assert_eq!(d.steer(uplink(0x1000)).0, Steer::Parked);
        assert_eq!(d.steer(downlink(0x0A000001)).0, Steer::Parked);
        assert_eq!(d.parked_count(), 2);
        // Other users flow normally.
        d.map_user(8, 0x1001, 0x0A000002, 0);
        assert_eq!(d.steer(uplink(0x1001)).0, Steer::ToSlice(0));

        let parked = d.finish_migration(7, 0x1000, 0x0A000001, 1);
        assert_eq!(parked.len(), 2);
        assert_eq!(d.parked_count(), 0);
        // New packets go to the new slice.
        assert_eq!(d.steer(uplink(0x1000)).0, Steer::ToSlice(1));
    }

    #[test]
    fn abort_migration_returns_packets_and_keeps_mapping() {
        let mut d = Demux::new();
        d.map_user(7, 0x1000, 0x0A000001, 0);
        d.begin_migration(7);
        d.steer(uplink(0x1000));
        let parked = d.abort_migration(7);
        assert_eq!(parked.len(), 1);
        assert_eq!(d.steer(uplink(0x1000)).0, Steer::ToSlice(0), "mapping unchanged");
    }

    #[test]
    fn unmap_removes_all_keys() {
        let mut d = Demux::new();
        d.map_user(7, 0x1000, 0x0A000001, 0);
        d.unmap_user(7, 0x1000, 0x0A000001);
        assert_eq!(d.user_count(), 0);
        assert_eq!(d.steer(uplink(0x1000)).0, Steer::Unknown);
        assert_eq!(d.slice_for_imsi(7), None);
    }
}
