//! Software-RSS sharded data path: aggregate Mpps from share-nothing
//! pipelines.
//!
//! The paper scales a slice's data plane by running more data cores and
//! partitioning users across them (fig 7: throughput grows linearly with
//! cores because *nothing is shared*). SoftCell's partitioning argument
//! makes the same point from the control side: steer once at the edge,
//! then never share state between pipelines. [`ShardedDataPath`] is that
//! layout inside one process:
//!
//! * a **steering stage** hashes each packet's key — uplink TEID or
//!   downlink UE IP, extracted by the same [`crate::demux::packet_key`]
//!   the node Demux uses — with [`splitmix64`] (the same mix
//!   [`crate::twolevel::KeyHasher`] applies to table keys) and fans the
//!   burst out to N shards;
//! * each **shard** is a full [`DataPlane`] owning a *disjoint* partition
//!   of the user set: its own [`crate::twolevel::TwoLevelTable`]s, its
//!   own scratch, its own [`DataMetrics`] and histograms. No lock, no
//!   shared cache line, no cross-shard reference exists on the packet
//!   path;
//! * results are gathered back in input order and metrics are *summed*,
//!   so the whole path still satisfies `rx == forwarded + Σ drops`.
//!
//! # The partition invariant
//!
//! A user's state lives on exactly one shard — `splitmix64(gw_teid) % N`
//! — and every packet of that user must reach it. Uplink steers by TEID,
//! so it lands there by construction. Downlink carries only the UE IP,
//! which hashes differently; steering it by hash would strand downlink
//! packets on shards that never saw the user's `Insert`. The steering
//! stage therefore keeps one map (UE IP → owner shard), written only at
//! `Insert`/`Remove` time — control-rate, not packet-rate — making
//! downlink steering a single hash-map probe and keeping the per-user
//! counter cell single-writer (one shard) exactly as PR 4's seqlock
//! design requires. Unknown UE IPs hash to a stable shard so the
//! unknown-user drop is deterministic; unparseable packets go to shard 0
//! whose pipeline charges them to `drop_malformed`.
//!
//! `tests/shard_equivalence.rs` pins the whole construction to the
//! single-pipeline [`DataPlane`]: same verdicts, same per-user counters,
//! same drop taxonomy, for any shard count.

use crate::config::{IotConfig, TwoLevelConfig};
use crate::data::{DataPlane, DpUpdate, PacketVerdict};
use crate::demux::{packet_key, PacketKey};
use crate::metrics::DataMetrics;
use crate::slab::UeSlab;
use crate::twolevel::{splitmix64, BuildKeyHasher, TwoLevelStats};
use pepc_net::Mbuf;
use pepc_telemetry::LatencyHistogram;
use std::collections::HashMap;
use std::sync::Arc;

/// N share-nothing [`DataPlane`] shards behind a software-RSS steering
/// stage. See the module docs for the layout and invariants.
pub struct ShardedDataPath {
    shards: Vec<DataPlane>,
    /// One context arena shared by every shard (contexts are not
    /// partitioned — only the *indexes* are; each slot still has exactly
    /// one writing shard, so the single-writer counter protocol holds).
    slab: Arc<UeSlab>,
    /// Downlink owner map: UE IP (widened) → shard holding the user's
    /// state. Written at control rate, read once per downlink packet.
    owner_by_ip: HashMap<u64, u32, BuildKeyHasher>,
    /// Control→data updates as *logical* operations: a broadcast rule
    /// install counts once here even though every shard applies it.
    updates_applied: u64,
    /// Per-shard pending packets between [`Self::steer`] and
    /// [`Self::collect_verdicts`], with their input positions.
    pending: Vec<Vec<Mbuf>>,
    pending_idx: Vec<Vec<u32>>,
    shard_out: Vec<Vec<PacketVerdict>>,
    /// Input-order gather scratch for `collect_verdicts`.
    gather: Vec<Option<PacketVerdict>>,
    /// Packets steered since `collect`, to offset indices across
    /// multiple `steer` calls.
    in_flight: usize,
    /// Lifetime packets steered to each shard (imbalance observability).
    steered: Vec<u64>,
}

impl ShardedDataPath {
    /// Build `shard_count` share-nothing pipelines. Each shard sizes its
    /// tables for its fraction of `expected_users`.
    pub fn new(
        gw_ip: u32,
        expected_users: usize,
        two_level: TwoLevelConfig,
        iot: IotConfig,
        shard_count: usize,
    ) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        let per_shard = expected_users.div_ceil(shard_count);
        let slab = Arc::new(UeSlab::new());
        ShardedDataPath {
            shards: (0..shard_count)
                .map(|_| DataPlane::with_slab(Arc::clone(&slab), gw_ip, per_shard, two_level, iot))
                .collect(),
            slab,
            owner_by_ip: HashMap::default(),
            updates_applied: 0,
            pending: (0..shard_count).map(|_| Vec::with_capacity(64)).collect(),
            pending_idx: (0..shard_count).map(|_| Vec::with_capacity(64)).collect(),
            shard_out: (0..shard_count).map(|_| Vec::with_capacity(64)).collect(),
            gather: Vec::with_capacity(64),
            in_flight: 0,
            steered: vec![0; shard_count],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The context arena shared by every shard.
    pub fn slab(&self) -> &Arc<UeSlab> {
        &self.slab
    }

    /// Resident bytes of every shard's lookup indexes (memory gauge).
    pub fn table_bytes(&self) -> u64 {
        self.shards.iter().map(DataPlane::table_bytes).sum()
    }

    /// The shard owning the user reachable through `gw_teid` — the
    /// steering hash, and the partition the user's `Insert` goes to.
    #[inline]
    pub fn owner_of_teid(&self, gw_teid: u32) -> usize {
        (splitmix64(u64::from(gw_teid)) % self.shards.len() as u64) as usize
    }

    /// Steering decision for one packet (stable: same key → same shard).
    #[inline]
    pub fn shard_for(&self, m: &Mbuf) -> usize {
        match packet_key(m) {
            Some(PacketKey::Teid(teid)) => self.owner_of_teid(teid),
            Some(PacketKey::UeIp(ip)) => match self.owner_by_ip.get(&u64::from(ip)) {
                Some(&owner) => owner as usize,
                // Unknown UE IP: no owner registered; hash to a stable
                // shard whose pipeline charges the unknown-user drop.
                None => (splitmix64(u64::from(ip)) % self.shards.len() as u64) as usize,
            },
            // Unparseable: shard 0's pipeline charges drop_malformed.
            None => 0,
        }
    }

    /// Apply one control→data update, routed to the owning shard
    /// (rule installs broadcast: the PCEF is slice-wide configuration,
    /// not per-user state).
    pub fn apply_update(&mut self, update: DpUpdate, now_ns: u64) {
        self.updates_applied += 1;
        match update {
            DpUpdate::Insert { gw_teid, ue_ip, handle, active } => {
                let owner = self.owner_of_teid(gw_teid);
                self.owner_by_ip.insert(u64::from(ue_ip), owner as u32);
                self.shards[owner].apply_update(DpUpdate::Insert { gw_teid, ue_ip, handle, active }, now_ns);
            }
            DpUpdate::Remove { gw_teid, ue_ip } => {
                let owner = self.owner_of_teid(gw_teid);
                self.owner_by_ip.remove(&u64::from(ue_ip));
                self.shards[owner].apply_update(DpUpdate::Remove { gw_teid, ue_ip }, now_ns);
            }
            DpUpdate::Demote { gw_teid, ue_ip } => {
                let owner = self.owner_of_teid(gw_teid);
                self.shards[owner].apply_update(DpUpdate::Demote { gw_teid, ue_ip }, now_ns);
            }
            DpUpdate::Suspend { gw_teid, ue_ip, imsi } => {
                let owner = self.owner_of_teid(gw_teid);
                // `owner_by_ip` stays: downlink for the suspended UE must
                // still steer to the owning shard to be buffered there.
                self.shards[owner].apply_update(DpUpdate::Suspend { gw_teid, ue_ip, imsi }, now_ns);
            }
            DpUpdate::DropIdleBuffer { ue_ip } => {
                if let Some(&owner) = self.owner_by_ip.get(&u64::from(ue_ip)) {
                    self.shards[owner as usize].apply_update(DpUpdate::DropIdleBuffer { ue_ip }, now_ns);
                }
            }
            DpUpdate::InstallRule { id, program, action } => {
                for s in &mut self.shards {
                    s.apply_update(DpUpdate::InstallRule { id, program: program.clone(), action }, now_ns);
                }
            }
        }
    }

    /// Demote users idle past the two-level timeout on every shard.
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        self.shards.iter_mut().map(|s| s.evict_idle(now_ns)).sum()
    }

    /// The steering stage: fan a burst out to the shards' pending
    /// queues, preserving per-shard input order. The burst is drained.
    pub fn steer(&mut self, burst: &mut Vec<Mbuf>) {
        for m in burst.drain(..) {
            let s = self.shard_for(&m);
            self.pending[s].push(m);
            self.pending_idx[s].push(self.in_flight as u32);
            self.steered[s] += 1;
            self.in_flight += 1;
        }
    }

    /// Packets currently pending on shard `s`.
    pub fn pending_len(&self, s: usize) -> usize {
        self.pending[s].len()
    }

    /// Run shard `s`'s pipeline over its pending packets. Verdicts are
    /// held until [`Self::collect_verdicts`]. Callers that model
    /// parallel cores time this call per shard and take the max.
    pub fn process_pending(&mut self, s: usize, now_ns: u64) {
        let mut burst = std::mem::take(&mut self.pending[s]);
        let mut out = std::mem::take(&mut self.shard_out[s]);
        self.shards[s].process_burst_into(&mut burst, now_ns, &mut out);
        self.pending[s] = burst;
        self.shard_out[s] = out;
    }

    /// Gather all held verdicts back into input order, appending to
    /// `out`. Resets the in-flight window.
    pub fn collect_verdicts(&mut self, out: &mut Vec<PacketVerdict>) {
        debug_assert!(self.pending.iter().all(Vec::is_empty), "process every shard before collecting");
        self.gather.clear();
        self.gather.resize_with(self.in_flight, || None);
        for s in 0..self.shards.len() {
            for (idx, v) in self.pending_idx[s].drain(..).zip(self.shard_out[s].drain(..)) {
                self.gather[idx as usize] = Some(v);
            }
        }
        out.reserve(self.in_flight);
        for v in self.gather.drain(..) {
            out.push(v.expect("every steered packet produced a verdict"));
        }
        self.in_flight = 0;
    }

    /// Steer, process every shard, and gather: one verdict per packet in
    /// input order. The sequential composition used by tests and by
    /// callers that do not model parallel shards.
    pub fn process_burst(&mut self, burst: &mut Vec<Mbuf>, now_ns: u64) -> Vec<PacketVerdict> {
        self.steer(burst);
        for s in 0..self.shards.len() {
            self.process_pending(s, now_ns);
        }
        let mut out = Vec::new();
        self.collect_verdicts(&mut out);
        out
    }

    /// Aggregate data-plane metrics: per-shard counters summed, with
    /// `updates_applied` overridden by the logical update count (a
    /// broadcast rule install is one update, not N).
    pub fn aggregate_metrics(&self) -> DataMetrics {
        let mut total = DataMetrics::default();
        for s in &self.shards {
            let m = s.metrics();
            total.rx += m.rx;
            total.forwarded += m.forwarded;
            total.iot_fast_path += m.iot_fast_path;
            total.drop_unknown_user += m.drop_unknown_user;
            total.drop_gate += m.drop_gate;
            total.drop_qos += m.drop_qos;
            total.drop_malformed += m.drop_malformed;
            total.drop_failover += m.drop_failover;
            total.drop_idle_overflow += m.drop_idle_overflow;
            total.drop_idle_expired += m.drop_idle_expired;
            total.drop_idle_uplink += m.drop_idle_uplink;
            total.idle_buffered += m.idle_buffered;
            total.forwarded_on_wake += m.forwarded_on_wake;
        }
        total.updates_applied = self.updates_applied;
        total
    }

    /// Drain the IMSIs whose first buffered downlink packet just arrived
    /// on any shard (paging triggers for the control plane), in shard
    /// order then arrival order.
    pub fn take_paging_events(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &mut self.shards {
            out.extend(s.take_paging_events());
        }
        out
    }

    /// Drain downlink packets flushed out of idle buffers on wake across
    /// all shards.
    pub fn take_woken(&mut self) -> Vec<Mbuf> {
        let mut out = Vec::new();
        for s in &mut self.shards {
            out.extend(s.take_woken());
        }
        out
    }

    /// Suspended (idle) UEs across all shards.
    pub fn suspended_count(&self) -> usize {
        self.shards.iter().map(DataPlane::suspended_count).sum()
    }

    /// Idle-buffer occupancy across all shards, `(imsi, buffered,
    /// oldest_arrival_ns)` in IMSI order — input to the stuck-idle oracle.
    pub fn idle_buffered_report(&self) -> Vec<(u64, usize, u64)> {
        let mut v: Vec<(u64, usize, u64)> = self.shards.iter().flat_map(DataPlane::idle_buffered_report).collect();
        v.sort_unstable();
        v
    }

    /// Aggregate IoT fast-path charging across shards.
    pub fn iot_totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(p, b), s| (p + s.iot_packets, b + s.iot_bytes))
    }

    /// Aggregate two-level table churn across shards (TEID index).
    pub fn table_stats(&self) -> TwoLevelStats {
        let mut total = TwoLevelStats::default();
        for s in &self.shards {
            let t = s.table_stats();
            total.primary_hits += t.primary_hits;
            total.promotions += t.promotions;
            total.demotions += t.demotions;
            total.misses += t.misses;
        }
        total
    }

    /// Users indexed across all shards.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(DataPlane::user_count).sum()
    }

    /// Merged pipeline latency across shards (population = forwarded).
    pub fn pipeline_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in &self.shards {
            h.merge(s.pipeline_latency());
        }
        h
    }

    /// Per-shard read access (telemetry, tests).
    pub fn shards(&self) -> &[DataPlane] {
        &self.shards
    }

    /// Per-shard configuration access (telemetry / stage-timing toggles).
    pub fn shards_mut(&mut self) -> &mut [DataPlane] {
        &mut self.shards
    }

    /// Lifetime packets steered to each shard.
    pub fn steered_totals(&self) -> &[u64] {
        &self.steered
    }

    /// Shard imbalance as max/mean of steered packet counts (1.0 =
    /// perfectly balanced; 0.0 when nothing has been steered).
    pub fn shard_imbalance(&self) -> f64 {
        imbalance(&self.steered)
    }
}

/// max/mean of a shard-load vector (0.0 for an empty or all-zero load).
pub fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / loads.len() as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DropReason;
    use crate::pcef::PcefAction;
    use crate::slab::UeHandle;
    use crate::state::{ControlState, CounterState, QosPolicy, TunnelState};
    use pepc_net::gtp::encap_gtpu;
    use pepc_net::ipv4::IpProto;
    use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
    use pepc_net::{BpfProgram, Ipv4Hdr, IPV4_HDR_LEN};

    const GW_IP: u32 = 0x0AFE0001;
    const ENB_IP: u32 = 0xC0A80001;

    fn path(n: usize) -> ShardedDataPath {
        ShardedDataPath::new(GW_IP, 256, TwoLevelConfig::default(), IotConfig::default(), n)
    }

    fn attach(p: &mut ShardedDataPath, i: u32) -> UeHandle {
        let mut ctrl = ControlState::new(404_01_0000000000 + u64::from(i));
        ctrl.ue_ip = 0x0A00_0001 + i;
        ctrl.qos = QosPolicy { qci: 9, ambr_kbps: 0, gbr_kbps: 0 };
        ctrl.tunnels = TunnelState { enb_teid: 0x2000 + i, enb_ip: ENB_IP, gw_teid: 0x1000 + i };
        let h = p.slab().alloc(ctrl, CounterState::default());
        p.apply_update(DpUpdate::Insert { gw_teid: 0x1000 + i, ue_ip: 0x0A00_0001 + i, handle: h, active: true }, 0);
        h
    }

    fn counters(p: &ShardedDataPath, h: UeHandle) -> CounterState {
        p.slab().resolve(h).expect("live handle").counters()
    }

    fn downlink(dst: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let payload = [0u8; 16];
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(0x0808_0808, dst, IpProto::Udp, UDP_HDR_LEN + payload.len())
            .emit(&mut hdr[..IPV4_HDR_LEN])
            .unwrap();
        UdpHdr::new(443, 40000, payload.len()).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(&payload);
        m
    }

    fn uplink(teid: u32) -> Mbuf {
        let mut m = downlink(0x0808_0808);
        encap_gtpu(&mut m, ENB_IP, GW_IP, teid).unwrap();
        m
    }

    #[test]
    fn both_directions_reach_the_owner_shard() {
        let mut p = path(4);
        for i in 0..32 {
            let h = attach(&mut p, i);
            let owner = p.owner_of_teid(0x1000 + i);
            let out = p.process_burst(&mut vec![uplink(0x1000 + i), downlink(0x0A00_0001 + i)], 10);
            assert!(out.iter().all(PacketVerdict::is_forward), "user {i}");
            let cnt = counters(&p, h);
            assert_eq!(cnt.uplink_packets, 1);
            assert_eq!(cnt.downlink_packets, 1, "downlink found the owner shard {owner}");
        }
        let m = p.aggregate_metrics();
        assert_eq!(m.rx, 64);
        assert_eq!(m.forwarded, 64);
        assert!(m.conservation_holds());
    }

    #[test]
    fn steering_is_stable_across_bursts() {
        let mut p = path(8);
        for i in 0..64 {
            attach(&mut p, i);
        }
        for i in 0..64u32 {
            let ul = p.shard_for(&uplink(0x1000 + i));
            let dl = p.shard_for(&downlink(0x0A00_0001 + i));
            assert_eq!(ul, p.owner_of_teid(0x1000 + i));
            assert_eq!(dl, ul, "downlink owner map agrees with uplink hash");
            // Same keys again: identical decision.
            assert_eq!(p.shard_for(&uplink(0x1000 + i)), ul);
            assert_eq!(p.shard_for(&downlink(0x0A00_0001 + i)), dl);
        }
    }

    #[test]
    fn users_spread_across_shards() {
        let mut p = path(4);
        for i in 0..256 {
            attach(&mut p, i);
        }
        let per_shard: Vec<usize> = p.shards().iter().map(DataPlane::user_count).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 256);
        assert!(per_shard.iter().all(|&c| c > 0), "no empty shard at 256 users: {per_shard:?}");
        assert_eq!(p.user_count(), 256);
    }

    #[test]
    fn unknown_and_malformed_are_charged_once() {
        let mut p = path(4);
        attach(&mut p, 0);
        let out = p.process_burst(&mut vec![uplink(0xDEAD), downlink(0x0BAD_0001), Mbuf::from_payload(&[0u8; 5])], 5);
        assert!(matches!(out[0], PacketVerdict::Drop(DropReason::UnknownUser)));
        assert!(matches!(out[1], PacketVerdict::Drop(DropReason::UnknownUser)));
        assert!(matches!(out[2], PacketVerdict::Drop(DropReason::Malformed)));
        let m = p.aggregate_metrics();
        assert_eq!(m.drop_unknown_user, 2);
        assert_eq!(m.drop_malformed, 1);
        assert!(m.conservation_holds());
    }

    #[test]
    fn verdicts_come_back_in_input_order() {
        let mut p = path(4);
        for i in 0..16 {
            attach(&mut p, i);
        }
        // Interleave users so consecutive packets hit different shards,
        // then check order via the per-packet kind sequence.
        let mut burst = Vec::new();
        let mut expect_forward = Vec::new();
        for i in 0..16u32 {
            burst.push(uplink(0x1000 + i));
            expect_forward.push(true);
            if i % 3 == 0 {
                burst.push(uplink(0xDEAD + i));
                expect_forward.push(false);
            }
        }
        let out = p.process_burst(&mut burst, 9);
        let got: Vec<bool> = out.iter().map(PacketVerdict::is_forward).collect();
        assert_eq!(got, expect_forward);
    }

    #[test]
    fn rule_install_broadcasts_but_counts_once() {
        let mut p = path(4);
        for i in 0..8 {
            attach(&mut p, i);
        }
        p.apply_update(
            DpUpdate::InstallRule {
                id: 1,
                program: BpfProgram::match_dst_port(53, 1),
                action: PcefAction { qci: 9, rate_kbps: 0, gate_closed: true },
            },
            0,
        );
        // 8 inserts + 1 logical rule install.
        assert_eq!(p.aggregate_metrics().updates_applied, 9);
        // Every shard saw the rule (per-shard counters exceed the
        // logical count: 8 inserts + 4 broadcasts).
        let raw: u64 = p.shards().iter().map(|s| s.metrics().updates_applied).sum();
        assert_eq!(raw, 12);
    }

    #[test]
    fn remove_unregisters_the_downlink_owner() {
        let mut p = path(4);
        attach(&mut p, 3);
        assert!(p.process_burst(&mut vec![downlink(0x0A00_0004)], 1)[0].is_forward());
        p.apply_update(DpUpdate::Remove { gw_teid: 0x1003, ue_ip: 0x0A00_0004 }, 2);
        let out = p.process_burst(&mut vec![downlink(0x0A00_0004)], 3);
        assert!(matches!(out[0], PacketVerdict::Drop(DropReason::UnknownUser)));
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
        assert_eq!(imbalance(&[5, 5, 5, 5]), 1.0);
        assert_eq!(imbalance(&[10, 0]), 2.0);
        let mut p = path(2);
        attach(&mut p, 0);
        p.process_burst(&mut vec![uplink(0x1000), uplink(0x1000)], 1);
        let total: u64 = p.steered_totals().iter().sum();
        assert_eq!(total, 2);
        assert_eq!(p.shard_imbalance(), 2.0, "both packets on one shard of two");
    }

    #[test]
    fn single_shard_path_is_the_plain_pipeline() {
        let mut p = path(1);
        let h = attach(&mut p, 0);
        let out = p.process_burst(&mut vec![uplink(0x1000), downlink(0x0A00_0001)], 4);
        assert!(out.iter().all(PacketVerdict::is_forward));
        assert_eq!(counters(&p, h).uplink_packets, 1);
        assert_eq!(p.pipeline_latency().count(), p.aggregate_metrics().forwarded);
    }
}
