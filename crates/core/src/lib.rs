// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! # pepc — a high-performance packet core sliced by user
//!
//! This crate is the primary contribution of the reproduction: the PEPC
//! system of *"A High Performance Packet Core for Next Generation Cellular
//! Networks"* (SIGCOMM 2017). Instead of the classic EPC decomposition by
//! traffic type (MME for signaling, S-GW/P-GW for data) — which duplicates
//! per-user state across components and synchronizes it on every signaling
//! event — PEPC consolidates each user's state in one place, a **slice**,
//! and refactors EPC functions around it:
//!
//! * a **control thread** per slice processes signaling (attach over
//!   S1AP/NAS, handovers, PCRF rule updates) and is the *only writer* of a
//!   user's control state ([`state::ControlState`]);
//! * a **data thread** per slice runs the packet pipeline (GTP-U
//!   decap/encap, PCEF, QoS, charging) and is the *only writer* of a
//!   user's counter state ([`state::CounterState`]);
//! * both sides read everything, so no cross-component messages are
//!   needed to keep duplicated copies in sync — there are no copies.
//!
//! Module map (↔ paper sections):
//!
//! | Module       | Paper | What it provides |
//! |--------------|-------|------------------|
//! | [`state`]    | §2.3, Table 1 | the per-user state taxonomy, split by writer |
//! | [`seqlock`]  | §4.2  | single-writer seqlock cells behind [`state::UeContext`] |
//! | [`table`]    | §7.1, Fig 12  | the shared-state stores (giant lock / datapath-writer / rwlock-fine / PEPC seqlock) |
//! | [`twolevel`] | §3.2, §7.3, Fig 14 | primary/secondary state tables |
//! | [`pcef`]     | §4.2  | the BPF match-action Policy & Charging Enforcement Function |
//! | [`qos`]      | §3.1  | token-bucket MBR/AMBR enforcement |
//! | [`data`]     | §4.2  | the slice data-plane pipeline (incl. the stateless-IoT fast path, Fig 15) |
//! | [`ctrl`]     | §4.2  | the slice control plane: S1AP/NAS attach FSM, synthetic events, batched updates (Fig 13) |
//! | [`slice`]    | §3.2, Listing 1 | the slice: control + data threads over shared state |
//! | [`demux`]    | §3.3  | TEID / UE-IP / IMSI → slice steering |
//! | [`migrate`]  | §4.3, §6.6 | intra-node user state migration with per-user queues |
//! | [`node`]     | §3.3  | the PEPC node: slices + scheduler + proxy |
//! | [`proxy`]    | §3.3  | the HSS (S6a) / PCRF (Gx) proxy |

pub mod cluster;
pub mod config;
pub mod ctrl;
pub mod data;
pub mod demux;
pub mod inctable;
pub mod metrics;
pub mod migrate;
pub mod node;
pub mod overload;
pub mod pcef;
pub mod procedure;
pub mod proxy;
pub mod qos;
pub mod recovery;
pub mod seqlock;
pub mod shard;
pub mod slab;
pub mod slice;
pub mod state;
pub mod table;
pub mod twolevel;

pub use cluster::Cluster;
pub use config::{EpcConfig, SliceConfig};
pub use ctrl::{ControlPlane, CtrlEvent};
pub use data::{DataPlane, PacketVerdict};
pub use demux::Demux;
pub use inctable::IncrementalTable;
pub use metrics::{CtrlMetrics, DataMetrics};
pub use migrate::{StateTransferMessage, UserSnapshot};
pub use node::PepcNode;
pub use pcef::Pcef;
pub use pepc_telemetry::{LatencyHistogram, MetricsSnapshot, RingGauge, SliceSnapshot, WireStat};
pub use proxy::Proxy;
pub use seqlock::SeqCell;
pub use shard::ShardedDataPath;
pub use slab::{UeHandle, UeRef, UeSlab};
pub use slice::{Slice, SliceHandle};
pub use state::{ControlState, CounterState, CtrlView, DeviceClass, UeContext, Uid};
pub use table::{DatapathWriterStore, GiantLockStore, PepcStore, RwLockFineStore, StateStore};
pub use twolevel::TwoLevelTable;
