//! A PEPC cluster — the full Figure 1(b) deployment: several PEPC nodes
//! behind one virtual IP, fronted by a Maglev-style load balancer.
//!
//! "We assume that the PEPC cluster is abstracted by a single virtual IP
//! address; external components such as the eNodeB direct their traffic
//! to this virtual IP address and the cluster's load balancer takes care
//! of appropriately demultiplexing user traffic across the PEPC nodes"
//! (§3.3, citing Maglev).
//!
//! Steering works in two stages, as in real deployments:
//!
//! * **signaling** (attach) is consistent-hashed on the IMSI across
//!   nodes, so a subscriber's home node is stable under node churn;
//! * **data** is routed by identifier *ranges*: each node allocates
//!   TEIDs / UE IPs from a disjoint region (high bits = node index), so
//!   the balancer recovers the owning node from the packet alone — no
//!   per-user table at the LB, exactly why GTP deployments give each
//!   gateway its own TEID space.

use crate::config::EpcConfig;
use crate::node::{NodeVerdict, PepcNode};
use crate::state::{ControlState, CounterState};
use pepc_backend::{Hss, Pcrf};
use pepc_fabric::Maglev;
use pepc_net::Mbuf;
use pepc_telemetry::{DataMetrics, MetricsSnapshot, SliceSnapshot};
use std::collections::HashMap;
use std::sync::Arc;

/// Bits reserved below the node index in TEID / UE IP spaces.
const NODE_SHIFT: u32 = 28;

/// The data-plane key the balancer routes a packet by.
#[derive(Debug, Clone, Copy)]
enum RouteKey {
    /// Uplink GTP-U: gateway TEID.
    Teid(u32),
    /// Downlink plain IP: UE address.
    UeIp(u32),
}

/// A cluster of PEPC nodes behind one virtual IP.
pub struct Cluster {
    nodes: Vec<PepcNode>,
    lb: Maglev,
    virtual_ip: u32,
    /// Nodes declared dead by the failover coordinator. Their identifier
    /// regions stay allocated (TEIDs / UE IPs survive the failover), but
    /// packets re-steer through the redirect tables below.
    dead: Vec<bool>,
    /// Adopted-user re-steering: gateway TEID → surviving node.
    redirect_teid: HashMap<u32, usize>,
    /// Adopted-user re-steering: UE IP → surviving node.
    redirect_ue_ip: HashMap<u32, usize>,
    /// Balancer-level terminal drops (unroutable regions, failover
    /// blackout). Exported as a pseudo-slice so cluster-wide packet
    /// conservation stays checkable: `rx` here counts only packets the
    /// balancer itself dropped.
    lb_drops: DataMetrics,
}

impl Cluster {
    /// Build `n` nodes from a template config. Each node gets a disjoint
    /// identifier region; `backends` (HSS/PCRF) are shared, as in a real
    /// core network.
    pub fn new(n: usize, template: EpcConfig, backends: Option<(Arc<Hss>, Arc<Pcrf>)>) -> Self {
        assert!((1..=8).contains(&n), "1..=8 nodes supported by the region layout");
        let virtual_ip = template.gw_ip;
        let mut nodes = Vec::with_capacity(n);
        for k in 0..n {
            let mut cfg = template.clone();
            cfg.teid_base = 0x1000_0000 + ((k as u32) << NODE_SHIFT);
            cfg.ue_ip_base = 0x0A00_0001 + ((k as u32) << NODE_SHIFT);
            cfg.gw_ip = virtual_ip; // one virtual IP for the whole cluster
            nodes.push(PepcNode::new(cfg, backends.clone()));
        }
        let names: Vec<String> = (0..n).map(|k| format!("pepc-node-{k}")).collect();
        Cluster {
            nodes,
            lb: Maglev::new(&names, template.lb_table_size),
            virtual_ip,
            dead: vec![false; n],
            redirect_teid: HashMap::new(),
            redirect_ue_ip: HashMap::new(),
            lb_drops: DataMetrics::default(),
        }
    }

    /// The cluster's virtual IP (what eNodeBs tunnel to).
    pub fn virtual_ip(&self) -> u32 {
        self.virtual_ip
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The home node for a subscriber (consistent hash over IMSI).
    pub fn home_node(&self, imsi: u64) -> usize {
        self.lb.lookup(imsi)
    }

    /// Attach a subscriber on its home node; returns the node index.
    pub fn attach(&mut self, imsi: u64) -> usize {
        let k = self.home_node(imsi);
        self.nodes[k].attach(imsi);
        k
    }

    /// Route one data packet: TEID (uplink) / UE IP (downlink) ranges
    /// identify the owning node without any per-user LB state. Packets
    /// whose region node is dead re-steer through the redirect tables a
    /// failover populated; before adoption completes they are charged to
    /// the failover blackout.
    pub fn process(&mut self, m: Mbuf) -> NodeVerdict {
        let n = self.nodes.len();
        match Self::route_of_packet(&m) {
            Some((k, key)) if k < n => {
                if self.dead[k] {
                    let target = match key {
                        RouteKey::Teid(teid) => self.redirect_teid.get(&teid),
                        RouteKey::UeIp(ip) => self.redirect_ue_ip.get(&ip),
                    };
                    match target.copied() {
                        Some(t) => self.nodes[t].process(m),
                        None => {
                            self.lb_drops.rx += 1;
                            self.lb_drops.drop_failover += 1;
                            NodeVerdict::Drop
                        }
                    }
                } else {
                    self.nodes[k].process(m)
                }
            }
            _ => {
                self.lb_drops.rx += 1;
                self.lb_drops.drop_unknown_user += 1;
                NodeVerdict::Drop
            }
        }
    }

    fn route_of_packet(m: &Mbuf) -> Option<(usize, RouteKey)> {
        let d = m.data();
        if d.len() < 20 || d[0] != 0x45 {
            return None;
        }
        let is_gtpu = d.len() >= 36 && d[9] == 17 && u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT;
        if is_gtpu {
            // Uplink: TEID regions start at 0x1000_0000, one per node.
            let teid = u32::from_be_bytes([d[32], d[33], d[34], d[35]]);
            let k = usize::try_from((teid >> NODE_SHIFT).checked_sub(1)?).ok()?;
            Some((k, RouteKey::Teid(teid)))
        } else {
            // Downlink: UE IP regions start at 0x0A00_0001, one per node.
            let dst = u32::from_be_bytes([d[16], d[17], d[18], d[19]]);
            Some(((dst >> NODE_SHIFT) as usize, RouteKey::UeIp(dst)))
        }
    }

    // -- failover mechanisms (driven by the `pepc-ha` coordinator) -------------

    /// Node `k` just died: its region's packets start blackholing (charged
    /// to the failover blackout) the instant the hardware goes away —
    /// *before* any detector has noticed. Steering is not repaired yet;
    /// that is [`Cluster::repair_steering`]'s job, once a failure detector
    /// confirms the death.
    ///
    /// # Panics
    /// Panics if `k` is already dead or the last live node.
    pub fn power_off(&mut self, k: usize) {
        assert!(!self.dead[k], "node {k} already dead");
        assert!(self.live_count() > 1, "cannot power off the last live node");
        self.dead[k] = true;
    }

    /// Repair the Maglev table after `k`'s death was confirmed: only the
    /// dead node's keys re-steer — survivors' signaling homes are
    /// untouched, so in-flight flows of healthy users never move.
    ///
    /// # Panics
    /// Panics if `k` was not powered off first, or was already repaired.
    pub fn repair_steering(&mut self, k: usize) {
        assert!(self.dead[k], "repair_steering before power_off({k})");
        self.lb.remove_backend(k);
    }

    /// Declare node `k` dead and repair steering in one step — the
    /// shortcut for callers without a detection delay to model.
    pub fn mark_dead(&mut self, k: usize) {
        self.power_off(k);
        self.repair_steering(k);
    }

    /// Whether node `k` has been declared dead.
    pub fn is_dead(&self, k: usize) -> bool {
        self.dead[k]
    }

    /// Live nodes remaining.
    pub fn live_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Promote one recovered user onto live node `target` (restore into
    /// its home slice there, push the data-plane insert, register Demux
    /// steering) and record the redirect entries so region-routed packets
    /// for the dead node's TEID / UE IP re-steer deterministically.
    /// Returns the slice the user landed on.
    pub fn adopt_user(&mut self, target: usize, ctrl: ControlState, counters: CounterState) -> usize {
        assert!(!self.dead[target], "cannot adopt onto a dead node");
        let (gw_teid, ue_ip) = (ctrl.tunnels.gw_teid, ctrl.ue_ip);
        let slice = self.nodes[target].adopt_user(ctrl, counters);
        self.redirect_teid.insert(gw_teid, target);
        self.redirect_ue_ip.insert(ue_ip, target);
        slice
    }

    /// Pseudo-slice id under which balancer-level drops are exported.
    pub const LB_SLICE_ID: u64 = u64::MAX;

    /// Cluster-wide observability: every node's slices (slice ids get the
    /// node index in their high bits so they stay distinct) plus the
    /// balancer pseudo-slice, so `rx == forwarded + Σ drops` holds for
    /// every packet offered to the cluster — including the failover
    /// blackout.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (k, node) in self.nodes.iter().enumerate() {
            for mut s in node.metrics_snapshot().slices {
                s.slice_id |= (k as u64) << 32;
                snap.slices.push(s);
            }
        }
        let mut lb = SliceSnapshot::new(Self::LB_SLICE_ID);
        lb.data = self.lb_drops;
        snap.slices.push(lb);
        snap
    }

    /// Access one node (tests, harnesses, migration orchestration).
    pub fn node(&mut self, k: usize) -> &mut PepcNode {
        &mut self.nodes[k]
    }

    /// Immutable access to one node (oracles, inspection).
    pub fn node_ref(&self, k: usize) -> &PepcNode {
        &self.nodes[k]
    }

    /// Substitute the clock on every node (simulation harness).
    pub fn set_clock(&mut self, clock: pepc_fabric::Clock) {
        for n in &mut self.nodes {
            n.set_clock(clock);
        }
    }

    /// Total attached users across nodes.
    pub fn user_count(&self) -> usize {
        self.nodes.iter().map(|n| n.user_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchingConfig, SliceConfig};
    use pepc_net::gtp::encap_gtpu;
    use pepc_net::ipv4::IpProto;
    use pepc_net::{Ipv4Hdr, IPV4_HDR_LEN};

    fn cluster(n: usize) -> Cluster {
        let template = EpcConfig {
            slices: 2,
            slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
            ..EpcConfig::default()
        };
        Cluster::new(n, template, None)
    }

    fn keys_of(c: &mut Cluster, imsi: u64) -> (u32, u32) {
        let k = c.home_node(imsi);
        let node = c.node(k);
        let s = node.demux().slice_for_imsi(imsi).unwrap();
        let ctx = node.slice(s).ctrl.context_of(imsi).unwrap();
        let g = ctx.ctrl_read();
        (g.tunnels.gw_teid, g.ue_ip)
    }

    fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(ue_ip, 0x08080808, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        encap_gtpu(&mut m, 0xC0A80001, 0x0AFE0001, teid).unwrap();
        m
    }

    fn downlink(ue_ip: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(0x08080808, ue_ip, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        m
    }

    #[test]
    fn subscribers_spread_across_nodes() {
        let mut c = cluster(4);
        for imsi in 0..200u64 {
            c.attach(imsi);
        }
        assert_eq!(c.user_count(), 200);
        let counts: Vec<usize> = (0..4).map(|k| c.node(k).user_count()).collect();
        assert!(counts.iter().all(|&x| x > 20), "uneven spread: {counts:?}");
    }

    #[test]
    fn home_node_is_stable() {
        let c = cluster(3);
        for imsi in 0..50u64 {
            assert_eq!(c.home_node(imsi), c.home_node(imsi));
        }
    }

    #[test]
    fn data_routes_to_owning_node_both_directions() {
        let mut c = cluster(4);
        for imsi in 0..64u64 {
            c.attach(imsi);
            c.node(c.home_node(imsi)).ctrl_event(crate::ctrl::CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000 + imsi as u32,
                new_enb_ip: 0xC0A80001,
            });
        }
        for imsi in 0..64u64 {
            let (teid, ue_ip) = keys_of(&mut c, imsi);
            assert!(c.process(uplink(teid, ue_ip)).is_forward(), "uplink imsi {imsi}");
            assert!(c.process(downlink(ue_ip)).is_forward(), "downlink imsi {imsi}");
        }
    }

    #[test]
    fn packets_for_unknown_regions_dropped() {
        let mut c = cluster(2);
        // TEID in node-7's region, but only 2 nodes exist.
        let m = uplink(0x1000_0000 + (7 << NODE_SHIFT), 1);
        assert!(!c.process(m).is_forward());
        assert!(!c.process(Mbuf::from_payload(&[0u8; 8])).is_forward());
    }

    #[test]
    fn dead_node_blackholes_then_redirects_after_adoption() {
        let mut c = cluster(3);
        for imsi in 0..48u64 {
            c.attach(imsi);
            c.node(c.home_node(imsi)).ctrl_event(crate::ctrl::CtrlEvent::S1Handover {
                imsi,
                new_enb_teid: 0xE000 + imsi as u32,
                new_enb_ip: 0xC0A80001,
            });
        }
        // Pick a victim node and one of its users.
        let victim = c.home_node(0);
        let imsi = 0u64;
        let (teid, ue_ip) = keys_of(&mut c, imsi);
        // Standby replica of the user's state (here: read straight off the
        // still-in-memory node; in the HA subsystem this comes from the
        // replication log).
        let (ctrl, counters) = {
            let node = c.node(victim);
            let s = node.demux().slice_for_imsi(imsi).unwrap();
            let ctx = node.slice(s).ctrl.context_of(imsi).unwrap();
            let pair = (ctx.ctrl_read().clone(), ctx.counters());
            pair
        };

        c.mark_dead(victim);
        assert!(c.is_dead(victim));
        assert_eq!(c.live_count(), 2);
        // Blackout: packets for the dead region drop under the failover cause.
        assert!(!c.process(uplink(teid, ue_ip)).is_forward());
        assert!(!c.process(downlink(ue_ip)).is_forward());
        let snap = c.metrics_snapshot();
        assert!(snap.conservation_holds());
        assert_eq!(snap.data_totals().drop_failover, 2);

        // Maglev repair: the victim no longer owns any signaling keys, and
        // surviving homes did not move.
        let target = c.home_node(imsi);
        assert_ne!(target, victim);

        // Adoption: state promotes onto a survivor, traffic re-steers.
        c.adopt_user(target, ctrl, counters);
        assert!(c.process(uplink(teid, ue_ip)).is_forward(), "uplink after adoption");
        assert!(c.process(downlink(ue_ip)).is_forward(), "downlink after adoption");
        let snap = c.metrics_snapshot();
        assert!(snap.conservation_holds());
        assert_eq!(snap.data_totals().drop_failover, 2, "no further failover drops");
        // Counters travelled with the user.
        let node = c.node(target);
        let s = node.demux().slice_for_imsi(imsi).unwrap();
        assert!(node.slice(s).ctrl.counters_of(imsi).unwrap().uplink_packets >= 1);
    }

    #[test]
    fn lb_pseudo_slice_accounts_unroutable_packets() {
        let mut c = cluster(2);
        let m = uplink(0x1000_0000 + (7 << NODE_SHIFT), 1);
        assert!(!c.process(m).is_forward());
        let snap = c.metrics_snapshot();
        assert!(snap.conservation_holds());
        let lb = snap.slices.iter().find(|s| s.slice_id == Cluster::LB_SLICE_ID).unwrap();
        assert_eq!(lb.data.drop_unknown_user, 1);
    }

    #[test]
    fn counters_accumulate_on_the_home_node() {
        let mut c = cluster(2);
        c.attach(7);
        let (teid, ue_ip) = keys_of(&mut c, 7);
        for _ in 0..10 {
            assert!(c.process(uplink(teid, ue_ip)).is_forward());
        }
        let k = c.home_node(7);
        let node = c.node(k);
        let s = node.demux().slice_for_imsi(7).unwrap();
        assert_eq!(node.slice(s).ctrl.counters_of(7).unwrap().uplink_packets, 10);
    }
}
