//! The PEPC node proxy — paper §3.3.
//!
//! "The PEPC node proxy interfaces with the backend servers like HSS and
//! PCRF. Specifically, the interface between the HSS and Proxy is the same
//! as the current interface between the MME and HSS (S6a, Diameter) [and]
//! the interface between the proxy and PCRF is the same as the current
//! interface between the P-GW and PCRF (Gx)."
//!
//! The proxy is shared by all slices on a node. Exchanges go through the
//! wire codecs (encode → backend → decode), so the full S6a/Gx message
//! path is exercised even though the backends are in-process.

use pepc_backend::{Hss, Pcrf};
use pepc_sigproto::diameter::{result_code, DiameterMsg};
use pepc_sigproto::gx::{GxMsg, GxRule};
use pepc_sigproto::{Result, SigError};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Outcome of an authentication-information fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthChallenge {
    pub rand: u64,
    pub autn: u64,
    pub xres: u64,
}

/// Outcome of an update-location exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionData {
    pub ambr_kbps: u32,
    pub default_qci: u8,
}

/// The node's HSS/PCRF proxy.
pub struct Proxy {
    hss: Arc<Hss>,
    pcrf: Arc<Pcrf>,
    node_id: u32,
    plmn: u32,
    hop_id: AtomicU32,
}

impl Proxy {
    pub fn new(hss: Arc<Hss>, pcrf: Arc<Pcrf>, node_id: u32, plmn: u32) -> Self {
        Proxy { hss, pcrf, node_id, plmn, hop_id: AtomicU32::new(1) }
    }

    fn next_hop(&self) -> u32 {
        self.hop_id.fetch_add(1, Ordering::Relaxed)
    }

    /// S6a Authentication-Information exchange. `Err(BadValue)` when the
    /// subscriber is unknown.
    pub fn authentication_info(&self, imsi: u64) -> Result<AuthChallenge> {
        let hop = self.next_hop();
        let req = DiameterMsg::AuthInfoRequest { hop_id: hop, imsi, plmn: self.plmn }.encode();
        let rsp = self.hss.handle_bytes(&req)?;
        match DiameterMsg::decode(&rsp)? {
            DiameterMsg::AuthInfoAnswer { hop_id, result, rand, autn, xres } => {
                if hop_id != hop {
                    return Err(SigError::BadValue("s6a hop-id mismatch"));
                }
                if result != result_code::SUCCESS {
                    return Err(SigError::BadValue("s6a user unknown"));
                }
                Ok(AuthChallenge { rand, autn, xres })
            }
            _ => Err(SigError::BadState("unexpected s6a answer")),
        }
    }

    /// S6a Update-Location exchange: registers this node as serving the
    /// subscriber and returns the subscription profile.
    pub fn update_location(&self, imsi: u64) -> Result<SubscriptionData> {
        let hop = self.next_hop();
        let req = DiameterMsg::UpdateLocationRequest { hop_id: hop, imsi, serving_node: self.node_id }.encode();
        let rsp = self.hss.handle_bytes(&req)?;
        match DiameterMsg::decode(&rsp)? {
            DiameterMsg::UpdateLocationAnswer { hop_id, result, ambr_kbps, default_qci } => {
                if hop_id != hop {
                    return Err(SigError::BadValue("s6a hop-id mismatch"));
                }
                if result != result_code::SUCCESS {
                    return Err(SigError::BadValue("s6a user unknown"));
                }
                Ok(SubscriptionData { ambr_kbps, default_qci })
            }
            _ => Err(SigError::BadState("unexpected s6a answer")),
        }
    }

    /// Gx CCR-Initial: fetch the subscriber's policy/charging rules.
    pub fn fetch_rules(&self, session_id: u32, imsi: u64) -> Result<Vec<GxRule>> {
        let req = GxMsg::CcrInitial { session_id, imsi }.encode();
        let rsp = self.pcrf.handle_bytes(&req)?;
        match GxMsg::decode(&rsp)? {
            GxMsg::CcaInitial { rules, .. } => Ok(rules),
            _ => Err(SigError::BadState("unexpected gx answer")),
        }
    }

    /// Gx CCR-Update: report usage; returns an AMBR override (0 = keep).
    pub fn report_usage(&self, session_id: u32, imsi: u64, ul_bytes: u64, dl_bytes: u64) -> Result<u32> {
        let req = GxMsg::CcrUpdate { session_id, imsi, uplink_bytes: ul_bytes, downlink_bytes: dl_bytes }.encode();
        let rsp = self.pcrf.handle_bytes(&req)?;
        match GxMsg::decode(&rsp)? {
            GxMsg::CcaUpdate { new_ambr_kbps, .. } => Ok(new_ambr_kbps),
            _ => Err(SigError::BadState("unexpected gx answer")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc_backend::hss::{sim_response, SubscriberProfile};

    fn proxy() -> (Proxy, Arc<Hss>, Arc<Pcrf>) {
        let hss = Arc::new(Hss::new());
        hss.provision(7, SubscriberProfile { key: Hss::key_for(7), ambr_kbps: 42_000, default_qci: 8 });
        let pcrf = Arc::new(Pcrf::with_standard_rules());
        let p = Proxy::new(Arc::clone(&hss), Arc::clone(&pcrf), 99, 40401);
        (p, hss, pcrf)
    }

    #[test]
    fn auth_info_roundtrips_through_wire_codecs() {
        let (p, _h, _) = proxy();
        let c = p.authentication_info(7).unwrap();
        assert_eq!(sim_response(Hss::key_for(7), c.rand), c.xres);
    }

    #[test]
    fn unknown_subscriber_surfaces_as_error() {
        let (p, _, _) = proxy();
        assert!(p.authentication_info(999).is_err());
        assert!(p.update_location(999).is_err());
    }

    #[test]
    fn update_location_registers_and_returns_profile() {
        let (p, hss, _) = proxy();
        let d = p.update_location(7).unwrap();
        assert_eq!(d.ambr_kbps, 42_000);
        assert_eq!(d.default_qci, 8);
        assert_eq!(hss.serving_node(7), Some(99));
    }

    #[test]
    fn rules_fetched_over_gx() {
        let (p, _, _) = proxy();
        let rules = p.fetch_rules(1, 7).unwrap();
        assert_eq!(rules.len(), 3);
    }

    #[test]
    fn usage_reports_accumulate_at_pcrf() {
        let (p, _, pcrf) = proxy();
        p.report_usage(1, 7, 100, 200).unwrap();
        p.report_usage(1, 7, 1, 2).unwrap();
        let u = pcrf.usage_for(7);
        assert_eq!(u.uplink_bytes, 101);
        assert_eq!(u.downlink_bytes, 202);
    }
}
