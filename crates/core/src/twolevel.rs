//! Two-level (primary/secondary) state tables — paper §3.2, §4.2, §7.3.
//!
//! "Many current EPC implementations store all user state in a single
//! table. As the number of user devices grows, this table is poorly
//! contained by the CPU cache and hence performance drops." PEPC instead
//! keeps a small **primary** table holding only *active* devices — the
//! one the data plane hits per packet — and a **secondary** table holding
//! everyone else. Idle devices are demoted on a timeout; a packet for a
//! demoted device promotes it back.
//!
//! Ownership note (documented substitution): the paper places the
//! secondary table with the control thread and has the data plane query
//! it on a miss. Here both levels live in the structure owned by the data
//! thread and promotion happens in-line at the miss; the control thread
//! triggers demotion via the slice's command channel. The cache behaviour
//! under measurement — per-packet lookups touching a table sized by
//! *active* users instead of *all* users — is identical, without a
//! synchronous cross-thread round-trip per miss.
//!
//! Both levels are backed by [`IncrementalTable`] (DESIGN.md §16): a
//! mass-attach ramp grows them a bounded number of relocations at a
//! time (no stop-the-world rehash on the data path), and a mass detach
//! shrinks them back instead of holding peak capacity forever.
//!
//! The table is generic over the value (the slice stores slab
//! [`crate::slab::UeHandle`]s) and is **not** internally synchronized:
//! it belongs to exactly one thread, per PEPC's single-writer
//! discipline.

use crate::inctable::IncrementalTable;
use std::hash::{BuildHasherDefault, Hasher};

/// splitmix64 finalizer (Vigna) — bijective, full avalanche, a few
/// cycles. Shared by [`KeyHasher`], the [`IncrementalTable`] probe, and
/// the software-RSS shard steering in [`crate::shard`], so a table key
/// and its owning shard are derived from the same mix.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hasher for integer keys (TEIDs / UE IPs widened to u64) in the std
/// `HashMap`s that remain on control-rate paths.
///
/// The default SipHash costs more per lookup than the probe itself on
/// this path — and its DoS hardening buys nothing here: keys are
/// operator-assigned tunnel identifiers, not attacker-chosen input. One
/// splitmix64 finalizer pass gives full-avalanche mixing at a few
/// cycles.
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(x);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64-keyed maps): FNV-1a.
        let mut h = if self.0 == 0 { 0xCBF2_9CE4_8422_2325 } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`KeyHasher`] into the std `HashMap`.
pub type BuildKeyHasher = BuildHasherDefault<KeyHasher>;

struct Entry<V> {
    value: V,
    last_touch_ns: u64,
}

/// Counters describing table churn, used by the Figure 14 harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoLevelStats {
    pub primary_hits: u64,
    pub promotions: u64,
    pub demotions: u64,
    pub misses: u64,
}

/// A primary/secondary keyed table (keys are TEIDs or UE IPs widened to
/// `u64`).
pub struct TwoLevelTable<V> {
    primary: IncrementalTable<Entry<V>>,
    secondary: IncrementalTable<V>,
    /// When false, the table degenerates to a single flat table (the
    /// baseline of Figure 14): everything lives in `primary` and nothing
    /// is ever demoted.
    enabled: bool,
    idle_timeout_ns: u64,
    stats: TwoLevelStats,
}

impl<V> TwoLevelTable<V> {
    /// A two-level table demoting entries idle for `idle_timeout_ns`.
    pub fn new(expected_users: usize, idle_timeout_ns: u64) -> Self {
        TwoLevelTable {
            primary: IncrementalTable::with_capacity(1024.min(expected_users.max(16))),
            secondary: IncrementalTable::with_capacity(expected_users),
            enabled: true,
            idle_timeout_ns,
            stats: TwoLevelStats::default(),
        }
    }

    /// A single flat table (two-level machinery disabled) — the
    /// comparison baseline.
    pub fn new_single(expected_users: usize) -> Self {
        TwoLevelTable {
            primary: IncrementalTable::with_capacity(expected_users),
            secondary: IncrementalTable::new(),
            enabled: false,
            idle_timeout_ns: u64::MAX,
            stats: TwoLevelStats::default(),
        }
    }

    /// True when running in two-level mode.
    pub fn is_two_level(&self) -> bool {
        self.enabled
    }

    /// Insert an *active* user (fresh attach): goes to the primary table.
    pub fn insert_active(&mut self, key: u64, value: V, now_ns: u64) {
        self.secondary.remove(key);
        self.primary.insert(key, Entry { value, last_touch_ns: now_ns });
    }

    /// Insert an *idle* user directly into the secondary table (bulk
    /// provisioning, or the single-table baseline's population — in
    /// single-table mode this still lands in the flat table).
    pub fn insert_idle(&mut self, key: u64, value: V) {
        if self.enabled {
            self.primary.remove(key);
            self.secondary.insert(key, value);
        } else {
            self.primary.insert(key, Entry { value, last_touch_ns: 0 });
        }
    }

    /// Data-path lookup: primary hit refreshes the activity stamp; a
    /// primary miss consults the secondary table and promotes.
    #[inline]
    pub fn get(&mut self, key: u64, now_ns: u64) -> Option<&V> {
        // The hit path is a single probe: `locate` returns a borrow-free
        // bucket address, reused for the stamp refresh and the return.
        if let Some(loc) = self.primary.locate(key) {
            self.stats.primary_hits += 1;
            let e = self.primary.at_mut(loc);
            e.last_touch_ns = now_ns;
            return Some(&e.value);
        }
        if self.enabled {
            if let Some(v) = self.secondary.remove(key) {
                self.stats.promotions += 1;
                self.primary.insert(key, Entry { value: v, last_touch_ns: now_ns });
                let loc = self.primary.locate(key).expect("just inserted");
                return Some(&self.primary.at(loc).value);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Non-mutating lookup: no promotion, no activity refresh, no stats.
    /// Used by the burst path to find the address to software-prefetch
    /// ahead of the real [`Self::get`].
    #[inline]
    pub fn peek(&self, key: u64) -> Option<&V> {
        if let Some(loc) = self.primary.locate(key) {
            return Some(&self.primary.at(loc).value);
        }
        self.secondary.get(key)
    }

    /// Remove a user entirely (detach / migration). Returns the value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if let Some(e) = self.primary.remove(key) {
            return Some(e.value);
        }
        self.secondary.remove(key)
    }

    /// Demote one user to the secondary table regardless of activity.
    /// Returns true if it was in the primary table.
    pub fn demote(&mut self, key: u64) -> bool {
        if !self.enabled {
            return false;
        }
        match self.primary.remove(key) {
            Some(e) => {
                self.stats.demotions += 1;
                self.secondary.insert(key, e.value);
                true
            }
            None => false,
        }
    }

    /// Demote every user idle since before `now_ns - idle_timeout`;
    /// returns how many moved. The slice control loop calls this
    /// periodically.
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        if !self.enabled {
            return 0;
        }
        let cutoff = now_ns.saturating_sub(self.idle_timeout_ns);
        let idle: Vec<u64> = self.primary.iter().filter(|(_, e)| e.last_touch_ns < cutoff).map(|(k, _)| k).collect();
        let n = idle.len();
        for k in idle {
            self.demote(k);
        }
        n
    }

    /// Step any in-progress incremental resize in both levels without
    /// mutating entries (idle-cycle housekeeping).
    pub fn maintain(&mut self) {
        self.primary.maintain();
        self.secondary.maintain();
    }

    /// Whether either level has an incremental resize in flight.
    pub fn is_migrating(&self) -> bool {
        self.primary.is_migrating() || self.secondary.is_migrating()
    }

    /// Users in the (hot) primary table.
    pub fn primary_len(&self) -> usize {
        self.primary.len()
    }

    /// Users in the secondary table.
    pub fn secondary_len(&self) -> usize {
        self.secondary.len()
    }

    /// Total users.
    pub fn len(&self) -> usize {
        self.primary.len() + self.secondary.len()
    }

    /// True when the table holds no users.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bucket count across both levels (capacity audit).
    pub fn capacity(&self) -> usize {
        self.primary.capacity() + self.secondary.capacity()
    }

    /// Resident bytes across both levels (memory gauge).
    pub fn bytes(&self) -> u64 {
        self.primary.bytes() + self.secondary.bytes()
    }

    /// Churn statistics.
    pub fn stats(&self) -> TwoLevelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_insert_lands_in_primary() {
        let mut t = TwoLevelTable::new(100, 1000);
        t.insert_active(5, "a", 0);
        assert_eq!(t.primary_len(), 1);
        assert_eq!(t.secondary_len(), 0);
        assert_eq!(t.get(5, 1), Some(&"a"));
        assert_eq!(t.stats().primary_hits, 1);
    }

    #[test]
    fn idle_insert_promotes_on_first_packet() {
        let mut t = TwoLevelTable::new(100, 1000);
        t.insert_idle(5, "a");
        assert_eq!(t.primary_len(), 0);
        assert_eq!(t.secondary_len(), 1);
        assert_eq!(t.get(5, 10), Some(&"a"));
        assert_eq!(t.primary_len(), 1, "promoted");
        assert_eq!(t.secondary_len(), 0);
        assert_eq!(t.stats().promotions, 1);
    }

    #[test]
    fn unknown_key_counts_a_miss() {
        let mut t: TwoLevelTable<u8> = TwoLevelTable::new(10, 1000);
        assert_eq!(t.get(42, 0), None);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn peek_reaches_both_levels_without_side_effects() {
        let mut t = TwoLevelTable::new(10, 1000);
        t.insert_active(1, "p", 0);
        t.insert_idle(2, "s");
        assert_eq!(t.peek(1), Some(&"p"));
        assert_eq!(t.peek(2), Some(&"s"));
        assert_eq!(t.peek(3), None);
        // No promotion, no stats movement.
        assert_eq!(t.primary_len(), 1);
        assert_eq!(t.secondary_len(), 1);
        assert_eq!(t.stats(), TwoLevelStats::default());
    }

    #[test]
    fn idle_eviction_respects_timeout_and_activity() {
        let mut t = TwoLevelTable::new(100, 1000);
        t.insert_active(1, "busy", 0);
        t.insert_active(2, "idle", 0);
        t.get(1, 1500); // refresh user 1
        let evicted = t.evict_idle(2000); // cutoff = 1000
        assert_eq!(evicted, 1);
        assert_eq!(t.primary_len(), 1);
        assert_eq!(t.secondary_len(), 1);
        assert!(t.get(2, 2100).is_some(), "evicted user still reachable");
        assert_eq!(t.primary_len(), 2, "and promoted back by the packet");
    }

    #[test]
    fn demote_moves_without_losing() {
        let mut t = TwoLevelTable::new(10, 1000);
        t.insert_active(1, 11, 0);
        assert!(t.demote(1));
        assert!(!t.demote(1), "already demoted");
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1, 5), Some(&11));
    }

    #[test]
    fn remove_reaches_both_levels() {
        let mut t = TwoLevelTable::new(10, 1000);
        t.insert_active(1, "p", 0);
        t.insert_idle(2, "s");
        assert_eq!(t.remove(1), Some("p"));
        assert_eq!(t.remove(2), Some("s"));
        assert_eq!(t.remove(3), None);
        assert!(t.is_empty());
    }

    #[test]
    fn single_table_mode_never_demotes() {
        let mut t = TwoLevelTable::new_single(100);
        assert!(!t.is_two_level());
        t.insert_idle(1, "x"); // flat mode: still the one table
        assert_eq!(t.primary_len(), 1);
        assert_eq!(t.get(1, 0), Some(&"x"));
        assert_eq!(t.evict_idle(u64::MAX), 0);
        assert!(!t.demote(1));
        assert_eq!(t.primary_len(), 1);
    }

    #[test]
    fn reinsert_active_overwrites_secondary_copy() {
        let mut t = TwoLevelTable::new(10, 1000);
        t.insert_idle(1, "old");
        t.insert_active(1, "new", 5);
        assert_eq!(t.len(), 1, "no duplicate across levels");
        assert_eq!(t.get(1, 6), Some(&"new"));
    }

    #[test]
    fn mass_detach_releases_table_memory() {
        // Regression for the never-shrinks defect: after 90% detach the
        // backing capacity must fall, not hold its peak.
        let mut t = TwoLevelTable::new(16, u64::MAX);
        const N: u64 = 20_000;
        for k in 0..N {
            t.insert_active(k, k, 0);
        }
        let peak = t.capacity();
        let peak_bytes = t.bytes();
        for k in 0..(N * 9 / 10) {
            assert_eq!(t.remove(k), Some(k));
        }
        for _ in 0..2 * peak {
            t.maintain();
        }
        // The occupied level shrinks to ≤ peak/4; allow the (empty,
        // minimum-size) other level's few dozen buckets on top.
        assert!(t.capacity() <= peak / 4 + 64, "capacity {} stuck near peak {peak} after mass detach", t.capacity());
        assert!(t.bytes() <= peak_bytes / 4 + 64 * 32);
        for k in (N * 9 / 10)..N {
            assert_eq!(t.get(k, 1), Some(&k), "survivor {k} lost in shrink");
        }
    }

    #[test]
    fn no_user_lost_under_random_churn() {
        // Property-style check: arbitrary interleavings of promote /
        // demote / evict never lose a user.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut t = TwoLevelTable::new(1000, 50);
        const N: u64 = 500;
        for k in 0..N {
            if k % 2 == 0 {
                t.insert_active(k, k, 0);
            } else {
                t.insert_idle(k, k);
            }
        }
        for step in 0..10_000u64 {
            let k = rng.gen_range(0..N);
            match rng.gen_range(0..3) {
                0 => {
                    assert_eq!(t.get(k, step), Some(&k), "user {k} lost at step {step}");
                }
                1 => {
                    t.demote(k);
                }
                _ => {
                    t.evict_idle(step);
                }
            }
            assert_eq!(t.len(), N as usize);
        }
    }

    // Differential property: the incrementally-resizing table must be
    // observationally identical to the pre-refactor std-HashMap backing
    // under arbitrary insert/remove/promote/demote/touch sequences.
    mod differential {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// The pre-refactor implementation, verbatim semantics: two std
        /// `HashMap`s and the same stats accounting.
        struct ModelTable {
            primary: HashMap<u64, (u64, u64)>, // key -> (value, last_touch)
            secondary: HashMap<u64, u64>,
            stats: TwoLevelStats,
        }

        impl ModelTable {
            fn new() -> Self {
                ModelTable { primary: HashMap::new(), secondary: HashMap::new(), stats: TwoLevelStats::default() }
            }

            fn insert_active(&mut self, k: u64, v: u64, now: u64) {
                self.secondary.remove(&k);
                self.primary.insert(k, (v, now));
            }

            fn insert_idle(&mut self, k: u64, v: u64) {
                self.primary.remove(&k);
                self.secondary.insert(k, v);
            }

            fn get(&mut self, k: u64, now: u64) -> Option<u64> {
                if let Some((v, touch)) = self.primary.get_mut(&k) {
                    *touch = now;
                    self.stats.primary_hits += 1;
                    return Some(*v);
                }
                if let Some(v) = self.secondary.remove(&k) {
                    self.stats.promotions += 1;
                    self.primary.insert(k, (v, now));
                    return Some(v);
                }
                self.stats.misses += 1;
                None
            }

            fn remove(&mut self, k: u64) -> Option<u64> {
                if let Some((v, _)) = self.primary.remove(&k) {
                    return Some(v);
                }
                self.secondary.remove(&k)
            }

            fn demote(&mut self, k: u64) -> bool {
                match self.primary.remove(&k) {
                    Some((v, _)) => {
                        self.stats.demotions += 1;
                        self.secondary.insert(k, v);
                        true
                    }
                    None => false,
                }
            }

            fn evict_idle(&mut self, now: u64, timeout: u64) -> usize {
                let cutoff = now.saturating_sub(timeout);
                let idle: Vec<u64> = self.primary.iter().filter(|(_, (_, t))| *t < cutoff).map(|(k, _)| *k).collect();
                let n = idle.len();
                for k in idle {
                    self.demote(k);
                }
                n
            }
        }

        #[derive(Debug, Clone, Copy)]
        enum Op {
            InsertActive(u64, u64),
            InsertIdle(u64, u64),
            Touch(u64), // data-path get: refresh / promote
            Remove(u64),
            Demote(u64),
            Evict,
            Peek(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..48, any::<u64>()).prop_map(|(k, v)| Op::InsertActive(k, v)),
                (0u64..48, any::<u64>()).prop_map(|(k, v)| Op::InsertIdle(k, v)),
                (0u64..48).prop_map(Op::Touch),
                (0u64..48).prop_map(Op::Remove),
                (0u64..48).prop_map(Op::Demote),
                Just(Op::Evict),
                (0u64..48).prop_map(Op::Peek),
            ]
        }

        proptest! {
            #[test]
            fn matches_pre_refactor_hashmap_backing(ops in proptest::collection::vec(op_strategy(), 0..300)) {
                const TIMEOUT: u64 = 7;
                let mut t: TwoLevelTable<u64> = TwoLevelTable::new(16, TIMEOUT);
                let mut m = ModelTable::new();
                for (now, op) in ops.into_iter().enumerate() {
                    let now = now as u64;
                    match op {
                        Op::InsertActive(k, v) => {
                            t.insert_active(k, v, now);
                            m.insert_active(k, v, now);
                        }
                        Op::InsertIdle(k, v) => {
                            t.insert_idle(k, v);
                            m.insert_idle(k, v);
                        }
                        Op::Touch(k) => prop_assert_eq!(t.get(k, now).copied(), m.get(k, now)),
                        Op::Remove(k) => prop_assert_eq!(t.remove(k), m.remove(k)),
                        Op::Demote(k) => prop_assert_eq!(t.demote(k), m.demote(k)),
                        Op::Evict => prop_assert_eq!(t.evict_idle(now), m.evict_idle(now, TIMEOUT)),
                        Op::Peek(k) => prop_assert_eq!(t.peek(k).copied(), m.secondary.get(&k).copied().or_else(|| m.primary.get(&k).map(|(v, _)| *v))),
                    }
                    prop_assert_eq!(t.primary_len(), m.primary.len());
                    prop_assert_eq!(t.secondary_len(), m.secondary.len());
                    prop_assert_eq!(t.stats(), m.stats);
                }
            }
        }
    }
}
