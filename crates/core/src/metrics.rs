//! Plane-local metrics.
//!
//! Counters the planes update on their own threads (no atomics on the hot
//! path); snapshots cross threads by value.

/// Data-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataMetrics {
    /// Packets entering the pipeline.
    pub rx: u64,
    /// Packets forwarded (uplink toward egress, downlink toward eNodeB).
    pub forwarded: u64,
    /// Packets taking the stateless-IoT fast path (subset of `forwarded`).
    pub iot_fast_path: u64,
    /// Drops: no user state found for the TEID / UE IP.
    pub drop_unknown_user: u64,
    /// Drops: PCEF gate closed.
    pub drop_gate: u64,
    /// Drops: rate enforcement (AMBR/MBR).
    pub drop_qos: u64,
    /// Drops: unparseable packets.
    pub drop_malformed: u64,
    /// Control→data updates applied.
    pub updates_applied: u64,
}

/// Control-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlMetrics {
    /// Completed attach procedures.
    pub attaches: u64,
    /// Rejected attach attempts (auth failure, unknown IMSI).
    pub attach_rejects: u64,
    /// Handover events applied (S1 or X2).
    pub handovers: u64,
    /// Detaches processed.
    pub detaches: u64,
    /// Bearer modifications applied.
    pub bearer_updates: u64,
    /// Users migrated out of this slice.
    pub migrations_out: u64,
    /// Users migrated into this slice.
    pub migrations_in: u64,
    /// S1AP PDUs processed.
    pub s1ap_rx: u64,
    /// Service Requests served (idle→active).
    pub service_requests: u64,
    /// UE context releases (active→idle).
    pub releases: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let d = DataMetrics::default();
        assert_eq!(d.rx + d.forwarded + d.drop_unknown_user, 0);
        let c = CtrlMetrics::default();
        assert_eq!(c.attaches + c.handovers, 0);
    }
}
