//! Plane-local metrics.
//!
//! Counters the planes update on their own threads (no atomics on the hot
//! path); snapshots cross threads by value.
//!
//! The counter structs themselves live in `pepc-telemetry` (together with
//! the latency histograms and snapshot registry) so the fabric and the
//! bench harnesses can consume them without depending on this crate;
//! re-exported here for the existing `crate::metrics::*` call sites.

pub use pepc_telemetry::{CtrlMetrics, DataMetrics};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let d = DataMetrics::default();
        assert_eq!(d.rx + d.forwarded + d.drop_unknown_user, 0);
        let c = CtrlMetrics::default();
        assert_eq!(c.attaches + c.handovers, 0);
    }
}
