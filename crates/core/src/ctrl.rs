//! The slice control plane — paper §3.2 "PEPC control threads", §4.2
//! "Slice control plane".
//!
//! The control thread is the single writer of every user's
//! [`ControlState`]: it runs the attach procedure (full S1AP/NAS against
//! the HSS and PCRF through the node proxy), applies mobility events by
//! rewriting tunnel state *in place* in the shared context (no
//! synchronization messages — the data thread reads the same memory), and
//! manages data-plane table membership through batched [`DpUpdate`]s.
//!
//! Two entry points mirror the paper's two experiment sets (§5.1):
//!
//! * [`ControlPlane::handle_s1ap`] — the real protocol path: S1AP PDUs
//!   carrying NAS, authentication against the HSS, rules from the PCRF
//!   (used with SCTP in Figures 10/11 and the integration tests);
//! * [`ControlPlane::apply_event`] — synthetic state operations
//!   ("attach", "S1 handover") without wire messages, used to drive
//!   signaling load at scale (Figures 5, 6, 12, 13).

use crate::data::DpUpdate;
use crate::inctable::IncrementalTable;
use crate::metrics::CtrlMetrics;
use crate::migrate::UserSnapshot;
use crate::pcef::PcefAction;
use crate::procedure::{Disposition, ProcState, SigMsg, UeMachine, MAILBOX_CAP, PAGING_MAX_RETX, PAGING_RETX_TICKS};
use crate::proxy::Proxy;
use crate::slab::{UeHandle, UeRef, UeSlab};
use crate::state::{ControlState, CounterSnapshot, CounterState, DeviceClass, QosPolicy, Uid};
use pepc_backend::hss::sim_response;
use pepc_net::BpfProgram;
use pepc_sigproto::nas::{cause, NasMsg};
use pepc_sigproto::s1ap::S1apPdu;
use pepc_telemetry::LatencyHistogram;
use std::collections::HashMap;
use std::sync::Arc;

/// Synthetic control events (the paper's at-scale signaling workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEvent {
    /// Attach: allocate state for `imsi`, insert, notify the data plane.
    Attach { imsi: u64 },
    /// S1-based handover: the UE moved to an eNodeB with no X2 link —
    /// rewrite the downlink tunnel endpoint.
    S1Handover { imsi: u64, new_enb_teid: u32, new_enb_ip: u32 },
    /// Modify-bearer: QoS parameters changed.
    ModifyBearer { imsi: u64, ambr_kbps: u32 },
    /// Detach: remove all state.
    Detach { imsi: u64 },
    /// S1 Release: the UE goes idle — data-path suspended (tunnels torn
    /// down, context retained), downlink buffered behind a page.
    Release { imsi: u64 },
}

/// Allocation bases carving a slice's identifier space out of the node's.
#[derive(Debug, Clone, Copy)]
pub struct Allocator {
    pub teid_base: u32,
    pub ue_ip_base: u32,
    pub guti_base: u64,
    pub mme_ue_id_base: u32,
}

/// Where the dispatcher's routing stage sends an inbound PDU.
enum Routed {
    /// Deliver into the owning UE's procedure machine.
    Ue(u64, SigMsg),
    /// Answered (or legally absorbed) at the dispatcher itself.
    Immediate(Vec<S1apPdu>),
    /// Unroutable, undecodable, or MME-originated: discard.
    Discard,
}

/// The control plane of one slice. Owned by exactly one thread.
pub struct ControlPlane {
    /// All users of this slice, keyed by IMSI (globally unique, so
    /// migrated-in users can never collide with local allocations): the
    /// authoritative (secondary-level) table. Values are 8-byte slab
    /// handles into the slice's shared context arena; the table grows
    /// incrementally (bounded relocations per insert — no stop-the-world
    /// rehash under an attach storm) and shrinks after mass detach.
    users: IncrementalTable<UeHandle>,
    by_guti: IncrementalTable<u64>,
    by_mme_ue_id: HashMap<u32, u64>,
    alloc: Allocator,
    next_uid: Uid,
    next_mme_ue_id: u32,
    /// Node parameters.
    gw_ip: u32,
    tac: u16,
    /// Updates awaiting transfer to the data thread (drained by the slice
    /// wiring into the SPSC update ring — Figure 13's batching happens at
    /// the data thread's drain).
    pending_updates: Vec<DpUpdate>,
    /// PCEF rule ids already installed slice-wide.
    installed_rules: std::collections::HashSet<u16>,
    proxy: Option<Arc<Proxy>>,
    /// One procedure machine per UE with signaling in flight (or parked
    /// in its mailbox). Retired as soon as the UE goes quiescent.
    machines: HashMap<u64, UeMachine>,
    /// eNodeB-UE-id → IMSI routing index, maintained by the dispatcher
    /// (the S1 association a UE last signaled on).
    by_enb_ue_id: HashMap<u32, u64>,
    /// UEs in ECM-IDLE: released from the radio but still attached
    /// (context retained). Gates `PageTrigger` staleness. A `BTreeSet`
    /// so iteration stays deterministic.
    idle_ues: std::collections::BTreeSet<u64>,
    /// PDUs emitted by the supervision-timer sweep (paging
    /// retransmissions, post-expiry mailbox drains) — there is no inbound
    /// PDU to answer, so they stage here until the wiring drains them.
    pending_tx: Vec<S1apPdu>,
    /// Current tick on the supervising clock (drives procedure expiry).
    proc_tick: u64,
    metrics: CtrlMetrics,
    /// IMSIs whose control state changed since the last
    /// [`ControlPlane::take_dirty_users`] drain — the replication hook:
    /// an HA layer drains this after applying events and ships a fresh
    /// snapshot per dirty user, without knowing event semantics. A
    /// `BTreeSet` so the drain order is deterministic.
    dirty: std::collections::BTreeSet<u64>,
    /// Per-procedure processing latency (control threads are off the
    /// packet hot path, so these are always recorded).
    attach_ns: LatencyHistogram,
    service_request_ns: LatencyHistogram,
    handover_ns: LatencyHistogram,
    /// Admission control under signaling storms (DESIGN.md §15).
    /// Disabled by default; configured via [`ControlPlane::set_overload`].
    overload: crate::overload::AdmissionControl,
    /// The slice's context arena: contexts live here, the tables above
    /// only hold handles. Shared with the data plane (the slice wiring
    /// passes one slab to both constructors).
    slab: Arc<UeSlab>,
}

impl ControlPlane {
    /// Build a control plane with its own private context arena. `proxy`
    /// is required for the full S1AP path; synthetic events work without
    /// it.
    pub fn new(gw_ip: u32, tac: u16, alloc: Allocator, proxy: Option<Arc<Proxy>>) -> Self {
        Self::with_slab(Arc::new(UeSlab::new()), gw_ip, tac, alloc, proxy)
    }

    /// Build a control plane over a shared context arena.
    pub fn with_slab(slab: Arc<UeSlab>, gw_ip: u32, tac: u16, alloc: Allocator, proxy: Option<Arc<Proxy>>) -> Self {
        ControlPlane {
            users: IncrementalTable::new(),
            by_guti: IncrementalTable::new(),
            by_mme_ue_id: HashMap::new(),
            alloc,
            next_uid: 0,
            next_mme_ue_id: alloc.mme_ue_id_base,
            gw_ip,
            tac,
            pending_updates: Vec::new(),
            installed_rules: std::collections::HashSet::new(),
            proxy,
            machines: HashMap::new(),
            by_enb_ue_id: HashMap::new(),
            idle_ues: std::collections::BTreeSet::new(),
            pending_tx: Vec::new(),
            proc_tick: 0,
            metrics: CtrlMetrics::default(),
            dirty: std::collections::BTreeSet::new(),
            attach_ns: LatencyHistogram::new(),
            service_request_ns: LatencyHistogram::new(),
            handover_ns: LatencyHistogram::new(),
            overload: crate::overload::AdmissionControl::new(crate::config::OverloadConfig::default()),
            slab,
        }
    }

    /// The context arena this plane allocates user state from.
    pub fn slab(&self) -> &Arc<UeSlab> {
        &self.slab
    }

    /// Resident bytes of the IMSI and GUTI indexes (memory gauge).
    pub fn table_bytes(&self) -> u64 {
        self.users.bytes() + self.by_guti.bytes()
    }

    /// Make background progress on index migrations/shrinks (called from
    /// the slice housekeeping tick; inserts and removes also step).
    pub fn maintain_tables(&mut self) {
        self.users.maintain();
        self.by_guti.maintain();
    }

    /// Install an overload/admission policy (the slice wires this from
    /// `SliceConfig::overload` at construction).
    pub fn set_overload(&mut self, cfg: crate::config::OverloadConfig) {
        self.overload.set_config(cfg);
    }

    /// Limiter occupancy gauges: `(tracked eNodeBs, tokens available)`.
    pub fn overload_gauges(&self) -> (u64, u64) {
        (self.overload.tracked_enbs(), self.overload.tokens_available())
    }

    // -- identifier allocation ------------------------------------------------

    fn allocate_uid(&mut self) -> Uid {
        let uid = self.next_uid;
        self.next_uid += 1;
        uid
    }

    /// Gateway-side uplink TEID for a uid.
    pub fn teid_for(&self, uid: Uid) -> u32 {
        self.alloc.teid_base + uid as u32
    }

    /// UE IP for a uid.
    pub fn ue_ip_for(&self, uid: Uid) -> u32 {
        self.alloc.ue_ip_base + uid as u32
    }

    fn guti_for(&self, uid: Uid) -> u64 {
        self.alloc.guti_base + uid
    }

    // -- core state operations (shared by both entry points) -------------------

    /// Data-plane keys (uplink tunnel, UE IP) of a known user, read from
    /// the consolidated state — migrated-in users keep their original
    /// keys, so these are never re-derived arithmetically.
    fn keys_of(&self, imsi: u64) -> Option<(u32, u32)> {
        let ctx = self.slab.resolve(*self.users.get(imsi)?)?;
        let c = ctx.ctrl_read();
        Some((c.tunnels.gw_teid, c.ue_ip))
    }

    /// Create and index a user; queues the data-plane insert. Idempotent
    /// per IMSI (re-attach reuses the context and re-announces it).
    /// `count` controls whether `metrics.attaches` increments here: the
    /// synthetic path counts at once, the S1AP path counts only when the
    /// NAS Attach Complete lands.
    fn do_attach(&mut self, imsi: u64, qos: QosPolicy, device_class: DeviceClass, ecgi: u32, count: bool) {
        let t0 = std::time::Instant::now();
        self.attach_inner(imsi, qos, device_class, ecgi, count);
        self.attach_ns.record(t0.elapsed().as_nanos() as u64);
    }

    fn attach_inner(&mut self, imsi: u64, qos: QosPolicy, device_class: DeviceClass, ecgi: u32, count: bool) {
        self.dirty.insert(imsi);
        if let Some(&handle) = self.users.get(imsi) {
            // Re-attach: refresh and re-announce as active.
            let (gw_teid, ue_ip) = {
                let ctx = self.slab.resolve(handle).expect("indexed handle is live");
                let mut c = ctx.ctrl_write();
                c.ecgi = ecgi;
                c.qos = qos;
                (c.tunnels.gw_teid, c.ue_ip)
            };
            self.pending_updates.push(DpUpdate::Insert { gw_teid, ue_ip, handle, active: true });
            if count {
                self.metrics.attaches += 1;
            }
            return;
        }
        let uid = self.allocate_uid();
        let mut ctrl = ControlState::new(imsi);
        ctrl.guti = self.guti_for(uid);
        ctrl.ue_ip = self.ue_ip_for(uid);
        ctrl.ecgi = ecgi;
        ctrl.tac = self.tac;
        ctrl.qos = qos;
        ctrl.device_class = device_class;
        ctrl.tunnels.gw_teid = self.teid_for(uid);
        let guti = ctrl.guti;
        let gw_teid = ctrl.tunnels.gw_teid;
        let ue_ip = ctrl.ue_ip;
        let handle = self.slab.alloc(ctrl, CounterState::default());
        self.users.insert(imsi, handle);
        self.by_guti.insert(guti, imsi);
        self.pending_updates.push(DpUpdate::Insert { gw_teid, ue_ip, handle, active: true });
        if count {
            self.metrics.attaches += 1;
        }
    }

    fn do_handover(&mut self, imsi: u64, new_enb_teid: u32, new_enb_ip: u32, new_ecgi: u32) -> bool {
        let t0 = std::time::Instant::now();
        match self.users.get(imsi).copied().and_then(|h| self.slab.resolve(h)) {
            Some(ctx) => {
                // The whole point: one in-place write, visible to the data
                // thread through the shared context. No DpUpdate needed.
                {
                    let mut c = ctx.ctrl_write();
                    c.tunnels.enb_teid = new_enb_teid;
                    c.tunnels.enb_ip = new_enb_ip;
                    if new_ecgi != 0 {
                        c.ecgi = new_ecgi;
                    }
                }
                self.metrics.handovers += 1;
                self.dirty.insert(imsi);
                self.handover_ns.record(t0.elapsed().as_nanos() as u64);
                true
            }
            None => false,
        }
    }

    fn do_detach(&mut self, imsi: u64) -> bool {
        match self.users.remove(imsi) {
            Some(handle) => {
                let (guti, gw_teid, ue_ip) = {
                    let ctx = self.slab.resolve(handle).expect("indexed handle is live");
                    let c = ctx.ctrl_read();
                    (c.guti, c.tunnels.gw_teid, c.ue_ip)
                };
                self.by_guti.remove(guti);
                self.idle_ues.remove(&imsi);
                self.pending_updates.push(DpUpdate::Remove { gw_teid, ue_ip });
                self.metrics.detaches += 1;
                self.dirty.insert(imsi);
                self.drop_machine(imsi);
                true
            }
            None => false,
        }
    }

    // -- synthetic events (at-scale signaling workload) ------------------------

    /// Apply one synthetic control event. Returns false for events
    /// referencing unknown users.
    pub fn apply_event(&mut self, ev: CtrlEvent) -> bool {
        match ev {
            CtrlEvent::Attach { imsi } => {
                self.do_attach(imsi, QosPolicy::default(), DeviceClass::Smartphone, 0, true);
                true
            }
            CtrlEvent::S1Handover { imsi, new_enb_teid, new_enb_ip } => {
                self.do_handover(imsi, new_enb_teid, new_enb_ip, 0)
            }
            CtrlEvent::ModifyBearer { imsi, ambr_kbps } => {
                match self.users.get(imsi).copied().and_then(|h| self.slab.resolve(h)) {
                    Some(ctx) => {
                        ctx.ctrl_write().qos.ambr_kbps = ambr_kbps;
                        self.metrics.bearer_updates += 1;
                        self.dirty.insert(imsi);
                        true
                    }
                    None => false,
                }
            }
            CtrlEvent::Detach { imsi } => self.do_detach(imsi),
            CtrlEvent::Release { imsi } => self.suspend_user(imsi),
        }
    }

    // -- full S1AP/NAS path -----------------------------------------------------

    /// Process one S1AP PDU from an eNodeB; returns the PDUs to send back.
    ///
    /// The dispatcher: route the PDU to the owning UE's procedure
    /// machine, apply the machine's [`Disposition`], step it if the
    /// message is delivered, then drain its mailbox while it is idle.
    /// Every inbound PDU lands in exactly one signaling counter
    /// (`sig_consumed` / `proc_deduped` / `sig_dropped`, or it is parked
    /// in a mailbox) — see [`CtrlMetrics::signaling_conservation_holds`].
    pub fn handle_s1ap(&mut self, pdu: &S1apPdu) -> Vec<S1apPdu> {
        self.metrics.s1ap_rx += 1;
        if let Some(reply) = self.admission_check(pdu) {
            return reply;
        }
        match self.route(pdu) {
            Routed::Ue(imsi, msg) => self.deliver(imsi, msg),
            Routed::Immediate(out) => {
                self.metrics.sig_consumed += 1;
                out
            }
            Routed::Discard => {
                self.metrics.sig_dropped += 1;
                vec![]
            }
        }
    }

    /// Consult the overload controller *before* any routing work.
    /// `Some(reply)` means the PDU was shed: it is counted in its
    /// priority class's `sig_shed_*` counter and answered with a NAS
    /// `CongestionReject` carrying the configured back-off, so shed load
    /// is signaled rather than silently dropped.
    fn admission_check(&mut self, pdu: &S1apPdu) -> Option<Vec<S1apPdu>> {
        use crate::overload::{classify_for_admission, SigClass};
        if !self.overload.enabled() {
            return None;
        }
        let (class, ecgi, enb_ue_id, mme_ue_id) = classify_for_admission(pdu)?;
        // In-flight from the accounting identity — O(1), unlike scanning
        // the machine table, which matters mid-storm.
        let m = &self.metrics;
        let in_flight =
            m.proc_started.saturating_sub(m.proc_completed + m.proc_preempted + m.proc_aborted + m.proc_expired);
        if self.overload.admit(class, ecgi, in_flight, self.proc_tick) {
            return None;
        }
        match class {
            SigClass::Handover => self.metrics.sig_shed_handover += 1,
            SigClass::Attach => self.metrics.sig_shed_attach += 1,
            SigClass::Tau => self.metrics.sig_shed_tau += 1,
        }
        Some(vec![S1apPdu::DownlinkNasTransport {
            enb_ue_id,
            mme_ue_id,
            nas: NasMsg::CongestionReject { cause: cause::CONGESTION, backoff_ms: self.overload.backoff_ms() }.encode(),
        }])
    }

    /// Resolve which UE a PDU belongs to. GUTI-addressed NAS routes by
    /// GUTI (it may legally target a different user than the one
    /// signaling on this S1 association); everything else by eNodeB UE
    /// id, falling back to MME UE id.
    fn route(&mut self, pdu: &S1apPdu) -> Routed {
        match pdu {
            S1apPdu::InitialUeMessage { enb_ue_id, ecgi, tac, nas } => match NasMsg::decode(nas) {
                Ok(NasMsg::AttachRequest { imsi, .. }) => {
                    Routed::Ue(imsi, SigMsg::AttachStart { enb_ue_id: *enb_ue_id, ecgi: *ecgi, tac: *tac, imsi })
                }
                Ok(NasMsg::ServiceRequest { guti }) => match self.by_guti.get(guti).copied() {
                    Some(imsi) => Routed::Ue(imsi, SigMsg::ServiceStart { enb_ue_id: *enb_ue_id, ecgi: *ecgi, guti }),
                    // Unknown GUTI: tell the eNodeB to release the UE;
                    // it will re-attach with its IMSI.
                    None => Routed::Immediate(vec![S1apPdu::UeContextReleaseCommand {
                        enb_ue_id: *enb_ue_id,
                        mme_ue_id: 0,
                        cause: cause::ILLEGAL_UE,
                    }]),
                },
                _ => Routed::Discard,
            },
            S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas } => {
                let msg = match NasMsg::decode(nas) {
                    Ok(m) => m,
                    Err(_) => return Routed::Discard,
                };
                let imsi = match &msg {
                    NasMsg::DetachRequest { guti } | NasMsg::TrackingAreaUpdateRequest { guti, .. } => {
                        self.by_guti.get(*guti).copied()
                    }
                    _ => {
                        self.by_enb_ue_id.get(enb_ue_id).copied().or_else(|| self.by_mme_ue_id.get(mme_ue_id).copied())
                    }
                };
                match imsi {
                    Some(imsi) => Routed::Ue(imsi, SigMsg::Nas { enb_ue_id: *enb_ue_id, mme_ue_id: *mme_ue_id, msg }),
                    None => Routed::Discard,
                }
            }
            S1apPdu::InitialContextSetupResponse { enb_ue_id, mme_ue_id, enb_teid, enb_ip } => {
                match self.by_enb_ue_id.get(enb_ue_id).copied().or_else(|| self.by_mme_ue_id.get(mme_ue_id).copied()) {
                    Some(imsi) => Routed::Ue(
                        imsi,
                        SigMsg::IcsRsp {
                            enb_ue_id: *enb_ue_id,
                            mme_ue_id: *mme_ue_id,
                            enb_teid: *enb_teid,
                            enb_ip: *enb_ip,
                        },
                    ),
                    None => Routed::Discard,
                }
            }
            S1apPdu::PathSwitchRequest { enb_ue_id, mme_ue_id, new_enb_teid, new_enb_ip, ecgi } => {
                match self.by_mme_ue_id.get(mme_ue_id).copied() {
                    Some(imsi) => Routed::Ue(
                        imsi,
                        SigMsg::PathSwitch {
                            enb_ue_id: *enb_ue_id,
                            mme_ue_id: *mme_ue_id,
                            new_enb_teid: *new_enb_teid,
                            new_enb_ip: *new_enb_ip,
                            ecgi: *ecgi,
                        },
                    ),
                    None => Routed::Discard,
                }
            }
            S1apPdu::HandoverRequired { enb_ue_id, mme_ue_id, target_ecgi: _ } => {
                match self.by_mme_ue_id.get(mme_ue_id).copied() {
                    Some(imsi) => Routed::Ue(imsi, SigMsg::HoRequired { enb_ue_id: *enb_ue_id, mme_ue_id: *mme_ue_id }),
                    None => Routed::Discard,
                }
            }
            S1apPdu::HandoverRequestAck { mme_ue_id, new_enb_teid, new_enb_ip } => {
                match self.by_mme_ue_id.get(mme_ue_id).copied() {
                    Some(imsi) => Routed::Ue(
                        imsi,
                        SigMsg::HoAck { mme_ue_id: *mme_ue_id, new_enb_teid: *new_enb_teid, new_enb_ip: *new_enb_ip },
                    ),
                    None => Routed::Discard,
                }
            }
            S1apPdu::UeContextReleaseRequest { enb_ue_id, mme_ue_id, cause } => {
                match self.by_mme_ue_id.get(mme_ue_id).copied().or_else(|| self.by_enb_ue_id.get(enb_ue_id).copied()) {
                    Some(imsi) => Routed::Ue(
                        imsi,
                        SigMsg::ReleaseReq { enb_ue_id: *enb_ue_id, mme_ue_id: *mme_ue_id, cause: *cause },
                    ),
                    None => Routed::Discard,
                }
            }
            // A completed release needs no further action.
            S1apPdu::UeContextReleaseComplete { .. } => Routed::Immediate(vec![]),
            // MME-originated PDUs arriving inbound are protocol errors;
            // ignore them rather than crash the control thread.
            _ => Routed::Discard,
        }
    }

    /// Check the UE's machine out of the table, deliver the message, then
    /// drain the mailbox for as long as the machine stays idle (each
    /// drained message may itself start a procedure and stop the drain).
    fn deliver(&mut self, imsi: u64, msg: SigMsg) -> Vec<S1apPdu> {
        let mut m = self.machines.remove(&imsi).unwrap_or_else(|| UeMachine::new(imsi, self.proc_tick));
        let mut out = self.deliver_one(&mut m, msg);
        while !m.in_flight() {
            match m.mailbox.pop_front() {
                Some(next) => {
                    let more = self.deliver_one(&mut m, next);
                    out.extend(more);
                }
                None => break,
            }
        }
        self.retire_or_keep(m);
        out
    }

    /// Apply the machine's disposition for one message.
    fn deliver_one(&mut self, m: &mut UeMachine, msg: SigMsg) -> Vec<S1apPdu> {
        m.last_progress = self.proc_tick;
        match m.dispose(&msg) {
            Disposition::Deliver => {
                self.metrics.sig_consumed += 1;
                self.step(m, msg)
            }
            Disposition::Dedup => {
                self.metrics.proc_deduped += 1;
                m.last_tx.clone()
            }
            Disposition::Defer => {
                if m.mailbox.len() >= MAILBOX_CAP {
                    // A MAILBOX_CAP hit is its own drop cause: mailbox
                    // pressure must be distinguishable from protocol
                    // discards when reading a storm's metrics.
                    self.metrics.sig_overflow += 1;
                    // An overflowed service request gets an explicit
                    // congestion answer so the UE backs off.
                    if let SigMsg::ServiceStart { enb_ue_id, .. } = msg {
                        vec![S1apPdu::DownlinkNasTransport {
                            enb_ue_id,
                            mme_ue_id: 0,
                            nas: NasMsg::ServiceReject { cause: cause::CONGESTION }.encode(),
                        }]
                    } else {
                        vec![]
                    }
                } else {
                    self.metrics.sig_deferred += 1;
                    m.mailbox.push_back(msg);
                    vec![]
                }
            }
            Disposition::Preempt => {
                self.abort_machine(m);
                self.metrics.proc_preempted += 1;
                self.metrics.sig_consumed += 1;
                self.step(m, msg)
            }
            Disposition::Abort => {
                let (enb_ue_id, mme_ue_id) = match &msg {
                    SigMsg::Nas { enb_ue_id, mme_ue_id, .. } => (*enb_ue_id, *mme_ue_id),
                    _ => (m.enb_ue_id, 0),
                };
                self.abort_machine(m);
                self.metrics.proc_aborted += 1;
                self.metrics.sig_consumed += 1;
                let out = vec![S1apPdu::DownlinkNasTransport {
                    enb_ue_id,
                    mme_ue_id,
                    nas: NasMsg::AttachReject { cause: cause::PROTOCOL_ERROR }.encode(),
                }];
                m.last_tx = out.clone();
                out
            }
            Disposition::Drop => {
                self.metrics.sig_dropped += 1;
                vec![]
            }
        }
    }

    /// Tear down the in-flight procedure: roll back a half-created attach
    /// (unless the user record predates the procedure) and reset the
    /// machine to `Idle`. The caller accounts the outcome
    /// (preempted/aborted/expired).
    fn abort_machine(&mut self, m: &mut UeMachine) {
        let rollback = match m.state {
            ProcState::AttachWaitIcs { imsi, .. } | ProcState::AttachWaitComplete { imsi, .. } if !m.preexisting => {
                Some(imsi)
            }
            _ => None,
        };
        if let Some(imsi) = rollback {
            if self.users.contains_key(imsi) {
                self.by_mme_ue_id.retain(|_, u| *u != imsi);
                self.do_detach(imsi);
                // Rollback of a never-completed attach, not a real detach.
                self.metrics.detaches -= 1;
            }
        }
        // A preempted/aborted page closes its side of the paging identity
        // here. No explicit buffer drop: the preemptor either removes the
        // user (detach — `Remove` drops the buffer) or re-activates it
        // (attach — `Insert` flushes the buffer).
        if let ProcState::PagingWait { mme_ue_id, .. } = m.state {
            self.metrics.paging_expired += 1;
            self.by_mme_ue_id.remove(&mme_ue_id);
        }
        m.state = ProcState::Idle;
        m.preexisting = false;
        m.last_tx.clear();
    }

    /// A delivered message mutates the control plane here. Sets
    /// `last_tx` so retransmissions can be answered idempotently.
    fn step(&mut self, m: &mut UeMachine, msg: SigMsg) -> Vec<S1apPdu> {
        let out = match msg {
            SigMsg::AttachStart { enb_ue_id, ecgi, .. } => self.step_attach_start(m, enb_ue_id, ecgi),
            SigMsg::ServiceStart { enb_ue_id, ecgi, guti } => self.step_service_start(m, enb_ue_id, ecgi, guti),
            SigMsg::Nas { enb_ue_id, mme_ue_id, msg } => self.step_nas(m, enb_ue_id, mme_ue_id, msg),
            SigMsg::IcsRsp { enb_teid, enb_ip, .. } => self.step_ics_rsp(m, enb_teid, enb_ip),
            SigMsg::PathSwitch { enb_ue_id, mme_ue_id, new_enb_teid, new_enb_ip, ecgi } => {
                self.step_path_switch(m, enb_ue_id, mme_ue_id, new_enb_teid, new_enb_ip, ecgi)
            }
            SigMsg::HoRequired { enb_ue_id, mme_ue_id } => self.step_ho_required(m, enb_ue_id, mme_ue_id),
            SigMsg::HoAck { new_enb_teid, new_enb_ip, .. } => self.step_ho_ack(m, new_enb_teid, new_enb_ip),
            SigMsg::ReleaseReq { enb_ue_id, mme_ue_id, .. } => self.step_release(m, enb_ue_id, mme_ue_id),
            SigMsg::PageTrigger { .. } => self.step_page_trigger(m),
            SigMsg::NetDetach { .. } => self.step_net_detach(m),
        };
        m.last_tx = out.clone();
        out
    }

    fn step_attach_start(&mut self, m: &mut UeMachine, enb_ue_id: u32, ecgi: u32) -> Vec<S1apPdu> {
        let imsi = m.imsi;
        m.enb_ue_id = enb_ue_id;
        self.by_enb_ue_id.insert(enb_ue_id, imsi);
        if let Some(&handle) = self.users.get(imsi) {
            // Duplicate attach for an already-attached IMSI (the UE lost
            // our earlier accept): idempotent. Skip re-authentication and
            // re-emit the context setup with the SAME identifiers —
            // nothing is reallocated.
            let (guti, ue_ip, gw_teid, ambr) = {
                let ctx = self.slab.resolve(handle).expect("indexed handle is live");
                let mut c = ctx.ctrl_write();
                c.ecgi = ecgi;
                (c.guti, c.ue_ip, c.tunnels.gw_teid, c.qos.ambr_kbps)
            };
            self.pending_updates.push(DpUpdate::Insert { gw_teid, ue_ip, handle, active: true });
            self.idle_ues.remove(&imsi);
            self.dirty.insert(imsi);
            let mme_ue_id = match self.by_mme_ue_id.iter().filter(|(_, u)| **u == imsi).map(|(id, _)| *id).min() {
                Some(id) => id,
                None => {
                    let id = self.next_mme_ue_id;
                    self.next_mme_ue_id += 1;
                    self.by_mme_ue_id.insert(id, imsi);
                    id
                }
            };
            self.metrics.proc_started += 1;
            m.preexisting = true;
            m.state = ProcState::AttachWaitIcs { imsi, mme_ue_id };
            return vec![S1apPdu::InitialContextSetupRequest {
                enb_ue_id,
                mme_ue_id,
                gw_teid,
                gw_ip: self.gw_ip,
                ambr_kbps: ambr,
                nas: NasMsg::AttachAccept { guti, ue_ip, tac: self.tac }.encode(),
            }];
        }
        // Fresh attach: authenticate against the HSS.
        let proxy = match &self.proxy {
            Some(p) => Arc::clone(p),
            None => return vec![],
        };
        let mme_ue_id = self.next_mme_ue_id;
        self.next_mme_ue_id += 1;
        match proxy.authentication_info(imsi) {
            Ok(ch) => {
                self.metrics.proc_started += 1;
                m.state = ProcState::AttachWaitAuth { imsi, xres: ch.xres, ecgi, mme_ue_id };
                vec![S1apPdu::DownlinkNasTransport {
                    enb_ue_id,
                    mme_ue_id,
                    nas: NasMsg::AuthenticationRequest { rand: ch.rand, autn: ch.autn }.encode(),
                }]
            }
            Err(_) => {
                self.metrics.attach_rejects += 1;
                self.metrics.proc_started += 1;
                self.metrics.proc_aborted += 1;
                vec![S1apPdu::DownlinkNasTransport {
                    enb_ue_id,
                    mme_ue_id,
                    nas: NasMsg::AttachReject { cause: cause::IMSI_UNKNOWN }.encode(),
                }]
            }
        }
    }

    /// Idle→active: a Service Request re-activates a known (idle) user.
    /// The user's context is re-announced to the data plane as *active*,
    /// promoting it back into the primary table.
    fn step_service_start(&mut self, m: &mut UeMachine, enb_ue_id: u32, ecgi: u32, guti: u64) -> Vec<S1apPdu> {
        let t0 = std::time::Instant::now();
        m.enb_ue_id = enb_ue_id;
        // Re-check: a deferred service request may outlive the user.
        if self.by_guti.get(guti).copied() != Some(m.imsi) {
            return vec![S1apPdu::UeContextReleaseCommand { enb_ue_id, mme_ue_id: 0, cause: cause::ILLEGAL_UE }];
        }
        let imsi = m.imsi;
        self.by_enb_ue_id.insert(enb_ue_id, imsi);
        // The UE answered a page: the paging procedure resolves here and
        // the service request takes over (its Insert wakes the data path
        // and flushes the idle buffer).
        if let ProcState::PagingWait { mme_ue_id: page_id, .. } = m.state {
            self.metrics.proc_completed += 1;
            self.metrics.paging_resolved += 1;
            self.by_mme_ue_id.remove(&page_id);
            m.state = ProcState::Idle;
        }
        self.idle_ues.remove(&imsi);
        let handle = *self.users.get(imsi).expect("GUTI check above resolved the user");
        let (gw_teid, ue_ip) = {
            let ctx = self.slab.resolve(handle).expect("indexed handle is live");
            let mut c = ctx.ctrl_write();
            if ecgi != 0 {
                c.ecgi = ecgi;
            }
            (c.tunnels.gw_teid, c.ue_ip)
        };
        self.pending_updates.push(DpUpdate::Insert { gw_teid, ue_ip, handle, active: true });
        let mme_ue_id = self.next_mme_ue_id;
        self.next_mme_ue_id += 1;
        self.by_mme_ue_id.insert(mme_ue_id, imsi);
        self.metrics.service_requests += 1;
        self.metrics.proc_started += 1;
        self.metrics.proc_completed += 1;
        self.dirty.insert(imsi);
        self.service_request_ns.record(t0.elapsed().as_nanos() as u64);
        vec![S1apPdu::DownlinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::ServiceAccept.encode() }]
    }

    fn step_nas(&mut self, m: &mut UeMachine, enb_ue_id: u32, mme_ue_id: u32, msg: NasMsg) -> Vec<S1apPdu> {
        match (m.state, msg) {
            (ProcState::AttachWaitAuth { imsi, xres, ecgi, mme_ue_id: id }, NasMsg::AuthenticationResponse { res }) => {
                if res == xres {
                    m.state = ProcState::AttachWaitSmc { imsi, ecgi, mme_ue_id: id };
                    vec![S1apPdu::DownlinkNasTransport {
                        enb_ue_id,
                        mme_ue_id: id,
                        nas: NasMsg::SecurityModeCommand { integrity_alg: 2, ciphering_alg: 1 }.encode(),
                    }]
                } else {
                    self.metrics.attach_rejects += 1;
                    self.metrics.proc_aborted += 1;
                    m.state = ProcState::Idle;
                    vec![S1apPdu::DownlinkNasTransport {
                        enb_ue_id,
                        mme_ue_id: id,
                        nas: NasMsg::AuthenticationReject { cause: cause::AUTH_FAILURE }.encode(),
                    }]
                }
            }
            (ProcState::AttachWaitSmc { imsi, ecgi, mme_ue_id: id }, NasMsg::SecurityModeComplete) => {
                let proxy = match &self.proxy {
                    Some(p) => Arc::clone(p),
                    None => {
                        self.metrics.proc_aborted += 1;
                        m.state = ProcState::Idle;
                        return vec![];
                    }
                };
                // Pull the subscription profile and policy rules.
                let sub = match proxy.update_location(imsi) {
                    Ok(s) => s,
                    Err(_) => {
                        self.metrics.attach_rejects += 1;
                        self.metrics.proc_aborted += 1;
                        m.state = ProcState::Idle;
                        return vec![S1apPdu::DownlinkNasTransport {
                            enb_ue_id,
                            mme_ue_id: id,
                            nas: NasMsg::AttachReject { cause: cause::NETWORK_FAILURE }.encode(),
                        }];
                    }
                };
                let qos = QosPolicy { qci: sub.default_qci, ambr_kbps: sub.ambr_kbps, gbr_kbps: 0 };
                // Counted on AttachComplete instead.
                self.do_attach(imsi, qos, DeviceClass::Smartphone, ecgi, false);
                self.by_mme_ue_id.insert(id, imsi);
                let handle = *self.users.get(imsi).expect("do_attach just indexed the user");
                // Install PCRF rules.
                if let Ok(rules) = proxy.fetch_rules(id, imsi) {
                    let ctx = self.slab.resolve(handle).expect("indexed handle is live");
                    let mut c = ctx.ctrl_write();
                    for r in rules {
                        if self.installed_rules.insert(r.rule_id as u16) {
                            self.pending_updates.push(rule_to_update(&r));
                        }
                        c.pcef_rules.push(r.rule_id as u16);
                    }
                }
                let (guti, ue_ip, gw_teid, ambr) = {
                    let ctx = self.slab.resolve(handle).expect("indexed handle is live");
                    let c = ctx.ctrl_read();
                    (c.guti, c.ue_ip, c.tunnels.gw_teid, c.qos.ambr_kbps)
                };
                m.state = ProcState::AttachWaitIcs { imsi, mme_ue_id: id };
                vec![S1apPdu::InitialContextSetupRequest {
                    enb_ue_id,
                    mme_ue_id: id,
                    gw_teid,
                    gw_ip: self.gw_ip,
                    ambr_kbps: ambr,
                    nas: NasMsg::AttachAccept { guti, ue_ip, tac: self.tac }.encode(),
                }]
            }
            (ProcState::AttachWaitComplete { .. }, NasMsg::AttachComplete) => {
                self.metrics.attaches += 1;
                self.metrics.proc_completed += 1;
                m.state = ProcState::Idle;
                m.preexisting = false;
                vec![]
            }
            (_, NasMsg::DetachRequest { guti }) => {
                // Single-shot procedure; routing already resolved the
                // GUTI, but re-resolve in case a preemption rollback just
                // removed the user.
                match self.by_guti.get(guti).copied() {
                    Some(user_imsi) => {
                        self.by_mme_ue_id.retain(|_, u| *u != user_imsi);
                        self.do_detach(user_imsi);
                        self.metrics.proc_started += 1;
                        self.metrics.proc_completed += 1;
                        vec![S1apPdu::DownlinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::DetachAccept.encode() }]
                    }
                    None => vec![],
                }
            }
            (_, NasMsg::TrackingAreaUpdateRequest { guti, tac }) => match self.by_guti.get(guti).copied() {
                Some(user_imsi) => {
                    {
                        let h = *self.users.get(user_imsi).expect("GUTI index is consistent");
                        self.slab.resolve(h).expect("indexed handle is live").ctrl_write().tac = tac;
                    }
                    self.dirty.insert(user_imsi);
                    self.metrics.proc_started += 1;
                    self.metrics.proc_completed += 1;
                    vec![S1apPdu::DownlinkNasTransport {
                        enb_ue_id,
                        mme_ue_id,
                        nas: NasMsg::TrackingAreaUpdateAccept { tac }.encode(),
                    }]
                }
                None => vec![],
            },
            // Delivered into Idle but meaningless there (stray
            // AttachComplete after completion, etc.): consumed, no-op.
            _ => vec![],
        }
    }

    fn step_ics_rsp(&mut self, m: &mut UeMachine, enb_teid: u32, enb_ip: u32) -> Vec<S1apPdu> {
        if let ProcState::AttachWaitIcs { imsi, mme_ue_id } = m.state {
            if let Some(ctx) = self.users.get(imsi).copied().and_then(|h| self.slab.resolve(h)) {
                let mut c = ctx.ctrl_write();
                c.tunnels.enb_teid = enb_teid;
                c.tunnels.enb_ip = enb_ip;
                drop(c);
                self.dirty.insert(imsi);
            }
            m.state = ProcState::AttachWaitComplete { imsi, mme_ue_id };
        }
        vec![]
    }

    fn step_path_switch(
        &mut self,
        m: &mut UeMachine,
        enb_ue_id: u32,
        mme_ue_id: u32,
        new_enb_teid: u32,
        new_enb_ip: u32,
        ecgi: u32,
    ) -> Vec<S1apPdu> {
        // Re-check: a deferred path switch may outlive the session.
        if self.by_mme_ue_id.get(&mme_ue_id).copied() != Some(m.imsi) {
            return vec![];
        }
        if self.do_handover(m.imsi, new_enb_teid, new_enb_ip, ecgi) {
            self.metrics.proc_started += 1;
            self.metrics.proc_completed += 1;
            vec![S1apPdu::PathSwitchRequestAck { enb_ue_id, mme_ue_id }]
        } else {
            vec![]
        }
    }

    fn step_ho_required(&mut self, m: &mut UeMachine, enb_ue_id: u32, mme_ue_id: u32) -> Vec<S1apPdu> {
        if self.by_mme_ue_id.get(&mme_ue_id).copied() != Some(m.imsi) {
            return vec![];
        }
        let imsi = m.imsi;
        let (gw_teid, ambr) = match self.users.get(imsi).copied().and_then(|h| self.slab.resolve(h)) {
            Some(ctx) => {
                let c = ctx.ctrl_read();
                (c.tunnels.gw_teid, c.qos.ambr_kbps)
            }
            None => return vec![],
        };
        self.metrics.proc_started += 1;
        m.enb_ue_id = enb_ue_id;
        self.by_enb_ue_id.insert(enb_ue_id, imsi);
        m.state = ProcState::HandoverWaitAck { imsi, source_enb_ue_id: enb_ue_id, mme_ue_id };
        // Addressed to the *target* eNodeB (the node layer routes it
        // there).
        vec![S1apPdu::HandoverRequest { mme_ue_id, gw_teid, gw_ip: self.gw_ip, ambr_kbps: ambr }]
    }

    fn step_ho_ack(&mut self, m: &mut UeMachine, new_enb_teid: u32, new_enb_ip: u32) -> Vec<S1apPdu> {
        if let ProcState::HandoverWaitAck { imsi, source_enb_ue_id, mme_ue_id } = m.state {
            self.do_handover(imsi, new_enb_teid, new_enb_ip, 0);
            m.state = ProcState::Idle;
            self.metrics.proc_completed += 1;
            vec![S1apPdu::HandoverCommand { enb_ue_id: source_enb_ue_id, mme_ue_id }]
        } else {
            // Stray ack delivered into Idle: consumed, no-op.
            vec![]
        }
    }

    /// S1 Release (active→idle): suspend the user's data path — tunnels
    /// torn down, context retained — and answer with the release command.
    /// Single-shot: the UE stays attached and reachable via paging.
    fn step_release(&mut self, m: &mut UeMachine, enb_ue_id: u32, mme_ue_id: u32) -> Vec<S1apPdu> {
        let imsi = m.imsi;
        // Re-check: a deferred release may outlive the user.
        if !self.users.contains_key(imsi) {
            return vec![];
        }
        self.metrics.proc_started += 1;
        self.metrics.proc_completed += 1;
        if self.suspend_user(imsi) {
            self.metrics.releases += 1;
        }
        vec![S1apPdu::UeContextReleaseCommand { enb_ue_id, mme_ue_id, cause: cause::SUCCESS }]
    }

    /// Network-triggered paging: downlink arrived for an idle UE. Start a
    /// `PagingWait` procedure and emit the paging PDU; the supervision
    /// tick retransmits it until the UE answers with a Service Request or
    /// the retry budget is exhausted.
    fn step_page_trigger(&mut self, m: &mut UeMachine) -> Vec<S1apPdu> {
        let imsi = m.imsi;
        // Stale trigger: the UE re-activated or detached before the
        // trigger drained. Consumed as a no-op.
        if !self.idle_ues.contains(&imsi) {
            return vec![];
        }
        let Some(handle) = self.users.get(imsi).copied() else { return vec![] };
        let guti = match self.slab.resolve(handle) {
            Some(ctx) => ctx.ctrl_read().guti,
            None => return vec![],
        };
        let mme_ue_id = self.next_mme_ue_id;
        self.next_mme_ue_id += 1;
        self.by_mme_ue_id.insert(mme_ue_id, imsi);
        self.metrics.paged += 1;
        self.metrics.proc_started += 1;
        m.state = ProcState::PagingWait {
            imsi,
            mme_ue_id,
            retries: 0,
            next_retx: self.proc_tick.saturating_add(PAGING_RETX_TICKS),
        };
        vec![S1apPdu::Paging { mme_ue_id, guti }]
    }

    /// Network-triggered detach (subscription withdrawn, operator
    /// action): tear the user down and tell the UE and the eNodeB.
    /// Single-shot; preempts any in-flight procedure via `dispose`.
    fn step_net_detach(&mut self, m: &mut UeMachine) -> Vec<S1apPdu> {
        let imsi = m.imsi;
        if !self.users.contains_key(imsi) {
            return vec![];
        }
        let enb_ue_id = m.enb_ue_id;
        let mme_ue_id = self.by_mme_ue_id.iter().find(|(_, u)| **u == imsi).map(|(id, _)| *id).unwrap_or(0);
        self.by_mme_ue_id.retain(|_, u| *u != imsi);
        self.do_detach(imsi);
        self.metrics.proc_started += 1;
        self.metrics.proc_completed += 1;
        vec![
            S1apPdu::DownlinkNasTransport {
                enb_ue_id,
                mme_ue_id,
                nas: NasMsg::NetworkDetachRequest { cause: cause::NETWORK_FAILURE }.encode(),
            },
            S1apPdu::UeContextReleaseCommand { enb_ue_id, mme_ue_id, cause: cause::NETWORK_FAILURE },
        ]
    }

    /// Suspend `imsi`'s data path: unindex it from the forwarding tables
    /// (context retained in the slab) so downlink buffers behind a page.
    fn suspend_user(&mut self, imsi: u64) -> bool {
        match self.keys_of(imsi) {
            Some((gw_teid, ue_ip)) => {
                self.pending_updates.push(DpUpdate::Suspend { gw_teid, ue_ip, imsi });
                self.idle_ues.insert(imsi);
                self.dirty.insert(imsi);
                true
            }
            None => false,
        }
    }

    /// Put a machine back, or retire it if quiescent (idle with an empty
    /// mailbox) so the table only holds UEs with signaling in flight.
    fn retire_or_keep(&mut self, m: UeMachine) {
        if m.in_flight() || !m.mailbox.is_empty() {
            self.machines.insert(m.imsi, m);
        }
    }

    /// Forget a UE's procedure machine (detach / extraction). A machine
    /// checked out for stepping is not in the table — its teardown is the
    /// caller's job — so this is safely a no-op mid-delivery.
    fn drop_machine(&mut self, imsi: u64) {
        if let Some(m) = self.machines.remove(&imsi) {
            self.metrics.sig_dropped += m.mailbox.len() as u64;
            if m.in_flight() {
                self.metrics.proc_aborted += 1;
                if let ProcState::PagingWait { mme_ue_id, .. } = m.state {
                    self.metrics.paging_expired += 1;
                    self.by_mme_ue_id.remove(&mme_ue_id);
                }
            }
        }
        self.by_enb_ue_id.retain(|_, u| *u != imsi);
    }

    // -- procedure supervision ---------------------------------------------------

    /// Advance the supervision clock (ticks are whatever unit the caller
    /// supervises in — the HA layer uses its own tick counter).
    pub fn note_tick(&mut self, now: u64) {
        self.proc_tick = now;
        // Housekeeping rides the tick: step any in-progress index
        // migration/shrink so idle slices still converge to the compact
        // layout after a mass detach.
        self.maintain_tables();
        self.page_retx_sweep(now);
    }

    /// Timer-driven paging retransmission: every `PAGING_RETX_TICKS`
    /// ticks a silent page is re-sent, up to `PAGING_MAX_RETX` times;
    /// after that the page expires — the idle buffer is dropped and the
    /// UE stays attached-idle. Deterministic tick arithmetic, IMSI order.
    fn page_retx_sweep(&mut self, now: u64) {
        let mut due: Vec<u64> = self
            .machines
            .iter()
            .filter(|(_, m)| matches!(m.state, ProcState::PagingWait { next_retx, .. } if next_retx <= now))
            .map(|(imsi, _)| *imsi)
            .collect();
        due.sort_unstable();
        for key in due {
            let Some(mut m) = self.machines.remove(&key) else { continue };
            let ProcState::PagingWait { imsi, mme_ue_id, retries, .. } = m.state else {
                self.machines.insert(key, m);
                continue;
            };
            if retries >= PAGING_MAX_RETX {
                // Escalation exhausted: drop the buffered downlink; the
                // suspension itself persists until the UE signals.
                self.metrics.paging_expired += 1;
                self.metrics.proc_expired += 1;
                self.by_mme_ue_id.remove(&mme_ue_id);
                if let Some((_, ue_ip)) = self.keys_of(imsi) {
                    self.pending_updates.push(DpUpdate::DropIdleBuffer { ue_ip });
                }
                m.state = ProcState::Idle;
                m.last_tx.clear();
                // Messages deferred behind the page can run now; their
                // replies have no inbound PDU to answer, so they stage in
                // `pending_tx`.
                while !m.in_flight() {
                    match m.mailbox.pop_front() {
                        Some(next) => {
                            let out = self.deliver_one(&mut m, next);
                            self.pending_tx.extend(out);
                        }
                        None => break,
                    }
                }
                self.retire_or_keep(m);
            } else {
                self.metrics.paging_retx += 1;
                m.state = ProcState::PagingWait {
                    imsi,
                    mme_ue_id,
                    retries: retries + 1,
                    next_retx: now.saturating_add(PAGING_RETX_TICKS),
                };
                m.last_progress = now;
                self.pending_tx.extend(m.last_tx.iter().cloned());
                self.machines.insert(key, m);
            }
        }
    }

    /// Expire procedures that made no progress for more than `max_age`
    /// ticks: drop their mailboxes, roll back half-created users, and
    /// retire the machines. Returns how many procedures expired.
    /// `max_age == 0` disables expiry.
    pub fn expire_procedures(&mut self, now: u64, max_age: u64) -> usize {
        self.proc_tick = now;
        if max_age == 0 {
            return 0;
        }
        let mut stale: Vec<u64> = self
            .machines
            .iter()
            .filter(|(_, m)| (m.in_flight() || !m.mailbox.is_empty()) && now.saturating_sub(m.last_progress) > max_age)
            .map(|(imsi, _)| *imsi)
            .collect();
        // HashMap iteration order is arbitrary; expire in IMSI order so
        // replication and the simulator stay deterministic.
        stale.sort_unstable();
        let mut n = 0;
        for imsi in stale {
            // An earlier iteration's abort compensation (rollback detach)
            // may already have dropped this machine — re-check membership
            // instead of trusting the pre-collected list.
            let Some(mut m) = self.machines.remove(&imsi) else { continue };
            self.metrics.sig_dropped += m.mailbox.len() as u64;
            m.mailbox.clear();
            if m.in_flight() {
                let was_paging = matches!(m.state, ProcState::PagingWait { .. });
                self.abort_machine(&mut m);
                self.metrics.proc_expired += 1;
                // `abort_machine` closed the paging identity; the buffered
                // downlink must go with it (nothing will flush it).
                if was_paging {
                    if let Some((_, ue_ip)) = self.keys_of(imsi) {
                        self.pending_updates.push(DpUpdate::DropIdleBuffer { ue_ip });
                    }
                }
            }
            self.by_enb_ue_id.retain(|_, u| *u != imsi);
            n += 1;
        }
        n
    }

    /// UEs whose procedure has been in flight without progress for more
    /// than `bound` ticks, as `(imsi, age)` in IMSI order — the "stuck
    /// procedure" oracle input.
    pub fn stuck_procedures(&self, now: u64, bound: u64) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .machines
            .values()
            .filter(|m| m.in_flight())
            .map(|m| (m.imsi, now.saturating_sub(m.last_progress)))
            .filter(|(_, age)| *age > bound)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of procedures currently in flight.
    pub fn procedures_in_flight(&self) -> u64 {
        self.machines.values().filter(|m| m.in_flight()).count() as u64
    }

    /// Signaling messages currently parked in per-UE mailboxes.
    pub fn mailbox_backlog(&self) -> u64 {
        self.machines.values().map(|m| m.mailbox.len() as u64).sum()
    }

    /// Whether a GUTI resolves to a user on this slice (routing probe for
    /// the node layer).
    pub fn knows_guti(&self, guti: u64) -> bool {
        self.by_guti.contains_key(guti)
    }

    /// Active→idle: release a user's radio context (inactivity or an
    /// eNodeB request). The data path is suspended — tunnels torn down,
    /// context retained — so later downlink buffers behind a page.
    /// Returns the S1AP release command for the eNodeB.
    pub fn release_user(&mut self, imsi: u64, enb_ue_id: u32) -> Option<S1apPdu> {
        if !self.suspend_user(imsi) {
            return None;
        }
        self.metrics.releases += 1;
        let mme_ue_id = self.by_mme_ue_id.iter().find(|(_, u)| **u == imsi).map(|(m, _)| *m).unwrap_or(0);
        Some(S1apPdu::UeContextReleaseCommand { enb_ue_id, mme_ue_id, cause: cause::SUCCESS })
    }

    /// Network-triggered page for an idle UE (downlink arrived while
    /// suspended). Counted as inbound signaling so the conservation
    /// identities hold without special cases.
    pub fn page(&mut self, imsi: u64) -> Vec<S1apPdu> {
        self.metrics.s1ap_rx += 1;
        self.deliver(imsi, SigMsg::PageTrigger { imsi })
    }

    /// Network-triggered detach (operator action / subscription
    /// withdrawn). Counted as inbound signaling like [`Self::page`].
    pub fn network_detach(&mut self, imsi: u64) -> Vec<S1apPdu> {
        self.metrics.s1ap_rx += 1;
        self.deliver(imsi, SigMsg::NetDetach { imsi })
    }

    /// Pages still waiting for the UE to answer — the `paging_in_flight`
    /// term of `paged == paging_resolved + paging_expired + in_flight`.
    pub fn paging_in_flight(&self) -> u64 {
        self.machines.values().filter(|m| matches!(m.state, ProcState::PagingWait { .. })).count() as u64
    }

    /// Whether `imsi` has a paging procedure in flight.
    pub fn is_paging(&self, imsi: u64) -> bool {
        self.machines.get(&imsi).is_some_and(|m| matches!(m.state, ProcState::PagingWait { .. }))
    }

    /// Number of attached UEs currently in ECM-IDLE (suspended).
    pub fn idle_user_count(&self) -> usize {
        self.idle_ues.len()
    }

    /// Whether `imsi` is attached but suspended (ECM-IDLE).
    pub fn is_idle(&self, imsi: u64) -> bool {
        self.idle_ues.contains(&imsi)
    }

    /// Drain PDUs emitted by the supervision sweep (paging retransmits
    /// and post-expiry mailbox drains) — they have no inbound PDU whose
    /// reply could carry them.
    pub fn take_pending_tx(&mut self) -> Vec<S1apPdu> {
        std::mem::take(&mut self.pending_tx)
    }

    /// Queue a demotion of `imsi` to the data plane's secondary table
    /// (two-level management; the control plane owns demotion policy).
    pub fn demote_user(&mut self, imsi: u64) -> bool {
        match self.keys_of(imsi) {
            Some((gw_teid, ue_ip)) => {
                self.pending_updates.push(DpUpdate::Demote { gw_teid, ue_ip });
                true
            }
            None => false,
        }
    }

    // -- migration --------------------------------------------------------------

    /// Source side: extract a user for migration. Copies the consolidated
    /// state out by value, removes all local indexes, and tells the data
    /// plane to forget the user (which also frees the slab slot — the
    /// snapshot no longer references the source arena at all).
    pub fn extract_user(&mut self, imsi: u64) -> Option<UserSnapshot> {
        let handle = self.users.remove(imsi)?;
        // An in-flight procedure does not migrate: the machine is dropped
        // (accounted as aborted) and the peer retries against the new
        // owner. Only the committed ControlState moves.
        self.drop_machine(imsi);
        let (ctrl, counters) = {
            let ctx = self.slab.resolve(handle).expect("indexed handle is live");
            let c = ctx.ctrl_read();
            (c.clone(), ctx.counters())
        };
        let (guti, gw_teid, ue_ip) = (ctrl.guti, ctrl.tunnels.gw_teid, ctrl.ue_ip);
        self.by_guti.remove(guti);
        self.by_mme_ue_id.retain(|_, u| *u != imsi);
        self.idle_ues.remove(&imsi);
        self.pending_updates.push(DpUpdate::Remove { gw_teid, ue_ip });
        self.metrics.migrations_out += 1;
        self.dirty.insert(imsi);
        Some(UserSnapshot { uid: imsi, imsi, gw_teid, ue_ip, ctrl, counters })
    }

    /// Destination side: install a migrated user. Keys (TEID/UE IP) are
    /// preserved so in-flight tunnels stay valid; the context is
    /// reallocated in *this* slice's arena.
    pub fn install_user(&mut self, snap: UserSnapshot) {
        let guti = snap.ctrl.guti;
        let handle = self.slab.alloc(snap.ctrl, snap.counters);
        self.by_guti.insert(guti, snap.imsi);
        self.users.insert(snap.imsi, handle);
        self.pending_updates.push(DpUpdate::Insert { gw_teid: snap.gw_teid, ue_ip: snap.ue_ip, handle, active: true });
        self.metrics.migrations_in += 1;
        self.dirty.insert(snap.imsi);
    }

    /// Recovery: re-create a user from checkpointed state (see
    /// [`crate::recovery`]). Indexes are rebuilt and the data plane is
    /// notified exactly as for an attach.
    pub fn restore_user(&mut self, ctrl: crate::state::ControlState, counters: crate::state::CounterState) {
        let imsi = ctrl.imsi;
        let guti = ctrl.guti;
        let gw_teid = ctrl.tunnels.gw_teid;
        let ue_ip = ctrl.ue_ip;
        let handle = self.slab.alloc(ctrl, counters);
        self.users.insert(imsi, handle);
        self.by_guti.insert(guti, imsi);
        self.pending_updates.push(DpUpdate::Insert { gw_teid, ue_ip, handle, active: true });
        self.dirty.insert(imsi);
    }

    /// Report every user's accumulated usage to the PCRF over Gx
    /// (CCR-Update), applying any AMBR override the PCRF pushes back —
    /// the charging loop the paper assigns to the control thread ("reads
    /// the user's counter state [...] communicated back to the PCRF").
    /// Returns the number of users reported. No-op without a proxy.
    pub fn report_usage_to_pcrf(&mut self) -> usize {
        let proxy = match &self.proxy {
            Some(p) => Arc::clone(p),
            None => return 0,
        };
        let mut reported = 0;
        let mut overridden = Vec::new();
        for (imsi, &handle) in self.users.iter() {
            let Some(ctx) = self.slab.resolve(handle) else { continue };
            let snap = ctx.counters().snapshot();
            if let Ok(new_ambr) = proxy.report_usage(reported as u32 + 1, imsi, snap.uplink_bytes, snap.downlink_bytes)
            {
                if new_ambr != 0 {
                    ctx.ctrl_write().qos.ambr_kbps = new_ambr;
                    overridden.push(imsi);
                }
                reported += 1;
            }
        }
        self.dirty.extend(overridden);
        reported
    }

    // -- bookkeeping --------------------------------------------------------------

    /// Drain updates queued for the data thread.
    pub fn take_updates(&mut self) -> Vec<DpUpdate> {
        std::mem::take(&mut self.pending_updates)
    }

    /// Whether updates are waiting.
    pub fn has_updates(&self) -> bool {
        !self.pending_updates.is_empty()
    }

    /// Drain the IMSIs whose control state changed since the last drain
    /// (ascending order, so replication is deterministic). An IMSI in the
    /// result that no longer resolves via [`ControlPlane::context_of`]
    /// was detached/extracted — replicate that as a deletion.
    pub fn take_dirty_users(&mut self) -> Vec<u64> {
        let out: Vec<u64> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        out
    }

    /// Whether any control state changed since the last dirty drain.
    pub fn has_dirty_users(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Look up a user's shared context by IMSI. The returned reference
    /// borrows the slice's arena (it derefs to [`crate::state::UeContext`]
    /// and exposes its slab handle).
    pub fn context_of(&self, imsi: u64) -> Option<UeRef<'_>> {
        self.slab.resolve(*self.users.get(imsi)?)
    }

    /// Counter snapshot for PCRF reporting (reads the data-thread-written
    /// half — the legal cross-plane read).
    pub fn counters_of(&self, imsi: u64) -> Option<CounterSnapshot> {
        Some(self.context_of(imsi)?.counters().snapshot())
    }

    /// Number of users homed on this slice.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Control-plane metrics.
    pub fn metrics(&self) -> CtrlMetrics {
        self.metrics
    }

    /// Attach-procedure processing latency.
    pub fn attach_latency(&self) -> &LatencyHistogram {
        &self.attach_ns
    }

    /// Service-request (idle→active) processing latency.
    pub fn service_request_latency(&self) -> &LatencyHistogram {
        &self.service_request_ns
    }

    /// Handover processing latency (S1 and X2 paths).
    pub fn handover_latency(&self) -> &LatencyHistogram {
        &self.handover_ns
    }

    /// The IMSIs of all users on this slice, ascending (test / harness
    /// helper — sorted so callers iterate deterministically).
    pub fn imsis(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.users.keys().collect();
        v.sort_unstable();
        v
    }
}

/// Translate a Gx rule into the data-plane install update.
fn rule_to_update(r: &pepc_sigproto::gx::GxRule) -> DpUpdate {
    let program = if r.proto == 0 && r.dst_port_lo == 0 && r.dst_port_hi == 0 {
        BpfProgram::match_all(r.rule_id)
    } else if r.dst_port_lo == 0 && r.dst_port_hi == 0 {
        BpfProgram::match_proto_port_range(r.proto, 0, u16::MAX, r.rule_id)
    } else {
        BpfProgram::match_proto_port_range(r.proto, r.dst_port_lo, r.dst_port_hi, r.rule_id)
    };
    DpUpdate::InstallRule {
        id: r.rule_id as u16,
        program,
        action: PcefAction { qci: r.qci, rate_kbps: r.rate_kbps, gate_closed: false },
    }
}

/// Drive a complete attach for `imsi` against `cp`, emulating the UE/eNodeB
/// side (SIM key derived as the HSS provisions it). Returns the
/// (guti, ue_ip, gw_teid) from the Attach Accept. Test/bench helper —
/// this is what the ng4T RAN emulator did for the paper.
pub fn run_attach_procedure(
    cp: &mut ControlPlane,
    imsi: u64,
    enb_ue_id: u32,
    enb_teid: u32,
    enb_ip: u32,
) -> Option<(u64, u32, u32)> {
    run_attach_with(|pdu| cp.handle_s1ap(pdu), imsi, enb_ue_id, enb_teid, enb_ip)
}

/// [`run_attach_procedure`] generalized over the S1AP endpoint (a slice's
/// control plane, an inline slice, or a whole node).
pub fn run_attach_with(
    mut send: impl FnMut(&S1apPdu) -> Vec<S1apPdu>,
    imsi: u64,
    enb_ue_id: u32,
    enb_teid: u32,
    enb_ip: u32,
) -> Option<(u64, u32, u32)> {
    use pepc_backend::Hss;
    let cp = &mut send;
    // 1. Initial UE message with NAS Attach Request.
    let rsp = cp(&S1apPdu::InitialUeMessage {
        enb_ue_id,
        ecgi: 0x100,
        tac: 1,
        nas: NasMsg::AttachRequest { imsi, ue_capability: 0xF0 }.encode(),
    });
    let (mme_ue_id, rand) = match rsp.as_slice() {
        [S1apPdu::DownlinkNasTransport { mme_ue_id, nas, .. }] => match NasMsg::decode(nas).ok()? {
            NasMsg::AuthenticationRequest { rand, .. } => (*mme_ue_id, rand),
            _ => return None,
        },
        _ => return None,
    };
    // 2. The SIM answers the challenge.
    let res = sim_response(Hss::key_for(imsi), rand);
    let rsp =
        cp(&S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::AuthenticationResponse { res }.encode() });
    match rsp.as_slice() {
        [S1apPdu::DownlinkNasTransport { nas, .. }] => {
            if !matches!(NasMsg::decode(nas).ok()?, NasMsg::SecurityModeCommand { .. }) {
                return None;
            }
        }
        _ => return None,
    }
    // 3. Security mode complete → context setup with Attach Accept.
    let rsp = cp(&S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::SecurityModeComplete.encode() });
    let (gw_teid, accept) = match rsp.as_slice() {
        [S1apPdu::InitialContextSetupRequest { gw_teid, nas, .. }] => (*gw_teid, NasMsg::decode(nas).ok()?),
        _ => return None,
    };
    let (guti, ue_ip) = match accept {
        NasMsg::AttachAccept { guti, ue_ip, .. } => (guti, ue_ip),
        _ => return None,
    };
    // 4. eNodeB reports its tunnel endpoint.
    cp(&S1apPdu::InitialContextSetupResponse { enb_ue_id, mme_ue_id, enb_teid, enb_ip });
    // 5. NAS Attach Complete.
    cp(&S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas: NasMsg::AttachComplete.encode() });
    Some((guti, ue_ip, gw_teid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc_backend::{Hss, Pcrf};

    fn alloc() -> Allocator {
        Allocator { teid_base: 0x1000, ue_ip_base: 0x0A000001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 }
    }

    fn cp_with_backends(subscribers: u64) -> ControlPlane {
        let hss = Arc::new(Hss::new());
        hss.provision_range(1, subscribers, 100_000);
        let pcrf = Arc::new(Pcrf::with_standard_rules());
        let proxy = Arc::new(Proxy::new(hss, pcrf, 1, 40401));
        ControlPlane::new(0x0AFE0001, 1, alloc(), Some(proxy))
    }

    fn cp_synthetic() -> ControlPlane {
        ControlPlane::new(0x0AFE0001, 1, alloc(), None)
    }

    #[test]
    fn synthetic_attach_creates_state_and_update() {
        let mut cp = cp_synthetic();
        assert!(cp.apply_event(CtrlEvent::Attach { imsi: 7 }));
        assert_eq!(cp.user_count(), 1);
        let ups = cp.take_updates();
        assert_eq!(ups.len(), 1);
        assert!(matches!(&ups[0], DpUpdate::Insert { active: true, .. }));
        assert_eq!(cp.metrics().attaches, 1);
        let ctx = cp.context_of(7).unwrap();
        let c = ctx.ctrl_read();
        assert_eq!(c.ue_ip, 0x0A000001);
        assert_eq!(c.tunnels.gw_teid, 0x1000);
        assert_eq!(c.guti, 0xD00D_0000);
    }

    #[test]
    fn synthetic_handover_rewrites_in_place_without_update() {
        let mut cp = cp_synthetic();
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        cp.take_updates();
        assert!(cp.apply_event(CtrlEvent::S1Handover { imsi: 7, new_enb_teid: 0x99, new_enb_ip: 0xC0A80001 }));
        assert!(!cp.has_updates(), "handover needs no data-plane message");
        let ctx = cp.context_of(7).unwrap();
        assert_eq!(ctx.ctrl_read().tunnels.enb_teid, 0x99);
        assert_eq!(cp.metrics().handovers, 1);
    }

    #[test]
    fn events_on_unknown_users_rejected() {
        let mut cp = cp_synthetic();
        assert!(!cp.apply_event(CtrlEvent::S1Handover { imsi: 1, new_enb_teid: 1, new_enb_ip: 1 }));
        assert!(!cp.apply_event(CtrlEvent::ModifyBearer { imsi: 1, ambr_kbps: 1 }));
        assert!(!cp.apply_event(CtrlEvent::Detach { imsi: 1 }));
    }

    #[test]
    fn detach_removes_everything() {
        let mut cp = cp_synthetic();
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        cp.take_updates();
        assert!(cp.apply_event(CtrlEvent::Detach { imsi: 7 }));
        assert_eq!(cp.user_count(), 0);
        assert!(cp.context_of(7).is_none());
        let ups = cp.take_updates();
        assert!(matches!(&ups[0], DpUpdate::Remove { .. }));
    }

    #[test]
    fn reattach_is_idempotent_on_identifiers() {
        let mut cp = cp_synthetic();
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        let ip1 = cp.context_of(7).unwrap().ctrl_read().ue_ip;
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        assert_eq!(cp.user_count(), 1);
        assert_eq!(cp.context_of(7).unwrap().ctrl_read().ue_ip, ip1);
    }

    #[test]
    fn modify_bearer_updates_qos() {
        let mut cp = cp_synthetic();
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        assert!(cp.apply_event(CtrlEvent::ModifyBearer { imsi: 7, ambr_kbps: 64 }));
        assert_eq!(cp.context_of(7).unwrap().ctrl_read().qos.ambr_kbps, 64);
        assert_eq!(cp.metrics().bearer_updates, 1);
    }

    #[test]
    fn procedure_latencies_are_recorded() {
        let mut cp = cp_synthetic();
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        cp.apply_event(CtrlEvent::Attach { imsi: 8 });
        cp.apply_event(CtrlEvent::S1Handover { imsi: 7, new_enb_teid: 1, new_enb_ip: 1 });
        assert_eq!(cp.attach_latency().count(), 2);
        assert_eq!(cp.handover_latency().count(), 1);
        assert_eq!(cp.service_request_latency().count(), 0);
        // A failed handover must not enter the population.
        cp.apply_event(CtrlEvent::S1Handover { imsi: 999, new_enb_teid: 1, new_enb_ip: 1 });
        assert_eq!(cp.handover_latency().count(), 1);
    }

    #[test]
    fn full_attach_procedure_over_s1ap() {
        let mut cp = cp_with_backends(100);
        let (guti, ue_ip, gw_teid) = run_attach_procedure(&mut cp, 42, 1, 0xE0, 0xC0A80005).unwrap();
        assert_eq!(cp.metrics().attaches, 1);
        assert_eq!(cp.metrics().attach_rejects, 0);
        assert_eq!(cp.user_count(), 1);
        {
            let ctx = cp.context_of(42).unwrap();
            let c = ctx.ctrl_read();
            assert_eq!(c.guti, guti);
            assert_eq!(c.ue_ip, ue_ip);
            assert_eq!(c.tunnels.gw_teid, gw_teid);
            assert_eq!(c.tunnels.enb_teid, 0xE0, "eNodeB endpoint recorded");
            assert_eq!(c.tunnels.enb_ip, 0xC0A80005);
            assert!(!c.pcef_rules.is_empty(), "PCRF rules installed");
        }
        // Data-plane updates include rule installs and the user insert.
        let ups = cp.take_updates();
        assert!(ups.iter().any(|u| matches!(u, DpUpdate::InstallRule { .. })));
        assert!(ups.iter().any(|u| matches!(u, DpUpdate::Insert { .. })));
    }

    #[test]
    fn attach_with_unknown_imsi_rejected() {
        let mut cp = cp_with_backends(10);
        let rsp = cp.handle_s1ap(&S1apPdu::InitialUeMessage {
            enb_ue_id: 1,
            ecgi: 1,
            tac: 1,
            nas: NasMsg::AttachRequest { imsi: 9999, ue_capability: 0 }.encode(),
        });
        match rsp.as_slice() {
            [S1apPdu::DownlinkNasTransport { nas, .. }] => {
                assert!(matches!(NasMsg::decode(nas).unwrap(), NasMsg::AttachReject { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cp.metrics().attach_rejects, 1);
        assert_eq!(cp.user_count(), 0);
    }

    #[test]
    fn attach_with_wrong_res_rejected() {
        let mut cp = cp_with_backends(10);
        let rsp = cp.handle_s1ap(&S1apPdu::InitialUeMessage {
            enb_ue_id: 1,
            ecgi: 1,
            tac: 1,
            nas: NasMsg::AttachRequest { imsi: 5, ue_capability: 0 }.encode(),
        });
        let mme_ue_id = match rsp.as_slice() {
            [S1apPdu::DownlinkNasTransport { mme_ue_id, .. }] => *mme_ue_id,
            _ => panic!(),
        };
        let rsp = cp.handle_s1ap(&S1apPdu::UplinkNasTransport {
            enb_ue_id: 1,
            mme_ue_id,
            nas: NasMsg::AuthenticationResponse { res: 0xBAD }.encode(),
        });
        match rsp.as_slice() {
            [S1apPdu::DownlinkNasTransport { nas, .. }] => {
                assert!(matches!(NasMsg::decode(nas).unwrap(), NasMsg::AuthenticationReject { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cp.user_count(), 0);
    }

    #[test]
    fn x2_path_switch_over_s1ap() {
        let mut cp = cp_with_backends(10);
        run_attach_procedure(&mut cp, 3, 1, 0xE0, 0xC0A80005).unwrap();
        let mme_ue_id = 1; // first allocation
        let rsp = cp.handle_s1ap(&S1apPdu::PathSwitchRequest {
            enb_ue_id: 77,
            mme_ue_id,
            new_enb_teid: 0xF1,
            new_enb_ip: 0xC0A80006,
            ecgi: 0x200,
        });
        assert!(matches!(rsp.as_slice(), [S1apPdu::PathSwitchRequestAck { .. }]));
        let c = cp.context_of(3).unwrap();
        let ctrl = c.ctrl_read();
        assert_eq!(ctrl.tunnels.enb_teid, 0xF1);
        assert_eq!(ctrl.ecgi, 0x200);
    }

    #[test]
    fn s1_handover_three_way_over_s1ap() {
        let mut cp = cp_with_backends(10);
        run_attach_procedure(&mut cp, 3, 1, 0xE0, 0xC0A80005).unwrap();
        // Source eNodeB asks for an S1 handover.
        let rsp = cp.handle_s1ap(&S1apPdu::HandoverRequired { enb_ue_id: 1, mme_ue_id: 1, target_ecgi: 9 });
        let (gw_teid, ambr) = match rsp.as_slice() {
            [S1apPdu::HandoverRequest { gw_teid, ambr_kbps, .. }] => (*gw_teid, *ambr_kbps),
            other => panic!("{other:?}"),
        };
        assert_eq!(gw_teid, 0x1000);
        assert_eq!(ambr, 100_000);
        // Target eNodeB acks with its endpoint.
        let rsp =
            cp.handle_s1ap(&S1apPdu::HandoverRequestAck { mme_ue_id: 1, new_enb_teid: 0xAA, new_enb_ip: 0xC0A80007 });
        assert!(matches!(rsp.as_slice(), [S1apPdu::HandoverCommand { enb_ue_id: 1, .. }]));
        let c = cp.context_of(3).unwrap();
        assert_eq!(c.ctrl_read().tunnels.enb_teid, 0xAA);
        assert_eq!(cp.metrics().handovers, 1);
    }

    #[test]
    fn detach_over_s1ap() {
        let mut cp = cp_with_backends(10);
        let (guti, ..) = run_attach_procedure(&mut cp, 3, 1, 0xE0, 5).unwrap();
        let rsp = cp.handle_s1ap(&S1apPdu::UplinkNasTransport {
            enb_ue_id: 1,
            mme_ue_id: 1,
            nas: NasMsg::DetachRequest { guti }.encode(),
        });
        match rsp.as_slice() {
            [S1apPdu::DownlinkNasTransport { nas, .. }] => {
                assert!(matches!(NasMsg::decode(nas).unwrap(), NasMsg::DetachAccept));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cp.user_count(), 0);
    }

    #[test]
    fn tau_over_s1ap() {
        let mut cp = cp_with_backends(10);
        let (guti, ..) = run_attach_procedure(&mut cp, 3, 1, 0xE0, 5).unwrap();
        let rsp = cp.handle_s1ap(&S1apPdu::UplinkNasTransport {
            enb_ue_id: 1,
            mme_ue_id: 1,
            nas: NasMsg::TrackingAreaUpdateRequest { guti, tac: 42 }.encode(),
        });
        assert!(matches!(rsp.as_slice(), [S1apPdu::DownlinkNasTransport { .. }]));
        assert_eq!(cp.context_of(3).unwrap().ctrl_read().tac, 42);
    }

    #[test]
    fn migration_extract_install_preserves_state() {
        let mut src = cp_synthetic();
        src.apply_event(CtrlEvent::Attach { imsi: 7 });
        src.take_updates();
        let ctx = src.context_of(7).unwrap();
        ctx.update_counters(|c| c.uplink_bytes = 12345);

        let snap = src.extract_user(7).unwrap();
        assert_eq!(src.user_count(), 0);
        assert!(matches!(src.take_updates().as_slice(), [DpUpdate::Remove { .. }]));
        assert_eq!(src.metrics().migrations_out, 1);

        let mut dst = ControlPlane::new(
            0x0AFE0001,
            1,
            Allocator { teid_base: 0x9000, ue_ip_base: 0x0B000001, guti_base: 0xE000_0000, mme_ue_id_base: 1000 },
            None,
        );
        dst.install_user(snap);
        assert_eq!(dst.user_count(), 1);
        assert_eq!(dst.metrics().migrations_in, 1);
        let moved = dst.context_of(7).unwrap();
        assert_eq!(moved.counters().uplink_bytes, 12345, "counters travelled");
        // The update re-announces the ORIGINAL keys so tunnels stay valid.
        match dst.take_updates().as_slice() {
            [DpUpdate::Insert { gw_teid, ue_ip, .. }] => {
                assert_eq!(*gw_teid, 0x1000);
                assert_eq!(*ue_ip, 0x0A000001);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extract_unknown_user_returns_none() {
        let mut cp = cp_synthetic();
        assert!(cp.extract_user(999).is_none());
    }

    #[test]
    fn counters_readable_for_pcrf_reporting() {
        let mut cp = cp_synthetic();
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        cp.context_of(7).unwrap().update_counters(|c| c.downlink_bytes = 555);
        assert_eq!(cp.counters_of(7).unwrap().downlink_bytes, 555);
        assert!(cp.counters_of(8).is_none());
    }

    /// Attach imsi 1 via full S1AP, then release it to idle. Returns its
    /// GUTI.
    fn attach_and_release(cp: &mut ControlPlane) -> u64 {
        let (guti, ..) = run_attach_procedure(cp, 1, 10, 0x500, 0xC0A80001).expect("attach");
        cp.take_updates();
        let rsp = cp.handle_s1ap(&S1apPdu::UeContextReleaseRequest { enb_ue_id: 10, mme_ue_id: 1, cause: 0 });
        assert!(matches!(rsp.as_slice(), [S1apPdu::UeContextReleaseCommand { .. }]));
        assert!(matches!(cp.take_updates().as_slice(), [DpUpdate::Suspend { imsi: 1, .. }]));
        assert!(cp.is_idle(1));
        guti
    }

    fn assert_identities(cp: &ControlPlane) {
        let m = cp.metrics();
        assert!(m.signaling_conservation_holds(cp.mailbox_backlog()), "signaling: {m:?}");
        assert!(m.procedure_accounting_holds(cp.procedures_in_flight()), "procedures: {m:?}");
        assert!(m.paging_accounting_holds(cp.paging_in_flight()), "paging: {m:?}");
    }

    #[test]
    fn page_resolves_via_service_request_and_wakes_user() {
        let mut cp = cp_with_backends(4);
        let guti = attach_and_release(&mut cp);
        let out = cp.page(1);
        let paged_id = match out.as_slice() {
            [S1apPdu::Paging { mme_ue_id, guti: g }] => {
                assert_eq!(*g, guti);
                *mme_ue_id
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(cp.paging_in_flight(), 1);
        assert_identities(&cp);
        // The UE answers with a Service Request on a fresh S1 association.
        let rsp = cp.handle_s1ap(&S1apPdu::InitialUeMessage {
            enb_ue_id: 11,
            ecgi: 0x100,
            tac: 1,
            nas: NasMsg::ServiceRequest { guti }.encode(),
        });
        assert!(matches!(rsp.as_slice(), [S1apPdu::DownlinkNasTransport { .. }]));
        assert_eq!(cp.metrics().paging_resolved, 1);
        assert_eq!(cp.paging_in_flight(), 0);
        assert!(!cp.is_idle(1));
        // The wake re-announces the user as active (flushing its buffer).
        assert!(cp.take_updates().iter().any(|u| matches!(u, DpUpdate::Insert { active: true, .. })));
        // The page's interim mme_ue_id was retired with the procedure.
        let _ = paged_id;
        assert_identities(&cp);
    }

    #[test]
    fn page_retransmits_then_expires_and_drops_buffer() {
        let mut cp = cp_with_backends(4);
        attach_and_release(&mut cp);
        assert_eq!(cp.page(1).len(), 1);
        // Each PAGING_RETX_TICKS of silence re-sends the page...
        for i in 1..=PAGING_MAX_RETX as u64 {
            cp.note_tick(i * PAGING_RETX_TICKS);
            let tx = cp.take_pending_tx();
            assert!(matches!(tx.as_slice(), [S1apPdu::Paging { .. }]), "retx {i}: {tx:?}");
            assert_identities(&cp);
        }
        assert_eq!(cp.metrics().paging_retx, u64::from(PAGING_MAX_RETX));
        // ...until the budget is exhausted: the page expires, the idle
        // buffer is dropped, and the UE stays attached-idle.
        cp.note_tick((u64::from(PAGING_MAX_RETX) + 1) * PAGING_RETX_TICKS);
        assert!(cp.take_pending_tx().is_empty());
        assert_eq!(cp.metrics().paging_expired, 1);
        assert_eq!(cp.paging_in_flight(), 0);
        assert!(matches!(cp.take_updates().as_slice(), [DpUpdate::DropIdleBuffer { .. }]));
        assert!(cp.is_idle(1), "expiry keeps the UE attached-idle");
        assert_eq!(cp.user_count(), 1);
        assert_identities(&cp);
        // A later page starts a fresh procedure.
        assert_eq!(cp.page(1).len(), 1);
        assert_eq!(cp.metrics().paged, 2);
        assert_identities(&cp);
    }

    #[test]
    fn page_trigger_for_active_user_is_a_stale_no_op() {
        let mut cp = cp_with_backends(4);
        run_attach_procedure(&mut cp, 1, 10, 0x500, 0xC0A80001).expect("attach");
        cp.take_updates();
        assert!(cp.page(1).is_empty(), "active UE is not paged");
        assert_eq!(cp.metrics().paged, 0);
        assert!(cp.page(999).is_empty(), "unknown UE is not paged");
        assert_identities(&cp);
    }

    #[test]
    fn network_detach_tears_down_idle_user_mid_page() {
        let mut cp = cp_with_backends(4);
        attach_and_release(&mut cp);
        cp.page(1);
        let out = cp.network_detach(1);
        assert!(matches!(
            out.as_slice(),
            [S1apPdu::DownlinkNasTransport { .. }, S1apPdu::UeContextReleaseCommand { .. }]
        ));
        assert_eq!(cp.user_count(), 0);
        assert!(!cp.is_idle(1));
        // The preempted page closed as expired; the Remove drops the
        // buffered downlink on the data plane.
        assert_eq!(cp.metrics().paging_expired, 1);
        assert_eq!(cp.metrics().proc_preempted, 1);
        assert!(cp.take_updates().iter().any(|u| matches!(u, DpUpdate::Remove { .. })));
        assert_identities(&cp);
        // Detaching again is a consumed no-op.
        assert!(cp.network_detach(1).is_empty());
        assert_identities(&cp);
    }

    #[test]
    fn duplicate_page_trigger_dedups_against_cached_tx() {
        let mut cp = cp_with_backends(4);
        attach_and_release(&mut cp);
        let first = cp.page(1);
        let second = cp.page(1);
        assert_eq!(first, second, "dup trigger re-answers from last_tx");
        assert_eq!(cp.metrics().paged, 1, "one paging procedure, not two");
        assert_eq!(cp.metrics().proc_deduped, 1);
        assert_identities(&cp);
    }
}

#[cfg(test)]
mod pcrf_reporting_tests {
    use super::*;
    use pepc_backend::{Hss, Pcrf};

    #[test]
    fn usage_reports_reach_the_pcrf() {
        let hss = Arc::new(Hss::new());
        hss.provision_range(1, 10, 100_000);
        let pcrf = Arc::new(Pcrf::with_standard_rules());
        let proxy = Arc::new(Proxy::new(Arc::clone(&hss), Arc::clone(&pcrf), 1, 40401));
        let mut cp = ControlPlane::new(
            1,
            1,
            Allocator { teid_base: 1, ue_ip_base: 1, guti_base: 1, mme_ue_id_base: 1 },
            Some(proxy),
        );
        for imsi in 1..=3u64 {
            cp.apply_event(CtrlEvent::Attach { imsi });
            cp.context_of(imsi).unwrap().update_counters(|c| c.uplink_bytes = imsi * 1000);
        }
        assert_eq!(cp.report_usage_to_pcrf(), 3);
        assert_eq!(pcrf.usage_for(2).uplink_bytes, 2000);
    }

    #[test]
    fn reporting_without_proxy_is_noop() {
        let mut cp =
            ControlPlane::new(1, 1, Allocator { teid_base: 1, ue_ip_base: 1, guti_base: 1, mme_ue_id_base: 1 }, None);
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        assert_eq!(cp.report_usage_to_pcrf(), 0);
    }

    #[test]
    fn service_request_promotes_idle_user() {
        let mut cp = ControlPlane::new(
            1,
            1,
            Allocator { teid_base: 0x1000, ue_ip_base: 0x0A000001, guti_base: 0xD000, mme_ue_id_base: 1 },
            None,
        );
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        let guti = cp.context_of(7).unwrap().ctrl_read().guti;
        cp.apply_event(CtrlEvent::Release { imsi: 7 });
        cp.take_updates();
        // Idle UE sends a Service Request over S1AP.
        let rsp = cp.handle_s1ap(&S1apPdu::InitialUeMessage {
            enb_ue_id: 5,
            ecgi: 0x200,
            tac: 1,
            nas: NasMsg::ServiceRequest { guti }.encode(),
        });
        match rsp.as_slice() {
            [S1apPdu::DownlinkNasTransport { nas, .. }] => {
                assert!(matches!(NasMsg::decode(nas).unwrap(), NasMsg::ServiceAccept));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cp.metrics().service_requests, 1);
        // The re-announce reaches the data plane as an *active* insert.
        let ups = cp.take_updates();
        assert!(ups.iter().any(|u| matches!(u, DpUpdate::Insert { active: true, .. })));
        assert_eq!(cp.context_of(7).unwrap().ctrl_read().ecgi, 0x200, "location refreshed");
    }

    #[test]
    fn service_request_with_unknown_guti_releases_context() {
        let mut cp =
            ControlPlane::new(1, 1, Allocator { teid_base: 1, ue_ip_base: 1, guti_base: 1, mme_ue_id_base: 1 }, None);
        let rsp = cp.handle_s1ap(&S1apPdu::InitialUeMessage {
            enb_ue_id: 5,
            ecgi: 1,
            tac: 1,
            nas: NasMsg::ServiceRequest { guti: 0xDEAD }.encode(),
        });
        assert!(matches!(rsp.as_slice(), [S1apPdu::UeContextReleaseCommand { .. }]));
    }

    #[test]
    fn release_user_suspends_and_commands_enb() {
        let mut cp =
            ControlPlane::new(1, 1, Allocator { teid_base: 1, ue_ip_base: 1, guti_base: 1, mme_ue_id_base: 1 }, None);
        cp.apply_event(CtrlEvent::Attach { imsi: 7 });
        cp.take_updates();
        let pdu = cp.release_user(7, 3).expect("known user");
        assert!(matches!(pdu, S1apPdu::UeContextReleaseCommand { enb_ue_id: 3, .. }));
        assert_eq!(cp.metrics().releases, 1);
        let ups = cp.take_updates();
        assert!(matches!(ups.as_slice(), [DpUpdate::Suspend { imsi: 7, .. }]));
        assert!(cp.is_idle(7));
        assert_eq!(cp.idle_user_count(), 1);
        assert!(cp.release_user(999, 1).is_none());
    }
}
