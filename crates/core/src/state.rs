//! The per-user state taxonomy (paper §2.3, Table 1).
//!
//! The paper's key observation is that EPC state falls into groups with
//! different writers and update frequencies, and that the classic
//! decomposition forces *every* component to hold writable copies of most
//! groups. PEPC's refactoring gives each group exactly one writer:
//!
//! | State group                   | PEPC writer     | PEPC readers | Update freq |
//! |-------------------------------|-----------------|--------------|-------------|
//! | User identifiers (IMSI/GUTI/IP)| control thread | data thread  | per-event   |
//! | User location (ECGI/TAC)      | control thread  | data thread  | per-event   |
//! | QoS / policy state            | control thread  | data thread  | per-event   |
//! | Data tunnel state (TEIDs)     | control thread  | data thread  | per-event   |
//! | Control tunnel state          | — (eliminated: no S11/S5 control tunnels inside a slice) | — | — |
//! | Bandwidth counters            | data thread     | control thread | per-packet |
//!
//! [`ControlState`] is everything above the line; [`CounterState`] is the
//! last row. [`UeContext`] pairs them under separate locks so the
//! single-writer discipline is enforced by *which lock a thread takes
//! writable*, and the type system confines writable access to the owning
//! plane (see [`crate::table::PepcStore`]).

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Slice-internal user identifier: dense, assigned at attach.
pub type Uid = u64;

/// What kind of device this is — drives pipeline customization (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A general-purpose device (smartphone): full PCEF/QoS pipeline.
    #[default]
    Smartphone,
    /// A stateless IoT device running a single best-effort application:
    /// the data plane may skip the per-user state lookup entirely, with
    /// TEID/IP assigned from a pre-reserved pool (§4.2 "Customization").
    StatelessIot,
}

/// Per-user QoS and policy parameters (per-event writer: control thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosPolicy {
    /// QoS class identifier of the default bearer (9 = best effort).
    pub qci: u8,
    /// Aggregate maximum bit rate across the user's traffic, kbps.
    pub ambr_kbps: u32,
    /// Guaranteed bit rate for GBR bearers, kbps (0 = non-GBR).
    pub gbr_kbps: u32,
}

impl Default for QosPolicy {
    fn default() -> Self {
        QosPolicy { qci: 9, ambr_kbps: 100_000, gbr_kbps: 0 }
    }
}

/// Data-tunnel endpoints for the user's default bearer (per-event writer:
/// control thread; the mobility path rewrites `enb_teid`/`enb_ip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TunnelState {
    /// TEID the eNodeB expects on downlink GTP-U packets.
    pub enb_teid: u32,
    /// eNodeB transport address for downlink.
    pub enb_ip: u32,
    /// TEID this slice expects on uplink GTP-U packets (gateway side).
    pub gw_teid: u32,
}

/// The control-thread-written half of a user's state: identifiers,
/// location, QoS/policy, tunnels (Table 1 rows 1–5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlState {
    pub imsi: u64,
    /// Temporary identifier assigned at attach (replaces IMSI on air).
    pub guti: u64,
    /// UE IP address allocated by the network.
    pub ue_ip: u32,
    /// Cell the UE is currently attached through.
    pub ecgi: u32,
    /// Tracking area code.
    pub tac: u16,
    pub device_class: DeviceClass,
    pub qos: QosPolicy,
    pub tunnels: TunnelState,
    /// Indexes into the slice's PCEF rule table that apply to this user.
    pub pcef_rules: smallrules::RuleSet,
}

impl ControlState {
    /// Fresh state for a user attaching with `imsi`.
    pub fn new(imsi: u64) -> Self {
        ControlState {
            imsi,
            guti: 0,
            ue_ip: 0,
            ecgi: 0,
            tac: 0,
            device_class: DeviceClass::Smartphone,
            qos: QosPolicy::default(),
            tunnels: TunnelState::default(),
            pcef_rules: smallrules::RuleSet::default(),
        }
    }
}

/// A compact inline rule-id set so `ControlState` stays cache-friendly —
/// operators install a handful of rules per user, not hundreds.
pub mod smallrules {
    /// Up to 6 PCEF rule ids stored inline.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
    pub struct RuleSet {
        ids: [u16; 6],
        len: u8,
    }

    impl RuleSet {
        /// Add a rule id; silently ignored beyond capacity (the PCEF's
        /// catch-all default rule still applies).
        pub fn push(&mut self, id: u16) {
            if (self.len as usize) < self.ids.len() {
                self.ids[self.len as usize] = id;
                self.len += 1;
            }
        }

        pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
            self.ids[..self.len as usize].iter().copied()
        }

        pub fn len(&self) -> usize {
            self.len as usize
        }

        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }
}

/// The data-thread-written half of a user's state: bandwidth counters and
/// QoS token buckets (Table 1 last row; per-packet update frequency).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterState {
    pub uplink_packets: u64,
    pub uplink_bytes: u64,
    pub downlink_packets: u64,
    pub downlink_bytes: u64,
    /// Packets dropped by rate enforcement.
    pub qos_drops: u64,
    /// Last data activity, nanoseconds on the slice clock — read by the
    /// control thread to drive primary-table eviction (§4.2 two-level).
    pub last_activity_ns: u64,
    /// AMBR token bucket state (owned by the data thread; kept here so a
    /// migration carries rate-limiter fill level with the user).
    pub ambr_tokens: u64,
    pub ambr_last_refill_ns: u64,
}

/// A point-in-time copy of a user's counters, safe to hand to the control
/// plane / PCRF reporting without holding the lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub uplink_packets: u64,
    pub uplink_bytes: u64,
    pub downlink_packets: u64,
    pub downlink_bytes: u64,
    pub qos_drops: u64,
    pub last_activity_ns: u64,
}

impl CounterState {
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            uplink_packets: self.uplink_packets,
            uplink_bytes: self.uplink_bytes,
            downlink_packets: self.downlink_packets,
            downlink_bytes: self.downlink_bytes,
            qos_drops: self.qos_drops,
            last_activity_ns: self.last_activity_ns,
        }
    }
}

/// A user's consolidated state: the two single-writer halves behind
/// fine-grained locks (paper Fig 2: "shared state with fine-grained
/// locks", one reader/writer lock per half).
#[derive(Debug)]
pub struct UeContext {
    pub ctrl: RwLock<ControlState>,
    pub counters: RwLock<CounterState>,
}

impl UeContext {
    pub fn new(ctrl: ControlState) -> Arc<Self> {
        Arc::new(UeContext { ctrl: RwLock::new(ctrl), counters: RwLock::new(CounterState::default()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_state_defaults_are_sensible() {
        let s = ControlState::new(404_01_0000000001);
        assert_eq!(s.imsi, 404_01_0000000001);
        assert_eq!(s.qos.qci, 9);
        assert_eq!(s.device_class, DeviceClass::Smartphone);
        assert!(s.pcef_rules.is_empty());
    }

    #[test]
    fn ruleset_inline_capacity() {
        let mut rs = smallrules::RuleSet::default();
        for i in 0..10u16 {
            rs.push(i);
        }
        assert_eq!(rs.len(), 6, "capped at inline capacity");
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn counter_snapshot_copies_fields() {
        let c = CounterState {
            uplink_packets: 5,
            downlink_bytes: 999,
            qos_drops: 1,
            last_activity_ns: 42,
            ..CounterState::default()
        };
        let s = c.snapshot();
        assert_eq!(s.uplink_packets, 5);
        assert_eq!(s.downlink_bytes, 999);
        assert_eq!(s.qos_drops, 1);
        assert_eq!(s.last_activity_ns, 42);
    }

    #[test]
    fn ue_context_halves_lock_independently() {
        let ue = UeContext::new(ControlState::new(1));
        // Hold the control half read-locked while writing counters — the
        // core of the paper's contention-avoidance claim.
        let ctrl_guard = ue.ctrl.read();
        {
            let mut c = ue.counters.write();
            c.uplink_packets += 1;
        }
        assert_eq!(ctrl_guard.imsi, 1);
        assert_eq!(ue.counters.read().uplink_packets, 1);
    }

    #[test]
    fn control_state_is_compact() {
        // The data plane touches one ControlState per packet; keep it
        // within a couple of cache lines so millions of users stay
        // cache-friendly (this is what Figure 5 measures).
        assert!(
            std::mem::size_of::<ControlState>() <= 128,
            "ControlState grew to {} bytes",
            std::mem::size_of::<ControlState>()
        );
        assert!(std::mem::size_of::<CounterState>() <= 128);
    }
}
