//! The per-user state taxonomy (paper §2.3, Table 1).
//!
//! The paper's key observation is that EPC state falls into groups with
//! different writers and update frequencies, and that the classic
//! decomposition forces *every* component to hold writable copies of most
//! groups. PEPC's refactoring gives each group exactly one writer:
//!
//! | State group                   | PEPC writer     | PEPC readers | Update freq |
//! |-------------------------------|-----------------|--------------|-------------|
//! | User identifiers (IMSI/GUTI/IP)| control thread | data thread  | per-event   |
//! | User location (ECGI/TAC)      | control thread  | data thread  | per-event   |
//! | QoS / policy state            | control thread  | data thread  | per-event   |
//! | Data tunnel state (TEIDs)     | control thread  | data thread  | per-event   |
//! | Control tunnel state          | — (eliminated: no S11/S5 control tunnels inside a slice) | — | — |
//! | Bandwidth counters            | data thread     | control thread | per-packet |
//!
//! [`ControlState`] is everything above the line; [`CounterState`] is the
//! last row. [`UeContext`] pairs them under the single-writer seqlock
//! protocol (see [`crate::seqlock`] and DESIGN.md §10): the control
//! thread owns the authoritative `ControlState` behind a lock *and*
//! publishes a data-path projection ([`CtrlView`]) into a lock-free
//! seqlock cell on every mutation; the data thread owns the counter cell
//! outright and publishes it with plain stores. Neither plane ever takes
//! a lock on the per-packet path.

use crate::seqlock::{SeqCell, SeqHold, READ_RETRY_LIMIT};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use serde::{Deserialize, Serialize};
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Slice-internal user identifier: dense, assigned at attach.
pub type Uid = u64;

/// What kind of device this is — drives pipeline customization (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A general-purpose device (smartphone): full PCEF/QoS pipeline.
    #[default]
    Smartphone,
    /// A stateless IoT device running a single best-effort application:
    /// the data plane may skip the per-user state lookup entirely, with
    /// TEID/IP assigned from a pre-reserved pool (§4.2 "Customization").
    StatelessIot,
}

/// Per-user QoS and policy parameters (per-event writer: control thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosPolicy {
    /// QoS class identifier of the default bearer (9 = best effort).
    pub qci: u8,
    /// Aggregate maximum bit rate across the user's traffic, kbps.
    pub ambr_kbps: u32,
    /// Guaranteed bit rate for GBR bearers, kbps (0 = non-GBR).
    pub gbr_kbps: u32,
}

impl Default for QosPolicy {
    fn default() -> Self {
        QosPolicy { qci: 9, ambr_kbps: 100_000, gbr_kbps: 0 }
    }
}

/// Data-tunnel endpoints for the user's default bearer (per-event writer:
/// control thread; the mobility path rewrites `enb_teid`/`enb_ip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TunnelState {
    /// TEID the eNodeB expects on downlink GTP-U packets.
    pub enb_teid: u32,
    /// eNodeB transport address for downlink.
    pub enb_ip: u32,
    /// TEID this slice expects on uplink GTP-U packets (gateway side).
    pub gw_teid: u32,
}

/// The control-thread-written half of a user's state: identifiers,
/// location, QoS/policy, tunnels (Table 1 rows 1–5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlState {
    pub imsi: u64,
    /// Temporary identifier assigned at attach (replaces IMSI on air).
    pub guti: u64,
    /// UE IP address allocated by the network.
    pub ue_ip: u32,
    /// Cell the UE is currently attached through.
    pub ecgi: u32,
    /// Tracking area code.
    pub tac: u16,
    pub device_class: DeviceClass,
    pub qos: QosPolicy,
    pub tunnels: TunnelState,
    /// Indexes into the slice's PCEF rule table that apply to this user.
    pub pcef_rules: smallrules::RuleSet,
}

impl ControlState {
    /// Fresh state for a user attaching with `imsi`.
    pub fn new(imsi: u64) -> Self {
        ControlState {
            imsi,
            guti: 0,
            ue_ip: 0,
            ecgi: 0,
            tac: 0,
            device_class: DeviceClass::Smartphone,
            qos: QosPolicy::default(),
            tunnels: TunnelState::default(),
            pcef_rules: smallrules::RuleSet::default(),
        }
    }
}

/// A compact inline rule-id set so `ControlState` stays cache-friendly —
/// operators install a handful of rules per user, not hundreds.
pub mod smallrules {
    /// Up to 6 PCEF rule ids stored inline.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
    pub struct RuleSet {
        ids: [u16; 6],
        len: u8,
    }

    impl RuleSet {
        /// Add a rule id; silently ignored beyond capacity (the PCEF's
        /// catch-all default rule still applies).
        pub fn push(&mut self, id: u16) {
            if (self.len as usize) < self.ids.len() {
                self.ids[self.len as usize] = id;
                self.len += 1;
            }
        }

        pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
            self.ids[..self.len as usize].iter().copied()
        }

        pub fn len(&self) -> usize {
            self.len as usize
        }

        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }
}

/// The data-thread-written half of a user's state: bandwidth counters and
/// QoS token buckets (Table 1 last row; per-packet update frequency).
///
/// `Copy`, all-integer, no padding surprises: it travels through a
/// [`SeqCell`], whose readers may materialize torn copies before
/// discarding them (see [`crate::seqlock`] module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterState {
    pub uplink_packets: u64,
    pub uplink_bytes: u64,
    pub downlink_packets: u64,
    pub downlink_bytes: u64,
    /// Packets dropped by rate enforcement.
    pub qos_drops: u64,
    /// Last data activity, nanoseconds on the slice clock — read by the
    /// control thread to drive primary-table eviction (§4.2 two-level).
    pub last_activity_ns: u64,
    /// AMBR token bucket state (owned by the data thread; kept here so a
    /// migration carries rate-limiter fill level with the user).
    pub ambr_tokens: u64,
    pub ambr_last_refill_ns: u64,
}

// SAFETY: eight `u64` fields — Copy, any bit pattern valid, no padding,
// size 64 (multiple of 8), alignment 8.
unsafe impl crate::seqlock::SeqPayload for CounterState {}

/// A point-in-time copy of a user's counters, safe to hand to the control
/// plane / PCRF reporting without holding the lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub uplink_packets: u64,
    pub uplink_bytes: u64,
    pub downlink_packets: u64,
    pub downlink_bytes: u64,
    pub qos_drops: u64,
    pub last_activity_ns: u64,
}

impl CounterState {
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            uplink_packets: self.uplink_packets,
            uplink_bytes: self.uplink_bytes,
            downlink_packets: self.downlink_packets,
            downlink_bytes: self.downlink_bytes,
            qos_drops: self.qos_drops,
            last_activity_ns: self.last_activity_ns,
        }
    }
}

/// The data-path-relevant projection of [`ControlState`]: exactly what
/// the enforcement pass needs per packet — tunnels, QoS parameters, the
/// PCEF rule view, and the device-class flag. Published by the control
/// thread into a seqlock cell on every control mutation, so the data
/// thread reads it without any lock.
///
/// All-integer on purpose (a `u8` flag word instead of `bool`/enum): a
/// seqlock reader may materialize a torn copy before discarding it, and
/// every bit pattern of this struct must be a valid value.
///
/// The layout is flat and **padding-free** (explicit `_pad` tail, fields
/// ordered widest-first, 8-byte aligned, 40 bytes = 5 words): the
/// [`SeqCell`] copies its payload as whole 64-bit words, which requires
/// every byte to be initialized and the size to be a multiple of 8 —
/// and is what makes the lock-free read cheaper than a lock (a handful
/// of word loads instead of scalarized per-field volatile traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C, align(8))]
pub struct CtrlView {
    pub tunnels: TunnelState, // 3 × u32, bytes 0..12
    /// Aggregate maximum bit rate, kbps (see [`QosPolicy::ambr_kbps`]).
    pub ambr_kbps: u32, // 12..16
    /// Guaranteed bit rate, kbps (see [`QosPolicy::gbr_kbps`]).
    pub gbr_kbps: u32, // 16..20
    rule_ids: [u16; 6],       // 20..32
    rule_len: u8,             // 32
    /// QoS class identifier of the default bearer.
    pub qci: u8, // 33
    flags: u8,                // 34
    _pad: [u8; 5],            // 35..40, always zero
}

const _: () = {
    assert!(std::mem::size_of::<CtrlView>() == 40);
    assert!(std::mem::align_of::<CtrlView>() == 8);
};

// SAFETY: Copy, all-integer (any bit pattern valid), explicitly
// padding-free per the layout comments above, size 40 (multiple of 8),
// alignment 8.
unsafe impl crate::seqlock::SeqPayload for CtrlView {}

impl CtrlView {
    const FLAG_IOT: u8 = 1;

    /// Project the data-path view out of the authoritative control state.
    pub fn project(c: &ControlState) -> Self {
        let mut rule_ids = [0u16; 6];
        for (i, id) in c.pcef_rules.iter().enumerate() {
            rule_ids[i] = id;
        }
        CtrlView {
            tunnels: c.tunnels,
            ambr_kbps: c.qos.ambr_kbps,
            gbr_kbps: c.qos.gbr_kbps,
            rule_ids,
            rule_len: c.pcef_rules.len() as u8,
            qci: c.qos.qci,
            flags: if c.device_class == DeviceClass::StatelessIot { Self::FLAG_IOT } else { 0 },
            _pad: [0; 5],
        }
    }

    /// The QoS parameters, re-assembled into the struct shape.
    pub fn qos(&self) -> QosPolicy {
        QosPolicy { qci: self.qci, ambr_kbps: self.ambr_kbps, gbr_kbps: self.gbr_kbps }
    }

    /// Whether any PCEF rules apply to this user (the enforcement
    /// fast-path check).
    pub fn rules_empty(&self) -> bool {
        self.rule_len == 0
    }

    /// The applicable PCEF rule ids, re-assembled into a [`smallrules::RuleSet`].
    pub fn pcef_rules(&self) -> smallrules::RuleSet {
        let mut rs = smallrules::RuleSet::default();
        for &id in &self.rule_ids[..usize::from(self.rule_len).min(6)] {
            rs.push(id);
        }
        rs
    }

    /// Whether the user is a stateless-IoT pool device.
    pub fn is_iot(&self) -> bool {
        self.flags & Self::FLAG_IOT != 0
    }
}

/// A user's consolidated state under the single-writer lock protocol
/// (paper §4.2; DESIGN.md §10).
///
/// Layout (each part on its own cache line — the `const` assertions
/// below hold the compiler to it):
///
/// * `ctrl` — the authoritative [`ControlState`], written only by the
///   control thread. The lock is for *control-plane-side* coherent reads
///   (checkpointing, HA replication, migration) and for serializing the
///   writer; the data path never takes it.
/// * `view` — the seqlock-published [`CtrlView`] projection the data
///   thread reads lock-free ([`UeContext::ctrl_view`]). Republished by
///   [`CtrlWriteGuard`] on drop of every control write.
/// * `counters` — the [`CounterState`] cell. The data thread is its
///   single writer (owner reads + [`UeContext::publish_counters`]);
///   control/recovery/HA readers take consistent snapshots via
///   acquire/retry ([`UeContext::counters`]).
#[derive(Debug)]
#[repr(C)]
pub struct UeContext {
    ctrl: RwLock<ControlState>,
    view: SeqCell<CtrlView>,
    counters: SeqCell<CounterState>,
}

// Padding audit: the seqlock cells are 64-byte aligned, so within the
// (repr(C)) context the view and counter cells start on distinct cache
// lines and the counter cell never shares a line with anything else —
// the data thread's per-packet stores cannot false-share with control
// reads of the view or the lock word.
const _: () = {
    assert!(std::mem::align_of::<SeqCell<CtrlView>>() == 64);
    assert!(std::mem::align_of::<SeqCell<CounterState>>() == 64);
    assert!(std::mem::align_of::<UeContext>() == 64);
    // The view (8-byte seq + projection) must stay within one line so a
    // data-path read touches a single cache line.
    assert!(std::mem::size_of::<SeqCell<CtrlView>>() == 64);
    let view_off = std::mem::offset_of!(UeContext, view);
    let cnt_off = std::mem::offset_of!(UeContext, counters);
    assert!(view_off % 64 == 0);
    assert!(cnt_off % 64 == 0);
    assert!(cnt_off - view_off >= 64);
};

impl UeContext {
    pub fn new(ctrl: ControlState) -> Arc<Self> {
        Self::with_counters(ctrl, CounterState::default())
    }

    /// Build a context with pre-existing counters (checkpoint restore /
    /// HA adoption) — no publish race, the cell is born populated.
    pub fn with_counters(ctrl: ControlState, counters: CounterState) -> Arc<Self> {
        Arc::new(Self::raw_with_counters(ctrl, counters))
    }

    /// An un-Arc'd context — slot storage for [`crate::slab::UeSlab`],
    /// which places contexts in contiguous chunks instead of individual
    /// heap objects.
    pub(crate) fn raw(ctrl: ControlState) -> Self {
        Self::raw_with_counters(ctrl, CounterState::default())
    }

    fn raw_with_counters(ctrl: ControlState, counters: CounterState) -> Self {
        let view = CtrlView::project(&ctrl);
        UeContext { ctrl: RwLock::new(ctrl), view: SeqCell::new(view), counters: SeqCell::new(counters) }
    }

    // -- control half ---------------------------------------------------------

    /// Coherent read of the authoritative control state (control-plane
    /// side: signaling logic, checkpoints, replication). The data path
    /// uses [`Self::ctrl_view`] instead.
    pub fn ctrl_read(&self) -> RwLockReadGuard<'_, ControlState> {
        self.ctrl.read()
    }

    /// Mutable access for the control thread (the single writer). The
    /// returned guard republishes the [`CtrlView`] projection into the
    /// seqlock cell when dropped, so every control mutation is visible
    /// to the lock-free data path.
    pub fn ctrl_write(&self) -> CtrlWriteGuard<'_> {
        CtrlWriteGuard { ctx: self, guard: ManuallyDrop::new(self.ctrl.write()) }
    }

    /// Lock-free data-path read of the control projection.
    pub fn ctrl_view(&self) -> CtrlView {
        self.ctrl_view_with_retries().0
    }

    /// Hint the CPU to pull the view and counter cell cache lines for an
    /// upcoming visit. The burst path's resolve pass calls this so the
    /// enforcement pass's cell reads overlap their misses across the
    /// whole burst instead of paying them serially.
    #[inline]
    pub fn prefetch_cells(&self) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint; it does not dereference.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(std::ptr::from_ref(&self.view) as *const i8, _MM_HINT_T0);
            _mm_prefetch(std::ptr::from_ref(&self.counters) as *const i8, _MM_HINT_T0);
        }
    }

    /// [`Self::ctrl_view`] plus the retry count (stress-test
    /// instrumentation). Optimistic seqlock reads with bounded retries;
    /// if the cell stays unreadable (held by a migration freeze, or
    /// pathological writer interference) the read falls back to
    /// projecting from the authoritative lock, which is always coherent.
    pub fn ctrl_view_with_retries(&self) -> (CtrlView, u32) {
        match self.view.read_bounded(READ_RETRY_LIMIT) {
            Ok(r) => r,
            Err(retries) => (CtrlView::project(&self.ctrl.read()), retries),
        }
    }

    /// Migration freeze: hold the view cell's sequence odd so every
    /// optimistic data-path read fails over to the authoritative lock
    /// while the user is in transfer (writer-side seq hold; see
    /// [`crate::migrate`]). Must only be taken by the control thread —
    /// the view's writer — and control writes must not occur while held.
    pub fn freeze_view(&self) -> SeqHold<'_, CtrlView> {
        self.view.hold()
    }

    /// Whether a migration freeze currently holds the view cell.
    pub fn view_frozen(&self) -> bool {
        self.view.is_held()
    }

    /// Sequence number of the view cell (two per publish; test hook).
    pub fn view_version(&self) -> u64 {
        self.view.version()
    }

    /// Sequence number of the counter cell (two per publish; the
    /// simulator's seqlock-monotonicity oracle reads this).
    pub fn counters_version(&self) -> u64 {
        self.counters.version()
    }

    // -- counter half ---------------------------------------------------------

    /// Consistent snapshot of the counters. For the owning data thread
    /// this is a plain read (it never observes its own writes torn); for
    /// cross-plane readers (PCRF reporting, checkpoints, HA) it is an
    /// acquire/retry seqlock read.
    pub fn counters(&self) -> CounterState {
        self.counters.read().0
    }

    /// [`Self::counters`] plus the retry count (stress-test hook).
    pub fn counters_with_retries(&self) -> (CounterState, u32) {
        self.counters.read()
    }

    /// Data-thread publish: plain stores of the new counter values plus
    /// a release bump of the cell version. The data thread is the single
    /// writer of this cell while the user is live.
    pub fn publish_counters(&self, counters: CounterState) {
        self.counters.publish(counters);
    }

    /// Read-modify-publish convenience for *quiescent* counter writes
    /// (restore, migration fix-ups, tests) — contexts where the data
    /// thread is not concurrently publishing, per the single-writer
    /// discipline.
    pub fn update_counters(&self, f: impl FnOnce(&mut CounterState)) {
        let mut c = self.counters();
        f(&mut c);
        self.publish_counters(c);
    }
}

/// Write guard over the authoritative [`ControlState`]. On drop — while
/// still holding the lock, so publishes stay serialized — it projects
/// and republishes the [`CtrlView`] into the seqlock cell. This is the
/// "writer-side publish on every control mutation" of the protocol: no
/// call site can mutate control state and forget to publish.
pub struct CtrlWriteGuard<'a> {
    ctx: &'a UeContext,
    guard: ManuallyDrop<RwLockWriteGuard<'a, ControlState>>,
}

impl Deref for CtrlWriteGuard<'_> {
    type Target = ControlState;
    fn deref(&self) -> &ControlState {
        &self.guard
    }
}

impl DerefMut for CtrlWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut ControlState {
        &mut self.guard
    }
}

impl Drop for CtrlWriteGuard<'_> {
    fn drop(&mut self) {
        self.ctx.view.publish(CtrlView::project(&self.guard));
        // SAFETY: dropped exactly once, here; the field is never touched
        // again (publishing above still held the lock, keeping seqlock
        // writers serialized).
        unsafe { ManuallyDrop::drop(&mut self.guard) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_state_defaults_are_sensible() {
        let s = ControlState::new(404_01_0000000001);
        assert_eq!(s.imsi, 404_01_0000000001);
        assert_eq!(s.qos.qci, 9);
        assert_eq!(s.device_class, DeviceClass::Smartphone);
        assert!(s.pcef_rules.is_empty());
    }

    #[test]
    fn ruleset_inline_capacity() {
        let mut rs = smallrules::RuleSet::default();
        for i in 0..10u16 {
            rs.push(i);
        }
        assert_eq!(rs.len(), 6, "capped at inline capacity");
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn counter_snapshot_copies_fields() {
        let c = CounterState {
            uplink_packets: 5,
            downlink_bytes: 999,
            qos_drops: 1,
            last_activity_ns: 42,
            ..CounterState::default()
        };
        let s = c.snapshot();
        assert_eq!(s.uplink_packets, 5);
        assert_eq!(s.downlink_bytes, 999);
        assert_eq!(s.qos_drops, 1);
        assert_eq!(s.last_activity_ns, 42);
    }

    #[test]
    fn ue_context_halves_stay_independent() {
        let ue = UeContext::new(ControlState::new(1));
        // Hold the control half read-locked while the data side updates
        // counters — the core of the paper's contention-avoidance claim.
        // With seqlock cells the counter publish takes no lock at all.
        let ctrl_guard = ue.ctrl_read();
        ue.update_counters(|c| c.uplink_packets += 1);
        assert_eq!(ctrl_guard.imsi, 1);
        assert_eq!(ue.counters().uplink_packets, 1);
    }

    #[test]
    fn ctrl_write_republishes_the_view() {
        let ue = UeContext::new(ControlState::new(1));
        let v0 = ue.view_version();
        {
            let mut c = ue.ctrl_write();
            c.tunnels.enb_teid = 0xBEEF;
            c.qos.ambr_kbps = 64;
            c.device_class = DeviceClass::StatelessIot;
        }
        assert_eq!(ue.view_version(), v0 + 2, "one publish per write guard drop");
        let v = ue.ctrl_view();
        assert_eq!(v.tunnels.enb_teid, 0xBEEF);
        assert_eq!(v.ambr_kbps, 64);
        assert!(v.is_iot());
        // The lock-free view always equals the lock-held projection.
        assert_eq!(v, CtrlView::project(&ue.ctrl_read()));
    }

    #[test]
    fn frozen_view_falls_back_to_the_lock() {
        let ue = UeContext::new(ControlState::new(7));
        let before = ue.ctrl_view();
        let hold = ue.freeze_view();
        assert!(ue.view_frozen());
        let (v, retries) = ue.ctrl_view_with_retries();
        assert_eq!(v, before, "fallback projection is coherent");
        assert!(retries > 0, "freeze forces the retry/fallback path");
        drop(hold);
        assert!(!ue.view_frozen());
        assert_eq!(ue.ctrl_view_with_retries().1, 0);
    }

    #[test]
    fn counter_publish_roundtrips() {
        let ue = UeContext::new(ControlState::new(1));
        let mut c = ue.counters();
        c.uplink_packets = 3;
        c.uplink_bytes = 300;
        ue.publish_counters(c);
        let (back, retries) = ue.counters_with_retries();
        assert_eq!(back, c);
        assert_eq!(retries, 0);
    }

    #[test]
    fn with_counters_preserves_restored_state() {
        let counters = CounterState { downlink_bytes: 999, qos_drops: 2, ..CounterState::default() };
        let ue = UeContext::with_counters(ControlState::new(5), counters);
        assert_eq!(ue.counters(), counters);
        assert_eq!(ue.ctrl_read().imsi, 5);
    }

    #[test]
    fn control_state_is_compact() {
        // The data plane touches one CtrlView per packet; the view cell
        // (sequence word + projection) must fit one cache line, and the
        // authoritative structs stay within a couple of lines so
        // millions of users stay cache-friendly (what Figure 5 measures).
        assert!(
            std::mem::size_of::<ControlState>() <= 128,
            "ControlState grew to {} bytes",
            std::mem::size_of::<ControlState>()
        );
        assert!(std::mem::size_of::<CounterState>() <= 128);
        assert!(std::mem::size_of::<CtrlView>() <= 56, "CtrlView grew to {} bytes", std::mem::size_of::<CtrlView>());
    }
}
