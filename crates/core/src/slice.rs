//! The PEPC slice — paper §3.2, Listing 1.
//!
//! A slice consolidates the state and processing of a set of users. It
//! runs two threads pinned to distinct cores: a control thread (owning
//! [`ControlPlane`]) and a data thread (owning [`DataPlane`]). They share
//! per-user [`UeContext`](crate::state::UeContext)s under the
//! single-writer discipline and exchange *membership* changes over an
//! SPSC update ring, drained by the data thread every
//! `batching.sync_every_packets` packets (Figure 13).
//!
//! Two operating modes:
//!
//! * [`Slice`] — inline, single-threaded: the caller drives both planes
//!   explicitly. Deterministic; used by unit/integration tests and the
//!   single-core figure harnesses.
//! * [`Slice::spawn`] — threaded: returns a [`SliceHandle`] whose rings
//!   and command channels the node (or a harness) feeds, with the two
//!   plane threads running to completion on their cores.

use crate::config::SliceConfig;
use crate::ctrl::{Allocator, ControlPlane, CtrlEvent};
use crate::data::{DataPlane, DpUpdate, PacketVerdict};
use crate::migrate::UserSnapshot;
use crate::proxy::Proxy;
use crate::slab::UeSlab;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pepc_fabric::exec::{CoreId, Poll, Worker};
use pepc_fabric::ring::{Consumer, Producer, SpscRing};
use pepc_fabric::Clock;
use pepc_net::Mbuf;
use pepc_sigproto::s1ap::S1apPdu;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Commands the node scheduler sends a slice's control thread.
#[derive(Debug)]
pub enum CtrlCmd {
    /// A synthetic signaling event.
    Event(CtrlEvent),
    /// An S1AP PDU (replies come back as [`CtrlReply::S1ap`]).
    S1ap(S1apPdu),
    /// Migration: extract this user (reply: [`CtrlReply::Extracted`]).
    Extract { imsi: u64 },
    /// Migration: install this user.
    Install(Box<UserSnapshot>),
}

/// Replies from a slice's control thread.
#[derive(Debug)]
pub enum CtrlReply {
    S1ap(Vec<S1apPdu>),
    Extracted { imsi: u64, snapshot: Option<Box<UserSnapshot>> },
}

/// Cross-thread observable counters for a running slice.
#[derive(Debug, Default)]
pub struct SliceStats {
    pub rx: AtomicU64,
    pub forwarded: AtomicU64,
    pub dropped: AtomicU64,
    pub attaches: AtomicU64,
    pub handovers: AtomicU64,
    pub updates_applied: AtomicU64,
}

impl SliceStats {
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    pub fn rx(&self) -> u64 {
        self.rx.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Inline mode
// ---------------------------------------------------------------------------

/// An inline (caller-driven) slice.
///
/// Update-ring entries are stamped with the enqueue time so the data
/// plane can histogram the control→data propagation delay at apply.
pub struct Slice {
    pub ctrl: ControlPlane,
    pub data: DataPlane,
    update_tx: Producer<(u64, DpUpdate)>,
    update_rx: Consumer<(u64, DpUpdate)>,
    sync_every: u32,
    packets_since_sync: u32,
    clock: Clock,
    update_scratch: Vec<(u64, DpUpdate)>,
}

impl Slice {
    /// Build an inline slice from a config. `proxy` enables the full
    /// S1AP/NAS attach path.
    pub fn new(config: &SliceConfig, gw_ip: u32, tac: u16, alloc: Allocator, proxy: Option<Arc<Proxy>>) -> Self {
        // One arena per slice: the control plane allocates contexts in
        // it, the data plane resolves handles against it. Sharing is what
        // keeps a handle meaningful on both sides of the update ring.
        let slab = Arc::new(UeSlab::new());
        let mut data =
            DataPlane::with_slab(Arc::clone(&slab), gw_ip, config.expected_users, config.two_level, config.iot);
        data.set_telemetry_enabled(config.telemetry);
        data.set_stage_timing(config.stage_timing);
        for (id, program) in &config.pcef_programs {
            data.apply_update(
                DpUpdate::InstallRule { id: *id, program: program.clone(), action: Default::default() },
                0,
            );
        }
        let (update_tx, update_rx) = SpscRing::with_capacity(config.update_ring_capacity);
        let mut ctrl = ControlPlane::with_slab(slab, gw_ip, tac, alloc, proxy);
        ctrl.set_overload(config.overload);
        Slice {
            ctrl,
            data,
            update_tx,
            update_rx,
            sync_every: config.batching.sync_every_packets.max(1),
            packets_since_sync: 0,
            clock: Clock::new(),
            update_scratch: Vec::with_capacity(64),
        }
    }

    /// The slice's monotonic clock.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Substitute the clock every timestamp in this slice reads (update
    /// stamping, QoS refill, inactivity) — the simulator installs a
    /// virtual clock here so slice time only moves when it is advanced.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// Apply a synthetic control event and queue the resulting updates.
    pub fn handle_ctrl_event(&mut self, ev: CtrlEvent) -> bool {
        let ok = self.ctrl.apply_event(ev);
        self.flush_ctrl_updates();
        ok
    }

    /// Process an S1AP PDU on the control plane.
    pub fn handle_s1ap(&mut self, pdu: &S1apPdu) -> Vec<S1apPdu> {
        let rsp = self.ctrl.handle_s1ap(pdu);
        self.flush_ctrl_updates();
        rsp
    }

    /// Move control-plane updates into the update ring (the control
    /// thread's half of the batching machinery). In inline mode this
    /// slice owns both ring ends, so a full ring is drained straight into
    /// the data plane instead of blocking (bulk attach floods would
    /// otherwise deadlock a single-threaded driver).
    fn flush_ctrl_updates(&mut self) {
        if !self.ctrl.has_updates() {
            return;
        }
        for u in self.ctrl.take_updates() {
            let mut pending = Some((self.clock.now_ns(), u));
            while let Some(u) = pending.take() {
                if let Err(u) = self.update_tx.push(u) {
                    let now = self.clock.now_ns();
                    self.update_scratch.clear();
                    self.update_rx.pop_burst(&mut self.update_scratch, usize::MAX);
                    for (stamp, v) in self.update_scratch.drain(..) {
                        self.data.record_update_delay(now.saturating_sub(stamp));
                        self.data.apply_update(v, now);
                    }
                    pending = Some(u);
                }
            }
        }
    }

    /// Flush any control-plane updates into the ring, then drain the ring
    /// into the data plane ("sync").
    pub fn sync_now(&mut self) {
        self.flush_ctrl_updates();
        let now = self.clock.now_ns();
        self.update_scratch.clear();
        self.update_rx.pop_burst(&mut self.update_scratch, usize::MAX);
        for (stamp, u) in self.update_scratch.drain(..) {
            self.data.record_update_delay(now.saturating_sub(stamp));
            self.data.apply_update(u, now);
        }
        // One bounded resize step per sync keeps in-flight table growth
        // converging on the packet schedule (never a stop-the-world
        // rehash inside a burst).
        self.data.maintain_tables();
        self.packets_since_sync = 0;
    }

    /// Process one data packet, honouring the batched-sync schedule.
    pub fn process_packet(&mut self, m: Mbuf) -> PacketVerdict {
        self.packets_since_sync += 1;
        if self.packets_since_sync >= self.sync_every {
            self.sync_now();
        }
        self.data.process(m, self.clock.now_ns())
    }

    /// Process a whole burst of data packets, honouring the batched-sync
    /// schedule at burst granularity: the membership sync happens at most
    /// once per burst, before any packet of the burst is processed (a
    /// burst is the unit of work, just as one packet is in
    /// [`Self::process_packet`]). The burst vector is drained.
    pub fn process_burst(&mut self, burst: &mut Vec<Mbuf>) -> Vec<PacketVerdict> {
        let mut out = Vec::with_capacity(burst.len());
        self.process_burst_into(burst, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::process_burst`]: verdicts are
    /// appended to `out` (one per packet, input order). Measurement
    /// loops reuse `out` so the burst path stays malloc-free per call.
    pub fn process_burst_into(&mut self, burst: &mut Vec<Mbuf>, out: &mut Vec<PacketVerdict>) {
        self.packets_since_sync = self.packets_since_sync.saturating_add(burst.len() as u32);
        if self.packets_since_sync >= self.sync_every {
            self.sync_now();
        }
        self.data.process_burst_into(burst, self.clock.now_ns(), out)
    }

    /// Advance the control plane's procedure-supervision clock. The tick
    /// drives paging retransmission, so any buffer-drop updates it
    /// produced are flushed to the data plane; retransmitted PDUs are
    /// retrievable via [`Self::take_pending_tx`].
    pub fn note_tick(&mut self, now: u64) {
        self.ctrl.note_tick(now);
        self.flush_ctrl_updates();
    }

    /// Drive network-triggered paging: drain the data plane's paging
    /// events (first downlink packet buffered for a suspended UE) into
    /// the control plane, returning the paging PDUs to send.
    pub fn pump_paging(&mut self) -> Vec<S1apPdu> {
        let mut out = Vec::new();
        for imsi in self.data.take_paging_events() {
            out.extend(self.ctrl.page(imsi));
        }
        out.extend(self.ctrl.take_pending_tx());
        self.flush_ctrl_updates();
        out
    }

    /// Drain PDUs produced by the supervision sweep (paging retransmits
    /// and post-expiry mailbox drains).
    pub fn take_pending_tx(&mut self) -> Vec<S1apPdu> {
        self.ctrl.take_pending_tx()
    }

    /// Drain buffered downlink flushed by an idle-UE wake (already
    /// GTP-encapsulated toward the eNodeB, counted as forwarded).
    pub fn take_woken(&mut self) -> Vec<Mbuf> {
        self.data.take_woken()
    }

    /// Stuck-idle oracle input: suspended UEs holding buffered downlink
    /// older than `bound_ns` with *no* paging procedure in flight —
    /// packets nothing will ever flush or drop. `(imsi, age_ns)` in IMSI
    /// order; must be empty after every quiescent point.
    pub fn stuck_idle(&self, now_ns: u64, bound_ns: u64) -> Vec<(u64, u64)> {
        self.data
            .idle_buffered_report()
            .into_iter()
            .filter(|(imsi, _, _)| !self.ctrl.is_paging(*imsi))
            .map(|(imsi, _, oldest)| (imsi, now_ns.saturating_sub(oldest)))
            .filter(|(_, age)| *age > bound_ns)
            .collect()
    }

    /// Expire procedures stalled longer than `max_age` ticks and flush
    /// any rollback updates to the data plane. Returns how many expired.
    pub fn expire_procedures(&mut self, now: u64, max_age: u64) -> usize {
        let n = self.ctrl.expire_procedures(now, max_age);
        if n > 0 {
            self.flush_ctrl_updates();
        }
        n
    }

    /// Migration source: extract a user (and sync so the data plane
    /// forgets it before the snapshot leaves).
    pub fn extract_user(&mut self, imsi: u64) -> Option<UserSnapshot> {
        // The snapshot is a by-value copy (control state + counters), so
        // there is nothing to freeze: once the membership Remove drains
        // to the data plane below, the user's slab slot is freed and any
        // handle still in flight resolves a dead generation and drops —
        // the same semantics as a post-detach packet.
        let snap = self.ctrl.extract_user(imsi)?;
        self.flush_ctrl_updates();
        self.sync_now();
        Some(snap)
    }

    /// Migration destination: install a user and make it visible.
    pub fn install_user(&mut self, snap: UserSnapshot) {
        self.ctrl.install_user(snap);
        self.flush_ctrl_updates();
        self.sync_now();
    }

    /// Assemble this slice's observability registry: plane counters,
    /// latency histograms, and the update-ring gauge, all by value.
    /// `migration_ns` stays empty here — migration is a node-level
    /// procedure and is filled in by [`crate::node::PepcNode`].
    pub fn telemetry_snapshot(&self, slice_id: u64) -> pepc_telemetry::SliceSnapshot {
        let mut s = pepc_telemetry::SliceSnapshot::new(slice_id);
        s.users = self.ctrl.user_count() as u64;
        s.data = self.data.metrics();
        s.ctrl = self.ctrl.metrics();
        s.pipeline_ns = self.data.pipeline_latency().clone();
        s.update_delay_ns = self.data.update_delay().clone();
        s.attach_ns = self.ctrl.attach_latency().clone();
        s.service_request_ns = self.ctrl.service_request_latency().clone();
        s.handover_ns = self.ctrl.handover_latency().clone();
        s.stage_ns = self.data.stage_latencies().to_vec();
        s.rings.push(self.update_rx.gauge("update_ring"));
        // Memory gauges (ISSUE 9): arena footprint, index footprint, and
        // the audit ratio. live_slots tracks attached users exactly —
        // every attach allocates one slot, every detach frees it.
        let slab = self.ctrl.slab();
        s.slab_bytes = slab.bytes();
        s.table_bytes = self.ctrl.table_bytes() + self.data.table_bytes();
        s.live_slots = slab.live_slots();
        s.free_slots = slab.free_slots();
        s.bytes_per_user = slab.bytes_per_user();
        s.mailbox_backlog = self.ctrl.mailbox_backlog();
        let (enbs, tokens) = self.ctrl.overload_gauges();
        s.limiter_enbs = enbs;
        s.limiter_tokens = tokens;
        s
    }
}

// ---------------------------------------------------------------------------
// Threaded mode
// ---------------------------------------------------------------------------

/// Handle to a running (threaded) slice.
pub struct SliceHandle {
    /// Push raw packets for the data thread here.
    pub data_in: Producer<Mbuf>,
    /// Forwarded packets come out here.
    pub data_out: Consumer<Mbuf>,
    /// Send control commands here.
    pub ctrl_tx: Sender<CtrlCmd>,
    /// Control replies (S1AP responses, migration snapshots).
    pub ctrl_rx: Receiver<CtrlReply>,
    /// Live counters.
    pub stats: Arc<SliceStats>,
    data_worker: Option<Worker<DataPlane>>,
    ctrl_worker: Option<Worker<ControlPlane>>,
}

impl SliceHandle {
    /// Stop both threads and return the final planes for inspection.
    pub fn shutdown(mut self) -> (ControlPlane, DataPlane) {
        let ctrl = self.ctrl_worker.take().expect("not yet joined").join();
        let data = self.data_worker.take().expect("not yet joined").join();
        (ctrl, data)
    }
}

impl Slice {
    /// Spawn a threaded slice: control thread on `config.ctrl_core`, data
    /// thread on `config.data_core` (paper: "The PEPC control and data
    /// plane threads are pinned to separate cores").
    pub fn spawn(
        config: &SliceConfig,
        gw_ip: u32,
        tac: u16,
        alloc: Allocator,
        proxy: Option<Arc<Proxy>>,
    ) -> SliceHandle {
        let stats = Arc::new(SliceStats::default());
        let (update_tx, update_rx) = SpscRing::with_capacity::<(u64, DpUpdate)>(config.update_ring_capacity);
        let (data_in_tx, data_in_rx) = SpscRing::with_capacity::<Mbuf>(4096);
        let (data_out_tx, data_out_rx) = SpscRing::with_capacity::<Mbuf>(4096);
        let (ctrl_tx, ctrl_cmd_rx) = unbounded::<CtrlCmd>();
        let (ctrl_reply_tx, ctrl_rx) = unbounded::<CtrlReply>();

        // --- data thread ---
        // Same shared-arena wiring as inline mode: handles queued by the
        // control thread resolve in the data thread's arena because it IS
        // the control thread's arena.
        let slab = Arc::new(UeSlab::new());
        let mut data =
            DataPlane::with_slab(Arc::clone(&slab), gw_ip, config.expected_users, config.two_level, config.iot);
        data.set_telemetry_enabled(config.telemetry);
        data.set_stage_timing(config.stage_timing);
        for (id, program) in &config.pcef_programs {
            data.apply_update(
                DpUpdate::InstallRule { id: *id, program: program.clone(), action: Default::default() },
                0,
            );
        }
        let sync_every = config.batching.sync_every_packets.max(1) as usize;
        let data_stats = Arc::clone(&stats);
        let clock = Clock::new();
        let data_worker = {
            let mut update_rx = update_rx;
            let mut rx = data_in_rx;
            let mut tx = data_out_tx;
            let mut rx_buf: Vec<Mbuf> = Vec::with_capacity(64);
            let mut out_buf: Vec<PacketVerdict> = Vec::with_capacity(64);
            let mut upd_buf: Vec<(u64, DpUpdate)> = Vec::with_capacity(64);
            let mut since_sync = 0usize;
            Worker::spawn_state(CoreId(config.data_core), data, move |dp: &mut DataPlane| {
                let mut did_work = false;
                rx_buf.clear();
                let n = rx.pop_burst(&mut rx_buf, 32);
                // Sync membership updates on the batching schedule, or
                // opportunistically when the data path is idle (so
                // attaches land even without traffic).
                since_sync += n;
                if since_sync >= sync_every || n == 0 {
                    upd_buf.clear();
                    update_rx.pop_burst(&mut upd_buf, 1024);
                    if !upd_buf.is_empty() {
                        did_work = true;
                        let now = clock.now_ns();
                        let applied = upd_buf.len() as u64;
                        for (stamp, u) in upd_buf.drain(..) {
                            dp.record_update_delay(now.saturating_sub(stamp));
                            dp.apply_update(u, now);
                        }
                        data_stats.updates_applied.fetch_add(applied, Ordering::Relaxed);
                    }
                    since_sync = 0;
                }
                if n == 0 {
                    return if did_work { Poll::Busy } else { Poll::Idle };
                }
                data_stats.rx.fetch_add(n as u64, Ordering::Relaxed);
                let now = clock.now_ns();
                let mut fwd = 0u64;
                let mut dropped = 0u64;
                out_buf.clear();
                dp.process_burst_into(&mut rx_buf, now, &mut out_buf);
                for v in out_buf.drain(..) {
                    match v {
                        PacketVerdict::Forward(out) => {
                            fwd += 1;
                            // Full output ring = tail drop, like a NIC.
                            let _ = tx.push(out);
                        }
                        PacketVerdict::Drop(_) => dropped += 1,
                        // Parked in an idle-UE buffer: neither forwarded
                        // nor dropped yet; it resolves on wake or page
                        // expiry and is accounted in the plane's metrics.
                        PacketVerdict::Buffered => {}
                    }
                }
                data_stats.forwarded.fetch_add(fwd, Ordering::Relaxed);
                if dropped > 0 {
                    data_stats.dropped.fetch_add(dropped, Ordering::Relaxed);
                }
                Poll::Busy
            })
        };

        // --- control thread ---
        let ctrl_stats = Arc::clone(&stats);
        let ctrl_worker = {
            let mut cp = ControlPlane::with_slab(slab, gw_ip, tac, alloc, proxy);
            cp.set_overload(config.overload);
            let mut update_tx = update_tx;
            Worker::spawn_state(CoreId(config.ctrl_core), cp, move |cp: &mut ControlPlane| {
                let mut did_work = false;
                for _ in 0..256 {
                    match ctrl_cmd_rx.try_recv() {
                        Ok(cmd) => {
                            did_work = true;
                            match cmd {
                                CtrlCmd::Event(ev) => {
                                    if cp.apply_event(ev) {
                                        match ev {
                                            CtrlEvent::Attach { .. } => {
                                                ctrl_stats.attaches.fetch_add(1, Ordering::Relaxed);
                                            }
                                            CtrlEvent::S1Handover { .. } => {
                                                ctrl_stats.handovers.fetch_add(1, Ordering::Relaxed);
                                            }
                                            _ => {}
                                        }
                                    }
                                }
                                CtrlCmd::S1ap(pdu) => {
                                    let rsp = cp.handle_s1ap(&pdu);
                                    let _ = ctrl_reply_tx.send(CtrlReply::S1ap(rsp));
                                }
                                CtrlCmd::Extract { imsi } => {
                                    let snapshot = cp.extract_user(imsi).map(Box::new);
                                    let _ = ctrl_reply_tx.send(CtrlReply::Extracted { imsi, snapshot });
                                }
                                CtrlCmd::Install(snap) => {
                                    cp.install_user(*snap);
                                }
                            }
                        }
                        Err(_) => break,
                    }
                }
                if cp.has_updates() {
                    did_work = true;
                    // Stamp with the shared slice clock (Clock is Copy, so
                    // both threads measure from the same origin).
                    let mut it = cp.take_updates().into_iter().map(|u| (clock.now_ns(), u)).peekable();
                    while it.peek().is_some() {
                        if update_tx.push_burst(&mut it) == 0 {
                            std::hint::spin_loop();
                        }
                    }
                }
                if did_work {
                    Poll::Busy
                } else {
                    Poll::Idle
                }
            })
        };

        SliceHandle {
            data_in: data_in_tx,
            data_out: data_out_rx,
            ctrl_tx,
            ctrl_rx,
            stats,
            data_worker: Some(data_worker),
            ctrl_worker: Some(ctrl_worker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchingConfig, SliceConfig};
    use pepc_net::gtp::encap_gtpu;
    use pepc_net::ipv4::IpProto;
    use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
    use pepc_net::{Ipv4Hdr, IPV4_HDR_LEN};

    fn alloc() -> Allocator {
        Allocator { teid_base: 0x1000, ue_ip_base: 0x0A000001, guti_base: 0xD000, mme_ue_id_base: 1 }
    }

    fn inline_slice(sync_every: u32) -> Slice {
        let config =
            SliceConfig { batching: BatchingConfig { sync_every_packets: sync_every }, ..SliceConfig::default() };
        Slice::new(&config, 0x0AFE0001, 1, alloc(), None)
    }

    fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(ue_ip, 0x08080808, IpProto::Udp, UDP_HDR_LEN + 32).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        UdpHdr::new(1234, 53, 32).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(&[0u8; 32]);
        encap_gtpu(&mut m, 0xC0A80001, 0x0AFE0001, teid).unwrap();
        m
    }

    #[test]
    fn inline_attach_then_traffic() {
        let mut s = inline_slice(1);
        assert!(s.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 }));
        // sync_every = 1 → first packet syncs the insert before lookup?
        // sync happens BEFORE processing, so yes.
        let v = s.process_packet(uplink(0x1000, 0x0A000001));
        assert!(v.is_forward(), "{v:?}");
        assert_eq!(s.data.user_count(), 1);
    }

    #[test]
    fn batching_delays_visibility_until_sync_boundary() {
        let mut s = inline_slice(32);
        s.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 });
        // The update sits in the ring until 32 packets have passed.
        let mut first_forward = None;
        for i in 0..40 {
            if s.process_packet(uplink(0x1000, 0x0A000001)).is_forward() {
                first_forward = Some(i);
                break;
            }
        }
        let idx = first_forward.expect("eventually visible");
        assert!(idx >= 30, "visible only at the sync boundary, got {idx}");
    }

    #[test]
    fn burst_honours_sync_schedule_at_burst_granularity() {
        let mut s = inline_slice(32);
        s.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 });
        // A burst below the boundary does not sync: all unknown-user.
        let mut small: Vec<Mbuf> = (0..8).map(|_| uplink(0x1000, 0x0A000001)).collect();
        assert!(s.process_burst(&mut small).iter().all(|v| !v.is_forward()));
        // The burst that crosses the boundary syncs before processing, so
        // every packet in it sees the attach.
        let mut crossing: Vec<Mbuf> = (0..32).map(|_| uplink(0x1000, 0x0A000001)).collect();
        assert!(s.process_burst(&mut crossing).iter().all(|v| v.is_forward()));
    }

    #[test]
    fn update_ring_capacity_knob_surfaces_in_gauge() {
        let config = SliceConfig { update_ring_capacity: 128, ..SliceConfig::default() };
        let s = Slice::new(&config, 0x0AFE0001, 1, alloc(), None);
        let snap = s.telemetry_snapshot(0);
        assert_eq!(snap.rings[0].capacity, 128);
    }

    #[test]
    fn sync_now_makes_updates_immediately_visible() {
        let mut s = inline_slice(1_000_000);
        s.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 });
        s.sync_now();
        assert!(s.process_packet(uplink(0x1000, 0x0A000001)).is_forward());
    }

    #[test]
    fn inline_snapshot_reflects_activity() {
        let mut s = inline_slice(1);
        s.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 });
        for _ in 0..4 {
            assert!(s.process_packet(uplink(0x1000, 0x0A000001)).is_forward());
        }
        // One miss for the drop taxonomy.
        assert!(!s.process_packet(uplink(0xDEAD, 0x0A000001)).is_forward());
        let snap = s.telemetry_snapshot(2);
        assert_eq!(snap.slice_id, 2);
        assert_eq!(snap.users, 1);
        assert!(snap.conservation_holds());
        assert_eq!(snap.data.forwarded, 4);
        assert_eq!(snap.data.drop_unknown_user, 1);
        assert_eq!(snap.pipeline_ns.count(), snap.data.forwarded);
        assert_eq!(snap.update_delay_ns.count(), snap.data.updates_applied);
        assert_eq!(snap.attach_ns.count(), 1);
        assert_eq!(snap.rings.len(), 1);
        assert_eq!(snap.rings[0].name, "update_ring");
        assert_eq!(snap.rings[0].depth, 0, "drained at the sync boundary");
    }

    #[test]
    fn memory_gauges_track_attach_detach_and_live_slots_equal_users() {
        let mut s = inline_slice(1);
        let empty = s.telemetry_snapshot(0);
        assert_eq!(empty.live_slots, 0);
        assert_eq!(empty.bytes_per_user, empty.slab_bytes, "empty arena: just the directory overhead");
        for imsi in 0..16u64 {
            assert!(s.handle_ctrl_event(CtrlEvent::Attach { imsi }));
        }
        s.sync_now();
        let full = s.telemetry_snapshot(0);
        // The identity the capacity audit rests on: every attached user
        // owns exactly one arena slot.
        assert_eq!(full.users, 16);
        assert_eq!(full.live_slots, full.users);
        assert!(full.slab_bytes > 0);
        assert!(full.table_bytes > 0);
        assert_eq!(full.bytes_per_user, full.slab_bytes / 16);
        for imsi in 0..8u64 {
            assert!(s.handle_ctrl_event(CtrlEvent::Detach { imsi }));
        }
        s.sync_now();
        let half = s.telemetry_snapshot(0);
        assert_eq!(half.users, 8);
        assert_eq!(half.live_slots, 8, "detach frees the slot (data thread applies the Remove)");
        assert_eq!(half.free_slots, 8, "freed slots queue for reuse");
        // Chunks are retained, not returned; only the free-list vector
        // may add a few bytes of bookkeeping.
        assert!(half.slab_bytes >= full.slab_bytes, "{} < {}", half.slab_bytes, full.slab_bytes);
        assert!(half.slab_bytes <= full.slab_bytes + 1024);
    }

    #[test]
    fn stage_timing_flag_surfaces_stage_histograms_in_snapshot() {
        let config = SliceConfig {
            batching: BatchingConfig { sync_every_packets: 1 },
            stage_timing: true,
            ..SliceConfig::default()
        };
        let mut s = Slice::new(&config, 0x0AFE0001, 1, alloc(), None);
        s.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 });
        let mut burst: Vec<Mbuf> = (0..8).map(|_| uplink(0x1000, 0x0A000001)).collect();
        s.process_burst(&mut burst);
        let snap = s.telemetry_snapshot(0);
        assert_eq!(snap.stage_ns.len(), 3);
        assert!(snap.stage_ns.iter().all(|h| h.count() == 1), "one sample per stage per burst");
        // Off by default: the flag costs nothing unless asked for.
        let quiet = inline_slice(1);
        assert!(quiet.telemetry_snapshot(0).stage_ns.iter().all(|h| h.count() == 0));
    }

    #[test]
    fn inline_migration_between_slices_preserves_traffic() {
        let mut a = inline_slice(1);
        let mut b = Slice::new(
            &SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
            0x0AFE0001,
            1,
            Allocator { teid_base: 0x9000, ue_ip_base: 0x0B000001, guti_base: 0xE000, mme_ue_id_base: 500 },
            None,
        );
        a.handle_ctrl_event(CtrlEvent::Attach { imsi: 7 });
        assert!(a.process_packet(uplink(0x1000, 0x0A000001)).is_forward());

        let snap = a.extract_user(7).expect("extracts");
        // Source no longer serves the user.
        assert!(!a.process_packet(uplink(0x1000, 0x0A000001)).is_forward());
        b.install_user(snap);
        // Destination serves it with the ORIGINAL teid (tunnel unbroken).
        assert!(b.process_packet(uplink(0x1000, 0x0A000001)).is_forward());
        let counters = b.ctrl.counters_of(7).unwrap();
        assert_eq!(counters.uplink_packets, 2, "counters moved with the user");
    }

    #[test]
    fn threaded_slice_end_to_end() {
        let config = SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() };
        let mut h = Slice::spawn(&config, 0x0AFE0001, 1, alloc(), None);
        h.ctrl_tx.send(CtrlCmd::Event(CtrlEvent::Attach { imsi: 7 })).unwrap();
        // Wait for the attach to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while h.stats.attaches.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "attach never applied");
            std::hint::spin_loop();
        }
        // Updates propagate through the ring asynchronously; retry sends
        // until the data thread forwards.
        let mut forwarded = false;
        while std::time::Instant::now() < deadline {
            let _ = h.data_in.push(uplink(0x1000, 0x0A000001));
            if h.stats.forwarded() > 0 {
                forwarded = true;
                break;
            }
        }
        assert!(forwarded, "threaded pipeline never forwarded");
        let mut out = Vec::new();
        while h.data_out.pop_burst(&mut out, 16) > 0 {}
        assert!(!out.is_empty());
        h.shutdown();
    }

    #[test]
    fn threaded_migration_roundtrip() {
        let config = SliceConfig::default();
        let h = Slice::spawn(&config, 0x0AFE0001, 1, alloc(), None);
        h.ctrl_tx.send(CtrlCmd::Event(CtrlEvent::Attach { imsi: 9 })).unwrap();
        h.ctrl_tx.send(CtrlCmd::Extract { imsi: 9 }).unwrap();
        let reply = h.ctrl_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        match reply {
            CtrlReply::Extracted { imsi, snapshot } => {
                assert_eq!(imsi, 9);
                let snap = snapshot.expect("user existed");
                assert_eq!(snap.imsi, 9);
                // Install back.
                h.ctrl_tx.send(CtrlCmd::Install(snap)).unwrap();
            }
            other => panic!("{other:?}"),
        }
        h.shutdown();
    }
}
