//! Control-plane admission control for signaling storms (DESIGN.md §15).
//!
//! A real MME's failure mode under a synchronized IoT wake-up wave is
//! *livelock*: every cycle goes into accepting new attach attempts that
//! will time out before they finish, so goodput collapses to zero while
//! the control plane is 100% busy. The fix is to shed load **at the
//! front door** — before any routing, user-table, or backend work is
//! spent — and to shed it **in priority order** with an explicit,
//! signaled back-off so the herd stops hammering.
//!
//! Three mechanisms compose (all opt-in via
//! [`OverloadConfig`](crate::config::OverloadConfig), disabled =
//! byte-identical legacy behavior):
//!
//! 1. **Per-eNodeB token bucket.** Procedure-*starting* messages
//!    (attach, service request, TAU) draw one token from a bucket keyed
//!    by the originating ECGI, refilled at `enb_rate_per_tick` on the
//!    supervision clock up to `enb_burst`. A synchronized wave from one
//!    cell exhausts its own bucket without starving quiet cells —
//!    SoftCell's "aggregate at the edge" placement cue.
//! 2. **Global in-flight ceiling.** At or above `max_in_flight` open
//!    procedures, new work is shed regardless of which eNodeB sent it:
//!    finishing procedures already started is always cheaper than
//!    opening more (that is what makes degradation *graceful*).
//! 3. **Priority classes.** Handover-class messages (an active call
//!    moving between cells) outrank attach/service-class, which outrank
//!    periodic TAU. Handover bypasses the per-eNodeB buckets entirely
//!    and gets 2× ceiling headroom; TAU admits only while its bucket is
//!    more than half full, so it is the first class to shed. A per-tick
//!    latch makes shedding monotone in time as well: once a class sheds,
//!    every strictly lower class is refused for the rest of that tick,
//!    so the limiter never admits background TAU after refusing an
//!    attach in the same tick.
//!
//! Every shed is answered with [`NasMsg::CongestionReject`] carrying
//! `backoff_ms` and counted in the per-class `sig_shed_*` taxonomy, so
//! `s1ap_rx == consumed + deduped + dropped + overflow + shed + backlog`
//! stays exact (see `CtrlMetrics::signaling_conservation_holds`).

use crate::config::OverloadConfig;
use pepc_sigproto::nas::NasMsg;
use pepc_sigproto::s1ap::S1apPdu;
use std::collections::HashMap;

/// Priority class of an inbound signaling message. Ordering is by
/// `rank()`: numerically smaller = higher priority, shed last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SigClass {
    /// Handover / path-switch: an active session is mid-move; dropping it
    /// drops a live call. Highest priority.
    Handover,
    /// Attach and service-request: new sessions and idle→active wakeups.
    Attach,
    /// Periodic tracking-area updates: pure bookkeeping the UE will retry
    /// on its own schedule anyway. First to shed.
    Tau,
}

impl SigClass {
    /// Priority rank: 0 is the highest class (shed last).
    pub fn rank(self) -> u8 {
        match self {
            SigClass::Handover => 0,
            SigClass::Attach => 1,
            SigClass::Tau => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u32,
    last_tick: u64,
}

/// The admission controller: one per [`ControlPlane`](crate::ctrl::ControlPlane),
/// consulted once per inbound procedure-starting PDU, before routing.
#[derive(Debug)]
pub struct AdmissionControl {
    cfg: OverloadConfig,
    /// Per-eNodeB token buckets, keyed by ECGI (lazily created and
    /// lazily refilled on the supervision tick).
    buckets: HashMap<u32, Bucket>,
    /// Lowest-priority rank still admissible this tick: when a class is
    /// shed its rank latches here and every strictly lower class is
    /// refused until the tick advances.
    latch_rank: u8,
    latch_tick: u64,
}

impl AdmissionControl {
    pub fn new(cfg: OverloadConfig) -> Self {
        AdmissionControl { cfg, buckets: HashMap::new(), latch_rank: u8::MAX, latch_tick: 0 }
    }

    /// Swap in a new policy (used by the slice at construction; buckets
    /// reset because their depths depend on the config).
    pub fn set_config(&mut self, cfg: OverloadConfig) {
        self.cfg = cfg;
        self.buckets.clear();
        self.latch_rank = u8::MAX;
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    pub fn backoff_ms(&self) -> u16 {
        self.cfg.backoff_ms
    }

    /// Decide admission for one message; consumes a token when admitted.
    /// `in_flight` is the current open-procedure count and `now_tick` the
    /// supervision clock.
    pub fn admit(&mut self, class: SigClass, ecgi: u32, in_flight: u64, now_tick: u64) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        if now_tick != self.latch_tick {
            self.latch_tick = now_tick;
            self.latch_rank = u8::MAX;
        }
        // A higher class was already shed this tick: refuse without
        // consuming anything, so shedding stays monotone in priority
        // for the rest of the tick.
        if class.rank() > self.latch_rank {
            return false;
        }
        if !self.check(class, ecgi, in_flight, now_tick) {
            self.latch_rank = self.latch_rank.min(class.rank());
            return false;
        }
        true
    }

    /// The pure decision [`admit`](Self::admit) would take right now,
    /// without consuming a token or moving the latch — the probe the
    /// priority-monotonicity property tests against.
    pub fn would_admit(&self, class: SigClass, ecgi: u32, in_flight: u64, now_tick: u64) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        if now_tick == self.latch_tick && class.rank() > self.latch_rank {
            return false;
        }
        if !self.ceiling_ok(class, in_flight) {
            return false;
        }
        if class == SigClass::Handover || self.cfg.enb_rate_per_tick == 0 {
            return true;
        }
        let avail = match self.buckets.get(&ecgi) {
            Some(b) => self.refilled(b, now_tick),
            None => self.cfg.enb_burst,
        };
        avail > self.reserve(class)
    }

    fn ceiling_ok(&self, class: SigClass, in_flight: u64) -> bool {
        let ceiling = u64::from(self.cfg.max_in_flight);
        if ceiling == 0 {
            return true;
        }
        // Handover gets 2x headroom: it is only refused when the control
        // plane is far past the point where attach-class already sheds.
        let limit = if class == SigClass::Handover { ceiling * 2 } else { ceiling };
        in_flight < limit
    }

    /// Tokens a bucket would hold at `now_tick` after lazy refill.
    fn refilled(&self, b: &Bucket, now_tick: u64) -> u32 {
        let elapsed = now_tick.saturating_sub(b.last_tick);
        let refill = elapsed.saturating_mul(u64::from(self.cfg.enb_rate_per_tick));
        (u64::from(b.tokens) + refill).min(u64::from(self.cfg.enb_burst)) as u32
    }

    /// Bucket floor below which this class no longer admits. TAU keeps a
    /// half-bucket reserve so attach-class always has strictly more
    /// tokens to draw on than TAU does.
    fn reserve(&self, class: SigClass) -> u32 {
        match class {
            SigClass::Tau => self.cfg.enb_burst / 2,
            _ => 0,
        }
    }

    fn check(&mut self, class: SigClass, ecgi: u32, in_flight: u64, now_tick: u64) -> bool {
        if !self.ceiling_ok(class, in_flight) {
            return false;
        }
        // Handover never draws from the per-eNodeB buckets: a mid-call
        // move must not compete with an attach storm for tokens.
        if class == SigClass::Handover || self.cfg.enb_rate_per_tick == 0 {
            return true;
        }
        let burst = self.cfg.enb_burst;
        let rate = self.cfg.enb_rate_per_tick;
        let b = self.buckets.entry(ecgi).or_insert(Bucket { tokens: burst, last_tick: now_tick });
        if now_tick > b.last_tick {
            let refill = (now_tick - b.last_tick).saturating_mul(u64::from(rate));
            b.tokens = (u64::from(b.tokens) + refill).min(u64::from(burst)) as u32;
            b.last_tick = now_tick;
        }
        let reserve = match class {
            SigClass::Tau => burst / 2,
            _ => 0,
        };
        if b.tokens <= reserve {
            return false;
        }
        b.tokens -= 1;
        true
    }

    // -- telemetry gauges ----------------------------------------------------

    /// eNodeBs with a live bucket (the limiter's working-set size).
    pub fn tracked_enbs(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Tokens currently available across all buckets (order-independent
    /// sum, so it is deterministic despite HashMap storage). Raw stored
    /// tokens — pending lazy refills are not projected forward.
    pub fn tokens_available(&self) -> u64 {
        self.buckets.values().map(|b| u64::from(b.tokens)).sum()
    }
}

/// Classify a PDU for admission. `None` means the message is not subject
/// to admission control at all: mid-procedure legs (auth response, SMC,
/// ICS response, attach complete) are always admitted — finishing work
/// already started is the whole point of shedding new work — and so are
/// detaches (they *reduce* load) and release/error PDUs.
///
/// Returns `(class, ecgi, enb_ue_id, mme_ue_id)`; the ids address the
/// `CongestionReject` if the message is shed.
pub fn classify_for_admission(pdu: &S1apPdu) -> Option<(SigClass, u32, u32, u32)> {
    match pdu {
        S1apPdu::InitialUeMessage { enb_ue_id, ecgi, nas, .. } => match NasMsg::decode(nas) {
            Ok(NasMsg::AttachRequest { .. }) | Ok(NasMsg::ServiceRequest { .. }) => {
                Some((SigClass::Attach, *ecgi, *enb_ue_id, 0))
            }
            _ => None,
        },
        S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas } => match NasMsg::decode(nas) {
            // TAU carries no ECGI on this transport; all TAU shares the
            // 0-keyed bucket, which is fine — it is the first class shed.
            Ok(NasMsg::TrackingAreaUpdateRequest { .. }) => Some((SigClass::Tau, 0, *enb_ue_id, *mme_ue_id)),
            _ => None,
        },
        S1apPdu::HandoverRequired { enb_ue_id, mme_ue_id, .. } => Some((SigClass::Handover, 0, *enb_ue_id, *mme_ue_id)),
        S1apPdu::HandoverRequestAck { mme_ue_id, .. } => Some((SigClass::Handover, 0, 0, *mme_ue_id)),
        S1apPdu::PathSwitchRequest { enb_ue_id, mme_ue_id, .. } => {
            Some((SigClass::Handover, 0, *enb_ue_id, *mme_ue_id))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverloadConfig;

    fn cfg(rate: u32, burst: u32, ceiling: u32) -> OverloadConfig {
        OverloadConfig {
            enabled: true,
            enb_rate_per_tick: rate,
            enb_burst: burst,
            max_in_flight: ceiling,
            backoff_ms: 500,
        }
    }

    #[test]
    fn disabled_admits_everything() {
        let mut ac = AdmissionControl::new(OverloadConfig::default());
        for i in 0..10_000u64 {
            assert!(ac.admit(SigClass::Tau, 1, i, 0));
        }
        assert_eq!(ac.tracked_enbs(), 0, "disabled controller allocates nothing");
    }

    #[test]
    fn bucket_exhausts_then_refills_on_tick() {
        let mut ac = AdmissionControl::new(cfg(2, 4, 0));
        // Burst of 4 admitted, 5th shed.
        for _ in 0..4 {
            assert!(ac.admit(SigClass::Attach, 7, 0, 1));
        }
        assert!(!ac.admit(SigClass::Attach, 7, 0, 1));
        assert_eq!(ac.tokens_available(), 0);
        // Next tick refills 2 tokens.
        assert!(ac.admit(SigClass::Attach, 7, 0, 2));
        assert!(ac.admit(SigClass::Attach, 7, 0, 2));
        assert!(!ac.admit(SigClass::Attach, 7, 0, 2));
        // A long idle gap refills only to the burst cap.
        assert!(ac.would_admit(SigClass::Attach, 7, 0, 1000));
        ac.admit(SigClass::Attach, 7, 0, 1000);
        assert_eq!(ac.tokens_available(), 3, "capped at burst, then one drawn");
    }

    #[test]
    fn buckets_are_per_enb() {
        let mut ac = AdmissionControl::new(cfg(1, 2, 0));
        assert!(ac.admit(SigClass::Attach, 1, 0, 1));
        assert!(ac.admit(SigClass::Attach, 1, 0, 1));
        assert!(!ac.admit(SigClass::Attach, 1, 0, 1), "cell 1 exhausted");
        assert!(ac.admit(SigClass::Attach, 2, 0, 1), "cell 2 untouched");
        assert_eq!(ac.tracked_enbs(), 2);
    }

    #[test]
    fn tau_sheds_before_attach() {
        // burst 8 → TAU reserve 4: TAU admits 4 times, then attach still
        // has 4 tokens to draw. (Same tick throughout, so no refill.)
        let mut ac = AdmissionControl::new(cfg(1, 8, 0));
        let mut tau_admitted = 0;
        while ac.admit(SigClass::Tau, 3, 0, 1) {
            tau_admitted += 1;
        }
        assert_eq!(tau_admitted, 4);
        for _ in 0..4 {
            assert!(ac.admit(SigClass::Attach, 3, 0, 1), "attach draws the TAU reserve");
        }
        assert!(!ac.admit(SigClass::Attach, 3, 0, 1));
    }

    #[test]
    fn ceiling_sheds_attach_before_handover() {
        let mut ac = AdmissionControl::new(cfg(0, 0, 10));
        assert!(ac.admit(SigClass::Attach, 1, 9, 1));
        assert!(!ac.would_admit(SigClass::Attach, 1, 10, 2));
        assert!(ac.would_admit(SigClass::Handover, 1, 10, 2), "handover keeps 2x headroom");
        assert!(ac.admit(SigClass::Handover, 1, 19, 2));
        assert!(!ac.admit(SigClass::Handover, 1, 20, 3));
    }

    #[test]
    fn shed_latches_lower_classes_for_the_tick() {
        let mut ac = AdmissionControl::new(cfg(1, 2, 0));
        assert!(ac.admit(SigClass::Attach, 5, 0, 1));
        assert!(ac.admit(SigClass::Attach, 5, 0, 1));
        assert!(!ac.admit(SigClass::Attach, 5, 0, 1), "bucket empty");
        // TAU from a *different, full-bucket* eNodeB is still refused:
        // once attach-class shed anywhere this tick, lower classes shed
        // everywhere until the tick advances.
        assert!(!ac.admit(SigClass::Tau, 6, 0, 1));
        assert!(!ac.would_admit(SigClass::Tau, 6, 0, 1));
        // Handover (higher class) is unaffected by the latch.
        assert!(ac.admit(SigClass::Handover, 6, 0, 1));
        // Tick advance clears the latch; eNB 6's bucket was never drawn.
        assert!(ac.admit(SigClass::Tau, 6, 0, 2));
    }

    #[test]
    fn shed_decision_is_monotone_in_class_at_every_state() {
        // Whatever state the controller is in, would_admit must be
        // monotone: a class refused implies every lower class refused.
        let mut ac = AdmissionControl::new(cfg(1, 4, 6));
        let classes = [SigClass::Handover, SigClass::Attach, SigClass::Tau];
        let mut step = 0u64;
        for tick in 1..20u64 {
            for in_flight in [0u64, 3, 6, 12, 13] {
                for ecgi in [1u32, 2] {
                    for &c in &classes {
                        let decisions: Vec<bool> =
                            classes.iter().map(|&k| ac.would_admit(k, ecgi, in_flight, tick)).collect();
                        for w in decisions.windows(2) {
                            assert!(
                                w[0] || !w[1],
                                "lower class admitted while higher shed: {decisions:?} tick {tick} in_flight {in_flight}"
                            );
                        }
                        // Interleave real admissions to move the state.
                        if step.is_multiple_of(3) {
                            ac.admit(c, ecgi, in_flight, tick);
                        }
                        step += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn classify_targets_only_procedure_starts() {
        use pepc_sigproto::nas::NasMsg;
        let attach = S1apPdu::InitialUeMessage {
            enb_ue_id: 9,
            ecgi: 0x77,
            tac: 1,
            nas: NasMsg::AttachRequest { imsi: 404_02_0000000001, ue_capability: 0 }.encode(),
        };
        assert_eq!(classify_for_admission(&attach), Some((SigClass::Attach, 0x77, 9, 0)));
        let svc = S1apPdu::InitialUeMessage {
            enb_ue_id: 9,
            ecgi: 0x78,
            tac: 1,
            nas: NasMsg::ServiceRequest { guti: 0xD00D }.encode(),
        };
        assert_eq!(classify_for_admission(&svc), Some((SigClass::Attach, 0x78, 9, 0)));
        let tau = S1apPdu::UplinkNasTransport {
            enb_ue_id: 9,
            mme_ue_id: 4,
            nas: NasMsg::TrackingAreaUpdateRequest { guti: 0xD00D, tac: 2 }.encode(),
        };
        assert_eq!(classify_for_admission(&tau), Some((SigClass::Tau, 0, 9, 4)));
        let ho = S1apPdu::HandoverRequired { enb_ue_id: 9, mme_ue_id: 4, target_ecgi: 0x99 };
        assert_eq!(classify_for_admission(&ho).map(|c| c.0), Some(SigClass::Handover));
        // Mid-procedure legs and load-reducing messages are exempt.
        let auth = S1apPdu::UplinkNasTransport {
            enb_ue_id: 9,
            mme_ue_id: 4,
            nas: NasMsg::AuthenticationResponse { res: 1 }.encode(),
        };
        assert_eq!(classify_for_admission(&auth), None);
        let detach = S1apPdu::UplinkNasTransport {
            enb_ue_id: 9,
            mme_ue_id: 4,
            nas: NasMsg::DetachRequest { guti: 0xD00D }.encode(),
        };
        assert_eq!(classify_for_admission(&detach), None);
        let ics = S1apPdu::InitialContextSetupResponse { enb_ue_id: 9, mme_ue_id: 4, enb_teid: 1, enb_ip: 2 };
        assert_eq!(classify_for_admission(&ics), None);
    }
}
