//! Per-UE procedure state machines — the "UE serialization" layer (PR 6).
//!
//! The paper slices state by user so that one control thread owns each
//! UE's signaling; this module makes the *procedure* dimension explicit.
//! Every UE has at most one [`UeMachine`], which is the single owner of
//! that UE's in-flight procedure: it consumes one routed signaling
//! message ([`SigMsg`]) at a time and, for messages that do not fit the
//! current state, decides a [`Disposition`] — queue it in the per-UE
//! mailbox, preempt the running procedure, abort with a NAS cause, dedup
//! a retransmission (answering from the cached response), or drop it.
//!
//! The machine itself is pure bookkeeping: [`crate::ctrl::ControlPlane`]
//! is the dispatcher that routes PDUs to machines, applies dispositions,
//! and performs the actual state mutations when a message is delivered.
//! Keeping the policy table here, side-effect free, is what makes the
//! interleaving test matrix (`tests/procedure_interleavings.rs`) able to
//! enumerate it exhaustively.
//!
//! State diagram (attach; `*` marks states where the half-created user
//! must be rolled back if the procedure is preempted/aborted/expired):
//!
//! ```text
//! Idle --AttachStart--> WaitAuth --AuthRsp--> WaitSmc --SmcComplete-->
//!     WaitIcs* --IcsRsp--> WaitComplete* --AttachComplete--> Idle
//! ```
//!
//! Handover (S1 three-way):
//!
//! ```text
//! Idle --HoRequired--> HandoverWaitAck --HoAck--> Idle
//! ```
//!
//! Network-triggered paging (timer-driven retransmission on the
//! supervision clock, resolved by the UE's Service Request):
//!
//! ```text
//! Idle --PageTrigger--> PagingWait --ServiceStart--> Idle
//!                       PagingWait --(retx timer x PAGING_MAX_RETX)--> expire
//! ```
//!
//! Detach, TAU, service request, S1 release, network detach, path switch
//! (X2), and bearer setup are single-message procedures: they start and
//! complete in one step and never leave `Idle` behind.

use pepc_sigproto::nas::NasMsg;
use pepc_sigproto::s1ap::S1apPdu;
use std::collections::VecDeque;

/// Paging retransmissions before the page expires (escalation gives up
/// and the buffered downlink is dropped).
pub const PAGING_MAX_RETX: u8 = 3;

/// Supervision ticks between paging retransmissions — pure tick
/// arithmetic, no wall clock, so every schedule is deterministic.
pub const PAGING_RETX_TICKS: u64 = 2;

/// Per-UE mailbox depth. Deferred messages beyond this are dropped (and
/// counted); 8 comfortably covers every legal overlap of two procedures.
pub const MAILBOX_CAP: usize = 8;

/// Which procedure a machine is currently running (telemetry label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcKind {
    Attach,
    Handover,
    Paging,
}

/// The resumable procedure state. `Copy` so HA snapshots and the
/// dispatcher can move it around freely; identifiers needed to resume are
/// carried inline (nothing hides in closures or call stacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// No procedure in flight.
    Idle,
    /// Attach: challenge sent, waiting for the UE's RES.
    AttachWaitAuth { imsi: u64, xres: u64, ecgi: u32, mme_ue_id: u32 },
    /// Attach: security mode commanded, waiting for completion.
    AttachWaitSmc { imsi: u64, ecgi: u32, mme_ue_id: u32 },
    /// Attach: context setup sent, waiting for the eNodeB's endpoint.
    /// The user record exists from here on (rollback on abort).
    AttachWaitIcs { imsi: u64, mme_ue_id: u32 },
    /// Attach: waiting for the final NAS Attach Complete.
    AttachWaitComplete { imsi: u64, mme_ue_id: u32 },
    /// S1 handover: waiting for the target eNodeB's ack.
    HandoverWaitAck { imsi: u64, source_enb_ue_id: u32, mme_ue_id: u32 },
    /// Network-triggered paging: a Paging PDU is out, waiting for the
    /// UE's Service Request. `next_retx` is the supervision tick the next
    /// retransmission fires at; after [`PAGING_MAX_RETX`] retransmissions
    /// the page expires and the buffered downlink is dropped.
    PagingWait { imsi: u64, mme_ue_id: u32, retries: u8, next_retx: u64 },
}

impl ProcState {
    /// The procedure this state belongs to, if any.
    pub fn kind(&self) -> Option<ProcKind> {
        match self {
            ProcState::Idle => None,
            ProcState::AttachWaitAuth { .. }
            | ProcState::AttachWaitSmc { .. }
            | ProcState::AttachWaitIcs { .. }
            | ProcState::AttachWaitComplete { .. } => Some(ProcKind::Attach),
            ProcState::HandoverWaitAck { .. } => Some(ProcKind::Handover),
            ProcState::PagingWait { .. } => Some(ProcKind::Paging),
        }
    }
}

/// A signaling message after routing: addressed to exactly one UE, with
/// the transport identifiers it arrived under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigMsg {
    /// Initial UE message carrying a NAS Attach Request.
    AttachStart { enb_ue_id: u32, ecgi: u32, tac: u16, imsi: u64 },
    /// Initial UE message carrying a NAS Service Request.
    ServiceStart { enb_ue_id: u32, ecgi: u32, guti: u64 },
    /// Uplink NAS transport (decoded).
    Nas { enb_ue_id: u32, mme_ue_id: u32, msg: NasMsg },
    /// Initial Context Setup Response from the eNodeB.
    IcsRsp { enb_ue_id: u32, mme_ue_id: u32, enb_teid: u32, enb_ip: u32 },
    /// X2 path switch request.
    PathSwitch { enb_ue_id: u32, mme_ue_id: u32, new_enb_teid: u32, new_enb_ip: u32, ecgi: u32 },
    /// S1 Handover Required from the source eNodeB.
    HoRequired { enb_ue_id: u32, mme_ue_id: u32 },
    /// S1 Handover Request Ack from the target eNodeB.
    HoAck { mme_ue_id: u32, new_enb_teid: u32, new_enb_ip: u32 },
    /// eNodeB-initiated S1 release (UE Context Release Request): the UE
    /// goes idle — data path suspended, tunnels torn down, context kept.
    ReleaseReq { enb_ue_id: u32, mme_ue_id: u32, cause: u8 },
    /// Internal: a downlink packet arrived for an idle UE; the data path
    /// buffered it and asks the control plane to page. Not a wire PDU —
    /// it still flows through the mailbox/disposition machinery (and the
    /// signaling conservation identity) like any other message.
    PageTrigger { imsi: u64 },
    /// Internal: network-triggered detach (operator/HSS action). Emits a
    /// NAS Detach Request (UE-terminated) and a UE context release.
    NetDetach { imsi: u64 },
}

/// What the machine decides to do with an arriving message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Fits the current state: deliver and step the machine.
    Deliver,
    /// Legal but not now: park in the mailbox until the procedure ends.
    Defer,
    /// A retransmission of the message that produced the cached
    /// response: re-emit [`UeMachine::last_tx`] without stepping.
    Dedup,
    /// A newer procedure displaces the running one: abort (with
    /// rollback), then deliver this message into the fresh `Idle` state.
    Preempt,
    /// Irreconcilable mid-procedure: abort with a NAS cause.
    Abort,
    /// Meaningless in every reachable state: discard.
    Drop,
}

/// The single-owner procedure machine for one UE.
#[derive(Debug)]
pub struct UeMachine {
    pub imsi: u64,
    /// Last eNodeB UE id seen for this UE (routing index value).
    pub enb_ue_id: u32,
    pub state: ProcState,
    /// Messages deferred until the running procedure terminates.
    pub mailbox: VecDeque<SigMsg>,
    /// Response emitted for the last delivered message — replayed on
    /// dedup so retransmissions are idempotent.
    pub last_tx: Vec<S1apPdu>,
    /// Tick of the last delivered message (drives the supervision timer
    /// and the "stuck procedure" oracle).
    pub last_progress: u64,
    /// The user record predates the running procedure (idempotent
    /// re-attach): abort must *not* roll the user back.
    pub preexisting: bool,
}

impl UeMachine {
    pub fn new(imsi: u64, now: u64) -> Self {
        UeMachine {
            imsi,
            enb_ue_id: 0,
            state: ProcState::Idle,
            mailbox: VecDeque::new(),
            last_tx: Vec::new(),
            last_progress: now,
            preexisting: false,
        }
    }

    /// Whether a procedure is in flight.
    pub fn in_flight(&self) -> bool {
        self.state != ProcState::Idle
    }

    /// The policy table: given the current state, classify an arriving
    /// message. Pure — no side effects, so tests can sweep it.
    pub fn dispose(&self, msg: &SigMsg) -> Disposition {
        use Disposition::*;
        match self.state {
            // Idle: everything is deliverable; the step function decides
            // whether it means anything.
            ProcState::Idle => Deliver,

            // Mid-attach.
            ProcState::AttachWaitAuth { mme_ue_id, .. }
            | ProcState::AttachWaitSmc { mme_ue_id, .. }
            | ProcState::AttachWaitIcs { mme_ue_id, .. }
            | ProcState::AttachWaitComplete { mme_ue_id, .. } => match msg {
                // Retransmitted Attach Request on the same S1 association
                // is the same attempt; a different association is a new
                // attempt that displaces this one.
                SigMsg::AttachStart { enb_ue_id, .. } => {
                    if *enb_ue_id == self.enb_ue_id {
                        Dedup
                    } else {
                        Preempt
                    }
                }
                // A UE mid-attach has no bearer to re-establish.
                SigMsg::ServiceStart { .. } => Drop,
                SigMsg::Nas { msg, .. } => match (self.state, msg) {
                    // The expected next NAS message of each wait state.
                    (ProcState::AttachWaitAuth { .. }, NasMsg::AuthenticationResponse { .. })
                    | (ProcState::AttachWaitSmc { .. }, NasMsg::SecurityModeComplete)
                    | (ProcState::AttachWaitComplete { .. }, NasMsg::AttachComplete) => Deliver,
                    // Retransmits of already-consumed steps.
                    (
                        ProcState::AttachWaitSmc { .. }
                        | ProcState::AttachWaitIcs { .. }
                        | ProcState::AttachWaitComplete { .. },
                        NasMsg::AuthenticationResponse { .. },
                    )
                    | (
                        ProcState::AttachWaitIcs { .. } | ProcState::AttachWaitComplete { .. },
                        NasMsg::SecurityModeComplete,
                    ) => Dedup,
                    // The UE changed its mind: detach wins over attach.
                    (_, NasMsg::DetachRequest { .. }) => Preempt,
                    // Mobility while attaching: hold until the attach
                    // terminates, then apply.
                    (_, NasMsg::TrackingAreaUpdateRequest { .. }) => Defer,
                    // Anything else mid-attach is a protocol error.
                    _ => Abort,
                },
                SigMsg::IcsRsp { mme_ue_id: got, .. } => {
                    if matches!(self.state, ProcState::AttachWaitIcs { .. }) && *got == mme_ue_id {
                        Deliver
                    } else {
                        Drop
                    }
                }
                // Mobility events wait for the attach to finish.
                SigMsg::PathSwitch { .. } | SigMsg::HoRequired { .. } => Defer,
                // An S1 handover ack without a handover in flight.
                SigMsg::HoAck { .. } => Drop,
                // The eNodeB wants to release mid-attach: hold it until
                // the attach terminates (an aborted attach releases
                // anyway; a completed one is then released normally).
                SigMsg::ReleaseReq { .. } => Defer,
                // Downlink for a UE that is attaching: it is not idle, so
                // there is nothing to page — the data path will deliver
                // once the attach installs the bearer.
                SigMsg::PageTrigger { .. } => Drop,
                // The network kicking the UE out wins over its attach.
                SigMsg::NetDetach { .. } => Preempt,
            },

            // Mid-handover.
            ProcState::HandoverWaitAck { mme_ue_id, .. } => match msg {
                SigMsg::HoAck { mme_ue_id: got, .. } => {
                    if *got == mme_ue_id {
                        Deliver
                    } else {
                        Drop
                    }
                }
                // Source eNodeB retransmitting Handover Required.
                SigMsg::HoRequired { .. } => Dedup,
                // A fresh attach or a detach displaces the handover.
                SigMsg::AttachStart { .. } => Preempt,
                SigMsg::Nas { msg: NasMsg::DetachRequest { .. }, .. } => Preempt,
                // Competing mobility / activity: after the handover.
                SigMsg::PathSwitch { .. }
                | SigMsg::ServiceStart { .. }
                | SigMsg::Nas { msg: NasMsg::TrackingAreaUpdateRequest { .. }, .. } => Defer,
                // Radio loss during handover resolves after it settles.
                SigMsg::ReleaseReq { .. } => Defer,
                // The network kicking the UE out wins over its handover.
                SigMsg::NetDetach { .. } => Preempt,
                // Stray attach-procedure messages during a handover.
                _ => Drop,
            },

            // Waiting for a paged UE to answer.
            ProcState::PagingWait { .. } => match msg {
                // The UE woke up — exactly what the page asked for.
                SigMsg::ServiceStart { .. } => Deliver,
                // Another downlink packet while already paging: the page
                // in flight covers it (the packet is buffered; answering
                // the existing page flushes everything).
                SigMsg::PageTrigger { .. } => Dedup,
                // A fresh attach supersedes the paged context.
                SigMsg::AttachStart { .. } => Preempt,
                // The UE (or the network) leaving cancels the page.
                SigMsg::Nas { msg: NasMsg::DetachRequest { .. }, .. } => Preempt,
                SigMsg::NetDetach { .. } => Preempt,
                // Mobility from idle: apply once the page resolves.
                SigMsg::Nas { msg: NasMsg::TrackingAreaUpdateRequest { .. }, .. } => Defer,
                // A release for an already-idle UE is meaningless, as is
                // any attach/handover-procedure message.
                _ => Drop,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_in(state: ProcState) -> UeMachine {
        let mut m = UeMachine::new(7, 0);
        m.enb_ue_id = 10;
        m.state = state;
        m
    }

    fn nas(msg: NasMsg) -> SigMsg {
        SigMsg::Nas { enb_ue_id: 10, mme_ue_id: 1, msg }
    }

    const WAIT_AUTH: ProcState = ProcState::AttachWaitAuth { imsi: 7, xres: 1, ecgi: 1, mme_ue_id: 1 };
    const WAIT_SMC: ProcState = ProcState::AttachWaitSmc { imsi: 7, ecgi: 1, mme_ue_id: 1 };
    const WAIT_ICS: ProcState = ProcState::AttachWaitIcs { imsi: 7, mme_ue_id: 1 };
    const WAIT_CPL: ProcState = ProcState::AttachWaitComplete { imsi: 7, mme_ue_id: 1 };
    const HO_WAIT: ProcState = ProcState::HandoverWaitAck { imsi: 7, source_enb_ue_id: 10, mme_ue_id: 1 };
    const PAGE_WAIT: ProcState = ProcState::PagingWait { imsi: 7, mme_ue_id: 1, retries: 0, next_retx: 2 };

    #[test]
    fn idle_delivers_everything() {
        let m = machine_in(ProcState::Idle);
        for msg in [
            SigMsg::AttachStart { enb_ue_id: 1, ecgi: 1, tac: 1, imsi: 7 },
            SigMsg::ServiceStart { enb_ue_id: 1, ecgi: 1, guti: 9 },
            nas(NasMsg::AttachComplete),
            SigMsg::HoAck { mme_ue_id: 1, new_enb_teid: 1, new_enb_ip: 1 },
        ] {
            assert_eq!(m.dispose(&msg), Disposition::Deliver, "{msg:?}");
        }
        assert!(!m.in_flight());
    }

    #[test]
    fn attach_expected_steps_deliver() {
        assert_eq!(
            machine_in(WAIT_AUTH).dispose(&nas(NasMsg::AuthenticationResponse { res: 1 })),
            Disposition::Deliver
        );
        assert_eq!(machine_in(WAIT_SMC).dispose(&nas(NasMsg::SecurityModeComplete)), Disposition::Deliver);
        assert_eq!(machine_in(WAIT_CPL).dispose(&nas(NasMsg::AttachComplete)), Disposition::Deliver);
        assert_eq!(
            machine_in(WAIT_ICS).dispose(&SigMsg::IcsRsp { enb_ue_id: 10, mme_ue_id: 1, enb_teid: 1, enb_ip: 1 }),
            Disposition::Deliver
        );
    }

    #[test]
    fn attach_retransmits_dedup() {
        // Same S1 association retransmitting the Attach Request.
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL] {
            assert_eq!(
                machine_in(st).dispose(&SigMsg::AttachStart { enb_ue_id: 10, ecgi: 1, tac: 1, imsi: 7 }),
                Disposition::Dedup,
                "{st:?}"
            );
        }
        // Already-consumed NAS steps.
        for st in [WAIT_SMC, WAIT_ICS, WAIT_CPL] {
            assert_eq!(
                machine_in(st).dispose(&nas(NasMsg::AuthenticationResponse { res: 1 })),
                Disposition::Dedup,
                "{st:?}"
            );
        }
        for st in [WAIT_ICS, WAIT_CPL] {
            assert_eq!(machine_in(st).dispose(&nas(NasMsg::SecurityModeComplete)), Disposition::Dedup, "{st:?}");
        }
    }

    #[test]
    fn new_association_preempts_attach() {
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL] {
            assert_eq!(
                machine_in(st).dispose(&SigMsg::AttachStart { enb_ue_id: 11, ecgi: 1, tac: 1, imsi: 7 }),
                Disposition::Preempt,
                "{st:?}"
            );
        }
    }

    #[test]
    fn detach_preempts_everything() {
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL, HO_WAIT] {
            assert_eq!(machine_in(st).dispose(&nas(NasMsg::DetachRequest { guti: 9 })), Disposition::Preempt, "{st:?}");
        }
    }

    #[test]
    fn mobility_defers_during_attach() {
        let ps = SigMsg::PathSwitch { enb_ue_id: 1, mme_ue_id: 1, new_enb_teid: 1, new_enb_ip: 1, ecgi: 0 };
        let ho = SigMsg::HoRequired { enb_ue_id: 1, mme_ue_id: 1 };
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL] {
            assert_eq!(machine_in(st).dispose(&ps), Disposition::Defer, "{st:?}");
            assert_eq!(machine_in(st).dispose(&ho), Disposition::Defer, "{st:?}");
            assert_eq!(
                machine_in(st).dispose(&nas(NasMsg::TrackingAreaUpdateRequest { guti: 9, tac: 2 })),
                Disposition::Defer,
                "{st:?}"
            );
        }
    }

    #[test]
    fn out_of_state_nas_aborts_attach() {
        // An Attach Complete before the context is set up cannot be a
        // retransmission — the procedure is broken.
        assert_eq!(machine_in(WAIT_AUTH).dispose(&nas(NasMsg::AttachComplete)), Disposition::Abort);
        assert_eq!(machine_in(WAIT_SMC).dispose(&nas(NasMsg::AttachComplete)), Disposition::Abort);
        assert_eq!(machine_in(WAIT_AUTH).dispose(&nas(NasMsg::SecurityModeComplete)), Disposition::Abort);
    }

    #[test]
    fn ics_response_gated_on_state_and_id() {
        let good = SigMsg::IcsRsp { enb_ue_id: 10, mme_ue_id: 1, enb_teid: 1, enb_ip: 1 };
        let bad_id = SigMsg::IcsRsp { enb_ue_id: 10, mme_ue_id: 99, enb_teid: 1, enb_ip: 1 };
        assert_eq!(machine_in(WAIT_ICS).dispose(&good), Disposition::Deliver);
        assert_eq!(machine_in(WAIT_ICS).dispose(&bad_id), Disposition::Drop);
        assert_eq!(machine_in(WAIT_AUTH).dispose(&good), Disposition::Drop);
    }

    #[test]
    fn handover_policy() {
        let m = machine_in(HO_WAIT);
        assert_eq!(m.dispose(&SigMsg::HoAck { mme_ue_id: 1, new_enb_teid: 1, new_enb_ip: 1 }), Disposition::Deliver);
        assert_eq!(m.dispose(&SigMsg::HoAck { mme_ue_id: 2, new_enb_teid: 1, new_enb_ip: 1 }), Disposition::Drop);
        assert_eq!(m.dispose(&SigMsg::HoRequired { enb_ue_id: 10, mme_ue_id: 1 }), Disposition::Dedup);
        assert_eq!(m.dispose(&SigMsg::AttachStart { enb_ue_id: 12, ecgi: 1, tac: 1, imsi: 7 }), Disposition::Preempt);
        assert_eq!(m.dispose(&SigMsg::ServiceStart { enb_ue_id: 1, ecgi: 1, guti: 9 }), Disposition::Defer);
        assert_eq!(
            m.dispose(&SigMsg::PathSwitch { enb_ue_id: 1, mme_ue_id: 1, new_enb_teid: 1, new_enb_ip: 1, ecgi: 0 }),
            Disposition::Defer
        );
        assert_eq!(m.dispose(&nas(NasMsg::AuthenticationResponse { res: 1 })), Disposition::Drop);
    }

    #[test]
    fn state_kinds() {
        assert_eq!(ProcState::Idle.kind(), None);
        assert_eq!(WAIT_AUTH.kind(), Some(ProcKind::Attach));
        assert_eq!(WAIT_CPL.kind(), Some(ProcKind::Attach));
        assert_eq!(HO_WAIT.kind(), Some(ProcKind::Handover));
        assert_eq!(PAGE_WAIT.kind(), Some(ProcKind::Paging));
    }

    #[test]
    fn release_defers_during_procedures() {
        let rel = SigMsg::ReleaseReq { enb_ue_id: 10, mme_ue_id: 1, cause: 0 };
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL, HO_WAIT] {
            assert_eq!(machine_in(st).dispose(&rel), Disposition::Defer, "{st:?}");
        }
        // Already paging means already idle — nothing left to release.
        assert_eq!(machine_in(PAGE_WAIT).dispose(&rel), Disposition::Drop);
        assert_eq!(machine_in(ProcState::Idle).dispose(&rel), Disposition::Deliver);
    }

    #[test]
    fn page_trigger_only_matters_when_idle() {
        let pg = SigMsg::PageTrigger { imsi: 7 };
        assert_eq!(machine_in(ProcState::Idle).dispose(&pg), Disposition::Deliver);
        // A second downlink burst while the page is out rides the page
        // already in flight.
        assert_eq!(machine_in(PAGE_WAIT).dispose(&pg), Disposition::Dedup);
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL, HO_WAIT] {
            assert_eq!(machine_in(st).dispose(&pg), Disposition::Drop, "{st:?}");
        }
    }

    #[test]
    fn network_detach_preempts_everything() {
        let nd = SigMsg::NetDetach { imsi: 7 };
        for st in [WAIT_AUTH, WAIT_SMC, WAIT_ICS, WAIT_CPL, HO_WAIT, PAGE_WAIT] {
            assert_eq!(machine_in(st).dispose(&nd), Disposition::Preempt, "{st:?}");
        }
        assert_eq!(machine_in(ProcState::Idle).dispose(&nd), Disposition::Deliver);
    }

    #[test]
    fn paging_policy() {
        let m = machine_in(PAGE_WAIT);
        // The service request the page is waiting for.
        assert_eq!(m.dispose(&SigMsg::ServiceStart { enb_ue_id: 2, ecgi: 1, guti: 9 }), Disposition::Deliver);
        // UE-side departures cancel the page.
        assert_eq!(m.dispose(&nas(NasMsg::DetachRequest { guti: 9 })), Disposition::Preempt);
        assert_eq!(m.dispose(&SigMsg::AttachStart { enb_ue_id: 11, ecgi: 1, tac: 1, imsi: 7 }), Disposition::Preempt);
        // Mobility from idle waits for the page to resolve.
        assert_eq!(m.dispose(&nas(NasMsg::TrackingAreaUpdateRequest { guti: 9, tac: 2 })), Disposition::Defer);
        // Attach/handover machinery is meaningless while idle.
        assert_eq!(m.dispose(&nas(NasMsg::AuthenticationResponse { res: 1 })), Disposition::Drop);
        assert_eq!(m.dispose(&SigMsg::HoAck { mme_ue_id: 1, new_enb_teid: 1, new_enb_ip: 1 }), Disposition::Drop);
        assert_eq!(
            m.dispose(&SigMsg::IcsRsp { enb_ue_id: 10, mme_ue_id: 1, enb_teid: 1, enb_ip: 1 }),
            Disposition::Drop
        );
    }
}
