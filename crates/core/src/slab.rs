//! Generational slab arena for per-user contexts (DESIGN.md §16).
//!
//! The classic layout — one `Arc<UeContext>` heap object per user —
//! spends a malloc/free per attach/detach, scatters contexts across the
//! heap (no locality for the data path's table walk), and costs 16 bytes
//! per table entry (pointer + refcount cache line). At 10M users that
//! allocation behavior, not ns/packet, becomes the binding constraint
//! (paper fig 5, fig 15).
//!
//! [`UeSlab`] instead stores contexts in large contiguous chunks and
//! hands out 8-byte **generational handles** ([`UeHandle`]):
//!
//! * **Chunks** of [`CHUNK_SLOTS`] contexts are allocated at once and
//!   published into an atomic chunk directory; slots inside a chunk are
//!   never individually allocated or freed by the system allocator.
//! * **Free slots go to a free-list**, so a detach/attach cycle reuses a
//!   warm slot with no heap traffic at all.
//! * Each slot carries a **generation counter** (even = free, odd =
//!   live). A handle embeds the generation it was minted under;
//!   [`UeSlab::resolve`] re-checks it, so a handle held across the
//!   slot's free+reuse *misses* instead of aliasing the new tenant
//!   (the ABA guard the tests pin down).
//!
//! Concurrency contract, matching the slice's single-writer discipline:
//! `alloc`/`free` are control-rate operations serialized by one internal
//! mutex; `resolve` is the per-packet operation and is lock-free (two
//! acquire loads + a compare). Slot *contents* are re-initialized through
//! [`UeContext`]'s own publish protocol — never raw stores — so a stale
//! optimistic reader racing a slot reuse only ever observes
//! protocol-mediated writes.

use crate::state::{ControlState, CounterState, UeContext};
use parking_lot::Mutex;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

/// Slots per chunk. 4096 contexts × ~4 cache lines each ≈ 1.6 MiB per
/// chunk — large enough to amortize allocation, small enough that a
/// lightly-used slice doesn't strand much memory.
pub const CHUNK_SLOTS: usize = 4096;

/// Chunk-directory fan-out; caps the slab at `CHUNK_SLOTS²` ≈ 16.7M
/// slots, comfortably above the 10M-user target.
const MAX_CHUNKS: usize = 4096;

/// One contiguous block of contexts plus their generation counters.
///
/// Generations live in their own array (not interleaved with the slots)
/// so a resolve touches one densely-packed counter line and the context
/// lines stay exclusively the planes' own traffic.
struct Chunk {
    /// Per-slot generation: even = free, odd = live. Bumped with
    /// `Release` on alloc (after the slot content is re-initialized) and
    /// on free, read with `Acquire` by `resolve`.
    gens: [AtomicU32; CHUNK_SLOTS],
    slots: [UeContext; CHUNK_SLOTS],
}

/// Heap-allocate and fully initialize a chunk. `Chunk` is ~1.6 MiB —
/// far too large to construct on the stack and `Box` — so it is built
/// in place.
fn new_chunk() -> *mut Chunk {
    let layout = Layout::new::<Chunk>();
    // SAFETY: the layout is non-zero-sized.
    let p = unsafe { alloc(layout) }.cast::<Chunk>();
    if p.is_null() {
        handle_alloc_error(layout);
    }
    // SAFETY: `p` is valid for `Chunk` writes; every slot and generation
    // is initialized exactly once before the pointer is published.
    unsafe {
        let gens = ptr::addr_of_mut!((*p).gens).cast::<AtomicU32>();
        let slots = ptr::addr_of_mut!((*p).slots).cast::<UeContext>();
        for i in 0..CHUNK_SLOTS {
            ptr::write(gens.add(i), AtomicU32::new(0));
            ptr::write(slots.add(i), UeContext::raw(ControlState::new(0)));
        }
    }
    p
}

/// An 8-byte generational handle to a slab slot: generation in the high
/// 32 bits, slot index in the low 32. This is what the data-plane tables
/// store instead of a 16-byte `Arc` pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UeHandle(u64);

impl UeHandle {
    fn new(generation: u32, index: u32) -> Self {
        UeHandle((u64::from(generation) << 32) | u64::from(index))
    }

    /// The generation this handle was minted under (odd while live).
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The slot index within the slab.
    pub fn index(self) -> u32 {
        self.0 as u32
    }

    /// The raw 64-bit encoding (telemetry / oracle identity).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`Self::bits`].
    pub fn from_bits(bits: u64) -> Self {
        UeHandle(bits)
    }
}

/// A resolved handle: a borrow of the slot's context plus the handle it
/// came from. Derefs to [`UeContext`], so call sites read through it
/// exactly as they read through the old `Arc<UeContext>`.
#[derive(Debug, Clone, Copy)]
pub struct UeRef<'a> {
    ctx: &'a UeContext,
    handle: UeHandle,
}

impl<'a> UeRef<'a> {
    /// The handle this reference resolved from.
    pub fn handle(&self) -> UeHandle {
        self.handle
    }

    /// The underlying context borrow (escape hatch for pointer-based
    /// grouping on the burst path).
    pub fn context(&self) -> &'a UeContext {
        self.ctx
    }
}

impl Deref for UeRef<'_> {
    type Target = UeContext;
    fn deref(&self) -> &UeContext {
        self.ctx
    }
}

/// Allocation state behind the mutex: the free-list and the bump cursor.
/// Chunk creation also happens under this lock, so at most one thread
/// ever races the directory publish.
struct AllocState {
    free: Vec<u32>,
    next: u32,
}

/// The generational slab. See the module docs for the contract.
pub struct UeSlab {
    /// Chunk directory: `Acquire`-loaded by `resolve`, `Release`-stored
    /// (under the alloc lock) when a chunk is born. Chunks are never
    /// freed before the slab itself drops, so a loaded pointer stays
    /// valid for the borrow's lifetime.
    dir: Box<[AtomicPtr<Chunk>]>,
    alloc: Mutex<AllocState>,
    live: AtomicU64,
    chunks: AtomicU64,
}

impl Default for UeSlab {
    fn default() -> Self {
        Self::new()
    }
}

impl UeSlab {
    pub fn new() -> Self {
        UeSlab {
            dir: (0..MAX_CHUNKS).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
            alloc: Mutex::new(AllocState { free: Vec::new(), next: 0 }),
            live: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        }
    }

    /// Allocate a slot and initialize it with `ctrl` + `counters`.
    /// Control-rate: one mutex, no heap traffic unless a fresh chunk is
    /// needed (once per [`CHUNK_SLOTS`] net new users).
    pub fn alloc(&self, ctrl: ControlState, counters: CounterState) -> UeHandle {
        let index = {
            let mut a = self.alloc.lock();
            match a.free.pop() {
                Some(i) => i,
                None => {
                    let i = a.next;
                    assert!((i as usize) < MAX_CHUNKS * CHUNK_SLOTS, "UeSlab exhausted ({} slots)", i);
                    let c = i as usize / CHUNK_SLOTS;
                    if self.dir[c].load(Ordering::Acquire).is_null() {
                        self.dir[c].store(new_chunk(), Ordering::Release);
                        self.chunks.fetch_add(1, Ordering::Relaxed);
                    }
                    a.next = i + 1;
                    i
                }
            }
        };
        let (chunk, slot) = (index as usize / CHUNK_SLOTS, index as usize % CHUNK_SLOTS);
        // SAFETY: the chunk was published (under the lock) before any
        // index into it was handed out.
        let c = unsafe { &*self.dir[chunk].load(Ordering::Acquire) };
        let generation = c.gens[slot].load(Ordering::Relaxed);
        debug_assert_eq!(generation % 2, 0, "allocating a live slot");
        // Re-initialize through the context's own publish protocol (write
        // guard republishes the view; counter publish bumps the cell
        // sequence) so a stale optimistic reader racing this reuse only
        // ever sees protocol-mediated writes, never a raw overwrite.
        let ctx = &c.slots[slot];
        *ctx.ctrl_write() = ctrl;
        ctx.update_counters(|c| *c = counters);
        let live_gen = generation.wrapping_add(1);
        c.gens[slot].store(live_gen, Ordering::Release);
        self.live.fetch_add(1, Ordering::Relaxed);
        UeHandle::new(live_gen, index)
    }

    /// Release a slot back to the free-list. Returns false (and does
    /// nothing) if the handle is stale — already freed, or freed and
    /// reallocated to someone else.
    pub fn free(&self, h: UeHandle) -> bool {
        let index = h.index() as usize;
        let Some(c) = self.chunk(index / CHUNK_SLOTS) else { return false };
        let slot = index % CHUNK_SLOTS;
        let generation = c.gens[slot].load(Ordering::Acquire);
        if generation != h.generation() || generation % 2 == 0 {
            return false;
        }
        c.gens[slot].store(generation.wrapping_add(1), Ordering::Release);
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.alloc.lock().free.push(h.index());
        true
    }

    /// Resolve a handle to its context. Lock-free (the per-packet path):
    /// two acquire loads and a generation compare. Returns `None` for a
    /// stale handle — the ABA guard.
    #[inline]
    pub fn resolve(&self, h: UeHandle) -> Option<UeRef<'_>> {
        let index = h.index() as usize;
        let c = self.chunk(index / CHUNK_SLOTS)?;
        let slot = index % CHUNK_SLOTS;
        let generation = c.gens[slot].load(Ordering::Acquire);
        if generation != h.generation() || generation % 2 == 0 {
            return None;
        }
        Some(UeRef { ctx: &c.slots[slot], handle: h })
    }

    #[inline]
    fn chunk(&self, c: usize) -> Option<&Chunk> {
        if c >= MAX_CHUNKS {
            return None;
        }
        let p = self.dir[c].load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: published chunks live until the slab drops.
            Some(unsafe { &*p })
        }
    }

    // -- gauges ---------------------------------------------------------------

    /// Live (attached) slots.
    pub fn live_slots(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Slots sitting on the free-list, ready for reuse without heap
    /// traffic.
    pub fn free_slots(&self) -> u64 {
        self.alloc.lock().free.len() as u64
    }

    /// Resident bytes attributable to the slab: chunk storage plus the
    /// directory and free-list bookkeeping.
    pub fn bytes(&self) -> u64 {
        let chunk_bytes = self.chunks.load(Ordering::Relaxed) * std::mem::size_of::<Chunk>() as u64;
        let dir_bytes = (MAX_CHUNKS * std::mem::size_of::<AtomicPtr<Chunk>>()) as u64;
        let free_bytes = (self.alloc.lock().free.capacity() * std::mem::size_of::<u32>()) as u64;
        chunk_bytes + dir_bytes + free_bytes
    }

    /// Measured bytes per live user — the density audit the capacity
    /// bench gates on. Includes chunk slack, so it converges toward
    /// `size_of::<Chunk>() / CHUNK_SLOTS` as the slab fills.
    pub fn bytes_per_user(&self) -> u64 {
        self.bytes() / self.live_slots().max(1)
    }
}

impl Drop for UeSlab {
    fn drop(&mut self) {
        for d in self.dir.iter() {
            let p = d.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            // SAFETY: exclusive access (`&mut self`); every slot was
            // initialized at chunk birth and is dropped exactly once.
            unsafe {
                let slots = ptr::addr_of_mut!((*p).slots).cast::<UeContext>();
                for i in 0..CHUNK_SLOTS {
                    ptr::drop_in_place(slots.add(i));
                }
                dealloc(p.cast::<u8>(), Layout::new::<Chunk>());
            }
        }
    }
}

// SAFETY: the raw chunk pointers are an ownership detail; all shared
// access goes through `&UeContext` (itself `Sync`), atomics, or the
// alloc mutex.
unsafe impl Send for UeSlab {}
unsafe impl Sync for UeSlab {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(imsi: u64) -> ControlState {
        ControlState::new(imsi)
    }

    #[test]
    fn alloc_resolve_roundtrip() {
        let slab = UeSlab::new();
        let counters = CounterState { uplink_bytes: 777, ..CounterState::default() };
        let h = slab.alloc(ctrl(404_01_0000000001), counters);
        let r = slab.resolve(h).expect("fresh handle resolves");
        assert_eq!(r.ctrl_read().imsi, 404_01_0000000001);
        assert_eq!(r.counters().uplink_bytes, 777, "counters travel into the slot");
        assert_eq!(r.handle(), h);
        assert_eq!(slab.live_slots(), 1);
        assert_eq!(slab.free_slots(), 0);
    }

    #[test]
    fn stale_handle_after_free_and_reuse_misses() {
        let slab = UeSlab::new();
        let h1 = slab.alloc(ctrl(1), CounterState::default());
        assert!(slab.free(h1));
        // The freed slot is reused for a different user.
        let h2 = slab.alloc(ctrl(2), CounterState::default());
        assert_eq!(h1.index(), h2.index(), "free-list reuses the slot");
        assert_ne!(h1, h2, "but the generation differs");
        assert!(slab.resolve(h1).is_none(), "stale handle must miss, not alias");
        assert_eq!(slab.resolve(h2).unwrap().ctrl_read().imsi, 2);
    }

    #[test]
    fn aba_guard_holds_across_many_reuse_cycles() {
        let slab = UeSlab::new();
        let mut stale = Vec::new();
        let mut h = slab.alloc(ctrl(0), CounterState::default());
        for imsi in 1..50u64 {
            stale.push(h);
            assert!(slab.free(h));
            h = slab.alloc(ctrl(imsi), CounterState::default());
        }
        for s in &stale {
            assert!(slab.resolve(*s).is_none(), "generation {} aliased", s.generation());
        }
        assert_eq!(slab.resolve(h).unwrap().ctrl_read().imsi, 49);
        assert_eq!(slab.live_slots(), 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let slab = UeSlab::new();
        let h = slab.alloc(ctrl(1), CounterState::default());
        assert!(slab.free(h));
        assert!(!slab.free(h), "second free of the same handle is a no-op");
        assert_eq!(slab.live_slots(), 0);
        assert_eq!(slab.free_slots(), 1);
    }

    #[test]
    fn resolve_rejects_handles_into_unborn_chunks() {
        let slab = UeSlab::new();
        let bogus = UeHandle::from_bits((1u64 << 32) | 1_000_000);
        assert!(slab.resolve(bogus).is_none());
        assert!(!slab.free(bogus));
    }

    #[test]
    fn slots_span_chunk_boundaries() {
        let slab = UeSlab::new();
        let n = CHUNK_SLOTS + 3;
        let handles: Vec<_> = (0..n).map(|i| slab.alloc(ctrl(i as u64), CounterState::default())).collect();
        assert_eq!(slab.live_slots(), n as u64);
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(slab.resolve(*h).unwrap().ctrl_read().imsi, i as u64);
        }
        assert!(slab.bytes() >= 2 * std::mem::size_of::<Chunk>() as u64, "two chunks resident");
    }

    #[test]
    fn gauges_track_alloc_and_free() {
        let slab = UeSlab::new();
        let hs: Vec<_> = (0..100).map(|i| slab.alloc(ctrl(i), CounterState::default())).collect();
        assert_eq!(slab.live_slots(), 100);
        let per_user = slab.bytes_per_user();
        assert!(per_user >= std::mem::size_of::<UeContext>() as u64);
        for h in &hs[..90] {
            assert!(slab.free(*h));
        }
        assert_eq!(slab.live_slots(), 10);
        assert_eq!(slab.free_slots(), 90);
    }

    #[test]
    fn reuse_republishes_through_the_seqlock_protocol() {
        let slab = UeSlab::new();
        let h1 = slab.alloc(ctrl(1), CounterState::default());
        let v1 = slab.resolve(h1).unwrap().view_version();
        slab.free(h1);
        let h2 = slab.alloc(ctrl(2), CounterState::default());
        let r = slab.resolve(h2).unwrap();
        assert!(r.view_version() > v1, "slot reuse must bump the view sequence, not bypass it");
        assert_eq!(r.view_version() % 2, 0, "no publish left half-finished");
        assert_eq!(r.counters_version() % 2, 0);
    }

    #[test]
    fn handle_roundtrips_through_bits() {
        let slab = UeSlab::new();
        let h = slab.alloc(ctrl(9), CounterState::default());
        let back = UeHandle::from_bits(h.bits());
        assert_eq!(back, h);
        assert_eq!(slab.resolve(back).unwrap().ctrl_read().imsi, 9);
    }
}
