//! The slice data plane — paper §4.2 "Slice data plane".
//!
//! "Our data path consists of a chain of network functions [...]: GTP-U
//! encapsulation and decapsulation, user state look-up which involves
//! mapping downlink traffic to the appropriate GTP-U tunnel. We also
//! implement the Policy Charging and Enforcement Function (PCEF), as a
//! match-action table."
//!
//! Pipeline per packet:
//!
//! ```text
//! uplink   (eNodeB → net):  GTP-U decap → [IoT fast path?] → state lookup
//!                           by TEID → PCEF classify → gate/rate enforce →
//!                           counters → forward inner IP
//! downlink (net → eNodeB):  [IoT fast path?] → state lookup by dst UE IP →
//!                           PCEF classify → gate/rate enforce → counters →
//!                           GTP-U encap toward the serving eNodeB
//! ```
//!
//! The data plane is the single writer of counter state and only *reads*
//! control state (tunnels, QoS, rule sets) — writes to those arrive from
//! the control thread through the shared [`UeContext`] and become visible
//! without any message exchange. Table *membership* changes (attach /
//! detach / migration) do flow as [`DpUpdate`]s, drained in batches
//! (Figure 13).
//!
//! # State density (DESIGN.md §16)
//!
//! Contexts live in the slice's shared [`UeSlab`] — contiguous chunks
//! addressed by 8-byte generational [`UeHandle`]s, which is what the
//! two lookup indexes store (half the per-entry footprint of the former
//! `Arc<UeContext>` and no per-user heap object). The data plane owns
//! the *end of life* of a slot: applying [`DpUpdate::Remove`] frees the
//! handle back to the slab after unindexing it, so the control plane
//! never races a slot reuse with in-flight packets (updates and packets
//! are serialized on this thread).
//!
//! # Burst mode
//!
//! The pipeline is organised around [`DataPlane::process_burst`], a
//! DPDK-style lookup-then-act burst path (§4.3, Figures 13–14):
//!
//! 1. **Parse pass** — classify direction and parse/decap headers for the
//!    whole burst; malformed packets and the stateless-IoT fast path are
//!    fully decided here.
//! 2. **Lookup pass** — resolve each packet's [`UeContext`] through the
//!    two-level table in packet order, issuing software prefetches for
//!    the lookup [`PREFETCH_DISTANCE`] slots ahead, and fuse consecutive
//!    packets that resolve to the same user into *groups*.
//! 3. **Act pass** — enforce each group with **one** lock-free seqlock
//!    read of the user's [`crate::state::CtrlView`] and **one** counter
//!    publish (and one token-bucket setup when the user has no PCEF
//!    rules), then emit verdicts. No lock is taken per packet or per
//!    group.
//!
//! With telemetry on, the whole burst costs one `Instant` read pair
//! instead of two clock reads per packet; forwarded packets record the
//! amortized per-packet pipeline time so the histogram population still
//! equals `metrics.forwarded`. The scalar [`DataPlane::process`] is the
//! burst-size-1 degenerate case of the same machinery, not a parallel
//! code fork.

use crate::config::{IotConfig, TwoLevelConfig};
use crate::metrics::DataMetrics;
use crate::pcef::{Pcef, PcefAction};
use crate::qos::TokenBucket;
use crate::slab::{UeHandle, UeSlab};
use crate::state::{CounterState, CtrlView, UeContext};
use crate::twolevel::TwoLevelTable;
use pepc_net::gtp::{encap_gtpu, GTPU_OVERHEAD};
use pepc_net::{classify_fast, BpfProgram, FiveTuple, Mbuf, PktClass};
use pepc_telemetry::LatencyHistogram;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Membership / configuration updates the control thread sends the data
/// thread.
#[derive(Debug, Clone)]
pub enum DpUpdate {
    /// A user attached (or migrated in): index its slab handle by tunnel
    /// id and UE IP. `active` controls primary vs secondary placement.
    Insert { gw_teid: u32, ue_ip: u32, handle: UeHandle, active: bool },
    /// A user detached (or migrated out). Applying this also frees the
    /// user's slab slot (see the module docs).
    Remove { gw_teid: u32, ue_ip: u32 },
    /// Demote an idle user to the secondary table (two-level management).
    Demote { gw_teid: u32, ue_ip: u32 },
    /// S1 release: unindex the user from both lookup tables but *keep*
    /// the slab slot (context retained while idle). Downlink for the UE
    /// is buffered (bounded) and surfaces a paging event; uplink is
    /// dropped until a Service Request re-inserts it.
    Suspend { gw_teid: u32, ue_ip: u32, imsi: u64 },
    /// Paging gave up (retransmissions exhausted): discard the UE's
    /// buffered downlink as `drop_idle_expired`. The UE stays suspended.
    DropIdleBuffer { ue_ip: u32 },
    /// Install a PCEF rule program slice-wide.
    InstallRule { id: u16, program: BpfProgram, action: PcefAction },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    UnknownUser,
    GateClosed,
    RateExceeded,
    Malformed,
    /// Downlink for a suspended (idle) UE whose idle buffer is full.
    IdleOverflow,
    /// Uplink from a suspended UE (it must Service Request first).
    IdleUplink,
}

/// Outcome of processing one packet.
#[derive(Debug)]
pub enum PacketVerdict {
    /// Forward the (possibly re-encapsulated) packet.
    Forward(Mbuf),
    /// Drop it.
    Drop(DropReason),
    /// Downlink parked in a suspended UE's idle buffer; it re-emerges
    /// from [`DataPlane::take_woken`] when the UE wakes (or is dropped
    /// as `drop_idle_expired` if the page expires first).
    Buffered,
}

impl PacketVerdict {
    /// True when the verdict forwards the packet.
    pub fn is_forward(&self) -> bool {
        matches!(self, PacketVerdict::Forward(_))
    }
}

/// How many lookups ahead of the current packet the burst path prefetches
/// (pass 2). Far enough to cover a DRAM fetch at per-packet costs, close
/// enough to stay within typical burst sizes.
pub const PREFETCH_DISTANCE: usize = 8;

/// Names of the three instrumented pipeline stages, index-aligned with
/// [`DataPlane::stage_latencies`]: parse/classify, lookup+prefetch,
/// enforce+charge.
pub const STAGE_NAMES: [&str; 3] = ["parse", "lookup", "enforce"];

/// Pass-1 classification of one packet in a burst.
#[derive(Clone, Copy)]
enum Slot {
    /// Outcome fully decided while parsing (malformed, IoT fast path).
    Done(Decision),
    /// Needs a user-state lookup: direction, table key, charged bytes.
    Lookup { uplink: bool, key: u64, bytes: u64 },
}

/// Cheap per-packet outcome; mbufs are moved out of the burst only when
/// verdicts are emitted, so intermediate passes stay allocation-free.
#[derive(Clone, Copy)]
enum Decision {
    Forward,
    Drop(DropReason),
    /// The mbuf was already moved into a suspended UE's idle buffer
    /// (the slot in the burst holds an empty placeholder).
    Buffered,
}

/// Default per-UE idle downlink buffer depth (packets parked while the
/// UE is paged). Tunable via [`DataPlane::set_idle_buffer_cap`].
pub const IDLE_BUF_CAP: usize = 4;

/// A UE parked by [`DpUpdate::Suspend`]: out of the lookup tables, slab
/// slot retained, downlink queued here until it wakes.
struct SuspendedUe {
    imsi: u64,
    handle: UeHandle,
    gw_teid: u32,
    /// Bounded by the plane's `idle_buf_cap`.
    buf: VecDeque<Mbuf>,
    /// Arrival tick of the oldest packet currently in `buf` (stuck-idle
    /// oracle input); meaningless while `buf` is empty, refreshed on the
    /// empty→non-empty transition.
    oldest_ns: u64,
}

/// The data plane of one slice. Owned by exactly one thread.
pub struct DataPlane {
    by_teid: TwoLevelTable<UeHandle>,
    by_ue_ip: TwoLevelTable<UeHandle>,
    /// Suspended (idle) UEs keyed by UE IP — consulted only on a
    /// downlink table miss, so the hot path never touches it.
    suspended_by_ip: HashMap<u32, SuspendedUe>,
    /// Uplink-side view of the suspended set: gateway TEID → UE IP.
    suspended_by_teid: HashMap<u32, u32>,
    /// Per-UE idle buffer depth (see [`IDLE_BUF_CAP`]).
    idle_buf_cap: usize,
    /// IMSIs whose idle buffer went empty→non-empty since the last
    /// [`Self::take_paging_events`]: each asks the control plane to page.
    paging_events: Vec<u64>,
    /// Buffered downlink flushed by a wake-up, already GTP-U encapped
    /// toward the re-established eNodeB tunnel.
    woken: Vec<Mbuf>,
    /// The slice's context arena, shared with the control plane (and, in
    /// sharded mode, every sibling shard).
    slab: Arc<UeSlab>,
    pcef: Pcef,
    iot: IotConfig,
    /// Aggregate charging for the stateless-IoT pool (no per-user state).
    pub iot_packets: u64,
    pub iot_bytes: u64,
    /// This node's gateway address (outer source of downlink tunnels).
    gw_ip: u32,
    metrics: DataMetrics,
    /// When false, the per-burst clock reads below are skipped.
    telemetry: bool,
    /// Wall-clock pipeline latency of every *forwarded* packet, so the
    /// histogram count equals `metrics.forwarded` by construction.
    pipeline_ns: LatencyHistogram,
    /// Control→data propagation delay of applied updates (stamped at
    /// enqueue by the slice wiring, measured here at apply).
    update_delay_ns: LatencyHistogram,
    /// Burst scratch (reused across calls; never holds state between them).
    slots: Vec<Slot>,
    decisions: Vec<Decision>,
    /// Same-user run starts discovered in pass 2: (first slot index, ctx).
    /// Lives only within one `process_burst_into` call (cleared at entry
    /// and exit); see the SAFETY notes at its fill and use sites.
    groups: Vec<GroupRun>,
    /// When true (and `telemetry` too), each burst additionally records
    /// one amortized ns/packet sample per pipeline stage.
    stage_timing: bool,
    /// Per-stage amortized ns/packet, indexed like [`STAGE_NAMES`].
    stage_ns: [LatencyHistogram; 3],
}

/// One same-user run handed from the resolve pass to the act pass.
///
/// The context is a borrowed raw pointer rather than a resolved
/// [`crate::slab::UeRef`]: the reference form would borrow the plane
/// (through its slab field) across the act pass, which also needs
/// `&mut self`. Validity is argued at the use sites — slot storage lives
/// in slab chunks that are only released when the slab itself drops, and
/// `self.slab` keeps it alive across the burst call.
#[derive(Clone, Copy)]
struct GroupRun {
    start: usize,
    ctx: *const UeContext,
}

// SAFETY: `GroupRun` values never outlive the single-threaded
// `process_burst_into` call that created them (the scratch vec is
// cleared at entry and exit), so sending the containing `DataPlane`
// between threads never sends a live pointer.
unsafe impl Send for GroupRun {}

impl DataPlane {
    /// Build a data plane with its own private context arena.
    pub fn new(gw_ip: u32, expected_users: usize, two_level: TwoLevelConfig, iot: IotConfig) -> Self {
        Self::with_slab(Arc::new(UeSlab::new()), gw_ip, expected_users, two_level, iot)
    }

    /// Build a data plane over a shared context arena (the slice wires
    /// control and data planes — and sibling shards — to one slab).
    pub fn with_slab(
        slab: Arc<UeSlab>,
        gw_ip: u32,
        expected_users: usize,
        two_level: TwoLevelConfig,
        iot: IotConfig,
    ) -> Self {
        let (by_teid, by_ue_ip) = if two_level.enabled {
            (
                TwoLevelTable::new(expected_users, two_level.idle_timeout_ns),
                TwoLevelTable::new(expected_users, two_level.idle_timeout_ns),
            )
        } else {
            (TwoLevelTable::new_single(expected_users), TwoLevelTable::new_single(expected_users))
        };
        DataPlane {
            by_teid,
            by_ue_ip,
            suspended_by_ip: HashMap::new(),
            suspended_by_teid: HashMap::new(),
            idle_buf_cap: IDLE_BUF_CAP,
            paging_events: Vec::new(),
            woken: Vec::new(),
            slab,
            pcef: Pcef::new(),
            iot,
            iot_packets: 0,
            iot_bytes: 0,
            gw_ip,
            metrics: DataMetrics::default(),
            telemetry: true,
            pipeline_ns: LatencyHistogram::new(),
            update_delay_ns: LatencyHistogram::new(),
            slots: Vec::with_capacity(64),
            decisions: Vec::with_capacity(64),
            groups: Vec::with_capacity(64),
            stage_timing: false,
            stage_ns: [LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new()],
        }
    }

    /// The context arena this plane resolves handles against.
    pub fn slab(&self) -> &Arc<UeSlab> {
        &self.slab
    }

    /// Enable/disable per-packet latency recording (the counters in
    /// [`DataMetrics`] are always maintained).
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telemetry = enabled;
    }

    /// Enable/disable per-stage ns/packet recording (off by default: it
    /// adds two extra clock reads per burst).
    pub fn set_stage_timing(&mut self, enabled: bool) {
        self.stage_timing = enabled;
    }

    /// Apply one control→data update.
    pub fn apply_update(&mut self, update: DpUpdate, now_ns: u64) {
        self.metrics.updates_applied += 1;
        match update {
            DpUpdate::Insert { gw_teid, ue_ip, handle, active } => {
                // A Service Request re-inserting a suspended UE wakes it:
                // pull it out of the parking maps first, then flush its
                // idle buffer through the freshly indexed tunnel.
                let woke = self.suspended_by_ip.remove(&ue_ip);
                if let Some(s) = &woke {
                    self.suspended_by_teid.remove(&s.gw_teid);
                }
                if active {
                    self.by_teid.insert_active(u64::from(gw_teid), handle, now_ns);
                    self.by_ue_ip.insert_active(u64::from(ue_ip), handle, now_ns);
                } else {
                    self.by_teid.insert_idle(u64::from(gw_teid), handle);
                    self.by_ue_ip.insert_idle(u64::from(ue_ip), handle);
                }
                if let Some(s) = woke {
                    self.flush_idle_buffer(s, handle);
                }
            }
            DpUpdate::Remove { gw_teid, ue_ip } => {
                // A detach can land while the UE is suspended (parked
                // outside the tables): drop its buffered downlink and
                // free the retained slot.
                if let Some(s) = self.suspended_by_ip.remove(&ue_ip) {
                    self.suspended_by_teid.remove(&s.gw_teid);
                    let n = s.buf.len() as u64;
                    self.metrics.drop_idle_expired += n;
                    self.metrics.idle_buffered -= n;
                    self.slab.free(s.handle);
                }
                // Free-at-Remove: unindex both keys, then release the
                // slot. Updates and packets are serialized on this
                // thread, so no in-flight packet can still resolve the
                // handle; a subsequent reattach's Insert rides behind
                // this Remove in FIFO order.
                let h = self.by_teid.remove(u64::from(gw_teid));
                let h2 = self.by_ue_ip.remove(u64::from(ue_ip));
                if let Some(h) = h.or(h2) {
                    self.slab.free(h);
                }
            }
            DpUpdate::Demote { gw_teid, ue_ip } => {
                self.by_teid.demote(u64::from(gw_teid));
                self.by_ue_ip.demote(u64::from(ue_ip));
            }
            DpUpdate::Suspend { gw_teid, ue_ip, imsi } => {
                let h = self.by_teid.remove(u64::from(gw_teid));
                let h2 = self.by_ue_ip.remove(u64::from(ue_ip));
                if let Some(handle) = h.or(h2) {
                    // Context retained: the slot is NOT freed, only the
                    // indexes forget the UE.
                    self.suspended_by_teid.insert(gw_teid, ue_ip);
                    self.suspended_by_ip
                        .insert(ue_ip, SuspendedUe { imsi, handle, gw_teid, buf: VecDeque::new(), oldest_ns: now_ns });
                }
            }
            DpUpdate::DropIdleBuffer { ue_ip } => {
                if let Some(s) = self.suspended_by_ip.get_mut(&ue_ip) {
                    let n = s.buf.len() as u64;
                    s.buf.clear();
                    self.metrics.drop_idle_expired += n;
                    self.metrics.idle_buffered -= n;
                }
            }
            DpUpdate::InstallRule { id, program, action } => {
                self.pcef.install(id, program, action);
            }
        }
    }

    /// Drain a woken UE's idle buffer: GTP-U encap each parked downlink
    /// packet toward the re-established eNodeB tunnel and count it
    /// forwarded (`forwarded_on_wake`). Packets surface via
    /// [`Self::take_woken`].
    fn flush_idle_buffer(&mut self, mut s: SuspendedUe, handle: UeHandle) {
        let tunnels = self.slab.resolve(handle).map(|r| r.ctrl_view().tunnels);
        let Some(t) = tunnels else {
            // Stale handle (defensive): account the buffer as expired.
            let n = s.buf.len() as u64;
            self.metrics.drop_idle_expired += n;
            self.metrics.idle_buffered -= n;
            return;
        };
        let (enb_ip, enb_teid, gw_ip) = (t.enb_ip, t.enb_teid, self.gw_ip);
        for mut m in s.buf.drain(..) {
            self.metrics.idle_buffered -= 1;
            if encap_gtpu(&mut m, gw_ip, enb_ip, enb_teid).is_err() {
                self.metrics.drop_malformed += 1;
                continue;
            }
            self.metrics.forwarded += 1;
            self.metrics.forwarded_on_wake += 1;
            self.woken.push(m);
        }
    }

    /// Demote users idle past the two-level timeout. Returns demotions.
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        self.by_teid.evict_idle(now_ns) + self.by_ue_ip.evict_idle(now_ns)
    }

    /// Process one packet. `uplink` packets carry an outer GTP-U stack
    /// from the eNodeB; `downlink` packets are plain IP addressed to a UE.
    ///
    /// This is a dedicated burst-size-1 path sharing every decision stage
    /// with [`Self::process_burst`] (same classifier, same table lookup,
    /// same [`Self::enforce_one`] core), but skipping the burst machinery
    /// — slot/decision/group scratch, prefetch scheduling, run fusion —
    /// that only pays for itself at size > 1. Differential tests pin it
    /// to the burst path's verdicts, counters and metrics.
    pub fn process(&mut self, mut m: Mbuf, now_ns: u64) -> PacketVerdict {
        self.metrics.rx += 1;
        let t0 = if self.telemetry { Some(Instant::now()) } else { None };
        let decision = match self.classify(&mut m) {
            Slot::Done(d) => d,
            Slot::Lookup { uplink, key, bytes } => {
                let table = if uplink { &mut self.by_teid } else { &mut self.by_ue_ip };
                let handle = table.get(key, now_ns).copied();
                match handle.and_then(|h| self.slab.resolve(h)).map(|r| std::ptr::from_ref(r.context())) {
                    Some(p) => {
                        // SAFETY: slot storage lives in slab chunks that
                        // are only released when the slab drops, and
                        // `self.slab` keeps the slab alive across this
                        // call (same argument as burst pass 3).
                        let ctx = unsafe { &*p };
                        let c = ctx.ctrl_view();
                        let run_bucket = TokenBucket::from_kbps(c.ambr_kbps);
                        let mut cnt = ctx.counters();
                        let d = self.enforce_one(&c, run_bucket, &mut cnt, uplink, bytes, &mut m, now_ns);
                        ctx.publish_counters(cnt);
                        d
                    }
                    None => {
                        // Table miss: a suspended (idle) UE, or truly
                        // unknown.
                        self.idle_or_unknown(uplink, key, &mut m, now_ns)
                    }
                }
            }
        };
        if let (Some(t0), Decision::Forward) = (t0, decision) {
            self.pipeline_ns.record(t0.elapsed().as_nanos() as u64);
        }
        match decision {
            Decision::Forward => PacketVerdict::Forward(m),
            Decision::Drop(r) => PacketVerdict::Drop(r),
            Decision::Buffered => PacketVerdict::Buffered,
        }
    }

    /// Lookup-miss resolution shared by the scalar and burst paths: a
    /// suspended UE buffers downlink (bounded, raising a paging event on
    /// the first parked packet) and rejects uplink; anything else is an
    /// unknown user. On `Buffered` the mbuf is moved into the idle
    /// buffer and an empty placeholder left behind.
    fn idle_or_unknown(&mut self, uplink: bool, key: u64, m: &mut Mbuf, now_ns: u64) -> Decision {
        if uplink {
            if self.suspended_by_teid.contains_key(&(key as u32)) {
                self.metrics.drop_idle_uplink += 1;
                return Decision::Drop(DropReason::IdleUplink);
            }
        } else if let Some(s) = self.suspended_by_ip.get_mut(&(key as u32)) {
            if s.buf.len() < self.idle_buf_cap {
                if s.buf.is_empty() {
                    s.oldest_ns = now_ns;
                    self.paging_events.push(s.imsi);
                }
                s.buf.push_back(std::mem::replace(m, Mbuf::new()));
                self.metrics.idle_buffered += 1;
                return Decision::Buffered;
            }
            self.metrics.drop_idle_overflow += 1;
            return Decision::Drop(DropReason::IdleOverflow);
        }
        self.metrics.drop_unknown_user += 1;
        Decision::Drop(DropReason::UnknownUser)
    }

    /// Process a whole burst, returning one verdict per packet in input
    /// order. The burst vector is drained (emptied) by the call.
    pub fn process_burst(&mut self, burst: &mut Vec<Mbuf>, now_ns: u64) -> Vec<PacketVerdict> {
        let mut out = Vec::with_capacity(burst.len());
        self.process_burst_into(burst, now_ns, &mut out);
        out
    }

    /// Allocation-free core of the burst path: verdicts are appended to
    /// `out` (one per packet, input order); `burst` is drained.
    pub fn process_burst_into(&mut self, burst: &mut Vec<Mbuf>, now_ns: u64, out: &mut Vec<PacketVerdict>) {
        let n = burst.len();
        if n == 0 {
            return;
        }
        if n == 1 {
            // Burst-1 bypass: the slot/group scratch and the prefetch
            // scheduling of the 3-pass pipeline cost more than they save
            // for a single packet; the scalar path shares every decision
            // stage, so verdicts and counters are identical.
            let m = burst.pop().expect("len checked");
            out.push(self.process(m, now_ns));
            return;
        }
        self.metrics.rx += n as u64;
        // One clock read pair per burst (not two per packet).
        let t0 = if self.telemetry { Some(Instant::now()) } else { None };
        let stage = self.telemetry && self.stage_timing;

        // Pass 1: classify direction and parse headers for the whole
        // burst. Uplink packets are decapped in place.
        self.slots.clear();
        for m in burst.iter_mut() {
            let slot = self.classify(m);
            self.slots.push(slot);
        }
        let t_parse = if stage { Some(Instant::now()) } else { None };

        // Pass 2: resolve contexts in packet order (promotions and stats
        // identical to the scalar path), prefetching the table target
        // PREFETCH_DISTANCE lookups ahead, and fuse consecutive packets
        // of the same user into groups.
        self.decisions.clear();
        self.decisions.resize(n, Decision::Drop(DropReason::Malformed));
        self.groups.clear();
        let mut last_ptr: *const UeContext = std::ptr::null();
        // Walks `slots` and `burst` in lockstep while calling `&mut self`
        // helpers; an iterator over either would pin a borrow the other
        // side needs.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            let Slot::Lookup { uplink, key, .. } = self.slots[k] else {
                last_ptr = std::ptr::null();
                continue;
            };
            self.prefetch_lookup(k + PREFETCH_DISTANCE);
            let table = if uplink { &mut self.by_teid } else { &mut self.by_ue_ip };
            let handle = table.get(key, now_ns).copied();
            match handle.and_then(|h| self.slab.resolve(h)).map(|r| std::ptr::from_ref(r.context())) {
                Some(p) => {
                    if p != last_ptr {
                        last_ptr = p;
                        // SAFETY: `p` points into a slab chunk kept alive
                        // by `self.slab`; the prefetch itself never
                        // dereferences, and pass 3 re-justifies the
                        // borrow before using the pointer.
                        unsafe { (*p).prefetch_cells() };
                        self.groups.push(GroupRun { start: k, ctx: p });
                    }
                }
                None => {
                    let d = self.idle_or_unknown(uplink, key, &mut burst[k], now_ns);
                    self.slots[k] = Slot::Done(d);
                    last_ptr = std::ptr::null();
                }
            }
        }

        let t_lookup = if stage { Some(Instant::now()) } else { None };

        // Pass 3: act. Each same-user run is enforced under one seqlock
        // view read + one counter-cell publish (no locks).
        let groups = std::mem::take(&mut self.groups);
        for (gi, g) in groups.iter().enumerate() {
            let next_start = groups.get(gi + 1).map_or(n, |g| g.start);
            let mut end = g.start;
            while end < next_start && matches!(self.slots[end], Slot::Lookup { .. }) {
                end += 1;
            }
            // SAFETY: `g.ctx` was resolved through `self.slab` during
            // pass 2 of this same call. Slot storage lives in slab
            // chunks that are only released when the slab drops, and we
            // hold `&mut self` (so `self.slab` — an owning Arc — stays
            // put) across both passes; nothing in between frees slab
            // slots (pass 3 only touches slots / decisions / metrics /
            // pcef), so the pointee is still the same live user.
            let ctx = unsafe { &*g.ctx };
            self.enforce_group(ctx, g.start, end, burst, now_ns);
        }
        self.groups = groups;
        self.groups.clear(); // drop the raw pointers before returning

        // Copy pass-1/2 decisions for the slots decided outside groups.
        for k in 0..n {
            if let Slot::Done(d) = self.slots[k] {
                self.decisions[k] = d;
            }
        }

        for (k, m) in burst.drain(..).enumerate() {
            match self.decisions[k] {
                Decision::Forward => out.push(PacketVerdict::Forward(m)),
                Decision::Drop(r) => out.push(PacketVerdict::Drop(r)),
                // The real mbuf already moved into the idle buffer; `m`
                // is the placeholder.
                Decision::Buffered => out.push(PacketVerdict::Buffered),
            }
        }

        if let Some(t0) = t0 {
            // Forwarded packets record the amortized per-packet pipeline
            // time so the histogram population equals `metrics.forwarded`
            // (the invariant the metrics tests check) at one clock read
            // per burst.
            let elapsed = t0.elapsed();
            let per_pkt_ns = elapsed.as_nanos() as u64 / n as u64;
            for d in &self.decisions {
                if matches!(d, Decision::Forward) {
                    self.pipeline_ns.record(per_pkt_ns);
                }
            }
            // One amortized ns/packet sample per stage per burst; the
            // enforce stage runs from the end of pass 2 to verdict
            // emission, so the three stage samples sum to ~per_pkt_ns.
            if let (Some(tp), Some(tl)) = (t_parse, t_lookup) {
                let n64 = n as u64;
                self.stage_ns[0].record(tp.duration_since(t0).as_nanos() as u64 / n64);
                self.stage_ns[1].record(tl.duration_since(tp).as_nanos() as u64 / n64);
                self.stage_ns[2].record(tl.elapsed().as_nanos() as u64 / n64);
            }
        }
    }

    /// Pass 1 for one packet: branchless classification ([`classify_fast`],
    /// proven byte-equivalent to the old parser chain), decap, IoT fast
    /// path.
    fn classify(&mut self, m: &mut Mbuf) -> Slot {
        match classify_fast(m.data()) {
            PktClass::GtpU { teid } => {
                // The classifier validated the full outer stack, including
                // `len == gtp_length + GTPU_OVERHEAD`, so the pull cannot
                // fail.
                m.pull(GTPU_OVERHEAD).expect("classifier validated the outer stack");
                let bytes = m.len() as u64;
                // Stateless-IoT fast path (§4.2): TEID in the reserved
                // pool ⇒ no per-user state lookup; aggregate charging;
                // best effort.
                if self.iot.enabled && in_pool(teid, self.iot.teid_base, self.iot.pool_size) {
                    self.iot_packets += 1;
                    self.iot_bytes += bytes;
                    self.metrics.iot_fast_path += 1;
                    self.metrics.forwarded += 1;
                    return Slot::Done(Decision::Forward);
                }
                Slot::Lookup { uplink: true, key: u64::from(teid), bytes }
            }
            PktClass::Ipv4 { dst } => {
                let bytes = m.len() as u64;
                if self.iot.enabled && in_pool(dst, self.iot.ip_base, self.iot.pool_size) {
                    // Downlink to a pool device: tunnel parameters are
                    // *computed* from the pool layout instead of looked up.
                    let idx = dst - self.iot.ip_base;
                    let teid = self.iot.teid_base + idx;
                    self.iot_packets += 1;
                    self.iot_bytes += bytes;
                    self.metrics.iot_fast_path += 1;
                    // Pool devices all camp on one IoT gateway eNodeB
                    // address derived from the pool base.
                    if encap_gtpu(m, self.gw_ip, self.iot.ip_base, teid).is_err() {
                        self.metrics.drop_malformed += 1;
                        return Slot::Done(Decision::Drop(DropReason::Malformed));
                    }
                    self.metrics.forwarded += 1;
                    return Slot::Done(Decision::Forward);
                }
                Slot::Lookup { uplink: false, key: u64::from(dst), bytes }
            }
            PktClass::Malformed => {
                self.metrics.drop_malformed += 1;
                Slot::Done(Decision::Drop(DropReason::Malformed))
            }
        }
    }

    /// Software-prefetch the two-level bucket and context for the lookup
    /// at `slot_idx` (no promotion, no stats — the real `get` follows).
    #[inline]
    fn prefetch_lookup(&self, slot_idx: usize) {
        if let Some(Slot::Lookup { uplink, key, .. }) = self.slots.get(slot_idx) {
            let table = if *uplink { &self.by_teid } else { &self.by_ue_ip };
            if let Some(r) = table.peek(*key).and_then(|&h| self.slab.resolve(h)) {
                prefetch_read(std::ptr::from_ref(r.context()).cast::<u8>());
            }
        }
    }

    /// Enforcement for one same-user run `[start, end)` of the burst:
    /// one lock-free seqlock read of the control view, one owner-read +
    /// single publish of the counter cell, and (for rule-less users, the
    /// common case) one token-bucket setup amortized over the whole run.
    /// No lock is acquired on this path.
    fn enforce_group(&mut self, ctx: &UeContext, start: usize, end: usize, burst: &mut [Mbuf], now_ns: u64) {
        // Seqlock read of the control projection (its writer is the
        // control thread); downlink tunnel endpoints come from this same
        // consistent snapshot.
        let c = ctx.ctrl_view();
        // With no PCEF rules the action is always the default, so the
        // effective rate is the plain AMBR for every packet of the run.
        let run_bucket = TokenBucket::from_kbps(c.ambr_kbps);
        // Owner read of the counter cell — we are its single writer, so
        // this is a plain copy; mutate locally across the run and
        // publish once at the end.
        let mut cnt = ctx.counters();
        #[allow(clippy::needless_range_loop)] // k indexes three parallel arrays
        for k in start..end {
            let Slot::Lookup { uplink, bytes, .. } = self.slots[k] else { unreachable!("groups span Lookup slots") };
            self.decisions[k] = self.enforce_one(&c, run_bucket, &mut cnt, uplink, bytes, &mut burst[k], now_ns);
        }
        // One release publish per same-user run (the seqlock analogue of
        // the former per-run `counters.write()` release).
        ctx.publish_counters(cnt);
    }

    /// Enforce one packet against an already-read control view, mutating
    /// the caller's local counter copy (not published here — the caller
    /// amortizes the publish over the run). Shared verbatim by the burst
    /// act pass and the scalar path, so their decisions cannot diverge.
    #[allow(clippy::too_many_arguments)]
    fn enforce_one(
        &mut self,
        c: &CtrlView,
        run_bucket: TokenBucket,
        cnt: &mut CounterState,
        uplink: bool,
        bytes: u64,
        m: &mut Mbuf,
        now_ns: u64,
    ) -> Decision {
        let rules_empty = c.rules_empty();
        let action = if rules_empty {
            // Rule-less fast path: skip the 5-tuple parse and PCEF walk
            // entirely; classify would return the default.
            PcefAction::default()
        } else {
            let ft = FiveTuple::from_ipv4(m.data()).unwrap_or_default();
            self.pcef.classify(&ft, c.pcef_rules().iter())
        };
        if action.gate_closed {
            self.metrics.drop_gate += 1;
            cnt.qos_drops += 1;
            cnt.last_activity_ns = now_ns;
            return Decision::Drop(DropReason::GateClosed);
        }
        let bucket = if rules_empty {
            run_bucket
        } else {
            TokenBucket::from_kbps(effective_rate(c.ambr_kbps, action.rate_kbps))
        };
        let mut tokens = cnt.ambr_tokens;
        let mut last = cnt.ambr_last_refill_ns;
        let admitted = bucket.admit(&mut tokens, &mut last, now_ns, bytes);
        cnt.ambr_tokens = tokens;
        cnt.ambr_last_refill_ns = last;
        if !admitted {
            cnt.qos_drops += 1;
            cnt.last_activity_ns = now_ns;
            self.metrics.drop_qos += 1;
            return Decision::Drop(DropReason::RateExceeded);
        }
        if uplink {
            cnt.uplink_packets += 1;
            cnt.uplink_bytes += bytes;
        } else {
            cnt.downlink_packets += 1;
            cnt.downlink_bytes += bytes;
        }
        cnt.last_activity_ns = now_ns;
        if uplink {
            self.metrics.forwarded += 1;
            Decision::Forward
        } else if encap_gtpu(m, self.gw_ip, c.tunnels.enb_ip, c.tunnels.enb_teid).is_err() {
            self.metrics.drop_malformed += 1;
            Decision::Drop(DropReason::Malformed)
        } else {
            self.metrics.forwarded += 1;
            Decision::Forward
        }
    }

    /// Record one control→data update propagation delay (enqueue→apply),
    /// measured by the slice wiring that owns both ring ends.
    #[inline]
    pub fn record_update_delay(&mut self, delay_ns: u64) {
        if self.telemetry {
            self.update_delay_ns.record(delay_ns);
        }
    }

    /// Pipeline latency of forwarded packets.
    pub fn pipeline_latency(&self) -> &LatencyHistogram {
        &self.pipeline_ns
    }

    /// Control→data update propagation delays.
    pub fn update_delay(&self) -> &LatencyHistogram {
        &self.update_delay_ns
    }

    /// Per-stage amortized ns/packet histograms (one sample per burst),
    /// index-aligned with [`STAGE_NAMES`]. Empty unless
    /// [`Self::set_stage_timing`] enabled recording.
    pub fn stage_latencies(&self) -> &[LatencyHistogram; 3] {
        &self.stage_ns
    }

    /// Data-plane metrics snapshot.
    pub fn metrics(&self) -> DataMetrics {
        self.metrics
    }

    /// Bound the per-UE idle downlink buffer (default [`IDLE_BUF_CAP`]).
    /// Applies to future arrivals; already-buffered packets stay.
    pub fn set_idle_buffer_cap(&mut self, cap: usize) {
        self.idle_buf_cap = cap;
    }

    /// IMSIs that need paging (first downlink parked since the last
    /// drain). The control plane turns each into a `PageTrigger`.
    pub fn take_paging_events(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.paging_events)
    }

    /// Buffered downlink released by UE wake-ups since the last drain,
    /// already encapped toward the re-established tunnels (counted in
    /// `forwarded` / `forwarded_on_wake` at flush time).
    pub fn take_woken(&mut self) -> Vec<Mbuf> {
        std::mem::take(&mut self.woken)
    }

    /// Suspended UEs currently holding buffered downlink, as
    /// `(imsi, buffered_packets, oldest_arrival_ns)` — input to the
    /// stuck-idle oracle (a UE with parked packets, no page in flight,
    /// and no wake-up within the bound is stuck). The timestamp is the
    /// arrival of the oldest packet still buffered, not the suspension
    /// time: a long-idle UE that just received downlink is not stuck.
    pub fn idle_buffered_report(&self) -> Vec<(u64, usize, u64)> {
        let mut v: Vec<(u64, usize, u64)> = self
            .suspended_by_ip
            .values()
            .filter(|s| !s.buf.is_empty())
            .map(|s| (s.imsi, s.buf.len(), s.oldest_ns))
            .collect();
        v.sort_unstable();
        v
    }

    /// Suspended (idle but context-retained) UEs.
    pub fn suspended_count(&self) -> usize {
        self.suspended_by_ip.len()
    }

    /// Users currently indexed (by tunnel).
    pub fn user_count(&self) -> usize {
        self.by_teid.len()
    }

    /// Users in the hot (primary) table.
    pub fn primary_count(&self) -> usize {
        self.by_teid.primary_len()
    }

    /// Two-level churn stats for the TEID index.
    pub fn table_stats(&self) -> crate::twolevel::TwoLevelStats {
        self.by_teid.stats()
    }

    /// Resident bytes of the two lookup indexes (memory gauge).
    pub fn table_bytes(&self) -> u64 {
        self.by_teid.bytes() + self.by_ue_ip.bytes()
    }

    /// Make bounded background progress on any in-flight incremental
    /// resize of the lookup indexes (inserts and removes also step, so
    /// this only matters for idle convergence after a mass detach).
    pub fn maintain_tables(&mut self) {
        self.by_teid.maintain();
        self.by_ue_ip.maintain();
    }

    /// Whether either lookup index has an incremental resize in flight
    /// (footprint and lookup cost include the draining array until it
    /// empties).
    pub fn tables_migrating(&self) -> bool {
        self.by_teid.is_migrating() || self.by_ue_ip.is_migrating()
    }
}

/// Effective rate when both an AMBR and a rule MBR apply: the tighter one.
fn effective_rate(ambr_kbps: u32, rule_kbps: u32) -> u32 {
    match (ambr_kbps, rule_kbps) {
        (0, r) => r,
        (a, 0) => a,
        (a, r) => a.min(r),
    }
}

#[inline]
fn in_pool(value: u32, base: u32, size: u32) -> bool {
    value.wrapping_sub(base) < size
}

/// Hint the CPU to pull the cache line at `p` for an upcoming read. A
/// no-op off x86_64 (and always safe: prefetch never faults).
#[inline]
fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it does not dereference `p`.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwoLevelConfig;
    use crate::state::{ControlState, QosPolicy, TunnelState};
    use pepc_net::gtp::decap_gtpu;
    use pepc_net::ipv4::IpProto;
    use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
    use pepc_net::{Ipv4Hdr, IPV4_HDR_LEN};

    const GW_IP: u32 = 0x0AFE0001;
    const ENB_IP: u32 = 0xC0A80001;
    const UE_IP: u32 = 0x0A000042;
    const TEID_UL: u32 = 0x1000;
    const TEID_DL: u32 = 0x2000;

    fn dp() -> DataPlane {
        DataPlane::new(GW_IP, 64, TwoLevelConfig::default(), IotConfig::default())
    }

    fn attach_user(dp: &mut DataPlane, ambr_kbps: u32) -> UeHandle {
        let mut ctrl = ControlState::new(404_01_0000000001);
        ctrl.ue_ip = UE_IP;
        ctrl.qos = QosPolicy { qci: 9, ambr_kbps, gbr_kbps: 0 };
        ctrl.tunnels = TunnelState { enb_teid: TEID_DL, enb_ip: ENB_IP, gw_teid: TEID_UL };
        let h = dp.slab().alloc(ctrl, CounterState::default());
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, handle: h, active: true }, 0);
        h
    }

    /// Snapshot a user's counters without holding a borrow of the plane.
    fn counters(dp: &DataPlane, h: UeHandle) -> CounterState {
        dp.slab().resolve(h).expect("live handle").counters()
    }

    fn inner_udp(src: u32, dst: u32, dst_port: u16, payload_len: usize) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + payload_len).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        UdpHdr::new(40000, dst_port, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(&vec![0xAB; payload_len]);
        m
    }

    fn uplink_packet(teid: u32) -> Mbuf {
        let mut m = inner_udp(UE_IP, 0x08080808, 53, 64);
        encap_gtpu(&mut m, ENB_IP, GW_IP, teid).unwrap();
        m
    }

    #[test]
    fn uplink_decaps_and_forwards() {
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        let v = dp.process(uplink_packet(TEID_UL), 100);
        match v {
            PacketVerdict::Forward(m) => {
                // Outer stack stripped: inner packet starts with IPv4.
                let ip = Ipv4Hdr::parse(m.data()).unwrap();
                assert_eq!(ip.src, UE_IP);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        let cnt = counters(&dp, h);
        assert_eq!(cnt.uplink_packets, 1);
        assert!(cnt.uplink_bytes > 0);
        assert_eq!(cnt.last_activity_ns, 100);
    }

    #[test]
    fn downlink_encaps_toward_serving_enb() {
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        let v = dp.process(inner_udp(0x08080808, UE_IP, 443, 64), 200);
        match v {
            PacketVerdict::Forward(mut m) => {
                let (gtp, outer) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, TEID_DL);
                assert_eq!(outer.dst, ENB_IP);
                assert_eq!(outer.src, GW_IP);
                let inner = Ipv4Hdr::parse(m.data()).unwrap();
                assert_eq!(inner.dst, UE_IP);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(counters(&dp, h).downlink_packets, 1);
    }

    #[test]
    fn unknown_teid_dropped() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        let v = dp.process(uplink_packet(0xDEAD), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::UnknownUser)));
        assert_eq!(dp.metrics().drop_unknown_user, 1);
    }

    #[test]
    fn unknown_ue_ip_dropped() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        let v = dp.process(inner_udp(1, 0x0A0000FF, 80, 10), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::UnknownUser)));
    }

    #[test]
    fn malformed_packet_dropped_not_panicking() {
        let mut dp = dp();
        let v = dp.process(Mbuf::from_payload(&[0xFF; 40]), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::Malformed)));
    }

    #[test]
    fn handover_rewrite_is_visible_without_any_dp_update() {
        // The PEPC property: the control thread rewrites tunnel state in
        // the shared context; the very next downlink packet uses it.
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        {
            let r = dp.slab().resolve(h).unwrap();
            let mut c = r.ctrl_write();
            c.tunnels.enb_teid = 0x3333;
            c.tunnels.enb_ip = 0xC0A80099;
        }
        match dp.process(inner_udp(1, UE_IP, 80, 10), 1) {
            PacketVerdict::Forward(mut m) => {
                let (gtp, outer) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, 0x3333);
                assert_eq!(outer.dst, 0xC0A80099);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rate_limit_enforced_and_recorded() {
        let mut dp = dp();
        // 8 kbps = 1000 B/s; burst floor 1500 B.
        let h = attach_user(&mut dp, 8);
        let mut forwarded = 0;
        let mut dropped = 0;
        for i in 0..50 {
            // ~100-byte packets, all at (nearly) the same instant.
            match dp.process(uplink_packet(TEID_UL), 1000 + i) {
                PacketVerdict::Forward(_) => forwarded += 1,
                PacketVerdict::Drop(DropReason::RateExceeded) => dropped += 1,
                other => panic!("{other:?}"),
            }
        }
        assert!((10..25).contains(&forwarded), "burst admitted ~15: {forwarded}");
        assert!(dropped > 0);
        assert_eq!(counters(&dp, h).qos_drops, dropped);
        assert_eq!(dp.metrics().drop_qos, dropped);
    }

    #[test]
    fn gate_closed_rule_drops() {
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        dp.apply_update(
            DpUpdate::InstallRule {
                id: 1,
                program: BpfProgram::match_dst_port(53, 1),
                action: PcefAction { qci: 9, rate_kbps: 0, gate_closed: true },
            },
            0,
        );
        dp.slab().resolve(h).unwrap().ctrl_write().pcef_rules.push(1);
        let v = dp.process(uplink_packet(TEID_UL), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::GateClosed)));
        assert_eq!(dp.metrics().drop_gate, 1);
    }

    #[test]
    fn remove_update_detaches_user_and_frees_the_slot() {
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        assert_eq!(dp.user_count(), 1);
        assert_eq!(dp.slab().live_slots(), 1);
        dp.apply_update(DpUpdate::Remove { gw_teid: TEID_UL, ue_ip: UE_IP }, 0);
        assert_eq!(dp.user_count(), 0);
        assert_eq!(dp.slab().live_slots(), 0, "Remove frees the slab slot");
        assert_eq!(dp.slab().free_slots(), 1);
        assert!(dp.slab().resolve(h).is_none(), "freed handle goes stale");
        assert!(matches!(dp.process(uplink_packet(TEID_UL), 1), PacketVerdict::Drop(DropReason::UnknownUser)));
    }

    #[test]
    fn demoted_user_promoted_by_traffic() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        dp.apply_update(DpUpdate::Demote { gw_teid: TEID_UL, ue_ip: UE_IP }, 0);
        assert_eq!(dp.primary_count(), 0);
        assert!(dp.process(uplink_packet(TEID_UL), 1).is_forward());
        assert_eq!(dp.primary_count(), 1);
        assert_eq!(dp.table_stats().promotions, 1);
    }

    #[test]
    fn idle_eviction_from_pipeline() {
        let mut dp =
            DataPlane::new(GW_IP, 64, TwoLevelConfig { enabled: true, idle_timeout_ns: 1000 }, IotConfig::default());
        let mut ctrl = ControlState::new(1);
        ctrl.tunnels.gw_teid = TEID_UL;
        ctrl.ue_ip = UE_IP;
        let h = dp.slab().alloc(ctrl, CounterState::default());
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, handle: h, active: true }, 0);
        assert!(dp.process(uplink_packet(TEID_UL), 10).is_forward());
        let evicted = dp.evict_idle(5000);
        assert_eq!(evicted, 2, "both indexes demote");
        assert_eq!(dp.primary_count(), 0);
        assert!(dp.process(uplink_packet(TEID_UL), 5001).is_forward(), "still served via secondary");
    }

    #[test]
    fn iot_pool_bypasses_state_lookup() {
        let iot = IotConfig { enabled: true, teid_base: 0xF0000000, ip_base: 0x64000000, pool_size: 100 };
        let mut dp = DataPlane::new(GW_IP, 64, TwoLevelConfig::default(), iot);
        // No user installed at all: pool TEID still forwards.
        let v = dp.process(uplink_packet(0xF0000005), 1);
        assert!(v.is_forward());
        assert_eq!(dp.metrics().iot_fast_path, 1);
        assert_eq!(dp.iot_packets, 1);
        // Downlink to a pool IP gets a computed tunnel.
        match dp.process(inner_udp(1, 0x64000005, 80, 10), 2) {
            PacketVerdict::Forward(mut m) => {
                let (gtp, _) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, 0xF0000005);
            }
            other => panic!("{other:?}"),
        }
        // Outside the pool: normal path (unknown here).
        assert!(matches!(
            dp.process(uplink_packet(0xF0000064 /* base+100 */), 3),
            PacketVerdict::Drop(DropReason::UnknownUser)
        ));
    }

    #[test]
    fn effective_rate_picks_tighter_limit() {
        assert_eq!(effective_rate(0, 0), 0);
        assert_eq!(effective_rate(100, 0), 100);
        assert_eq!(effective_rate(0, 50), 50);
        assert_eq!(effective_rate(100, 50), 50);
        assert_eq!(effective_rate(50, 100), 50);
    }

    #[test]
    fn pipeline_histogram_counts_only_forwarded() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        for _ in 0..5 {
            assert!(dp.process(uplink_packet(TEID_UL), 1).is_forward());
        }
        // Drops must not enter the latency population.
        assert!(!dp.process(uplink_packet(0xDEAD), 2).is_forward());
        assert_eq!(dp.pipeline_latency().count(), dp.metrics().forwarded);
        assert_eq!(dp.pipeline_latency().count(), 5);
    }

    fn attach_second_user(dp: &mut DataPlane) -> UeHandle {
        let mut ctrl = ControlState::new(404_01_0000000002);
        ctrl.ue_ip = UE_IP + 1;
        ctrl.qos = QosPolicy { qci: 9, ambr_kbps: 0, gbr_kbps: 0 };
        ctrl.tunnels = TunnelState { enb_teid: TEID_DL + 1, enb_ip: ENB_IP, gw_teid: TEID_UL + 1 };
        let h = dp.slab().alloc(ctrl, CounterState::default());
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL + 1, ue_ip: UE_IP + 1, handle: h, active: true }, 0);
        h
    }

    #[test]
    fn burst_verdicts_preserve_input_order() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        // [known, unknown, known downlink, malformed]
        let mut burst = vec![
            uplink_packet(TEID_UL),
            uplink_packet(0xDEAD),
            inner_udp(0x08080808, UE_IP, 443, 64),
            Mbuf::from_payload(&[0xFF; 40]),
        ];
        let out = dp.process_burst(&mut burst, 100);
        assert!(burst.is_empty(), "burst is drained");
        assert_eq!(out.len(), 4);
        assert!(out[0].is_forward());
        assert!(matches!(out[1], PacketVerdict::Drop(DropReason::UnknownUser)));
        assert!(out[2].is_forward());
        assert!(matches!(out[3], PacketVerdict::Drop(DropReason::Malformed)));
        let m = dp.metrics();
        assert_eq!(m.rx, 4);
        assert_eq!(m.forwarded, 2);
        assert_eq!(m.drop_unknown_user, 1);
        assert_eq!(m.drop_malformed, 1);
    }

    #[test]
    fn burst_coalesces_same_user_run_counters() {
        let mut dp = dp();
        let a = attach_user(&mut dp, 0);
        let b = attach_second_user(&mut dp);
        // Run of 3 for user A, then 2 for user B, then 1 more for A.
        let mut burst = vec![
            uplink_packet(TEID_UL),
            uplink_packet(TEID_UL),
            uplink_packet(TEID_UL),
            uplink_packet(TEID_UL + 1),
            uplink_packet(TEID_UL + 1),
            uplink_packet(TEID_UL),
        ];
        let out = dp.process_burst(&mut burst, 50);
        assert!(out.iter().all(|v| v.is_forward()));
        assert_eq!(counters(&dp, a).uplink_packets, 4);
        assert_eq!(counters(&dp, b).uplink_packets, 2);
        // Per-packet gets still happened in order: 6 primary hits.
        assert_eq!(dp.table_stats().primary_hits, 6);
    }

    #[test]
    fn burst_histogram_population_equals_forwarded() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        let mut burst = vec![uplink_packet(TEID_UL), uplink_packet(0xDEAD), uplink_packet(TEID_UL)];
        dp.process_burst(&mut burst, 7);
        assert_eq!(dp.metrics().forwarded, 2);
        assert_eq!(dp.pipeline_latency().count(), 2);
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        let mut dp = dp();
        let out = dp.process_burst(&mut Vec::new(), 1);
        assert!(out.is_empty());
        assert_eq!(dp.metrics().rx, 0);
        assert_eq!(dp.pipeline_latency().count(), 0);
    }

    #[test]
    fn burst_gate_and_rate_decisions_match_scalar() {
        // Same workload through a scalar plane and a burst plane: the
        // per-user counters and metrics must be bit-identical.
        let build = || {
            let mut dp = dp();
            let h = attach_user(&mut dp, 8); // 1000 B/s, floor 1500 B
            (dp, h)
        };
        let (mut scalar, scalar_h) = build();
        let (mut burst_dp, burst_h) = build();
        let now = 1000;
        let mut scalar_verdicts = Vec::new();
        for _ in 0..40 {
            scalar_verdicts.push(scalar.process(uplink_packet(TEID_UL), now).is_forward());
        }
        let mut burst: Vec<Mbuf> = (0..40).map(|_| uplink_packet(TEID_UL)).collect();
        let burst_verdicts: Vec<bool> =
            burst_dp.process_burst(&mut burst, now).iter().map(|v| v.is_forward()).collect();
        assert_eq!(scalar_verdicts, burst_verdicts);
        assert_eq!(counters(&scalar, scalar_h), counters(&burst_dp, burst_h));
        assert_eq!(scalar.metrics(), burst_dp.metrics());
    }

    #[test]
    fn stale_handle_in_table_drops_instead_of_aliasing() {
        // Defensive path: if an index somehow retains a handle whose slot
        // was freed and reused, the generation check turns the lookup
        // into an UnknownUser drop — never a read of the new tenant.
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        // Free the slot behind the table's back and let someone else
        // take it (simulating a lost Remove / torn index).
        assert!(dp.slab().free(h));
        let other = dp.slab().alloc(ControlState::new(999), CounterState::default());
        assert_eq!(other.index(), h.index(), "slot reused");
        let v = dp.process(uplink_packet(TEID_UL), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::UnknownUser)));
        assert_eq!(dp.slab().resolve(other).unwrap().counters().uplink_packets, 0, "new tenant untouched");
    }

    #[test]
    fn stage_timing_records_one_sample_per_stage_per_burst() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        // Off by default: the burst path records nothing per stage.
        let mut burst = vec![uplink_packet(TEID_UL), uplink_packet(TEID_UL)];
        dp.process_burst(&mut burst, 1);
        assert!(dp.stage_latencies().iter().all(|h| h.count() == 0));
        dp.set_stage_timing(true);
        let mut burst = vec![uplink_packet(TEID_UL), uplink_packet(TEID_UL), uplink_packet(0xDEAD)];
        dp.process_burst(&mut burst, 2);
        for (h, name) in dp.stage_latencies().iter().zip(STAGE_NAMES) {
            assert_eq!(h.count(), 1, "stage {name} records once per burst");
        }
        // Stage timing rides on telemetry: disabling telemetry stops it.
        dp.set_telemetry_enabled(false);
        let mut burst = vec![uplink_packet(TEID_UL)];
        dp.process_burst(&mut burst, 3);
        assert_eq!(dp.stage_latencies()[0].count(), 1);
    }

    const IMSI: u64 = 404_01_0000000001;

    fn suspend(dp: &mut DataPlane) {
        dp.apply_update(DpUpdate::Suspend { gw_teid: TEID_UL, ue_ip: UE_IP, imsi: IMSI }, 10);
    }

    #[test]
    fn suspend_keeps_context_and_buffers_downlink() {
        let mut dp = dp();
        let h = attach_user(&mut dp, 0);
        suspend(&mut dp);
        assert_eq!(dp.user_count(), 0, "unindexed");
        assert_eq!(dp.slab().live_slots(), 1, "context retained");
        assert_eq!(dp.suspended_count(), 1);
        // First downlink parks and raises exactly one paging event.
        assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 32), 20), PacketVerdict::Buffered));
        assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 32), 21), PacketVerdict::Buffered));
        assert_eq!(dp.take_paging_events(), vec![IMSI]);
        assert!(dp.take_paging_events().is_empty(), "drained");
        let m = dp.metrics();
        assert_eq!(m.idle_buffered, 2);
        assert!(m.conservation_holds());
        // Age anchors at the oldest *buffered packet* (t=20), not the
        // suspension (t=10).
        assert_eq!(dp.idle_buffered_report(), vec![(IMSI, 2, 20)]);
        // Uplink from the suspended UE is rejected, not unknown.
        assert!(matches!(dp.process(uplink_packet(TEID_UL), 22), PacketVerdict::Drop(DropReason::IdleUplink)));
        assert_eq!(dp.metrics().drop_idle_uplink, 1);
        // Wake: re-insert flushes the buffer toward the tunnel.
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, handle: h, active: true }, 30);
        let woken = dp.take_woken();
        assert_eq!(woken.len(), 2);
        for mut m in woken {
            let (gtp, outer) = decap_gtpu(&mut m).unwrap();
            assert_eq!(gtp.teid, TEID_DL);
            assert_eq!(outer.dst, ENB_IP);
        }
        let m = dp.metrics();
        assert_eq!(m.idle_buffered, 0);
        assert_eq!(m.forwarded_on_wake, 2);
        assert!(m.conservation_holds());
        assert_eq!(dp.suspended_count(), 0);
        // Back to normal forwarding.
        assert!(dp.process(uplink_packet(TEID_UL), 40).is_forward());
    }

    #[test]
    fn idle_buffer_is_bounded_and_overflow_is_counted() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        suspend(&mut dp);
        dp.set_idle_buffer_cap(2);
        for _ in 0..2 {
            assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 16), 20), PacketVerdict::Buffered));
        }
        for _ in 0..3 {
            assert!(matches!(
                dp.process(inner_udp(1, UE_IP, 80, 16), 21),
                PacketVerdict::Drop(DropReason::IdleOverflow)
            ));
        }
        let m = dp.metrics();
        assert_eq!(m.idle_buffered, 2);
        assert_eq!(m.drop_idle_overflow, 3);
        assert!(m.conservation_holds());
    }

    #[test]
    fn expired_page_drops_buffer_but_keeps_suspension() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        suspend(&mut dp);
        assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 16), 20), PacketVerdict::Buffered));
        dp.take_paging_events();
        dp.apply_update(DpUpdate::DropIdleBuffer { ue_ip: UE_IP }, 30);
        let m = dp.metrics();
        assert_eq!(m.idle_buffered, 0);
        assert_eq!(m.drop_idle_expired, 1);
        assert!(m.conservation_holds());
        assert_eq!(dp.suspended_count(), 1, "still idle, still reachable");
        // The next downlink starts a fresh page.
        assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 16), 40), PacketVerdict::Buffered));
        assert_eq!(dp.take_paging_events(), vec![IMSI]);
    }

    #[test]
    fn remove_while_suspended_frees_slot_and_drops_buffer() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        suspend(&mut dp);
        assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 16), 20), PacketVerdict::Buffered));
        dp.apply_update(DpUpdate::Remove { gw_teid: TEID_UL, ue_ip: UE_IP }, 30);
        assert_eq!(dp.slab().live_slots(), 0, "retained slot freed on detach");
        assert_eq!(dp.suspended_count(), 0);
        let m = dp.metrics();
        assert_eq!(m.drop_idle_expired, 1);
        assert_eq!(m.idle_buffered, 0);
        assert!(m.conservation_holds());
        // Now genuinely unknown.
        assert!(matches!(dp.process(inner_udp(1, UE_IP, 80, 16), 40), PacketVerdict::Drop(DropReason::UnknownUser)));
    }

    #[test]
    fn burst_path_buffers_idle_downlink_like_scalar() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        suspend(&mut dp);
        let mut burst = vec![
            inner_udp(1, UE_IP, 80, 16),
            uplink_packet(TEID_UL),
            inner_udp(1, UE_IP, 80, 16),
            inner_udp(1, 0x0A0000FF, 80, 16),
        ];
        let out = dp.process_burst(&mut burst, 20);
        assert!(matches!(out[0], PacketVerdict::Buffered));
        assert!(matches!(out[1], PacketVerdict::Drop(DropReason::IdleUplink)));
        assert!(matches!(out[2], PacketVerdict::Buffered));
        assert!(matches!(out[3], PacketVerdict::Drop(DropReason::UnknownUser)));
        assert_eq!(dp.take_paging_events(), vec![IMSI]);
        let m = dp.metrics();
        assert_eq!(m.idle_buffered, 2);
        assert!(m.conservation_holds());
    }

    #[test]
    fn telemetry_can_be_disabled() {
        let mut dp = dp();
        dp.set_telemetry_enabled(false);
        attach_user(&mut dp, 0);
        assert!(dp.process(uplink_packet(TEID_UL), 1).is_forward());
        dp.record_update_delay(123);
        assert_eq!(dp.pipeline_latency().count(), 0);
        assert_eq!(dp.update_delay().count(), 0);
        assert_eq!(dp.metrics().forwarded, 1, "counters stay on");
    }
}
