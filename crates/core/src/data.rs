//! The slice data plane — paper §4.2 "Slice data plane".
//!
//! "Our data path consists of a chain of network functions [...]: GTP-U
//! encapsulation and decapsulation, user state look-up which involves
//! mapping downlink traffic to the appropriate GTP-U tunnel. We also
//! implement the Policy Charging and Enforcement Function (PCEF), as a
//! match-action table."
//!
//! Pipeline per packet:
//!
//! ```text
//! uplink   (eNodeB → net):  GTP-U decap → [IoT fast path?] → state lookup
//!                           by TEID → PCEF classify → gate/rate enforce →
//!                           counters → forward inner IP
//! downlink (net → eNodeB):  [IoT fast path?] → state lookup by dst UE IP →
//!                           PCEF classify → gate/rate enforce → counters →
//!                           GTP-U encap toward the serving eNodeB
//! ```
//!
//! The data plane is the single writer of counter state and only *reads*
//! control state (tunnels, QoS, rule sets) — writes to those arrive from
//! the control thread through the shared [`UeContext`] and become visible
//! without any message exchange. Table *membership* changes (attach /
//! detach / migration) do flow as [`DpUpdate`]s, drained in batches
//! (Figure 13).

use crate::config::{IotConfig, TwoLevelConfig};
use crate::metrics::DataMetrics;
use crate::pcef::{Pcef, PcefAction};
use crate::qos::TokenBucket;
use crate::state::UeContext;
use crate::twolevel::TwoLevelTable;
use pepc_net::gtp::{decap_gtpu, encap_gtpu};
use pepc_net::{BpfProgram, FiveTuple, Ipv4Hdr, Mbuf};
use pepc_telemetry::LatencyHistogram;
use std::sync::Arc;
use std::time::Instant;

/// Membership / configuration updates the control thread sends the data
/// thread.
#[derive(Debug, Clone)]
pub enum DpUpdate {
    /// A user attached (or migrated in): index its context by tunnel id
    /// and UE IP. `active` controls primary vs secondary placement.
    Insert { gw_teid: u32, ue_ip: u32, ctx: Arc<UeContext>, active: bool },
    /// A user detached (or migrated out).
    Remove { gw_teid: u32, ue_ip: u32 },
    /// Demote an idle user to the secondary table (two-level management).
    Demote { gw_teid: u32, ue_ip: u32 },
    /// Install a PCEF rule program slice-wide.
    InstallRule { id: u16, program: BpfProgram, action: PcefAction },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    UnknownUser,
    GateClosed,
    RateExceeded,
    Malformed,
}

/// Outcome of processing one packet.
#[derive(Debug)]
pub enum PacketVerdict {
    /// Forward the (possibly re-encapsulated) packet.
    Forward(Mbuf),
    /// Drop it.
    Drop(DropReason),
}

impl PacketVerdict {
    /// True when the verdict forwards the packet.
    pub fn is_forward(&self) -> bool {
        matches!(self, PacketVerdict::Forward(_))
    }
}

/// The data plane of one slice. Owned by exactly one thread.
pub struct DataPlane {
    by_teid: TwoLevelTable<Arc<UeContext>>,
    by_ue_ip: TwoLevelTable<Arc<UeContext>>,
    pcef: Pcef,
    iot: IotConfig,
    /// Aggregate charging for the stateless-IoT pool (no per-user state).
    pub iot_packets: u64,
    pub iot_bytes: u64,
    /// This node's gateway address (outer source of downlink tunnels).
    gw_ip: u32,
    metrics: DataMetrics,
    /// When false, the two per-packet clock reads below are skipped.
    telemetry: bool,
    /// Wall-clock pipeline latency of every *forwarded* packet, so the
    /// histogram count equals `metrics.forwarded` by construction.
    pipeline_ns: LatencyHistogram,
    /// Control→data propagation delay of applied updates (stamped at
    /// enqueue by the slice wiring, measured here at apply).
    update_delay_ns: LatencyHistogram,
}

impl DataPlane {
    /// Build a data plane.
    pub fn new(gw_ip: u32, expected_users: usize, two_level: TwoLevelConfig, iot: IotConfig) -> Self {
        let (by_teid, by_ue_ip) = if two_level.enabled {
            (
                TwoLevelTable::new(expected_users, two_level.idle_timeout_ns),
                TwoLevelTable::new(expected_users, two_level.idle_timeout_ns),
            )
        } else {
            (TwoLevelTable::new_single(expected_users), TwoLevelTable::new_single(expected_users))
        };
        DataPlane {
            by_teid,
            by_ue_ip,
            pcef: Pcef::new(),
            iot,
            iot_packets: 0,
            iot_bytes: 0,
            gw_ip,
            metrics: DataMetrics::default(),
            telemetry: true,
            pipeline_ns: LatencyHistogram::new(),
            update_delay_ns: LatencyHistogram::new(),
        }
    }

    /// Enable/disable per-packet latency recording (the counters in
    /// [`DataMetrics`] are always maintained).
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telemetry = enabled;
    }

    /// Apply one control→data update.
    pub fn apply_update(&mut self, update: DpUpdate, now_ns: u64) {
        self.metrics.updates_applied += 1;
        match update {
            DpUpdate::Insert { gw_teid, ue_ip, ctx, active } => {
                if active {
                    self.by_teid.insert_active(u64::from(gw_teid), Arc::clone(&ctx), now_ns);
                    self.by_ue_ip.insert_active(u64::from(ue_ip), ctx, now_ns);
                } else {
                    self.by_teid.insert_idle(u64::from(gw_teid), Arc::clone(&ctx));
                    self.by_ue_ip.insert_idle(u64::from(ue_ip), ctx);
                }
            }
            DpUpdate::Remove { gw_teid, ue_ip } => {
                self.by_teid.remove(u64::from(gw_teid));
                self.by_ue_ip.remove(u64::from(ue_ip));
            }
            DpUpdate::Demote { gw_teid, ue_ip } => {
                self.by_teid.demote(u64::from(gw_teid));
                self.by_ue_ip.demote(u64::from(ue_ip));
            }
            DpUpdate::InstallRule { id, program, action } => {
                self.pcef.install(id, program, action);
            }
        }
    }

    /// Demote users idle past the two-level timeout. Returns demotions.
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        self.by_teid.evict_idle(now_ns) + self.by_ue_ip.evict_idle(now_ns)
    }

    /// Process one packet. `uplink` packets carry an outer GTP-U stack
    /// from the eNodeB; `downlink` packets are plain IP addressed to a UE.
    pub fn process(&mut self, m: Mbuf, now_ns: u64) -> PacketVerdict {
        self.metrics.rx += 1;
        // Direction sniff: GTP-U uplink has outer UDP :2152; everything
        // else is treated as downlink IP. A parse failure is malformed.
        let is_uplink = is_gtpu(&m);
        if !self.telemetry {
            return if is_uplink { self.process_uplink(m, now_ns) } else { self.process_downlink(m, now_ns) };
        }
        let t0 = Instant::now();
        let v = if is_uplink { self.process_uplink(m, now_ns) } else { self.process_downlink(m, now_ns) };
        // Recorded only for forwarded packets: the histogram population
        // then equals `metrics.forwarded`, which the invariant tests check.
        if v.is_forward() {
            self.pipeline_ns.record(t0.elapsed().as_nanos() as u64);
        }
        v
    }

    /// Record one control→data update propagation delay (enqueue→apply),
    /// measured by the slice wiring that owns both ring ends.
    #[inline]
    pub fn record_update_delay(&mut self, delay_ns: u64) {
        if self.telemetry {
            self.update_delay_ns.record(delay_ns);
        }
    }

    /// Pipeline latency of forwarded packets.
    pub fn pipeline_latency(&self) -> &LatencyHistogram {
        &self.pipeline_ns
    }

    /// Control→data update propagation delays.
    pub fn update_delay(&self) -> &LatencyHistogram {
        &self.update_delay_ns
    }

    fn process_uplink(&mut self, mut m: Mbuf, now_ns: u64) -> PacketVerdict {
        let (gtp, _outer) = match decap_gtpu(&mut m) {
            Ok(x) => x,
            Err(_) => {
                self.metrics.drop_malformed += 1;
                return PacketVerdict::Drop(DropReason::Malformed);
            }
        };
        let bytes = m.len() as u64;

        // Stateless-IoT fast path (§4.2): TEID in the reserved pool ⇒ no
        // per-user state lookup; aggregate charging; default best effort.
        if self.iot.enabled && in_pool(gtp.teid, self.iot.teid_base, self.iot.pool_size) {
            self.iot_packets += 1;
            self.iot_bytes += bytes;
            self.metrics.iot_fast_path += 1;
            self.metrics.forwarded += 1;
            return PacketVerdict::Forward(m);
        }

        let ctx = match self.by_teid.get(u64::from(gtp.teid), now_ns) {
            Some(c) => Arc::clone(c),
            None => {
                self.metrics.drop_unknown_user += 1;
                return PacketVerdict::Drop(DropReason::UnknownUser);
            }
        };
        match self.enforce_and_charge(&ctx, &m, true, bytes, now_ns) {
            Ok(()) => {
                self.metrics.forwarded += 1;
                PacketVerdict::Forward(m)
            }
            Err(r) => PacketVerdict::Drop(r),
        }
    }

    fn process_downlink(&mut self, mut m: Mbuf, now_ns: u64) -> PacketVerdict {
        let ip = match Ipv4Hdr::parse(m.data()) {
            Ok(ip) => ip,
            Err(_) => {
                self.metrics.drop_malformed += 1;
                return PacketVerdict::Drop(DropReason::Malformed);
            }
        };
        let bytes = m.len() as u64;

        if self.iot.enabled && in_pool(ip.dst, self.iot.ip_base, self.iot.pool_size) {
            // Downlink to a pool device: tunnel parameters are *computed*
            // from the pool layout instead of looked up.
            let idx = ip.dst - self.iot.ip_base;
            let teid = self.iot.teid_base + idx;
            self.iot_packets += 1;
            self.iot_bytes += bytes;
            self.metrics.iot_fast_path += 1;
            // Pool devices all camp on one IoT gateway eNodeB address
            // derived from the pool base.
            if encap_gtpu(&mut m, self.gw_ip, self.iot.ip_base, teid).is_err() {
                self.metrics.drop_malformed += 1;
                return PacketVerdict::Drop(DropReason::Malformed);
            }
            self.metrics.forwarded += 1;
            return PacketVerdict::Forward(m);
        }

        let ctx = match self.by_ue_ip.get(u64::from(ip.dst), now_ns) {
            Some(c) => Arc::clone(c),
            None => {
                self.metrics.drop_unknown_user += 1;
                return PacketVerdict::Drop(DropReason::UnknownUser);
            }
        };
        let (enb_teid, enb_ip) = match self.enforce_and_charge(&ctx, &m, false, bytes, now_ns) {
            Ok(()) => {
                let c = ctx.ctrl.read();
                (c.tunnels.enb_teid, c.tunnels.enb_ip)
            }
            Err(r) => return PacketVerdict::Drop(r),
        };
        if encap_gtpu(&mut m, self.gw_ip, enb_ip, enb_teid).is_err() {
            self.metrics.drop_malformed += 1;
            return PacketVerdict::Drop(DropReason::Malformed);
        }
        self.metrics.forwarded += 1;
        PacketVerdict::Forward(m)
    }

    /// PCEF classification, gating, rate enforcement and charging for one
    /// packet of `bytes` bytes. Reads control state; writes counters.
    fn enforce_and_charge(
        &mut self,
        ctx: &UeContext,
        m: &Mbuf,
        uplink: bool,
        bytes: u64,
        now_ns: u64,
    ) -> Result<(), DropReason> {
        // Read-lock the control half (its writer is the control thread).
        let (action, ambr_kbps) = {
            let c = ctx.ctrl.read();
            let ft = FiveTuple::from_ipv4(m.data()).unwrap_or_default();
            (self.pcef.classify(&ft, c.pcef_rules.iter()), c.qos.ambr_kbps)
        };
        if action.gate_closed {
            self.metrics.drop_gate += 1;
            let mut cnt = ctx.counters.write();
            cnt.qos_drops += 1;
            cnt.last_activity_ns = now_ns;
            return Err(DropReason::GateClosed);
        }
        // Write-lock the counter half (we are its only writer).
        let mut cnt = ctx.counters.write();
        let bucket = TokenBucket::from_kbps(effective_rate(ambr_kbps, action.rate_kbps));
        let mut tokens = cnt.ambr_tokens;
        let mut last = cnt.ambr_last_refill_ns;
        let admitted = bucket.admit(&mut tokens, &mut last, now_ns, bytes);
        cnt.ambr_tokens = tokens;
        cnt.ambr_last_refill_ns = last;
        if !admitted {
            cnt.qos_drops += 1;
            cnt.last_activity_ns = now_ns;
            self.metrics.drop_qos += 1;
            return Err(DropReason::RateExceeded);
        }
        if uplink {
            cnt.uplink_packets += 1;
            cnt.uplink_bytes += bytes;
        } else {
            cnt.downlink_packets += 1;
            cnt.downlink_bytes += bytes;
        }
        cnt.last_activity_ns = now_ns;
        Ok(())
    }

    /// Data-plane metrics snapshot.
    pub fn metrics(&self) -> DataMetrics {
        self.metrics
    }

    /// Users currently indexed (by tunnel).
    pub fn user_count(&self) -> usize {
        self.by_teid.len()
    }

    /// Users in the hot (primary) table.
    pub fn primary_count(&self) -> usize {
        self.by_teid.primary_len()
    }

    /// Two-level churn stats for the TEID index.
    pub fn table_stats(&self) -> crate::twolevel::TwoLevelStats {
        self.by_teid.stats()
    }
}

/// Effective rate when both an AMBR and a rule MBR apply: the tighter one.
fn effective_rate(ambr_kbps: u32, rule_kbps: u32) -> u32 {
    match (ambr_kbps, rule_kbps) {
        (0, r) => r,
        (a, 0) => a,
        (a, r) => a.min(r),
    }
}

#[inline]
fn in_pool(value: u32, base: u32, size: u32) -> bool {
    value.wrapping_sub(base) < size
}

/// Cheap direction sniff: outer IPv4 + UDP with destination port 2152.
#[inline]
fn is_gtpu(m: &Mbuf) -> bool {
    let d = m.data();
    // version/IHL 0x45, proto UDP at offset 9, dst port at offset 22.
    d.len() >= 28 && d[0] == 0x45 && d[9] == 17 && u16::from_be_bytes([d[22], d[23]]) == pepc_net::GTPU_PORT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwoLevelConfig;
    use crate::state::{ControlState, QosPolicy, TunnelState};
    use pepc_net::ipv4::IpProto;
    use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
    use pepc_net::IPV4_HDR_LEN;

    const GW_IP: u32 = 0x0AFE0001;
    const ENB_IP: u32 = 0xC0A80001;
    const UE_IP: u32 = 0x0A000042;
    const TEID_UL: u32 = 0x1000;
    const TEID_DL: u32 = 0x2000;

    fn dp() -> DataPlane {
        DataPlane::new(GW_IP, 64, TwoLevelConfig::default(), IotConfig::default())
    }

    fn attach_user(dp: &mut DataPlane, ambr_kbps: u32) -> Arc<UeContext> {
        let mut ctrl = ControlState::new(404_01_0000000001);
        ctrl.ue_ip = UE_IP;
        ctrl.qos = QosPolicy { qci: 9, ambr_kbps, gbr_kbps: 0 };
        ctrl.tunnels = TunnelState { enb_teid: TEID_DL, enb_ip: ENB_IP, gw_teid: TEID_UL };
        let ctx = UeContext::new(ctrl);
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, ctx: Arc::clone(&ctx), active: true }, 0);
        ctx
    }

    fn inner_udp(src: u32, dst: u32, dst_port: u16, payload_len: usize) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
        Ipv4Hdr::new(src, dst, IpProto::Udp, UDP_HDR_LEN + payload_len).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        UdpHdr::new(40000, dst_port, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
        m.extend(&hdr);
        m.extend(&vec![0xAB; payload_len]);
        m
    }

    fn uplink_packet(teid: u32) -> Mbuf {
        let mut m = inner_udp(UE_IP, 0x08080808, 53, 64);
        encap_gtpu(&mut m, ENB_IP, GW_IP, teid).unwrap();
        m
    }

    #[test]
    fn uplink_decaps_and_forwards() {
        let mut dp = dp();
        let ctx = attach_user(&mut dp, 0);
        let v = dp.process(uplink_packet(TEID_UL), 100);
        match v {
            PacketVerdict::Forward(m) => {
                // Outer stack stripped: inner packet starts with IPv4.
                let ip = Ipv4Hdr::parse(m.data()).unwrap();
                assert_eq!(ip.src, UE_IP);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        let cnt = ctx.counters.read();
        assert_eq!(cnt.uplink_packets, 1);
        assert!(cnt.uplink_bytes > 0);
        assert_eq!(cnt.last_activity_ns, 100);
    }

    #[test]
    fn downlink_encaps_toward_serving_enb() {
        let mut dp = dp();
        let ctx = attach_user(&mut dp, 0);
        let v = dp.process(inner_udp(0x08080808, UE_IP, 443, 64), 200);
        match v {
            PacketVerdict::Forward(mut m) => {
                let (gtp, outer) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, TEID_DL);
                assert_eq!(outer.dst, ENB_IP);
                assert_eq!(outer.src, GW_IP);
                let inner = Ipv4Hdr::parse(m.data()).unwrap();
                assert_eq!(inner.dst, UE_IP);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(ctx.counters.read().downlink_packets, 1);
    }

    #[test]
    fn unknown_teid_dropped() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        let v = dp.process(uplink_packet(0xDEAD), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::UnknownUser)));
        assert_eq!(dp.metrics().drop_unknown_user, 1);
    }

    #[test]
    fn unknown_ue_ip_dropped() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        let v = dp.process(inner_udp(1, 0x0A0000FF, 80, 10), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::UnknownUser)));
    }

    #[test]
    fn malformed_packet_dropped_not_panicking() {
        let mut dp = dp();
        let v = dp.process(Mbuf::from_payload(&[0xFF; 40]), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::Malformed)));
    }

    #[test]
    fn handover_rewrite_is_visible_without_any_dp_update() {
        // The PEPC property: the control thread rewrites tunnel state in
        // the shared context; the very next downlink packet uses it.
        let mut dp = dp();
        let ctx = attach_user(&mut dp, 0);
        {
            let mut c = ctx.ctrl.write();
            c.tunnels.enb_teid = 0x3333;
            c.tunnels.enb_ip = 0xC0A80099;
        }
        match dp.process(inner_udp(1, UE_IP, 80, 10), 1) {
            PacketVerdict::Forward(mut m) => {
                let (gtp, outer) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, 0x3333);
                assert_eq!(outer.dst, 0xC0A80099);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rate_limit_enforced_and_recorded() {
        let mut dp = dp();
        // 8 kbps = 1000 B/s; burst floor 1500 B.
        let ctx = attach_user(&mut dp, 8);
        let mut forwarded = 0;
        let mut dropped = 0;
        for i in 0..50 {
            // ~100-byte packets, all at (nearly) the same instant.
            match dp.process(uplink_packet(TEID_UL), 1000 + i) {
                PacketVerdict::Forward(_) => forwarded += 1,
                PacketVerdict::Drop(DropReason::RateExceeded) => dropped += 1,
                other => panic!("{other:?}"),
            }
        }
        assert!((10..25).contains(&forwarded), "burst admitted ~15: {forwarded}");
        assert!(dropped > 0);
        assert_eq!(ctx.counters.read().qos_drops, dropped);
        assert_eq!(dp.metrics().drop_qos, dropped);
    }

    #[test]
    fn gate_closed_rule_drops() {
        let mut dp = dp();
        let ctx = attach_user(&mut dp, 0);
        dp.apply_update(
            DpUpdate::InstallRule {
                id: 1,
                program: BpfProgram::match_dst_port(53, 1),
                action: PcefAction { qci: 9, rate_kbps: 0, gate_closed: true },
            },
            0,
        );
        ctx.ctrl.write().pcef_rules.push(1);
        let v = dp.process(uplink_packet(TEID_UL), 1);
        assert!(matches!(v, PacketVerdict::Drop(DropReason::GateClosed)));
        assert_eq!(dp.metrics().drop_gate, 1);
    }

    #[test]
    fn remove_update_detaches_user() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        assert_eq!(dp.user_count(), 1);
        dp.apply_update(DpUpdate::Remove { gw_teid: TEID_UL, ue_ip: UE_IP }, 0);
        assert_eq!(dp.user_count(), 0);
        assert!(matches!(dp.process(uplink_packet(TEID_UL), 1), PacketVerdict::Drop(DropReason::UnknownUser)));
    }

    #[test]
    fn demoted_user_promoted_by_traffic() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        dp.apply_update(DpUpdate::Demote { gw_teid: TEID_UL, ue_ip: UE_IP }, 0);
        assert_eq!(dp.primary_count(), 0);
        assert!(dp.process(uplink_packet(TEID_UL), 1).is_forward());
        assert_eq!(dp.primary_count(), 1);
        assert_eq!(dp.table_stats().promotions, 1);
    }

    #[test]
    fn idle_eviction_from_pipeline() {
        let mut dp =
            DataPlane::new(GW_IP, 64, TwoLevelConfig { enabled: true, idle_timeout_ns: 1000 }, IotConfig::default());
        let mut ctrl = ControlState::new(1);
        ctrl.tunnels.gw_teid = TEID_UL;
        ctrl.ue_ip = UE_IP;
        let ctx = UeContext::new(ctrl);
        dp.apply_update(DpUpdate::Insert { gw_teid: TEID_UL, ue_ip: UE_IP, ctx, active: true }, 0);
        assert!(dp.process(uplink_packet(TEID_UL), 10).is_forward());
        let evicted = dp.evict_idle(5000);
        assert_eq!(evicted, 2, "both indexes demote");
        assert_eq!(dp.primary_count(), 0);
        assert!(dp.process(uplink_packet(TEID_UL), 5001).is_forward(), "still served via secondary");
    }

    #[test]
    fn iot_pool_bypasses_state_lookup() {
        let iot = IotConfig { enabled: true, teid_base: 0xF0000000, ip_base: 0x64000000, pool_size: 100 };
        let mut dp = DataPlane::new(GW_IP, 64, TwoLevelConfig::default(), iot);
        // No user installed at all: pool TEID still forwards.
        let v = dp.process(uplink_packet(0xF0000005), 1);
        assert!(v.is_forward());
        assert_eq!(dp.metrics().iot_fast_path, 1);
        assert_eq!(dp.iot_packets, 1);
        // Downlink to a pool IP gets a computed tunnel.
        match dp.process(inner_udp(1, 0x64000005, 80, 10), 2) {
            PacketVerdict::Forward(mut m) => {
                let (gtp, _) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, 0xF0000005);
            }
            other => panic!("{other:?}"),
        }
        // Outside the pool: normal path (unknown here).
        assert!(matches!(
            dp.process(uplink_packet(0xF0000064 /* base+100 */), 3),
            PacketVerdict::Drop(DropReason::UnknownUser)
        ));
    }

    #[test]
    fn effective_rate_picks_tighter_limit() {
        assert_eq!(effective_rate(0, 0), 0);
        assert_eq!(effective_rate(100, 0), 100);
        assert_eq!(effective_rate(0, 50), 50);
        assert_eq!(effective_rate(100, 50), 50);
        assert_eq!(effective_rate(50, 100), 50);
    }

    #[test]
    fn pipeline_histogram_counts_only_forwarded() {
        let mut dp = dp();
        attach_user(&mut dp, 0);
        for _ in 0..5 {
            assert!(dp.process(uplink_packet(TEID_UL), 1).is_forward());
        }
        // Drops must not enter the latency population.
        assert!(!dp.process(uplink_packet(0xDEAD), 2).is_forward());
        assert_eq!(dp.pipeline_latency().count(), dp.metrics().forwarded);
        assert_eq!(dp.pipeline_latency().count(), 5);
    }

    #[test]
    fn telemetry_can_be_disabled() {
        let mut dp = dp();
        dp.set_telemetry_enabled(false);
        attach_user(&mut dp, 0);
        assert!(dp.process(uplink_packet(TEID_UL), 1).is_forward());
        dp.record_update_delay(123);
        assert_eq!(dp.pipeline_latency().count(), 0);
        assert_eq!(dp.update_delay().count(), 0);
        assert_eq!(dp.metrics().forwarded, 1, "counters stay on");
    }
}
