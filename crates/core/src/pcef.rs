//! Policy and Charging Enforcement Function — paper §4.2.
//!
//! "We also implement the Policy Charging and Enforcement Function (PCEF),
//! as a match-action table, consisting of BPF programs over the 5-tuple
//! and operator specified actions."
//!
//! Rules are installed slice-wide; each user's
//! [`ControlState`](crate::state::ControlState) carries the ids of the
//! rules that apply to it (installed from the PCRF's Gx answer at attach).
//! The data plane runs the user's programs in order; the first non-zero
//! verdict selects the action.

use pepc_net::{BpfProgram, FiveTuple};
use pepc_sigproto::gx::GxRule;
use std::collections::HashMap;

/// What to do with a matched packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcefAction {
    /// QoS class the packet is mapped into.
    pub qci: u8,
    /// Rate limit for this class, kbps (0 = unlimited, AMBR still applies).
    pub rate_kbps: u32,
    /// Drop instead of forwarding (operator gating rule).
    pub gate_closed: bool,
}

impl Default for PcefAction {
    fn default() -> Self {
        PcefAction { qci: 9, rate_kbps: 0, gate_closed: false }
    }
}

/// One installed rule: a verified BPF program plus the action.
#[derive(Debug, Clone)]
struct PcefRule {
    program: BpfProgram,
    action: PcefAction,
}

/// The match-action table.
#[derive(Debug, Clone, Default)]
pub struct Pcef {
    rules: HashMap<u16, PcefRule>,
}

impl Pcef {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a rule.
    pub fn install(&mut self, id: u16, program: BpfProgram, action: PcefAction) {
        self.rules.insert(id, PcefRule { program, action });
    }

    /// Install a rule from its Gx wire form (as the PCRF delivers it).
    ///
    /// Translation: proto 0 = match-all; a zero port range = any port.
    pub fn install_gx(&mut self, rule: &GxRule) {
        let program = if rule.proto == 0 && rule.dst_port_lo == 0 && rule.dst_port_hi == 0 {
            BpfProgram::match_all(rule.rule_id)
        } else if rule.dst_port_lo == 0 && rule.dst_port_hi == 0 {
            // Proto-only match: any port of that protocol.
            BpfProgram::match_proto_port_range(rule.proto, 0, u16::MAX, rule.rule_id)
        } else {
            BpfProgram::match_proto_port_range(rule.proto, rule.dst_port_lo, rule.dst_port_hi, rule.rule_id)
        };
        self.install(
            rule.rule_id as u16,
            program,
            PcefAction { qci: rule.qci, rate_kbps: rule.rate_kbps, gate_closed: false },
        );
    }

    /// Remove a rule; returns true if it existed.
    pub fn uninstall(&mut self, id: u16) -> bool {
        self.rules.remove(&id).is_some()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Classify a packet against the given rule ids (a user's rule set),
    /// in order. Returns the first matching action, or the default
    /// (best-effort, open gate) when nothing matches.
    #[inline]
    pub fn classify<'a>(&self, ft: &FiveTuple, rule_ids: impl Iterator<Item = u16> + 'a) -> PcefAction {
        for id in rule_ids {
            if let Some(rule) = self.rules.get(&id) {
                if rule.program.run(ft) != 0 {
                    return rule.action;
                }
            }
        }
        PcefAction::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(dst_port: u16, proto: u8) -> FiveTuple {
        FiveTuple { src_ip: 1, dst_ip: 2, src_port: 3, dst_port, proto }
    }

    #[test]
    fn first_match_wins_in_user_order() {
        let mut pcef = Pcef::new();
        pcef.install(1, BpfProgram::match_dst_port(80, 1), PcefAction { qci: 7, rate_kbps: 100, gate_closed: false });
        pcef.install(2, BpfProgram::match_all(2), PcefAction { qci: 9, rate_kbps: 0, gate_closed: false });
        // User lists rule 1 before rule 2.
        let a = pcef.classify(&ft(80, 6), [1u16, 2].into_iter());
        assert_eq!(a.qci, 7);
        // Non-80 traffic falls to rule 2.
        let a = pcef.classify(&ft(81, 6), [1u16, 2].into_iter());
        assert_eq!(a.qci, 9);
    }

    #[test]
    fn no_match_returns_default_open_gate() {
        let pcef = Pcef::new();
        let a = pcef.classify(&ft(80, 6), std::iter::empty());
        assert_eq!(a, PcefAction::default());
        assert!(!a.gate_closed);
    }

    #[test]
    fn missing_rule_ids_skipped() {
        let mut pcef = Pcef::new();
        pcef.install(5, BpfProgram::match_all(5), PcefAction { qci: 6, rate_kbps: 0, gate_closed: false });
        // User references rule 4 (uninstalled) then 5.
        let a = pcef.classify(&ft(1, 6), [4u16, 5].into_iter());
        assert_eq!(a.qci, 6);
    }

    #[test]
    fn gate_closed_action_propagates() {
        let mut pcef = Pcef::new();
        pcef.install(1, BpfProgram::match_dst_port(25, 1), PcefAction { qci: 9, rate_kbps: 0, gate_closed: true });
        assert!(pcef.classify(&ft(25, 6), [1u16].into_iter()).gate_closed);
        assert!(!pcef.classify(&ft(26, 6), [1u16].into_iter()).gate_closed);
    }

    #[test]
    fn gx_rule_translation() {
        let mut pcef = Pcef::new();
        // Port-range rule.
        pcef.install_gx(&GxRule {
            rule_id: 1,
            proto: 17,
            dst_port_lo: 5060,
            dst_port_hi: 5062,
            qci: 5,
            rate_kbps: 1000,
        });
        // Proto-wide rule.
        pcef.install_gx(&GxRule { rule_id: 2, proto: 6, dst_port_lo: 0, dst_port_hi: 0, qci: 8, rate_kbps: 0 });
        // Catch-all.
        pcef.install_gx(&GxRule { rule_id: 3, proto: 0, dst_port_lo: 0, dst_port_hi: 0, qci: 9, rate_kbps: 0 });

        let order = [1u16, 2, 3];
        assert_eq!(pcef.classify(&ft(5060, 17), order.into_iter()).qci, 5);
        assert_eq!(pcef.classify(&ft(5062, 17), order.into_iter()).qci, 9, "range is exclusive-high");
        assert_eq!(pcef.classify(&ft(443, 6), order.into_iter()).qci, 8);
        assert_eq!(pcef.classify(&ft(443, 17), order.into_iter()).qci, 9);
    }

    #[test]
    fn uninstall_removes() {
        let mut pcef = Pcef::new();
        pcef.install(1, BpfProgram::match_all(1), PcefAction::default());
        assert_eq!(pcef.len(), 1);
        assert!(pcef.uninstall(1));
        assert!(!pcef.uninstall(1));
        assert!(pcef.is_empty());
    }
}
