//! Operator configuration for a PEPC deployment (paper Listing 1's
//! `EpcConfig`).

use pepc_net::BpfProgram;
use serde::{Deserialize, Serialize};

/// How membership updates flow from the control thread to the data thread
/// (paper §7.2, Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// The data thread drains the control→data update channel once every
    /// this many processed packets. 1 = unbatched (sync every packet);
    /// the paper's default is 32.
    pub sync_every_packets: u32,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig { sync_every_packets: 32 }
    }
}

/// Two-level state-table configuration (paper §3.2, §7.3, Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLevelConfig {
    /// Enable the primary/secondary split. When false every user lives in
    /// the data thread's (single) table — the baseline of Figure 14.
    pub enabled: bool,
    /// Evict a user from the primary table after this much data-plane
    /// inactivity, in nanoseconds on the slice clock.
    pub idle_timeout_ns: u64,
}

impl Default for TwoLevelConfig {
    fn default() -> Self {
        TwoLevelConfig { enabled: true, idle_timeout_ns: 5_000_000_000 }
    }
}

/// Stateless-IoT customization (paper §4.2, Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IotConfig {
    /// Enable the lookup-free fast path.
    pub enabled: bool,
    /// TEIDs in `[teid_base, teid_base + pool_size)` belong to stateless
    /// IoT devices; service parameters are inferred from the pool, not
    /// from per-user state.
    pub teid_base: u32,
    /// UE IPs in `[ip_base, ip_base + pool_size)` likewise (downlink).
    pub ip_base: u32,
    pub pool_size: u32,
}

impl Default for IotConfig {
    fn default() -> Self {
        IotConfig { enabled: false, teid_base: 0xF000_0000, ip_base: 0x64_00_00_00, pool_size: 0 }
    }
}

/// Control-plane overload / admission control (DESIGN.md §15).
///
/// Disabled by default: with `enabled: false` every signaling message is
/// admitted and the control plane behaves exactly as before this config
/// existed. When enabled, incoming S1AP is classified into priority
/// classes (handover > attach/service > periodic TAU) and shed *before*
/// routing when either a per-eNodeB token bucket (attach-class and below)
/// or the global in-flight-procedure ceiling (all classes) says the
/// control plane is saturated. Every shed message is answered with a NAS
/// `CongestionReject` carrying `backoff_ms`, and counted in the
/// per-class `sig_shed_*` taxonomy so signaling conservation still
/// balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master switch; false = admit everything (legacy behavior).
    pub enabled: bool,
    /// Per-eNodeB (ECGI) sustained admission rate for attach-class and
    /// TAU-class messages, in messages per supervision tick. 0 = no
    /// per-eNodeB limit.
    pub enb_rate_per_tick: u32,
    /// Per-eNodeB bucket depth: how large a synchronized wave one eNodeB
    /// may land before shedding starts.
    pub enb_burst: u32,
    /// Global ceiling on procedures simultaneously in flight; a new
    /// procedure-starting message is shed while at or above it.
    /// 0 = no ceiling.
    pub max_in_flight: u32,
    /// Back-off timer handed to shed UEs in the `CongestionReject`.
    pub backoff_ms: u16,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig { enabled: false, enb_rate_per_tick: 64, enb_burst: 256, max_in_flight: 4096, backoff_ms: 1000 }
    }
}

/// Configuration for one PEPC slice.
#[derive(Debug, Clone)]
pub struct SliceConfig {
    /// Core assignment for the control thread.
    pub ctrl_core: usize,
    /// Core assignment for the data thread.
    pub data_core: usize,
    pub batching: BatchingConfig,
    pub two_level: TwoLevelConfig,
    pub iot: IotConfig,
    /// PCEF rule programs (id, program); installed slice-wide, users
    /// reference them by id. Populated from PCRF rules at attach.
    pub pcef_programs: Vec<(u16, BpfProgram)>,
    /// Capacity hint: expected users per slice (pre-sizes tables).
    pub expected_users: usize,
    /// Capacity of the control→data membership update ring (rounded up to
    /// a power of two by the ring). Sized so bulk attach floods don't
    /// stall the control thread.
    pub update_ring_capacity: usize,
    /// Record per-packet pipeline latency and update-propagation delay
    /// (two monotonic clock reads per packet). Counters are unaffected.
    pub telemetry: bool,
    /// Record per-stage (parse/lookup/enforce) ns-per-packet medians, one
    /// amortized sample per burst per stage. Requires `telemetry`; adds
    /// two extra clock reads per burst, so it is off by default.
    pub stage_timing: bool,
    /// Control-plane admission control under signaling storms.
    pub overload: OverloadConfig,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            ctrl_core: 0,
            data_core: 1,
            batching: BatchingConfig::default(),
            two_level: TwoLevelConfig::default(),
            iot: IotConfig::default(),
            pcef_programs: Vec::new(),
            expected_users: 1024,
            update_ring_capacity: 64 * 1024,
            telemetry: true,
            stage_timing: false,
            overload: OverloadConfig::default(),
        }
    }
}

/// Configuration for a PEPC node.
#[derive(Debug, Clone)]
pub struct EpcConfig {
    /// The node's transport address (gateway IP the eNodeBs tunnel to).
    pub gw_ip: u32,
    /// Base for allocating gateway-side uplink TEIDs.
    pub teid_base: u32,
    /// Base for allocating UE IP addresses.
    pub ue_ip_base: u32,
    /// Tracking area this node serves.
    pub tac: u16,
    /// PLMN (operator) identifier used on S6a.
    pub plmn: u32,
    /// Per-slice configuration template.
    pub slice: SliceConfig,
    /// Number of slices to instantiate.
    pub slices: usize,
    /// Cluster load-balancer (Maglev) table size; must be prime and
    /// exceed the node count. Maglev's §3.4 recommends ≥ 100× the
    /// backend count for even spread; the deterministic simulator uses a
    /// small prime since it builds thousands of clusters per test run.
    pub lb_table_size: usize,
}

impl Default for EpcConfig {
    fn default() -> Self {
        EpcConfig {
            gw_ip: 0x0A_FE_00_01, // 10.254.0.1
            teid_base: 0x1000_0000,
            ue_ip_base: 0x0A_00_00_01, // 10.0.0.1
            tac: 1,
            plmn: 40401,
            slice: SliceConfig::default(),
            slices: 1,
            lb_table_size: 65537,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EpcConfig::default();
        assert_eq!(c.slice.batching.sync_every_packets, 32, "paper batches every 32 packets");
        assert!(c.slice.two_level.enabled, "two-level tables are the PEPC design");
        assert!(!c.slice.iot.enabled, "IoT fast path is an opt-in customization");
        assert_eq!(c.slice.update_ring_capacity, 64 * 1024, "update-ring default unchanged");
        assert_eq!(c.slices, 1);
        assert!(!c.slice.overload.enabled, "admission control is opt-in; default admits everything");
    }

    #[test]
    fn overload_config_serializes() {
        let o =
            OverloadConfig { enabled: true, enb_rate_per_tick: 10, enb_burst: 20, max_in_flight: 30, backoff_ms: 250 };
        let json = serde_json::to_string(&o).unwrap();
        let back: OverloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn batching_config_serializes() {
        let b = BatchingConfig { sync_every_packets: 64 };
        let json = serde_json::to_string(&b).unwrap();
        let back: BatchingConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn iot_pool_ranges_disjoint_from_defaults() {
        let c = EpcConfig::default();
        let iot = IotConfig { enabled: true, pool_size: 1000, ..IotConfig::default() };
        // Regular TEIDs grow up from teid_base; the IoT pool sits far above.
        assert!(iot.teid_base > c.teid_base + 100_000_000);
    }
}
