//! The PEPC node — paper §3.3: several slices, a Demux, a scheduler and
//! the backend proxy on one server.
//!
//! This implementation drives its slices *inline* (single logical thread
//! per node), which keeps behaviour deterministic for tests and lets the
//! figure harnesses measure per-core work precisely; the threaded
//! execution mode lives in [`crate::slice::Slice::spawn`] and is
//! exercised by the slice tests and examples. The node scheduler's
//! responsibilities from the paper are all here: instantiating slices
//! from operator configuration, steering (via [`Demux`]), and state
//! migration with per-user packet queues.

use crate::config::EpcConfig;
use crate::ctrl::{Allocator, CtrlEvent};
use crate::data::PacketVerdict;
use crate::demux::{Demux, Steer};
use crate::migrate::UserSnapshot;
use crate::proxy::Proxy;
use crate::slice::Slice;
use pepc_backend::{Hss, Pcrf};
use pepc_fabric::Clock;
use pepc_net::Mbuf;
use pepc_sigproto::s1ap::S1apPdu;
use pepc_telemetry::{LatencyHistogram, MetricsSnapshot};
use std::sync::Arc;

/// Outcome of handing the node a data packet.
#[derive(Debug)]
pub enum NodeVerdict {
    /// Processed and forwarded by a slice.
    Forward(Mbuf),
    /// Dropped by the pipeline (slice verdict) or unroutable (no user).
    Drop,
    /// Parked in a migration queue; will emerge later.
    Parked,
    /// Held in an idle-UE buffer behind a page; emerges via
    /// [`PepcNode::take_woken`] when the UE answers, or is dropped when
    /// the page expires.
    Buffered,
}

impl NodeVerdict {
    pub fn is_forward(&self) -> bool {
        matches!(self, NodeVerdict::Forward(_))
    }
}

/// A PEPC node.
pub struct PepcNode {
    config: EpcConfig,
    slices: Vec<Slice>,
    demux: Demux,
    proxy: Option<Arc<Proxy>>,
    /// Forwarded packets produced while draining migration queues.
    migration_out: Vec<Mbuf>,
    /// Per-user migration latency (park→drain), indexed by target slice —
    /// migration is a node procedure, so the node owns its histogram.
    migration_ns: Vec<LatencyHistogram>,
    /// Clock the node stamps migration latencies with (virtual under sim).
    clock: Clock,
}

impl PepcNode {
    /// Build a node with `config.slices` slices. Each slice gets a
    /// disjoint identifier region carved from the node's bases.
    pub fn new(config: EpcConfig, backends: Option<(Arc<Hss>, Arc<Pcrf>)>) -> Self {
        let proxy = backends.map(|(hss, pcrf)| Arc::new(Proxy::new(hss, pcrf, config.gw_ip, config.plmn)));
        let mut slices = Vec::with_capacity(config.slices);
        for k in 0..config.slices {
            let alloc = Self::allocator_for(&config, k);
            let mut slice_cfg = config.slice.clone();
            slice_cfg.ctrl_core = 2 * k;
            slice_cfg.data_core = 2 * k + 1;
            slices.push(Slice::new(&slice_cfg, config.gw_ip, config.tac, alloc, proxy.clone()));
        }
        let migration_ns = vec![LatencyHistogram::new(); config.slices];
        PepcNode {
            config,
            slices,
            demux: Demux::new(),
            proxy,
            migration_out: Vec::new(),
            migration_ns,
            clock: Clock::new(),
        }
    }

    /// Substitute the clock for this node and all its slices (the
    /// simulator installs a shared virtual clock so node time only moves
    /// when the harness advances it).
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
        for s in &mut self.slices {
            s.set_clock(clock);
        }
    }

    /// The identifier region slice `k` allocates from (24 bits ≈ 16M users
    /// per slice).
    fn allocator_for(config: &EpcConfig, k: usize) -> Allocator {
        let k = k as u32;
        Allocator {
            teid_base: config.teid_base + (k << 24),
            ue_ip_base: config.ue_ip_base + (k << 24),
            guti_base: 0xD00D_0000_0000 + (u64::from(k) << 32),
            mme_ue_id_base: 1 + (k << 24),
        }
    }

    /// Slice a fresh IMSI will be homed on (static hash, as the paper's
    /// Demux does for signaling).
    pub fn home_slice(&self, imsi: u64) -> usize {
        (imsi.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.slices.len()
    }

    /// Attach a user via the synthetic event path. Returns the slice it
    /// was homed on. Registers the Demux mapping.
    pub fn attach(&mut self, imsi: u64) -> usize {
        let k = self.demux.slice_for_imsi(imsi).unwrap_or_else(|| self.home_slice(imsi));
        self.slices[k].handle_ctrl_event(CtrlEvent::Attach { imsi });
        let ctx = self.slices[k].ctrl.context_of(imsi).expect("just attached");
        let (gw_teid, ue_ip) = {
            let c = ctx.ctrl_read();
            (c.tunnels.gw_teid, c.ue_ip)
        };
        self.demux.map_user(imsi, gw_teid, ue_ip, k);
        k
    }

    /// Detach a user everywhere.
    pub fn detach(&mut self, imsi: u64) -> bool {
        match self.demux.slice_for_imsi(imsi) {
            Some(k) => {
                let ctx = self.slices[k].ctrl.context_of(imsi);
                if let Some(ctx) = ctx {
                    let (gw_teid, ue_ip) = {
                        let c = ctx.ctrl_read();
                        (c.tunnels.gw_teid, c.ue_ip)
                    };
                    self.demux.unmap_user(imsi, gw_teid, ue_ip);
                }
                self.slices[k].handle_ctrl_event(CtrlEvent::Detach { imsi })
            }
            None => false,
        }
    }

    /// Apply a synthetic control event to the owning slice.
    pub fn ctrl_event(&mut self, ev: CtrlEvent) -> bool {
        match ev {
            CtrlEvent::Attach { .. } => {
                let CtrlEvent::Attach { imsi } = ev else { unreachable!() };
                self.attach(imsi);
                true
            }
            CtrlEvent::S1Handover { imsi, .. }
            | CtrlEvent::ModifyBearer { imsi, .. }
            | CtrlEvent::Release { imsi }
            | CtrlEvent::Detach { imsi } => match self.demux.slice_for_imsi(imsi) {
                Some(k) => self.slices[k].handle_ctrl_event(ev),
                None => false,
            },
        }
    }

    /// Route one S1AP PDU to the right slice and return its responses.
    ///
    /// InitialUEMessage is routed by the IMSI inside the NAS payload;
    /// UE-associated follow-ups are routed by the MME UE id, whose ranges
    /// are disjoint per slice.
    pub fn handle_s1ap(&mut self, pdu: &S1apPdu) -> Vec<S1apPdu> {
        let k = match pdu {
            S1apPdu::InitialUeMessage { nas, .. } => match pepc_sigproto::nas::NasMsg::decode(nas) {
                Ok(pepc_sigproto::nas::NasMsg::AttachRequest { imsi, .. }) => {
                    self.demux.slice_for_imsi(imsi).unwrap_or_else(|| self.home_slice(imsi))
                }
                // Service Requests carry only a GUTI; probe the slices for
                // the owner (GUTI regions are per-slice, so at most one
                // hit). Unknown GUTIs go to slice 0, which answers with
                // the release-and-reattach command.
                Ok(pepc_sigproto::nas::NasMsg::ServiceRequest { guti }) => {
                    (0..self.slices.len()).find(|&k| self.slices[k].ctrl.knows_guti(guti)).unwrap_or(0)
                }
                _ => return vec![],
            },
            S1apPdu::UplinkNasTransport { mme_ue_id, .. }
            | S1apPdu::InitialContextSetupResponse { mme_ue_id, .. }
            | S1apPdu::PathSwitchRequest { mme_ue_id, .. }
            | S1apPdu::HandoverRequired { mme_ue_id, .. }
            | S1apPdu::HandoverRequestAck { mme_ue_id, .. }
            | S1apPdu::UeContextReleaseRequest { mme_ue_id, .. }
            | S1apPdu::UeContextReleaseComplete { mme_ue_id, .. } => self.slice_of_mme_ue_id(*mme_ue_id),
            _ => return vec![],
        };
        let rsp = self.slices[k].handle_s1ap(pdu);
        // Context-setup completion reveals the user's data-plane keys;
        // register the Demux mapping then.
        if let S1apPdu::InitialContextSetupResponse { .. } = pdu {
            // The slice knows the user; find it via the ICS request we
            // would have emitted. Simplest robust approach: scan the
            // slice's IMSIs missing a demux mapping (attach volume per
            // call is 1, so this is the just-attached user).
            for imsi in self.slices[k].ctrl.imsis() {
                if self.demux.slice_for_imsi(imsi).is_none() {
                    if let Some(ctx) = self.slices[k].ctrl.context_of(imsi) {
                        let c = ctx.ctrl_read();
                        self.demux.map_user(imsi, c.tunnels.gw_teid, c.ue_ip, k);
                    }
                }
            }
        }
        rsp
    }

    /// Drive network-triggered paging on every slice; returns the paging
    /// PDUs (and supervision-sweep retransmits) to send to the eNodeBs.
    pub fn pump_paging(&mut self) -> Vec<S1apPdu> {
        let mut out = Vec::new();
        for s in &mut self.slices {
            out.extend(s.pump_paging());
        }
        out
    }

    /// Drain buffered downlink flushed by idle-UE wakes on every slice.
    pub fn take_woken(&mut self) -> Vec<Mbuf> {
        let mut out = Vec::new();
        for s in &mut self.slices {
            out.extend(s.take_woken());
        }
        out
    }

    /// Stuck-idle oracle over all slices: suspended UEs holding buffered
    /// downlink older than `bound_ns` with no page in flight.
    pub fn stuck_idle(&self, now_ns: u64, bound_ns: u64) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.slices.iter().flat_map(|s| s.stuck_idle(now_ns, bound_ns)).collect();
        v.sort_unstable();
        v
    }

    fn slice_of_mme_ue_id(&self, mme_ue_id: u32) -> usize {
        (((mme_ue_id - 1) >> 24) as usize).min(self.slices.len().saturating_sub(1))
    }

    /// Process one data packet end to end.
    pub fn process(&mut self, m: Mbuf) -> NodeVerdict {
        let (steer, m) = self.demux.steer(m);
        match steer {
            Steer::ToSlice(k) => match self.slices[k].process_packet(m.expect("steered")) {
                PacketVerdict::Forward(out) => NodeVerdict::Forward(out),
                PacketVerdict::Drop(_) => NodeVerdict::Drop,
                PacketVerdict::Buffered => NodeVerdict::Buffered,
            },
            Steer::Parked => NodeVerdict::Parked,
            Steer::Unknown | Steer::Malformed => NodeVerdict::Drop,
        }
    }

    /// Process a burst of data packets end to end, returning one verdict
    /// per packet in input order. Consecutive packets steered to the same
    /// slice are handed to that slice as one burst, so the slice-level
    /// lock coalescing and prefetching apply across the demux too.
    pub fn process_burst(&mut self, mut burst: Vec<Mbuf>) -> Vec<NodeVerdict> {
        let mut steered = Vec::with_capacity(burst.len());
        self.demux.steer_burst(&mut burst, &mut steered);
        let mut out = Vec::with_capacity(steered.len());
        // Flush buffer for the current same-slice run.
        let mut run: Vec<Mbuf> = Vec::new();
        let mut run_slice: Option<usize> = None;
        for (steer, m) in steered {
            match steer {
                Steer::ToSlice(k) => {
                    if run_slice != Some(k) {
                        self.flush_run(&mut run, &mut run_slice, &mut out);
                        run_slice = Some(k);
                    }
                    run.push(m.expect("steered"));
                }
                Steer::Parked => {
                    self.flush_run(&mut run, &mut run_slice, &mut out);
                    out.push(NodeVerdict::Parked);
                }
                Steer::Unknown | Steer::Malformed => {
                    self.flush_run(&mut run, &mut run_slice, &mut out);
                    out.push(NodeVerdict::Drop);
                }
            }
        }
        self.flush_run(&mut run, &mut run_slice, &mut out);
        out
    }

    /// Drain a pending same-slice run through its slice's burst path.
    fn flush_run(&mut self, run: &mut Vec<Mbuf>, run_slice: &mut Option<usize>, out: &mut Vec<NodeVerdict>) {
        let Some(k) = run_slice.take() else { return };
        if run.is_empty() {
            return;
        }
        for v in self.slices[k].process_burst(run) {
            match v {
                PacketVerdict::Forward(m) => out.push(NodeVerdict::Forward(m)),
                PacketVerdict::Drop(_) => out.push(NodeVerdict::Drop),
                PacketVerdict::Buffered => out.push(NodeVerdict::Buffered),
            }
        }
    }

    /// Migrate `imsi` from its current slice to `target`. Packets
    /// arriving mid-migration are parked and drained to the target
    /// afterwards; their outputs are retrievable via
    /// [`PepcNode::take_migration_output`]. Returns false if the user is
    /// unknown or already on `target`.
    pub fn migrate(&mut self, imsi: u64, target: usize) -> bool {
        let source = match self.demux.slice_for_imsi(imsi) {
            Some(s) => s,
            None => return false,
        };
        if source == target || target >= self.slices.len() {
            return false;
        }
        let t0 = self.clock.now_ns();
        // 1. Park subsequent packets.
        self.demux.begin_migration(imsi);
        // 2. Extract from the source slice (control thread removes its
        //    indexes and tells the source data thread to forget).
        let snap: UserSnapshot = match self.slices[source].extract_user(imsi) {
            Some(s) => s,
            None => {
                // Inconsistent mapping; heal by aborting the migration.
                let parked = self.demux.abort_migration(imsi);
                self.requeue(source, parked);
                return false;
            }
        };
        let (gw_teid, ue_ip) = (snap.gw_teid, snap.ue_ip);
        // 3. Install at the target.
        self.slices[target].install_user(snap);
        // 4. Repoint the Demux and drain the parked packets to the target.
        let parked = self.demux.finish_migration(imsi, gw_teid, ue_ip, target);
        self.requeue(target, parked);
        self.migration_ns[target].record(self.clock.now_ns().saturating_sub(t0));
        true
    }

    fn requeue(&mut self, slice: usize, parked: Vec<Mbuf>) {
        for m in parked {
            if let PacketVerdict::Forward(out) = self.slices[slice].process_packet(m) {
                self.migration_out.push(out);
            }
        }
    }

    /// Packets forwarded while draining migration queues.
    pub fn take_migration_output(&mut self) -> Vec<Mbuf> {
        std::mem::take(&mut self.migration_out)
    }

    /// Advance every slice's procedure-supervision clock.
    pub fn note_tick(&mut self, now: u64) {
        for s in &mut self.slices {
            s.note_tick(now);
        }
    }

    /// Expire stalled procedures on every slice; returns the total count.
    pub fn expire_procedures(&mut self, now: u64, max_age: u64) -> usize {
        self.slices.iter_mut().map(|s| s.expire_procedures(now, max_age)).sum()
    }

    /// UEs stuck mid-procedure beyond `bound` ticks across all slices,
    /// as `(imsi, age)` — the simulator's liveness-oracle input.
    pub fn stuck_procedures(&self, now: u64, bound: u64) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.slices.iter().flat_map(|s| s.ctrl.stuck_procedures(now, bound)).collect();
        v.sort_unstable();
        v
    }

    /// Direct access to a slice (harness / test hook).
    pub fn slice(&mut self, k: usize) -> &mut Slice {
        &mut self.slices[k]
    }

    /// Immutable access to a slice (oracles, inspection).
    pub fn slice_ref(&self, k: usize) -> &Slice {
        &self.slices[k]
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total users attached across slices.
    pub fn user_count(&self) -> usize {
        self.slices.iter().map(|s| s.ctrl.user_count()).sum()
    }

    /// Snapshot every slice's observability registry, plus the node-owned
    /// migration histogram (slotted into the target slice's entry).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (k, s) in self.slices.iter().enumerate() {
            let mut sl = s.telemetry_snapshot(k as u64);
            sl.migration_ns = self.migration_ns[k].clone();
            snap.slices.push(sl);
        }
        snap
    }

    /// The node's Demux (inspection).
    pub fn demux(&self) -> &Demux {
        &self.demux
    }

    /// Recovery hook: re-register a restored user's steering keys (a
    /// recovery controller rebuilds the Demux from the same checkpoint it
    /// restored the slices from).
    pub fn demux_mut_for_recovery(&mut self, imsi: u64, gw_teid: u32, ue_ip: u32, slice: usize) {
        self.demux.map_user(imsi, gw_teid, ue_ip, slice);
    }

    /// Adopt a user recovered from another node's replica: restore the
    /// state into the IMSI's home slice (identifiers and tunnels are
    /// preserved, so in-flight GTP tunnels stay valid), push the
    /// data-plane insert through immediately, and register the Demux
    /// steering keys. Returns the slice the user landed on.
    pub fn adopt_user(&mut self, ctrl: crate::state::ControlState, counters: crate::state::CounterState) -> usize {
        let imsi = ctrl.imsi;
        let (gw_teid, ue_ip) = (ctrl.tunnels.gw_teid, ctrl.ue_ip);
        let k = self.demux.slice_for_imsi(imsi).unwrap_or_else(|| self.home_slice(imsi));
        self.slices[k].ctrl.restore_user(ctrl, counters);
        self.slices[k].sync_now();
        self.demux.map_user(imsi, gw_teid, ue_ip, k);
        k
    }

    /// The proxy, when backends were supplied.
    pub fn proxy(&self) -> Option<&Arc<Proxy>> {
        self.proxy.as_ref()
    }

    /// The node configuration.
    pub fn config(&self) -> &EpcConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pepc_net::gtp::{decap_gtpu, encap_gtpu};
    use pepc_net::ipv4::IpProto;
    use pepc_net::{Ipv4Hdr, IPV4_HDR_LEN};

    fn node(slices: usize) -> PepcNode {
        let config = EpcConfig {
            slices,
            slice: crate::config::SliceConfig {
                batching: crate::config::BatchingConfig { sync_every_packets: 1 },
                ..Default::default()
            },
            ..EpcConfig::default()
        };
        PepcNode::new(config, None)
    }

    fn uplink_for(node: &mut PepcNode, imsi: u64) -> Mbuf {
        let k = node.demux.slice_for_imsi(imsi).unwrap();
        let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
        let (teid, ue_ip) = {
            let c = ctx.ctrl_read();
            (c.tunnels.gw_teid, c.ue_ip)
        };
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 16];
        Ipv4Hdr::new(ue_ip, 0x08080808, IpProto::Udp, 16).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        encap_gtpu(&mut m, 0xC0A80001, 0x0AFE0001, teid).unwrap();
        m
    }

    fn downlink_for(node: &mut PepcNode, imsi: u64) -> Mbuf {
        let k = node.demux.slice_for_imsi(imsi).unwrap();
        let ctx = node.slice(k).ctrl.context_of(imsi).unwrap();
        let ue_ip = ctx.ctrl_read().ue_ip;
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(0x08080808, ue_ip, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        m
    }

    #[test]
    fn attach_and_bidirectional_traffic() {
        let mut n = node(2);
        n.attach(7);
        // Downlink tunnel endpoint comes from a handover/ICS; set one.
        n.ctrl_event(CtrlEvent::S1Handover { imsi: 7, new_enb_teid: 0xE0, new_enb_ip: 0xC0A80001 });
        assert_eq!(n.user_count(), 1);
        let up = uplink_for(&mut n, 7);
        assert!(n.process(up).is_forward());
        let down = downlink_for(&mut n, 7);
        match n.process(down) {
            NodeVerdict::Forward(mut m) => {
                let (gtp, _) = decap_gtpu(&mut m).unwrap();
                assert_eq!(gtp.teid, 0xE0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn users_spread_across_slices() {
        let mut n = node(4);
        for imsi in 0..64 {
            n.attach(imsi);
        }
        let counts: Vec<usize> = (0..4).map(|k| n.slice(k).ctrl.user_count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert!(counts.iter().all(|&c| c > 0), "all slices used: {counts:?}");
    }

    #[test]
    fn unroutable_packets_dropped() {
        let mut n = node(1);
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN];
        Ipv4Hdr::new(1, 0x0BADF00D, IpProto::Udp, 0).emit(&mut hdr).unwrap();
        m.extend(&hdr);
        assert!(matches!(n.process(m), NodeVerdict::Drop));
    }

    #[test]
    fn burst_processing_spans_slices_in_order() {
        let mut n = node(2);
        for imsi in 0..8 {
            n.attach(imsi);
            n.ctrl_event(CtrlEvent::S1Handover { imsi, new_enb_teid: 0xE0, new_enb_ip: 0xC0A80001 });
        }
        // Mixed burst: packets for users on different slices plus one
        // unroutable, interleaved so several same-slice runs form.
        let mut burst = Vec::new();
        let mut expect_forward = Vec::new();
        for imsi in [0u64, 0, 1, 2, 2, 3] {
            burst.push(uplink_for(&mut n, imsi));
            expect_forward.push(true);
        }
        let mut unroutable = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN];
        Ipv4Hdr::new(1, 0x0BADF00D, IpProto::Udp, 0).emit(&mut hdr).unwrap();
        unroutable.extend(&hdr);
        burst.push(unroutable);
        expect_forward.push(false);
        burst.push(downlink_for(&mut n, 5));
        expect_forward.push(true);

        let verdicts = n.process_burst(burst);
        assert_eq!(verdicts.len(), expect_forward.len());
        for (v, want) in verdicts.iter().zip(&expect_forward) {
            assert_eq!(v.is_forward(), *want, "{v:?}");
        }
        let snap = n.metrics_snapshot();
        assert!(snap.conservation_holds());
        assert_eq!(snap.data_totals().forwarded, 7);
    }

    #[test]
    fn migration_moves_user_and_preserves_packets() {
        let mut n = node(2);
        n.attach(7);
        let src = n.demux.slice_for_imsi(7).unwrap();
        let dst = 1 - src;
        // Traffic before migration.
        let up = uplink_for(&mut n, 7);
        assert!(n.process(up).is_forward());

        assert!(n.migrate(7, dst));
        assert_eq!(n.demux.slice_for_imsi(7), Some(dst));
        assert_eq!(n.slice(src).ctrl.user_count(), 0);
        assert_eq!(n.slice(dst).ctrl.user_count(), 1);
        // Counters travelled.
        assert_eq!(n.slice(dst).ctrl.counters_of(7).unwrap().uplink_packets, 1);
        // Traffic after migration still flows (same TEID).
        let up = uplink_for(&mut n, 7);
        assert!(n.process(up).is_forward());
        assert_eq!(n.slice(dst).ctrl.counters_of(7).unwrap().uplink_packets, 2);
    }

    #[test]
    fn node_snapshot_covers_slices_and_migration() {
        let mut n = node(2);
        n.attach(7);
        let src = n.demux.slice_for_imsi(7).unwrap();
        let dst = 1 - src;
        let up = uplink_for(&mut n, 7);
        assert!(n.process(up).is_forward());
        assert!(n.migrate(7, dst));

        let snap = n.metrics_snapshot();
        assert_eq!(snap.slices.len(), 2);
        assert!(snap.conservation_holds());
        assert_eq!(snap.slices[dst].migration_ns.count(), 1);
        assert_eq!(snap.slices[src].migration_ns.count(), 0);
        assert_eq!(snap.slices[dst].ctrl.migrations_in, 1);
        assert_eq!(snap.slices[src].ctrl.migrations_out, 1);
        assert_eq!(snap.data_totals().forwarded, 1);
        // The report renders and round-trips.
        let text = snap.render();
        assert!(text.contains("conservation=ok"), "{text}");
        let back = pepc_telemetry::MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert!(back.deterministic_eq(&snap));
    }

    #[test]
    fn migrate_rejects_bad_targets() {
        let mut n = node(2);
        n.attach(7);
        let src = n.demux.slice_for_imsi(7).unwrap();
        assert!(!n.migrate(7, src), "same slice");
        assert!(!n.migrate(7, 99), "out of range");
        assert!(!n.migrate(999, 0), "unknown user");
    }

    #[test]
    fn detach_cleans_node_state() {
        let mut n = node(2);
        n.attach(7);
        assert!(n.detach(7));
        assert_eq!(n.user_count(), 0);
        assert_eq!(n.demux().user_count(), 0);
        assert!(!n.detach(7));
    }

    #[test]
    fn s1ap_attach_routes_and_registers_demux() {
        use crate::ctrl::run_attach_with;
        let hss = Arc::new(Hss::new());
        hss.provision_range(1, 100, 100_000);
        let pcrf = Arc::new(Pcrf::with_standard_rules());
        let config = EpcConfig {
            slices: 2,
            slice: crate::config::SliceConfig {
                batching: crate::config::BatchingConfig { sync_every_packets: 1 },
                ..Default::default()
            },
            ..EpcConfig::default()
        };
        let mut n = PepcNode::new(config, Some((hss, pcrf)));
        // Drive the full attach through the node's S1AP routing.
        let (_, _, _) = run_attach_with(|pdu| n.handle_s1ap(pdu), 42, 1, 0xE0, 0xC0A80001).unwrap();
        assert_eq!(n.user_count(), 1);
        assert!(n.demux().slice_for_imsi(42).is_some(), "demux registered from ICS response");
        // Traffic flows both ways through node-level processing.
        let up = uplink_for(&mut n, 42);
        assert!(n.process(up).is_forward());
        let down = downlink_for(&mut n, 42);
        assert!(n.process(down).is_forward());
    }
}
