//! Policy Charging Rules Function: answers Gx credit-control requests
//! with the subscriber's rule set and accumulates reported usage.

use parking_lot::RwLock;
use pepc_sigproto::gx::{GxMsg, GxRule};
use pepc_sigproto::{Result, SigError};
use std::collections::HashMap;

/// Gx result code "success" (Diameter base 2001).
const SUCCESS: u32 = 2001;

/// Accumulated usage for a subscriber as reported over Gx.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    pub uplink_bytes: u64,
    pub downlink_bytes: u64,
}

/// The PCRF.
pub struct Pcrf {
    /// Rules installed for every subscriber unless overridden.
    default_rules: Vec<GxRule>,
    /// Per-IMSI rule overrides.
    overrides: RwLock<HashMap<u64, Vec<GxRule>>>,
    /// Usage reported via CCR-Update, per IMSI.
    usage: RwLock<HashMap<u64, Usage>>,
    /// AMBR pushed on CCA-Update (0 = leave unchanged).
    update_ambr_kbps: u32,
}

impl Pcrf {
    /// A PCRF installing `default_rules` for everyone.
    pub fn new(default_rules: Vec<GxRule>) -> Self {
        Pcrf {
            default_rules,
            overrides: RwLock::new(HashMap::new()),
            usage: RwLock::new(HashMap::new()),
            update_ambr_kbps: 0,
        }
    }

    /// A PCRF with a typical operator rule set: priority voice-signaling,
    /// rate-limited video, default best effort.
    pub fn with_standard_rules() -> Self {
        Self::new(vec![
            // SIP signaling: QCI 5, generous limit.
            GxRule { rule_id: 1, proto: 17, dst_port_lo: 5060, dst_port_hi: 5062, qci: 5, rate_kbps: 1000 },
            // HTTPS video-ish: QCI 7, rate limited.
            GxRule { rule_id: 2, proto: 6, dst_port_lo: 443, dst_port_hi: 444, qci: 7, rate_kbps: 20_000 },
            // Everything else: QCI 9 best effort, unlimited (AMBR applies).
            GxRule { rule_id: 3, proto: 0, dst_port_lo: 0, dst_port_hi: 0, qci: 9, rate_kbps: 0 },
        ])
    }

    /// Override the rules for one subscriber.
    pub fn set_rules(&self, imsi: u64, rules: Vec<GxRule>) {
        self.overrides.write().insert(imsi, rules);
    }

    /// Rules that apply to `imsi`.
    pub fn rules_for(&self, imsi: u64) -> Vec<GxRule> {
        self.overrides.read().get(&imsi).cloned().unwrap_or_else(|| self.default_rules.clone())
    }

    /// Usage reported so far for `imsi`.
    pub fn usage_for(&self, imsi: u64) -> Usage {
        self.usage.read().get(&imsi).copied().unwrap_or_default()
    }

    /// Handle a Gx request, producing the answer.
    pub fn handle(&self, req: &GxMsg) -> Result<GxMsg> {
        match req {
            GxMsg::CcrInitial { session_id, imsi } => {
                Ok(GxMsg::CcaInitial { session_id: *session_id, result: SUCCESS, rules: self.rules_for(*imsi) })
            }
            GxMsg::CcrUpdate { session_id, imsi, uplink_bytes, downlink_bytes } => {
                let mut usage = self.usage.write();
                let u = usage.entry(*imsi).or_default();
                u.uplink_bytes += uplink_bytes;
                u.downlink_bytes += downlink_bytes;
                Ok(GxMsg::CcaUpdate { session_id: *session_id, result: SUCCESS, new_ambr_kbps: self.update_ambr_kbps })
            }
            _ => Err(SigError::BadState("gx answer sent as request")),
        }
    }

    /// Handle a wire-encoded request.
    pub fn handle_bytes(&self, req: &[u8]) -> Result<Vec<u8>> {
        let msg = GxMsg::decode(req)?;
        Ok(self.handle(&msg)?.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccr_initial_returns_rules() {
        let p = Pcrf::with_standard_rules();
        match p.handle(&GxMsg::CcrInitial { session_id: 3, imsi: 42 }).unwrap() {
            GxMsg::CcaInitial { session_id, result, rules } => {
                assert_eq!(session_id, 3);
                assert_eq!(result, SUCCESS);
                assert_eq!(rules.len(), 3);
                assert_eq!(rules[0].qci, 5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn per_subscriber_override() {
        let p = Pcrf::with_standard_rules();
        let iot_rule = vec![GxRule { rule_id: 9, proto: 17, dst_port_lo: 0, dst_port_hi: 0, qci: 9, rate_kbps: 64 }];
        p.set_rules(7, iot_rule.clone());
        assert_eq!(p.rules_for(7), iot_rule);
        assert_eq!(p.rules_for(8).len(), 3);
    }

    #[test]
    fn usage_accumulates_across_reports() {
        let p = Pcrf::with_standard_rules();
        for _ in 0..3 {
            p.handle(&GxMsg::CcrUpdate { session_id: 1, imsi: 5, uplink_bytes: 100, downlink_bytes: 300 }).unwrap();
        }
        assert_eq!(p.usage_for(5), Usage { uplink_bytes: 300, downlink_bytes: 900 });
        assert_eq!(p.usage_for(6), Usage::default());
    }

    #[test]
    fn byte_interface_roundtrips() {
        let p = Pcrf::with_standard_rules();
        let req = GxMsg::CcrInitial { session_id: 1, imsi: 2 }.encode();
        let rsp = p.handle_bytes(&req).unwrap();
        assert!(matches!(GxMsg::decode(&rsp).unwrap(), GxMsg::CcaInitial { .. }));
    }

    #[test]
    fn answers_rejected_as_requests() {
        let p = Pcrf::with_standard_rules();
        assert!(p.handle(&GxMsg::CcaUpdate { session_id: 1, result: 2001, new_ambr_kbps: 0 }).is_err());
    }
}
