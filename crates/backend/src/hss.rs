//! Home Subscriber Server: the subscriber database queried during attach.

use parking_lot::RwLock;
use pepc_sigproto::diameter::{command, result_code, DiameterMsg};
use pepc_sigproto::{Result, SigError};
use std::collections::HashMap;

/// A subscriber's static profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberProfile {
    /// Permanent subscriber key (K on the SIM).
    pub key: u64,
    /// Subscribed aggregate maximum bit rate (kbps).
    pub ambr_kbps: u32,
    /// Default bearer QoS class identifier (9 = best effort).
    pub default_qci: u8,
}

impl Default for SubscriberProfile {
    fn default() -> Self {
        SubscriberProfile { key: 0, ambr_kbps: 100_000, default_qci: 9 }
    }
}

/// An authentication vector: the challenge the MME forwards to the UE and
/// the expected response it checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthVector {
    pub rand: u64,
    pub autn: u64,
    pub xres: u64,
}

/// Derive an authentication vector from the subscriber key and a nonce —
/// the same keyed mixing on both the HSS and (in tests) the emulated SIM,
/// standing in for MILENAGE f1–f5.
pub fn derive_vector(key: u64, nonce: u64) -> AuthVector {
    fn mix(mut x: u64) -> u64 {
        // splitmix64 finalizer: good diffusion, cheap, deterministic.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    let rand = mix(nonce ^ 0xA5A5_A5A5_A5A5_A5A5);
    let autn = mix(rand ^ key);
    let xres = mix(autn ^ key.rotate_left(17));
    AuthVector { rand, autn, xres }
}

/// Compute the RES a genuine SIM with `key` produces for a challenge.
pub fn sim_response(key: u64, rand: u64) -> u64 {
    let v = derive_vector_from_rand(key, rand);
    v.xres
}

fn derive_vector_from_rand(key: u64, rand: u64) -> AuthVector {
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    let autn = mix(rand ^ key);
    let xres = mix(autn ^ key.rotate_left(17));
    AuthVector { rand, autn, xres }
}

/// The HSS.
///
/// Thread-safe: the PEPC node proxy and multiple control cores may query
/// it concurrently.
pub struct Hss {
    subscribers: RwLock<HashMap<u64, SubscriberProfile>>,
    /// IMSI → serving node registered by the last Update-Location.
    serving: RwLock<HashMap<u64, u32>>,
    nonce: std::sync::atomic::AtomicU64,
}

impl Hss {
    pub fn new() -> Self {
        Hss {
            subscribers: RwLock::new(HashMap::new()),
            serving: RwLock::new(HashMap::new()),
            nonce: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Provision one subscriber.
    pub fn provision(&self, imsi: u64, profile: SubscriberProfile) {
        self.subscribers.write().insert(imsi, profile);
    }

    /// Provision `count` subscribers with IMSIs `base..base+count` and a
    /// key derived from the IMSI (tests recompute it the same way).
    pub fn provision_range(&self, base: u64, count: u64, ambr_kbps: u32) {
        let mut subs = self.subscribers.write();
        subs.reserve(count as usize);
        for i in 0..count {
            let imsi = base + i;
            subs.insert(imsi, SubscriberProfile { key: Self::key_for(imsi), ambr_kbps, default_qci: 9 });
        }
    }

    /// The deterministic provisioning key for an IMSI (shared with tests
    /// emulating the SIM side).
    pub fn key_for(imsi: u64) -> u64 {
        imsi.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5EED_5EED_5EED_5EED
    }

    /// Number of provisioned subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Serving node registered for an IMSI, if any.
    pub fn serving_node(&self, imsi: u64) -> Option<u32> {
        self.serving.read().get(&imsi).copied()
    }

    /// Handle an S6a request message, producing the answer.
    pub fn handle(&self, req: &DiameterMsg) -> Result<DiameterMsg> {
        match req {
            DiameterMsg::AuthInfoRequest { hop_id, imsi, .. } => {
                let profile = self.subscribers.read().get(imsi).copied();
                Ok(match profile {
                    Some(p) => {
                        let nonce = self.nonce.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let v = derive_vector(p.key, nonce);
                        DiameterMsg::AuthInfoAnswer {
                            hop_id: *hop_id,
                            result: result_code::SUCCESS,
                            rand: v.rand,
                            autn: v.autn,
                            xres: v.xres,
                        }
                    }
                    None => DiameterMsg::AuthInfoAnswer {
                        hop_id: *hop_id,
                        result: result_code::USER_UNKNOWN,
                        rand: 0,
                        autn: 0,
                        xres: 0,
                    },
                })
            }
            DiameterMsg::UpdateLocationRequest { hop_id, imsi, serving_node } => {
                let profile = self.subscribers.read().get(imsi).copied();
                Ok(match profile {
                    Some(p) => {
                        self.serving.write().insert(*imsi, *serving_node);
                        DiameterMsg::UpdateLocationAnswer {
                            hop_id: *hop_id,
                            result: result_code::SUCCESS,
                            ambr_kbps: p.ambr_kbps,
                            default_qci: p.default_qci,
                        }
                    }
                    None => DiameterMsg::UpdateLocationAnswer {
                        hop_id: *hop_id,
                        result: result_code::USER_UNKNOWN,
                        ambr_kbps: 0,
                        default_qci: 0,
                    },
                })
            }
            _ => Err(SigError::UnknownType("s6a request", command::AUTHENTICATION_INFORMATION)),
        }
    }

    /// Handle a wire-encoded request.
    pub fn handle_bytes(&self, req: &[u8]) -> Result<Vec<u8>> {
        let msg = DiameterMsg::decode(req)?;
        Ok(self.handle(&msg)?.encode())
    }
}

impl Default for Hss {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hss_with(imsi: u64) -> Hss {
        let h = Hss::new();
        h.provision(imsi, SubscriberProfile { key: Hss::key_for(imsi), ambr_kbps: 50_000, default_qci: 8 });
        h
    }

    #[test]
    fn auth_vector_verifies_like_a_sim() {
        let imsi = 404_01_0000000001;
        let h = hss_with(imsi);
        let answer = h.handle(&DiameterMsg::AuthInfoRequest { hop_id: 1, imsi, plmn: 40401 }).unwrap();
        match answer {
            DiameterMsg::AuthInfoAnswer { result, rand, xres, .. } => {
                assert_eq!(result, result_code::SUCCESS);
                // The SIM, holding the same key, derives the same RES.
                assert_eq!(sim_response(Hss::key_for(imsi), rand), xres);
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }

    #[test]
    fn vectors_are_fresh_per_request() {
        let imsi = 7;
        let h = hss_with(imsi);
        let get_rand = |h: &Hss| match h.handle(&DiameterMsg::AuthInfoRequest { hop_id: 1, imsi, plmn: 1 }).unwrap() {
            DiameterMsg::AuthInfoAnswer { rand, .. } => rand,
            _ => unreachable!(),
        };
        assert_ne!(get_rand(&h), get_rand(&h));
    }

    #[test]
    fn unknown_imsi_rejected() {
        let h = hss_with(1);
        match h.handle(&DiameterMsg::AuthInfoRequest { hop_id: 9, imsi: 999, plmn: 1 }).unwrap() {
            DiameterMsg::AuthInfoAnswer { result, .. } => assert_eq!(result, result_code::USER_UNKNOWN),
            _ => panic!(),
        }
    }

    #[test]
    fn update_location_registers_serving_node() {
        let imsi = 42;
        let h = hss_with(imsi);
        assert_eq!(h.serving_node(imsi), None);
        match h.handle(&DiameterMsg::UpdateLocationRequest { hop_id: 2, imsi, serving_node: 17 }).unwrap() {
            DiameterMsg::UpdateLocationAnswer { result, ambr_kbps, default_qci, .. } => {
                assert_eq!(result, result_code::SUCCESS);
                assert_eq!(ambr_kbps, 50_000);
                assert_eq!(default_qci, 8);
            }
            _ => panic!(),
        }
        assert_eq!(h.serving_node(imsi), Some(17));
    }

    #[test]
    fn provision_range_bulk_loads() {
        let h = Hss::new();
        h.provision_range(1_000_000, 10_000, 100_000);
        assert_eq!(h.subscriber_count(), 10_000);
        match h.handle(&DiameterMsg::AuthInfoRequest { hop_id: 1, imsi: 1_005_000, plmn: 1 }).unwrap() {
            DiameterMsg::AuthInfoAnswer { result, .. } => assert_eq!(result, result_code::SUCCESS),
            _ => panic!(),
        }
    }

    #[test]
    fn byte_interface_works() {
        let imsi = 11;
        let h = hss_with(imsi);
        let req = DiameterMsg::AuthInfoRequest { hop_id: 5, imsi, plmn: 1 }.encode();
        let rsp = h.handle_bytes(&req).unwrap();
        match DiameterMsg::decode(&rsp).unwrap() {
            DiameterMsg::AuthInfoAnswer { hop_id, result, .. } => {
                assert_eq!(hop_id, 5);
                assert_eq!(result, result_code::SUCCESS);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn answers_are_not_valid_requests() {
        let h = hss_with(1);
        let bogus = DiameterMsg::AuthInfoAnswer { hop_id: 1, result: 2001, rand: 0, autn: 0, xres: 0 };
        assert!(h.handle(&bogus).is_err());
    }
}
