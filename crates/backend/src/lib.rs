// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! # pepc-backend — the HSS and PCRF backends
//!
//! The paper leaves the Home Subscriber Server and the Policy Charging
//! Rules Function unchanged and talks to them through the PEPC node proxy
//! (§3.3) over the standard S6a (Diameter) and Gx interfaces. To run full
//! attach procedures end-to-end, this crate provides working in-process
//! implementations of both:
//!
//! * [`hss::Hss`] — subscriber database with per-IMSI keys, deterministic
//!   authentication-vector generation (a MILENAGE-shaped keyed derivation)
//!   and serving-node registration.
//! * [`pcrf::Pcrf`] — policy-rule database answering Gx credit-control
//!   requests and accumulating reported usage.
//!
//! Both speak the `pepc-sigproto` codecs, so requests can arrive as bytes
//! from a proxy or as typed messages from a test.

pub mod hss;
pub mod pcrf;

pub use hss::{AuthVector, Hss, SubscriberProfile};
pub use pcrf::Pcrf;
