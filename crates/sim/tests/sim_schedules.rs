//! Acceptance suite for the deterministic simulator.
//!
//! The headline test sweeps `SIM_SCHEDULES` (default 1000) seeded
//! schedules of the two-node failover scenario — attach + bearer
//! traffic + intra-node migration with a kill landing mid-run — and
//! requires every oracle to hold on every schedule. The remaining tests
//! pin the meta-properties the sweep relies on: same seed ⇒ identical
//! trace, recorded schedules replay to the same digest, and an injected
//! invariant violation yields a shrunk, replayable trace file.

use pepc_sim::{replay, replay_trace, run, schedules_from_env, shrink, BugKind, RunResult, SimConfig, Trace};

/// Sweep helper: run one config and, if an oracle fired, shrink the
/// schedule, save a replayable trace (to `SIM_TRACE_DIR` — CI uploads it
/// as an artifact), and panic with the path.
fn run_green(cfg: &SimConfig) -> RunResult {
    let r = run(cfg);
    if let Some(f) = r.failure.clone() {
        let shrunk = shrink(cfg, &r.schedule, &f.oracle);
        let saved = Trace::new(cfg.clone(), shrunk, f.clone()).save(None);
        panic!(
            "seed {}: oracle `{}` violated at step {}: {} (shrunk trace: {:?})",
            cfg.seed, f.oracle, f.step, f.message, saved
        );
    }
    r
}

#[test]
fn schedule_matrix_two_node_failover_all_oracles_green() {
    let n = schedules_from_env(1000);
    let (mut failovers, mut forwarded) = (0usize, 0u64);
    for seed in 1..=n {
        let r = run_green(&SimConfig::two_node_failover(seed));
        failovers += r.failovers;
        forwarded += r.forwarded;
    }
    // The scenario is only interesting if the kill actually fires and
    // data actually flows; require both across the sweep.
    assert!(failovers >= n as usize / 2, "only {failovers} failovers in {n} schedules");
    assert!(forwarded > 0, "no data packets forwarded across {n} schedules");
}

#[test]
fn schedule_matrix_partition_heal_green() {
    let n = schedules_from_env(1000).min(64);
    for seed in 1..=n {
        run_green(&SimConfig::partition_heal(seed));
    }
}

#[test]
fn schedule_matrix_lossy_wires_green() {
    let n = schedules_from_env(1000).min(64);
    for seed in 1..=n {
        run_green(&SimConfig::lossy_wires(seed));
    }
}

/// Per-message signaling under a mid-handshake crash: attach handshakes
/// run message-by-message, the kill lands inside the handshake window,
/// and one subscriber abandons its attach entirely. The in-run oracles
/// (`stuck_procedure`, `proc_accounting`, `sig_conservation`) are the
/// assertions; across the sweep some schedules must also finish attaches
/// despite the kill, or the scenario isn't exercising anything.
#[test]
fn schedule_matrix_kill_mid_attach_green() {
    let n = schedules_from_env(1000).min(64);
    let mut attached_any = false;
    for seed in 1..=n {
        let r = run_green(&SimConfig::kill_mid_attach(seed));
        if r.users_live > 8 {
            attached_any = true; // more users than the 8 synthetic ones
        }
    }
    assert!(attached_any, "no schedule completed a signaling attach");
}

/// Intra-node migrations colliding with in-flight S1 handovers: the
/// migration drops the procedure machine, the handover must abort
/// cleanly and the UE retries — no stuck procedure, exact accounting.
#[test]
fn schedule_matrix_migrate_mid_handover_green() {
    let n = schedules_from_env(1000).min(64);
    for seed in 1..=n {
        run_green(&SimConfig::migrate_mid_handover(seed));
    }
}

/// A synchronized attach wave against an admission-controlled control
/// plane: the in-run oracles (`no_livelock`, `sig_conservation`,
/// `proc_accounting`, `stuck_procedure`) are the assertions. Across the
/// sweep the storm must both shed (admission is engaging) and land some
/// attaches (shedding is not a blackout), and steady-state data must
/// keep forwarding on every schedule.
#[test]
fn schedule_matrix_attach_storm_green() {
    let n = schedules_from_env(1000).min(64);
    let (mut shed_any, mut stormed_any) = (false, false);
    for seed in 1..=n {
        let r = run_green(&SimConfig::attach_storm(seed));
        assert!(r.forwarded > 0, "seed {seed}: storm starved the data path");
        if r.shed > 0 {
            shed_any = true;
        }
        if r.users_live > 16 {
            stormed_any = true; // beyond the 12 synthetic + 4 sig users
        }
    }
    assert!(shed_any, "admission control never shed across {n} storm schedules");
    assert!(stormed_any, "no storm device ever completed an attach");
}

/// The storm plus a mid-wave node kill: failover, supervision expiry,
/// and shedding interleave under schedule exploration.
#[test]
fn schedule_matrix_storm_kill_green() {
    let n = schedules_from_env(1000).min(64);
    let mut failed_over = false;
    for seed in 1..=n {
        let r = run_green(&SimConfig::storm_kill(seed));
        if r.failovers > 0 {
            failed_over = true;
        }
    }
    assert!(failed_over, "kill never fired across {n} storm schedules");
}

/// Capacity ramp: a mass-attach wave drives the UE tables through
/// several incremental-growth rounds while a node kill lands mid-ramp,
/// so adoption and re-attach churn hit tables that are still migrating
/// buckets. The existing single-owner / conservation / accounting
/// oracles are the assertions; across the sweep the ramp must actually
/// land users past the synthetic population on some schedules.
#[test]
fn schedule_matrix_mass_attach_ramp_green() {
    let n = schedules_from_env(1000).min(64);
    let mut ramped_any = false;
    for seed in 1..=n {
        let r = run_green(&SimConfig::mass_attach_ramp(seed));
        if r.users_live > 48 {
            ramped_any = true; // beyond the synthetic population
        }
    }
    assert!(ramped_any, "no schedule grew past the synthetic population in {n} ramps");
}

/// The idle/paging cycle under schedule exploration: subscribers attach,
/// release to idle, get paged when downlink arrives, and wake with a
/// Service Request — while one deliberate page-ignorer forces the
/// retransmit-to-expiry path. The in-run oracles (`stuck_idle`,
/// `paging_accounting`, `sig_conservation`, `conservation`) are the
/// assertions; across the sweep pages must actually fire, some must
/// resolve (wake-ups work), and some must expire (the ignorer's
/// retransmissions escalate), or the scenario exercises nothing.
#[test]
fn schedule_matrix_idle_wakeup_storm_green() {
    let n = schedules_from_env(1000).min(64);
    let (mut paged_any, mut resolved_any, mut expired_any) = (false, false, false);
    for seed in 1..=n {
        let r = run_green(&SimConfig::idle_wakeup_storm(seed));
        assert!(r.forwarded > 0, "seed {seed}: no data forwarded");
        paged_any |= r.paged > 0;
        resolved_any |= r.paging_resolved > 0;
        expired_any |= r.paging_expired > 0;
    }
    assert!(paged_any, "no schedule ever paged across {n} runs");
    assert!(resolved_any, "no page was ever answered across {n} runs");
    assert!(expired_any, "no page ever expired across {n} runs (ignorer inert)");
}

/// The idle cycle with a node kill landing inside the paging window:
/// in-flight pages and buffered downlink die with the node, survivors
/// keep paging, and no live node may strand a suspended UE.
#[test]
fn schedule_matrix_kill_mid_paging_green() {
    let n = schedules_from_env(1000).min(64);
    let (mut paged_any, mut failed_over) = (false, false);
    for seed in 1..=n {
        let r = run_green(&SimConfig::kill_mid_paging(seed));
        paged_any |= r.paged > 0;
        failed_over |= r.failovers > 0;
    }
    assert!(paged_any, "no schedule ever paged across {n} runs");
    assert!(failed_over, "kill never fired across {n} runs");
}

/// The storm with a replication-wire partition opening mid-wave.
#[test]
fn schedule_matrix_storm_partition_green() {
    let n = schedules_from_env(1000).min(64);
    for seed in 1..=n {
        run_green(&SimConfig::storm_partition(seed));
    }
}

/// Cross-PR determinism anchor: the event-only scenarios must produce
/// these exact digests (captured before the procedure-state-machine
/// refactor). A mismatch means a code change altered scheduling, rng
/// consumption, or observable state for runs that don't opt into the
/// signaling path — the "same-seed runs stay byte-identical" guarantee.
#[test]
fn legacy_scenario_digests_are_stable_across_refactors() {
    #[allow(clippy::type_complexity)]
    let cases: &[(&str, fn(u64) -> SimConfig, &[(u64, u64)])] = &[
        (
            "two_node_failover",
            SimConfig::two_node_failover,
            &[(1, 0xdd017362e186fbeb), (7, 0x85b97be4930d0c31), (42, 0x8584c56f4349b602), (1234, 0x895ab9ca26e48336)],
        ),
        (
            "partition_heal",
            SimConfig::partition_heal,
            &[(1, 0x29d6cbd155fa653d), (7, 0x6a5c1b8e2a8badfe), (42, 0x7e5d8a409a9c2a3a), (1234, 0xba9a0eb4a2eb47bb)],
        ),
        (
            "lossy_wires",
            SimConfig::lossy_wires,
            &[(1, 0xb83f7d4ff652d029), (7, 0x0f38011b50df048c), (42, 0x547e5a80e3886fa5), (1234, 0x38d2425cd4d3e417)],
        ),
    ];
    for (name, mk, golden) in cases {
        for &(seed, want) in *golden {
            let got = run(&mk(seed)).digest;
            assert_eq!(got, want, "{name} seed {seed}: digest {got:#018x} != golden {want:#018x}");
        }
    }
}

#[test]
fn same_seed_reproduces_identical_trace() {
    for seed in [1, 7, 42, 1234, 0xDEAD_BEEF] {
        let cfg = SimConfig::two_node_failover(seed);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.schedule, b.schedule, "seed {seed}: schedules diverged");
        assert_eq!(a.digest, b.digest, "seed {seed}: digests diverged");
        assert_eq!(a.failovers, b.failovers);
        assert_eq!(a.forwarded, b.forwarded);
    }
}

#[test]
fn different_seeds_explore_different_schedules() {
    // Not a correctness requirement per se, but if every seed produced
    // the same interleaving the "exploration" would be vacuous.
    let digests: std::collections::HashSet<u64> =
        (1..=16).map(|s| run(&SimConfig::two_node_failover(s)).digest).collect();
    assert!(digests.len() > 8, "only {} distinct digests from 16 seeds", digests.len());
}

#[test]
fn replaying_a_recorded_schedule_matches_the_run() {
    let cfg = SimConfig::two_node_failover(11);
    let live = run(&cfg);
    let re = replay(&cfg, &live.schedule);
    assert_eq!(re.digest, live.digest, "replay digest diverged from live run");
    assert_eq!(re.failure, live.failure);
    assert_eq!(re.forwarded, live.forwarded);
}

/// The full capture → shrink → replay pipeline, driven by an injected
/// single-owner violation (a failover controller double-adopting an
/// IMSI). Proves the oracles catch real bug classes and the artifact a
/// CI failure uploads is genuinely replayable.
#[test]
fn injected_violation_yields_shrunk_replayable_trace() {
    let mut failing = None;
    for seed in 1..=50 {
        let mut cfg = SimConfig::two_node_failover(seed);
        cfg.bug = BugKind::DoubleAdopt;
        let r = run(&cfg);
        if let Some(f) = r.failure.clone() {
            failing = Some((cfg, r.schedule, f));
            break;
        }
    }
    let (cfg, schedule, failure) = failing.expect("DoubleAdopt never tripped dup_imsi in 50 seeds");
    assert_eq!(failure.oracle, "dup_imsi", "unexpected oracle: {failure:?}");

    // Shrink: strictly smaller, still failing the same oracle.
    let shrunk = shrink(&cfg, &schedule, &failure.oracle);
    assert!(shrunk.len() < schedule.len(), "shrink removed nothing ({} steps)", schedule.len());
    let re = replay(&cfg, &shrunk);
    let f2 = re.failure.expect("shrunk schedule no longer fails");
    assert_eq!(f2.oracle, "dup_imsi");

    // Capture to a trace file and replay from disk.
    let dir = std::env::temp_dir().join(format!("pepc-sim-trace-{}", std::process::id()));
    let t = Trace::new(cfg, shrunk, f2);
    let path = t.save(Some(&dir)).expect("trace saves");
    let loaded = Trace::load(&path).expect("trace loads");
    assert_eq!(loaded, t, "trace did not survive a save/load roundtrip");
    let from_disk = replay_trace(&loaded);
    assert_eq!(
        from_disk.failure.as_ref().map(|f| f.oracle.as_str()),
        Some("dup_imsi"),
        "trace loaded from disk no longer reproduces"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same pipeline for the procedure-supervision bug class: disable the
/// supervision timer while a subscriber abandons its attach mid-flight.
/// The `stuck_procedure` oracle must fire, and the failure must shrink
/// and replay from disk like any other.
#[test]
fn stuck_procedure_violation_yields_shrunk_replayable_trace() {
    let mut failing = None;
    for seed in 1..=50 {
        let mut cfg = SimConfig::kill_mid_attach(seed);
        cfg.chaos.clear(); // keep every node alive so the oracle sweeps the stuck machine
        cfg.bug = BugKind::StuckProcedure;
        let r = run(&cfg);
        if let Some(f) = r.failure.clone() {
            failing = Some((cfg, r.schedule, f));
            break;
        }
    }
    let (cfg, schedule, failure) = failing.expect("StuckProcedure never tripped the oracle in 50 seeds");
    assert_eq!(failure.oracle, "stuck_procedure", "unexpected oracle: {failure:?}");

    let shrunk = shrink(&cfg, &schedule, &failure.oracle);
    assert!(shrunk.len() < schedule.len(), "shrink removed nothing ({} steps)", schedule.len());
    let re = replay(&cfg, &shrunk);
    let f2 = re.failure.expect("shrunk schedule no longer fails");
    assert_eq!(f2.oracle, "stuck_procedure");

    let dir = std::env::temp_dir().join(format!("pepc-sim-stuck-{}", std::process::id()));
    let t = Trace::new(cfg, shrunk, f2);
    let path = t.save(Some(&dir)).expect("trace saves");
    let loaded = Trace::load(&path).expect("trace loads");
    let from_disk = replay_trace(&loaded);
    assert_eq!(from_disk.failure.as_ref().map(|f| f.oracle.as_str()), Some("stuck_procedure"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression guard for the adoption-vs-migration race: kills become
/// eligible at the same ticks migrations are in flight, and the
/// scheduler is free to interleave the kill anywhere between a
/// migration's eviction and the standby's adoption sweep. The single
/// `dup_imsi` oracle inside `run` is the assertion; here we also pin
/// that post-failover ownership is consistent (every surviving user on
/// exactly one live node — already oracle-checked — and that at least
/// some schedules adopt users at all).
#[test]
fn kill_racing_migration_never_double_adopts() {
    let mut adopted_any = false;
    for seed in 1..=64 {
        let r = run_green(&SimConfig::two_node_failover(seed));
        if r.failovers > 0 && r.users_live > 0 {
            adopted_any = true;
        }
    }
    assert!(adopted_any, "no schedule completed a failover with surviving users");
}

#[test]
fn trace_version_gate_rejects_future_traces() {
    let cfg = SimConfig::two_node_failover(3);
    let r = run(&cfg);
    let t = Trace::new(cfg, r.schedule, pepc_sim::Failure { oracle: "x".into(), step: 0, message: String::new() });
    let mut json = t.to_json();
    json = json.replacen("\"version\":1", "\"version\":999", 1);
    let err = Trace::from_json(&json).unwrap_err();
    assert!(err.contains("999"), "version error should name the bad version: {err}");
}
