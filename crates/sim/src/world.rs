//! The simulated world: a multi-node [`HaCluster`] on virtual time, a
//! deterministic eNodeB workload derived from the seed, and the chaos
//! command interpreter. [`SimWorld::apply`] is the single entry point —
//! every schedule step, whether freshly picked by the scheduler or read
//! back from a trace, goes through it.
//!
//! Every action is a *guarded* operation: on a weird state (unknown
//! user, dead node, already-killed node, out-of-range index) it degrades
//! to a no-op instead of panicking. The shrinker depends on this —
//! deleting arbitrary subsequences of a failing schedule must always
//! yield a runnable schedule.

use crate::config::{BugKind, ChaosCmd, ChaosKind, SimConfig};
use crate::{Action, ActionKind};
use pepc::config::{BatchingConfig, OverloadConfig};
use pepc::ctrl::CtrlEvent;
use pepc::{EpcConfig, SliceConfig};
use pepc_fabric::VirtualClock;
use pepc_ha::{HaCluster, HaConfig};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Virtual nanoseconds per simulated tick (1 ms, matching the HA layer's
/// reading of ticks as heartbeat intervals).
pub const TICK_NS: u64 = 1_000_000;

/// IMSI range for signaling-emulated subscribers (disjoint from the
/// synthetic-event range so the two workloads never collide).
pub const SIG_IMSI_BASE: u64 = 404_02_000_000;

/// IMSI range for storm-wave subscribers (disjoint from both ranges
/// above).
pub const STORM_IMSI_BASE: u64 = 404_03_000_000;

/// The admission policy storm scenarios install on every slice: a tight
/// per-eNodeB bucket (all emulated UEs share one ECGI) plus a small
/// in-flight ceiling, so a 24-device wave is mostly shed and drains over
/// subsequent refill ticks. The `no_livelock` oracle derives its
/// in-flight bound from this.
pub(crate) fn storm_overload_config() -> OverloadConfig {
    OverloadConfig { enabled: true, enb_rate_per_tick: 1, enb_burst: 2, max_in_flight: 4, backoff_ms: 5 }
}

/// One eNodeB workload operation, generated from the seed.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    /// Attach the subscriber on its home node (skipped if already
    /// attached or the home node is down).
    Attach(u64),
    /// Establish the downlink bearer (S1 handover to an eNodeB TEID).
    Bearer(u64),
    /// Send one data packet; `uplink` selects GTP-U ingress vs plain IP
    /// egress. Uses the identifiers the eNodeB cached at attach time —
    /// exactly what a real eNodeB keeps sending during a blackout.
    Data { imsi: u64, uplink: bool },
    /// Migrate the subscriber to the next slice on its current node.
    Migrate(u64),
    /// Detach the subscriber.
    Detach(u64),
    /// Advance the subscriber's eNodeB signaling emulator by one S1AP
    /// message (full per-message attach handshake, optionally an S1
    /// handover). No-op while the subscriber's serving node is down.
    Sig(u64),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub at_tick: u64,
    pub kind: OpKind,
}

/// Client-side state of one emulated eNodeB/UE signaling session. The
/// emulator is deliberately dumb: each `Sig` op sends exactly the message
/// its stage calls for, advancing only on the expected response — so a
/// lost reply means the next op *retransmits*, exercising the control
/// plane's dedup path, and a reject resets the session to a fresh attach.
#[derive(Debug, Clone, Copy)]
struct EnbUe {
    enb_ue_id: u32,
    /// 0 send-attach, 1 send-auth-rsp, 2 send-smc-complete, 3 send-ics-rsp,
    /// 4 send-attach-complete, 5 attached, 6 ho-ack-pending, 7 done,
    /// 8 idle (released; answers a page with a Service Request),
    /// 9 re-activated after a page.
    stage: u8,
    mme_ue_id: u32,
    /// RAND from the authentication challenge (for computing RES).
    rand: u64,
    /// Abandons after the first message — the stuck-procedure seed.
    abandoner: bool,
    /// GUTI from the Attach Accept (how a page is addressed to us).
    guti: u64,
    /// Runs the idle cycle: release after attaching, wake on a page.
    idler: bool,
    /// Released but never answers pages — the retransmit-to-expiry seed.
    page_ignorer: bool,
}

/// FNV-1a fold; the digest is the determinism witness two runs compare.
fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The simulated cluster plus everything the oracles track about it.
pub struct SimWorld {
    pub(crate) ha: HaCluster,
    pub(crate) cfg: SimConfig,
    clock: VirtualClock,
    ops: Vec<Op>,
    /// eNodeB-side cache of (gw_teid, ue_ip) per IMSI, filled at attach.
    keys: HashMap<u64, (u32, u32)>,
    /// Per-subscriber signaling emulators (only for `cfg.sig_users`).
    enbs: HashMap<u64, EnbUe>,
    /// GUTIs the network has paged (from pumped `S1apPdu::Paging`); an
    /// idle emulator answers with a Service Request on its next step.
    paged_gutis: std::collections::HashSet<u64>,
    /// Steps applied so far.
    pub(crate) step: u64,
    /// Rolling FNV digest over every applied action and the observable
    /// state it produced.
    pub(crate) digest: u64,
    /// Data packets the world observed as forwarded.
    pub(crate) forwarded: u64,
}

impl SimWorld {
    pub fn new(cfg: SimConfig) -> Self {
        assert!((2..=8).contains(&cfg.nodes), "2..=8 nodes (a kill needs a survivor)");
        let template = EpcConfig {
            slices: 2,
            slice: SliceConfig {
                batching: BatchingConfig { sync_every_packets: 1 },
                expected_users: 64,
                update_ring_capacity: 1024,
                overload: if cfg.overload { storm_overload_config() } else { OverloadConfig::default() },
                ..SliceConfig::default()
            },
            // Small prime: thousands of clusters get built per sweep,
            // and a 16-user scenario doesn't need a 65537-slot spread.
            lb_table_size: 251,
            ..EpcConfig::default()
        };
        // BugKind::StuckProcedure models a supervision timer that never
        // fires: the HA layer gets timeout 0 while the oracle still
        // expects reaping within the configured bound.
        let timeout = if cfg.bug == BugKind::StuckProcedure { 0 } else { cfg.procedure_timeout };
        let ha_cfg = HaConfig {
            counter_interval: cfg.counter_interval,
            procedure_timeout_ticks: timeout,
            ..HaConfig::default()
        };
        // Full-path signaling needs HSS/PCRF backends; event-only runs
        // skip them so pre-signaling digests stay byte-identical.
        let backends = if cfg.sig_users > 0 || cfg.storm_users > 0 {
            let hss = std::sync::Arc::new(pepc_backend::Hss::new());
            hss.provision_range(SIG_IMSI_BASE, u64::from(cfg.sig_users), 100_000);
            if cfg.storm_users > 0 {
                hss.provision_range(STORM_IMSI_BASE, u64::from(cfg.storm_users), 200_000);
            }
            Some((hss, std::sync::Arc::new(pepc_backend::Pcrf::with_standard_rules())))
        } else {
            None
        };
        let mut ha = HaCluster::with_backends(cfg.nodes as usize, template, ha_cfg, backends);
        let clock = VirtualClock::new();
        ha.set_clock(clock.clock());
        let ops = Self::generate_ops(&cfg);
        let mut enbs = HashMap::new();
        for u in 0..u64::from(cfg.sig_users) {
            let abandoner = cfg.procedure_timeout > 0 && cfg.sig_users > 1 && u == u64::from(cfg.sig_users) - 1;
            let idler = !abandoner && u < u64::from(cfg.idle_users);
            let page_ignorer = idler && cfg.idle_users > 1 && u == u64::from(cfg.idle_users) - 1;
            enbs.insert(
                SIG_IMSI_BASE + u,
                EnbUe {
                    enb_ue_id: 0x5000 + u as u32,
                    stage: 0,
                    mme_ue_id: 0,
                    rand: 0,
                    abandoner,
                    guti: 0,
                    idler,
                    page_ignorer,
                },
            );
        }
        for u in 0..u64::from(cfg.storm_users) {
            enbs.insert(
                STORM_IMSI_BASE + u,
                EnbUe {
                    enb_ue_id: 0x9000 + u as u32,
                    stage: 0,
                    mme_ue_id: 0,
                    rand: 0,
                    abandoner: false,
                    guti: 0,
                    idler: false,
                    page_ignorer: false,
                },
            );
        }
        SimWorld {
            ha,
            cfg,
            clock,
            ops,
            keys: HashMap::new(),
            enbs,
            paged_gutis: std::collections::HashSet::new(),
            step: 0,
            digest: 0xCBF2_9CE4_8422_2325,
            forwarded: 0,
        }
    }

    /// The deterministic eNodeB script: attaches early, bearers right
    /// after, then a mix of data, migrations, and a few detaches spread
    /// over the run. Sorted by eligibility tick (stable, so generation
    /// order breaks ties deterministically).
    fn generate_ops(cfg: &SimConfig) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0E5B_0D00_77AA_1CE5);
        let mut ops = Vec::new();
        let horizon = cfg.ticks.max(8);
        for u in 0..u64::from(cfg.users) {
            let imsi = 404_01_000_000 + u;
            let t = rng.gen_range(0..3u64);
            ops.push(Op { at_tick: t, kind: OpKind::Attach(imsi) });
            ops.push(Op { at_tick: t + 1, kind: OpKind::Bearer(imsi) });
        }
        for _ in 0..cfg.users * 4 {
            let imsi = 404_01_000_000 + rng.gen_range(0..u64::from(cfg.users));
            let at_tick = rng.gen_range(3..horizon - 1);
            let uplink = rng.gen_bool(0.5);
            ops.push(Op { at_tick, kind: OpKind::Data { imsi, uplink } });
        }
        for _ in 0..(cfg.users / 4).max(1) {
            let imsi = 404_01_000_000 + rng.gen_range(0..u64::from(cfg.users));
            ops.push(Op { at_tick: rng.gen_range(4..horizon - 2), kind: OpKind::Migrate(imsi) });
        }
        for _ in 0..(cfg.users / 8).max(1) {
            let imsi = 404_01_000_000 + rng.gen_range(0..u64::from(cfg.users));
            ops.push(Op { at_tick: rng.gen_range(horizon - 4..horizon - 1), kind: OpKind::Detach(imsi) });
        }
        // Signaling ops are generated AFTER every legacy draw so that
        // sig_users == 0 leaves the rng stream — and therefore the whole
        // schedule and digest — byte-identical with pre-signaling builds.
        if cfg.sig_users > 0 {
            // Enough steps to finish the handshake (5 messages, plus a
            // handover's 2) with headroom for retransmissions.
            let steps = if cfg.sig_handover { 12u64 } else { 9 };
            for u in 0..u64::from(cfg.sig_users) {
                let imsi = SIG_IMSI_BASE + u;
                let t = rng.gen_range(0..3u64);
                for j in 0..steps {
                    ops.push(Op { at_tick: (t + j * 3).min(horizon - 1), kind: OpKind::Sig(imsi) });
                }
            }
            if cfg.sig_handover {
                // Migrations aimed at the handover window, so the
                // scheduler can land one mid-HandoverWaitAck.
                for _ in 0..(cfg.sig_users / 2).max(1) {
                    let imsi = SIG_IMSI_BASE + rng.gen_range(0..u64::from(cfg.sig_users));
                    let lo = 14.min(horizon - 2);
                    ops.push(Op { at_tick: rng.gen_range(lo..horizon - 1), kind: OpKind::Migrate(imsi) });
                }
            }
        }
        // Storm ops come after every existing draw and consume no rng at
        // all: every storm device's first attempt lands at exactly
        // `storm_tick` (the synchronized wave), retries every 2 ticks.
        // `storm_users == 0` leaves the rng stream — and the schedule —
        // byte-identical with pre-storm builds.
        if cfg.storm_users > 0 {
            for u in 0..u64::from(cfg.storm_users) {
                let imsi = STORM_IMSI_BASE + u;
                for j in 0..10u64 {
                    ops.push(Op { at_tick: (cfg.storm_tick + j * 2).min(horizon - 1), kind: OpKind::Sig(imsi) });
                }
            }
        }
        // Idle-cycle ops also consume no rng (byte-identical runs when
        // `idle_users == 0`): extra signaling steps in the back half to
        // drive release and page answers, plus downlink aimed at the
        // (by then idle) subscriber so its buffer fills and pages fire.
        if cfg.idle_users > 0 {
            let mid = horizon / 2;
            for u in 0..u64::from(cfg.idle_users.min(cfg.sig_users)) {
                let imsi = SIG_IMSI_BASE + u;
                for j in 0..8u64 {
                    ops.push(Op { at_tick: (mid + j * 2).min(horizon - 1), kind: OpKind::Sig(imsi) });
                }
                for j in 0..3u64 {
                    ops.push(Op {
                        at_tick: (mid + 1 + j * 2).min(horizon - 1),
                        kind: OpKind::Data { imsi, uplink: false },
                    });
                }
            }
        }
        ops.sort_by_key(|o| o.at_tick);
        ops
    }

    pub(crate) fn op_count(&self) -> usize {
        self.ops.len()
    }

    pub(crate) fn op_tick(&self, i: usize) -> u64 {
        self.ops[i].at_tick
    }

    /// Current coordinator tick.
    pub fn now(&self) -> u64 {
        self.ha.now()
    }

    pub fn node_count(&self) -> usize {
        self.ha.cluster_ref().node_count()
    }

    /// Apply one schedule step. Never panics, whatever subsequence of a
    /// recorded schedule it is handed.
    pub fn apply(&mut self, a: Action) {
        self.step += 1;
        let n = self.node_count();
        match a.kind {
            ActionKind::Tick => {
                self.clock.advance_ns(TICK_NS);
                self.ha.advance_tick();
                // Gated on idle_users so pre-paging scenarios keep their
                // byte-identical digests (the pump flushes ctrl→data
                // updates, which would reorder observable state).
                if self.cfg.idle_users > 0 {
                    self.pump_paging();
                }
            }
            ActionKind::Emit => {
                if (a.arg as usize) < n {
                    self.ha.emit_periodic(a.arg as usize);
                }
            }
            ActionKind::Pump => {
                if (a.arg as usize) < n {
                    self.ha.pump_wire(a.arg as usize);
                }
            }
            ActionKind::Detect => self.ha.run_detector(),
            ActionKind::Workload => {
                if (a.arg as usize) < self.ops.len() {
                    let op = self.ops[a.arg as usize];
                    self.exec_op(op);
                }
            }
            ActionKind::Chaos => {
                if (a.arg as usize) < self.cfg.chaos.len() {
                    let cmd = self.cfg.chaos[a.arg as usize];
                    self.exec_chaos(cmd);
                }
            }
        }
        // Fold the action and the cheap observables into the digest.
        self.digest = fnv(self.digest, a.kind as u64);
        self.digest = fnv(self.digest, u64::from(a.arg));
        self.digest = fnv(self.digest, self.ha.now());
        self.digest = fnv(self.digest, self.ha.cluster_ref().user_count() as u64);
        self.digest = fnv(self.digest, self.ha.failovers().len() as u64);
        self.digest = fnv(self.digest, self.forwarded);
    }

    fn exec_op(&mut self, op: Op) {
        match op.kind {
            OpKind::Attach(imsi) => {
                if self.ha.owner_of(imsi).is_some() {
                    return;
                }
                let home = self.ha.cluster_ref().home_node(imsi);
                if self.ha.cluster_ref().is_dead(home) || self.ha.is_killed(home) {
                    return; // blackout: the attach is lost, as in life
                }
                let k = self.ha.attach(imsi);
                // Cache the identifiers the network handed back — the
                // eNodeB addresses data by these from now on.
                let node = self.ha.cluster().node(k);
                if let Some(s) = node.demux().slice_for_imsi(imsi) {
                    if let Some(ctx) = node.slice(s).ctrl.context_of(imsi) {
                        let c = ctx.ctrl_read();
                        self.keys.insert(imsi, (c.tunnels.gw_teid, c.ue_ip));
                    }
                }
            }
            OpKind::Bearer(imsi) => {
                let enb_teid = 0xE000 + (imsi & 0xFFF) as u32;
                self.ha.ctrl_event(CtrlEvent::S1Handover { imsi, new_enb_teid: enb_teid, new_enb_ip: 0xC0A8_0001 });
            }
            OpKind::Data { imsi, uplink } => {
                let Some(&(teid, ue_ip)) = self.keys.get(&imsi) else { return };
                let m = if uplink { Self::uplink(teid, ue_ip) } else { Self::downlink(ue_ip) };
                if self.ha.process(m).is_forward() {
                    self.forwarded += 1;
                }
            }
            OpKind::Migrate(imsi) => {
                let Some(k) = self.ha.owner_of(imsi) else { return };
                if self.ha.cluster_ref().is_dead(k) {
                    return;
                }
                let node = self.ha.cluster().node(k);
                let Some(cur) = node.demux().slice_for_imsi(imsi) else { return };
                let slices = node.slice_count();
                if slices < 2 {
                    return;
                }
                let target = (cur + 1) % slices;
                if node.migrate(imsi, target) {
                    node.take_migration_output();
                    if self.cfg.bug == BugKind::DoubleAdopt {
                        self.double_adopt(imsi, k);
                    }
                }
            }
            OpKind::Detach(imsi) => {
                self.ha.ctrl_event(CtrlEvent::Detach { imsi });
            }
            OpKind::Sig(imsi) => self.exec_sig(imsi),
        }
    }

    /// One emulator step: send the message the UE's stage calls for to
    /// its pinned node, parse the response, maybe advance. A down node
    /// means the message is lost (no state change — the next op
    /// retransmits, which the control plane answers from its dedup
    /// cache once the procedure is mid-flight).
    fn exec_sig(&mut self, imsi: u64) {
        use pepc_sigproto::nas::NasMsg;
        use pepc_sigproto::s1ap::S1apPdu;
        let Some(mut ue) = self.enbs.get(&imsi).copied() else { return };
        if ue.abandoner && ue.stage != 0 {
            return; // walked away mid-procedure; supervision must clean up
        }
        let k = self.ha.cluster_ref().home_node(imsi);
        if self.ha.is_killed(k) || self.ha.cluster_ref().is_dead(k) {
            return; // signaling lost in the blackout
        }
        let pdu = match ue.stage {
            0 => S1apPdu::InitialUeMessage {
                enb_ue_id: ue.enb_ue_id,
                ecgi: 0x300,
                tac: 7,
                nas: NasMsg::AttachRequest { imsi, ue_capability: 0xF0 }.encode(),
            },
            1 => {
                let res = pepc_backend::hss::sim_response(pepc_backend::Hss::key_for(imsi), ue.rand);
                S1apPdu::UplinkNasTransport {
                    enb_ue_id: ue.enb_ue_id,
                    mme_ue_id: ue.mme_ue_id,
                    nas: NasMsg::AuthenticationResponse { res }.encode(),
                }
            }
            2 => S1apPdu::UplinkNasTransport {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                nas: NasMsg::SecurityModeComplete.encode(),
            },
            3 => S1apPdu::InitialContextSetupResponse {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                enb_teid: 0xE000 + (imsi & 0xFFF) as u32,
                enb_ip: 0xC0A8_0002,
            },
            4 => S1apPdu::UplinkNasTransport {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                nas: NasMsg::AttachComplete.encode(),
            },
            5 if self.cfg.sig_handover => {
                S1apPdu::HandoverRequired { enb_ue_id: ue.enb_ue_id, mme_ue_id: ue.mme_ue_id, target_ecgi: 0x400 }
            }
            5 if ue.idler => {
                S1apPdu::UeContextReleaseRequest { enb_ue_id: ue.enb_ue_id, mme_ue_id: ue.mme_ue_id, cause: 0 }
            }
            6 => S1apPdu::HandoverRequestAck {
                mme_ue_id: ue.mme_ue_id,
                new_enb_teid: 0xF000 + (imsi & 0xFFF) as u32,
                new_enb_ip: 0xC0A8_0003,
            },
            8 => {
                // Idle: answer a page with a Service Request — unless
                // this UE is the deliberate page-ignorer, whose pages
                // must retransmit to expiry and drop the buffer.
                if ue.page_ignorer || !self.paged_gutis.contains(&ue.guti) {
                    return;
                }
                S1apPdu::InitialUeMessage {
                    enb_ue_id: ue.enb_ue_id,
                    ecgi: 0x300,
                    tac: 7,
                    nas: NasMsg::ServiceRequest { guti: ue.guti }.encode(),
                }
            }
            _ => return, // attached (no handover configured) or done
        };
        let rsp = self.ha.node_s1ap(k, &pdu);
        // ICS responses and AttachComplete are acknowledged silently;
        // advance those stages on delivery (the node was up).
        if ue.stage == 3 || ue.stage == 4 {
            ue.stage += 1;
            if ue.stage == 5 {
                self.cache_keys(imsi, k);
            }
        }
        for p in &rsp {
            match p {
                S1apPdu::DownlinkNasTransport { mme_ue_id, nas, .. } => match NasMsg::decode(nas) {
                    Ok(NasMsg::AuthenticationRequest { rand, .. }) if ue.stage == 0 => {
                        ue.rand = rand;
                        ue.mme_ue_id = *mme_ue_id;
                        ue.stage = 1;
                    }
                    Ok(NasMsg::SecurityModeCommand { .. }) if ue.stage == 1 => ue.stage = 2,
                    Ok(NasMsg::AttachReject { .. }) | Ok(NasMsg::AuthenticationReject { .. }) => {
                        ue.stage = 0; // start over with a fresh attach
                        ue.mme_ue_id = 0;
                    }
                    Ok(NasMsg::CongestionReject { .. }) => {
                        // Shed by admission control: keep the current
                        // stage so the next scheduled op retries the
                        // same message — the herd re-colliding.
                    }
                    Ok(NasMsg::ServiceAccept) if ue.stage == 8 => {
                        // The page is answered; the UE is active again
                        // and its buffered downlink has flushed.
                        ue.mme_ue_id = *mme_ue_id;
                        ue.stage = 9;
                    }
                    _ => {}
                },
                S1apPdu::InitialContextSetupRequest { mme_ue_id, nas, .. } if ue.stage == 2 => {
                    ue.mme_ue_id = *mme_ue_id;
                    // The Attach Accept rides in the ICS request; its
                    // GUTI is how a later page addresses this UE.
                    if let Ok(NasMsg::AttachAccept { guti, .. }) = NasMsg::decode(nas) {
                        ue.guti = guti;
                    }
                    ue.stage = 3;
                }
                S1apPdu::HandoverRequest { .. } if ue.stage == 5 => ue.stage = 6,
                S1apPdu::HandoverCommand { .. } if ue.stage == 6 => ue.stage = 7,
                S1apPdu::UeContextReleaseCommand { .. } if ue.stage == 5 && ue.idler => ue.stage = 8,
                _ => {}
            }
        }
        self.enbs.insert(imsi, ue);
    }

    /// Surface network-originated paging: drain buffered-downlink events
    /// into the control plane on every live node, collect the Paging (and
    /// retransmitted) PDUs toward the eNodeBs, and count woken downlink
    /// that flushed end-to-end. Idle runs only (see the Tick arm).
    fn pump_paging(&mut self) {
        let n = self.node_count();
        for k in 0..n {
            if self.ha.is_killed(k) || self.ha.cluster_ref().is_dead(k) {
                continue;
            }
            let node = self.ha.cluster().node(k);
            let pdus = node.pump_paging();
            let woken = node.take_woken();
            self.forwarded += woken.len() as u64;
            for p in pdus {
                if let pepc_sigproto::s1ap::S1apPdu::Paging { guti, .. } = p {
                    self.paged_gutis.insert(guti);
                }
            }
        }
    }

    /// Cache the network-assigned data-plane identifiers once the attach
    /// handshake finishes (what a real eNodeB keeps from the ICS request).
    fn cache_keys(&mut self, imsi: u64, k: usize) {
        let node = self.ha.cluster().node(k);
        if let Some(s) = node.demux().slice_for_imsi(imsi) {
            if let Some(ctx) = node.slice(s).ctrl.context_of(imsi) {
                let c = ctx.ctrl_read();
                self.keys.insert(imsi, (c.tunnels.gw_teid, c.ue_ip));
            }
        }
    }

    /// The injected defect: adopt `imsi` onto a second live node without
    /// removing it from `k` — the single-owner violation the `dup_imsi`
    /// oracle exists to catch.
    fn double_adopt(&mut self, imsi: u64, k: usize) {
        let n = self.node_count();
        let Some(other) = (0..n).find(|&t| t != k && !self.ha.cluster_ref().is_dead(t) && !self.ha.is_killed(t)) else {
            return;
        };
        let state = {
            let node = self.ha.cluster().node(k);
            let s = node.demux().slice_for_imsi(imsi);
            s.and_then(|s| node.slice(s).ctrl.context_of(imsi)).map(|ctx| (ctx.ctrl_read().clone(), ctx.counters()))
        };
        if let Some((ctrl, counters)) = state {
            self.ha.cluster().adopt_user(other, ctrl, counters);
        }
    }

    fn exec_chaos(&mut self, cmd: ChaosCmd) {
        let k = cmd.node as usize;
        if k >= self.node_count() {
            return;
        }
        match cmd.kind {
            ChaosKind::Kill => {
                if !self.ha.is_killed(k) && !self.ha.cluster_ref().is_dead(k) && self.ha.cluster_ref().live_count() > 1
                {
                    self.ha.kill_node(k);
                }
            }
            ChaosKind::Partition => self.ha.wire_mut(k).set_partitioned(true),
            ChaosKind::Heal => self.ha.wire_mut(k).set_partitioned(false),
            ChaosKind::Delay => {
                let mut spec = self.ha.wire_mut(k).fault_spec().clone();
                spec.delay_pumps = cmd.amount;
                self.ha.wire_mut(k).set_fault_spec(spec);
            }
            ChaosKind::Drop => {
                let mut spec = self.ha.wire_mut(k).fault_spec().clone();
                spec.drop_chance = f64::from(cmd.amount) / 1000.0;
                self.ha.wire_mut(k).set_fault_spec(spec);
            }
            ChaosKind::Duplicate => {
                let mut spec = self.ha.wire_mut(k).fault_spec().clone();
                spec.duplicate_chance = f64::from(cmd.amount) / 1000.0;
                self.ha.wire_mut(k).set_fault_spec(spec);
            }
        }
    }

    fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
        m
    }

    fn downlink(ue_ip: u32) -> Mbuf {
        let mut m = Mbuf::new();
        let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
        Ipv4Hdr::new(0x0808_0808, ue_ip, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
        m.extend(&hdr);
        m
    }
}
