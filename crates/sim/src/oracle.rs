//! Invariant oracles, checked after every applied step.
//!
//! * `conservation` — every packet offered to the cluster is accounted:
//!   `rx == forwarded + Σ drops` over all slices plus the balancer
//!   pseudo-slice (from `pepc-telemetry`).
//! * `staleness` — on every completed failover, the recovered counters
//!   are at most `counter_interval` ticks behind the dead node's last
//!   contact (only checked while wires are clean; see
//!   [`crate::SimConfig::check_staleness`]).
//! * `dup_imsi` — an IMSI is owned by at most one live node at any
//!   moment (the single-owner invariant adoption and migration must
//!   preserve).
//! * `seqlock` — per-user view/counter cell sequence numbers are even
//!   (no publish left half-finished across a step) and never move
//!   backwards while the context identity is unchanged.
//! * `stuck_procedure` — when procedure supervision is configured, no UE
//!   sits mid-procedure on a live node beyond `2 × timeout + 2` ticks
//!   (the timer must have reaped it).
//! * `proc_accounting` / `sig_conservation` — per slice, every started
//!   procedure resolves to exactly one outcome counter, and every S1AP
//!   PDU received is consumed, deduped, dropped, overflowed, shed, or
//!   parked in a mailbox.
//! * `no_livelock` — under storm scenarios: with admission control on,
//!   per-slice in-flight procedures never exceed the configured ceiling
//!   (bounded work), and at end of run the steady-state data path has
//!   forwarded at least one packet (the storm never starves goodput).
//! * `stuck_idle` — under idle/paging scenarios: no suspended UE on a
//!   live node holds buffered downlink past the paging cycle with no
//!   page in flight — every parked packet is eventually flushed by a
//!   wake or dropped by page expiry.
//! * `paging_accounting` — per slice, every page resolves to exactly one
//!   of resolved / expired / still in flight.

use crate::world::SimWorld;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An oracle violation: which invariant, at which step, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Failure {
    pub oracle: String,
    pub step: u64,
    pub message: String,
}

/// Per-context seqlock history (context identity, view seq, counter seq).
#[derive(Debug, Clone, Copy)]
struct SeqTrack {
    ptr: usize,
    view: u64,
    counters: u64,
}

/// Stateful oracle set; one per run.
#[derive(Default)]
pub struct Oracles {
    failovers_seen: usize,
    seq: HashMap<u64, SeqTrack>,
}

impl Oracles {
    pub fn new() -> Self {
        Self::default()
    }

    /// Check every invariant against the world after a step. Returns the
    /// first violation found.
    pub fn check(&mut self, w: &SimWorld) -> Option<Failure> {
        let step = w.step;
        let fail = |oracle: &str, message: String| Some(Failure { oracle: oracle.into(), step, message });

        // -- staleness: inspect failovers completed since the last check.
        let reports = w.ha.failovers();
        for r in &reports[self.failovers_seen..] {
            if w.cfg.check_staleness && r.max_counter_staleness > w.cfg.counter_interval {
                return fail(
                    "staleness",
                    format!(
                        "failover of node {} recovered counters {} ticks stale (bound {})",
                        r.node, r.max_counter_staleness, w.cfg.counter_interval
                    ),
                );
            }
        }
        self.failovers_seen = reports.len();

        // -- dup_imsi + seqlock: one sweep over every live node's users.
        let cluster = w.ha.cluster_ref();
        let mut owners: HashMap<u64, usize> = HashMap::new();
        for k in 0..cluster.node_count() {
            if cluster.is_dead(k) {
                continue;
            }
            let node = cluster.node_ref(k);

            // -- stuck_procedure: on a live node, the supervision timer
            // must reap any UE machine that stops making progress; age
            // beyond 2×timeout + 2 ticks means the timer never fired.
            if w.cfg.procedure_timeout > 0 {
                let bound = 2 * w.cfg.procedure_timeout + 2;
                if let Some((imsi, age)) = node.stuck_procedures(w.ha.now(), bound).first() {
                    return fail(
                        "stuck_procedure",
                        format!("imsi {imsi} stuck mid-procedure on node {k} for {age} ticks (bound {bound})"),
                    );
                }
            }

            // -- stuck_idle: on a live node, a suspended UE holding
            // buffered downlink with no page in flight must be flushed
            // (wake) or dropped (page expiry) within the paging cycle —
            // age beyond the bound means packets nothing will ever
            // deliver or account.
            if w.cfg.idle_users > 0 {
                use pepc::procedure::{PAGING_MAX_RETX, PAGING_RETX_TICKS};
                let bound_ticks =
                    2 * u64::from(PAGING_MAX_RETX + 1) * PAGING_RETX_TICKS + 2 * w.cfg.procedure_timeout + 4;
                let now_ns = w.ha.now() * crate::world::TICK_NS;
                if let Some((imsi, age_ns)) = node.stuck_idle(now_ns, bound_ticks * crate::world::TICK_NS).first() {
                    return fail(
                        "stuck_idle",
                        format!(
                            "imsi {imsi} suspended on node {k} with buffered downlink for {} ticks \
                             and no page in flight (bound {bound_ticks})",
                            age_ns / crate::world::TICK_NS
                        ),
                    );
                }
            }

            // -- procedure accounting: per slice, every started procedure
            // has exactly one outcome and every received S1AP PDU is
            // attributed (consumed / deduped / dropped / parked).
            for s in 0..node.slice_count() {
                let ctrl = &node.slice_ref(s).ctrl;
                let m = ctrl.metrics();
                if !m.procedure_accounting_holds(ctrl.procedures_in_flight()) {
                    return fail(
                        "proc_accounting",
                        format!(
                            "node {k} slice {s}: started {} != completed {} + preempted {} + aborted {} + expired {} + in-flight {}",
                            m.proc_started,
                            m.proc_completed,
                            m.proc_preempted,
                            m.proc_aborted,
                            m.proc_expired,
                            ctrl.procedures_in_flight()
                        ),
                    );
                }
                if !m.paging_accounting_holds(ctrl.paging_in_flight()) {
                    return fail(
                        "paging_accounting",
                        format!(
                            "node {k} slice {s}: paged {} != resolved {} + expired {} + in-flight {}",
                            m.paged,
                            m.paging_resolved,
                            m.paging_expired,
                            ctrl.paging_in_flight()
                        ),
                    );
                }
                if !m.signaling_conservation_holds(ctrl.mailbox_backlog()) {
                    return fail(
                        "sig_conservation",
                        format!(
                            "node {k} slice {s}: s1ap_rx {} != consumed {} + deduped {} + dropped {} + overflow {} + shed {} + backlog {}",
                            m.s1ap_rx,
                            m.sig_consumed,
                            m.proc_deduped,
                            m.sig_dropped,
                            m.sig_overflow,
                            m.sig_shed_total(),
                            ctrl.mailbox_backlog()
                        ),
                    );
                }
                // -- no_livelock (bounded work): with admission control
                // on, the in-flight ceiling must actually hold — a storm
                // can never queue unbounded procedure work (handover's
                // 2× headroom is the largest admissible excess).
                if w.cfg.storm_users > 0 && w.cfg.overload {
                    let bound = 2 * u64::from(crate::world::storm_overload_config().max_in_flight);
                    let in_flight = ctrl.procedures_in_flight();
                    if in_flight > bound {
                        return fail(
                            "no_livelock",
                            format!("node {k} slice {s}: {in_flight} procedures in flight mid-storm (ceiling {bound})"),
                        );
                    }
                }
            }
            for s in 0..node.slice_count() {
                let slice = node.slice_ref(s);
                for imsi in slice.ctrl.imsis() {
                    if let Some(prev) = owners.insert(imsi, k) {
                        return fail(
                            "dup_imsi",
                            format!("imsi {imsi} live on node {prev} and node {k} simultaneously"),
                        );
                    }
                    let Some(ctx) = slice.ctrl.context_of(imsi) else { continue };
                    // Identity = the slot's address: unique across slabs
                    // (handle bits are not — slot 0/gen 1 recurs on every
                    // node), stable for the slot's lifetime, and seqlock
                    // versions are monotonic per slot even across
                    // free/realloc since re-init goes through the
                    // publishing write guards.
                    let ptr = std::ptr::from_ref(ctx.context()) as usize;
                    let view = ctx.view_version();
                    let counters = ctx.counters_version();
                    if view % 2 != 0 || counters % 2 != 0 {
                        return fail(
                            "seqlock",
                            format!("imsi {imsi}: odd seq between steps (view={view} counters={counters})"),
                        );
                    }
                    match self.seq.get(&imsi) {
                        Some(t) if t.ptr == ptr && (view < t.view || counters < t.counters) => {
                            return fail(
                                "seqlock",
                                format!(
                                    "imsi {imsi}: sequence went backwards (view {}→{view}, counters {}→{counters})",
                                    t.view, t.counters
                                ),
                            );
                        }
                        _ => {}
                    }
                    self.seq.insert(imsi, SeqTrack { ptr, view, counters });
                }
            }
        }

        // -- conservation: the full telemetry identity. Snapshotting
        // clones every histogram, so this runs on a stride (counters
        // only grow — a broken identity stays broken, it is just
        // reported up to `CONSERVATION_STRIDE - 1` steps late);
        // [`Oracles::check_final`] closes the run with an exact check.
        if w.step.is_multiple_of(CONSERVATION_STRIDE) {
            if let Some(f) = Self::check_conservation(w) {
                return Some(f);
            }
        }
        None
    }

    /// End-of-run check of the stride-sampled invariants.
    pub fn check_final(&mut self, w: &SimWorld) -> Option<Failure> {
        // -- no_livelock (progress): a storm must never starve the
        // steady-state data path outright — shedding exists precisely so
        // well-behaved traffic keeps flowing.
        if w.cfg.storm_users > 0 && w.forwarded == 0 {
            return Some(Failure {
                oracle: "no_livelock".into(),
                step: w.step,
                message: "storm starved steady-state data: 0 packets forwarded end-to-end".into(),
            });
        }
        Self::check_conservation(w)
    }

    fn check_conservation(w: &SimWorld) -> Option<Failure> {
        let snap = w.ha.metrics_snapshot();
        if !snap.conservation_holds() {
            let t = snap.data_totals();
            return Some(Failure {
                oracle: "conservation".into(),
                step: w.step,
                message: format!(
                    "rx {} != forwarded {} + drops {}",
                    t.rx,
                    t.forwarded,
                    t.rx.saturating_sub(t.forwarded)
                ),
            });
        }
        None
    }
}

/// Steps between full conservation snapshots.
const CONSERVATION_STRIDE: u64 = 4;
