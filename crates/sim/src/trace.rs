//! Failing-schedule capture, replay, and greedy shrinking.
//!
//! A trace file is self-contained JSON: the [`SimConfig`] (workload and
//! scenario are both derived from it) plus the exact action sequence and
//! the violation it produced. `simctl replay <file>` — or
//! [`replay_trace`] — reproduces the failure deterministically on any
//! machine.
//!
//! Shrinking is greedy delta-debugging: repeatedly try deleting chunks
//! (halves, then quarters, … then single steps) and keep a deletion iff
//! the candidate still fails the *same oracle*. Guarded no-op semantics
//! in [`crate::SimWorld::apply`] guarantee every candidate is runnable.

use crate::config::SimConfig;
use crate::oracle::Failure;
use crate::sched::{replay, RunResult};
use crate::Action;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

pub const TRACE_VERSION: u32 = 1;

/// A replayable failure record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub version: u32,
    pub config: SimConfig,
    pub schedule: Vec<Action>,
    pub failure: Failure,
}

impl Trace {
    pub fn new(config: SimConfig, schedule: Vec<Action>, failure: Failure) -> Self {
        Trace { version: TRACE_VERSION, config, schedule, failure }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        let t: Trace = serde_json::from_str(s).map_err(|e| format!("{e:?}"))?;
        if t.version != TRACE_VERSION {
            return Err(format!("trace version {} != supported {}", t.version, TRACE_VERSION));
        }
        Ok(t)
    }

    /// Write to `dir` (default: `SIM_TRACE_DIR`, else `target/sim-traces`)
    /// as `trace-seed<seed>-<len>.json`. Returns the path.
    pub fn save(&self, dir: Option<&Path>) -> std::io::Result<PathBuf> {
        let dir = match dir {
            Some(d) => d.to_path_buf(),
            None => std::env::var_os("SIM_TRACE_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target/sim-traces")),
        };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("trace-seed{}-{}.json", self.config.seed, self.schedule.len()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    pub fn load(path: &Path) -> Result<Self, String> {
        let s = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&s)
    }
}

/// Replay a trace and report whether it still fails as recorded.
pub fn replay_trace(t: &Trace) -> RunResult {
    replay(&t.config, &t.schedule)
}

/// Greedy ddmin-style shrink: the returned schedule is 1-minimal with
/// respect to single-step deletion (removing any one remaining step no
/// longer triggers the same oracle).
pub fn shrink(cfg: &SimConfig, schedule: &[Action], oracle: &str) -> Vec<Action> {
    let still_fails = |s: &[Action]| replay(cfg, s).failure.is_some_and(|f| f.oracle == oracle);
    let mut cur = schedule.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut cand = Vec::with_capacity(cur.len().saturating_sub(chunk));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[(i + chunk).min(cur.len())..]);
            if still_fails(&cand) {
                cur = cand; // deletion kept; retry the same position
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}
