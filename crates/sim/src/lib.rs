//! # pepc-sim — deterministic cluster simulation
//!
//! The paper's hardest claims are concurrency claims: single-writer
//! state sharing (§4.1), migration with bounded loss, failover with
//! bounded counter staleness. Real-thread tests check them under
//! whatever interleavings the host scheduler happens to produce; this
//! crate checks them under interleavings *we* choose.
//!
//! A simulated run is single-threaded discrete-event execution on
//! virtual time:
//!
//! * **virtual clock** — every component that would read `Instant`
//!   (slice timestamps, QoS refill, wire shaping, rate meters) reads a
//!   [`pepc_fabric::VirtualClock`] instead, advanced only by the
//!   scheduler. A run consumes zero wall time and two runs with one seed
//!   observe byte-identical timestamps.
//! * **seeded scheduler** ([`sched`]) — per-node replication emit, wire
//!   pump, failure detection, eNodeB workload events, and chaos commands
//!   are all individually schedulable steps; a seeded RNG picks the next
//!   one. Same seed, byte-identical schedule and state digest.
//! * **fault scenarios** ([`config`]) — kill, partition/heal, and
//!   per-wire delay/drop/duplicate commands keyed on ticks, layered on
//!   the fabric's [`FaultSpec`](pepc_fabric::FaultSpec).
//! * **oracles** ([`oracle`]) — packet conservation, replication
//!   staleness, single-owner IMSIs, and seqlock sequence sanity, checked
//!   after every step.
//! * **traces** ([`trace`]) — a failing schedule is captured to a JSON
//!   file, replayable exactly, and greedily shrunk to a minimal
//!   reproducer (`simctl replay` / `simctl shrink`).
//!
//! ```
//! use pepc_sim::{run, SimConfig};
//! let a = run(&SimConfig::two_node_failover(7));
//! let b = run(&SimConfig::two_node_failover(7));
//! assert!(a.failure.is_none());
//! assert_eq!((a.schedule, a.digest), (b.schedule, b.digest));
//! ```

// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

pub mod action;
pub mod config;
pub mod oracle;
pub mod sched;
pub mod trace;
pub mod world;

pub use action::{Action, ActionKind};
pub use config::{BugKind, ChaosCmd, ChaosKind, SimConfig};
pub use oracle::{Failure, Oracles};
pub use sched::{replay, run, RunResult};
pub use trace::{replay_trace, shrink, Trace, TRACE_VERSION};
pub use world::{SimWorld, TICK_NS};

/// Number of schedules to explore, from the `SIM_SCHEDULES` environment
/// variable (CI soak knob), defaulting to `default`.
pub fn schedules_from_env(default: u64) -> u64 {
    std::env::var("SIM_SCHEDULES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
