//! The schedule alphabet: every step the simulator can take is one
//! [`Action`], and a full run is nothing but the sequence of actions the
//! seeded scheduler picked. Traces serialize this sequence, replay
//! re-applies it verbatim, and shrinking deletes subsequences of it.
//!
//! The serde shim only derives unit-variant enums, so an action is a
//! `(kind, arg)` pair rather than an enum with payloads: `arg` is the
//! node index for `Emit`/`Pump`, the workload-op index for `Workload`,
//! and the chaos-command index for `Chaos` (indices stay stable when the
//! shrinker deletes *other* actions, which is what makes shrunk traces
//! replayable).

use serde::{Deserialize, Serialize};

/// What one scheduler step does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Advance the virtual clock and the coordinator's logical tick.
    Tick,
    /// Node `arg` emits its periodic replication (dirty snapshots,
    /// counter deltas on the interval, heartbeat).
    Emit,
    /// Pump node `arg`'s replication wire into the standby.
    Pump,
    /// Advance the failure detector (and fail over anything it declares
    /// dead).
    Detect,
    /// Execute eNodeB workload op `arg` (attach / bearer / data packet /
    /// migration / detach — derived deterministically from the seed).
    Workload,
    /// Execute scenario chaos command `arg` (kill / partition / heal /
    /// wire-fault change).
    Chaos,
}

/// One schedule step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    pub kind: ActionKind,
    pub arg: u32,
}

impl Action {
    pub fn new(kind: ActionKind, arg: u32) -> Self {
        Action { kind, arg }
    }

    pub fn tick() -> Self {
        Action::new(ActionKind::Tick, 0)
    }
}
