//! Command-line front end for the deterministic simulator.
//!
//! ```text
//! simctl run <seed> [--scenario two_node_failover|partition_heal|lossy_wires
//!                                |kill_mid_attach|migrate_mid_handover
//!                                |attach_storm|storm_kill|storm_partition
//!                                |mass_attach_ramp|idle_wakeup_storm
//!                                |kill_mid_paging]
//! simctl sweep <first_seed> <count> [--scenario NAME]
//! simctl replay <trace.json>
//! simctl shrink <trace.json>
//! ```

use pepc_sim::{replay_trace, run, shrink, SimConfig, Trace};
use std::path::Path;
use std::process::ExitCode;

fn scenario(name: &str, seed: u64) -> Result<SimConfig, String> {
    match name {
        "two_node_failover" => Ok(SimConfig::two_node_failover(seed)),
        "partition_heal" => Ok(SimConfig::partition_heal(seed)),
        "lossy_wires" => Ok(SimConfig::lossy_wires(seed)),
        "kill_mid_attach" => Ok(SimConfig::kill_mid_attach(seed)),
        "migrate_mid_handover" => Ok(SimConfig::migrate_mid_handover(seed)),
        "attach_storm" => Ok(SimConfig::attach_storm(seed)),
        "storm_kill" => Ok(SimConfig::storm_kill(seed)),
        "storm_partition" => Ok(SimConfig::storm_partition(seed)),
        "mass_attach_ramp" => Ok(SimConfig::mass_attach_ramp(seed)),
        "idle_wakeup_storm" => Ok(SimConfig::idle_wakeup_storm(seed)),
        "kill_mid_paging" => Ok(SimConfig::kill_mid_paging(seed)),
        other => Err(format!("unknown scenario `{other}`")),
    }
}

fn scenario_arg(args: &[String]) -> &str {
    args.iter().position(|a| a == "--scenario").and_then(|i| args.get(i + 1)).map_or("two_node_failover", |s| s)
}

fn run_one(cfg: &SimConfig) -> ExitCode {
    let r = run(cfg);
    println!(
        "seed {}: {} steps, digest {:016x}, {} forwarded, {} failovers, {} users live, {} shed",
        cfg.seed,
        r.schedule.len(),
        r.digest,
        r.forwarded,
        r.failovers,
        r.users_live,
        r.shed
    );
    match r.failure {
        None => ExitCode::SUCCESS,
        Some(f) => {
            let shrunk = shrink(cfg, &r.schedule, &f.oracle);
            let trace = Trace::new(cfg.clone(), shrunk, f.clone());
            match trace.save(None) {
                Ok(p) => eprintln!(
                    "FAIL oracle `{}` at step {}: {}\n  shrunk trace ({} steps) -> {}",
                    f.oracle,
                    f.step,
                    f.message,
                    trace.schedule.len(),
                    p.display()
                ),
                Err(e) => eprintln!("FAIL oracle `{}` (trace save failed: {e})", f.oracle),
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let Some(seed) = args.get(1).and_then(|s| s.parse().ok()) else {
                eprintln!("usage: simctl run <seed> [--scenario NAME]");
                return ExitCode::FAILURE;
            };
            match scenario(scenario_arg(&args), seed) {
                Ok(cfg) => run_one(&cfg),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("sweep") => {
            let (Some(first), Some(count)) =
                (args.get(1).and_then(|s| s.parse::<u64>().ok()), args.get(2).and_then(|s| s.parse::<u64>().ok()))
            else {
                eprintln!("usage: simctl sweep <first_seed> <count> [--scenario NAME]");
                return ExitCode::FAILURE;
            };
            for seed in first..first + count {
                let cfg = match scenario(scenario_arg(&args), seed) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                if run_one(&cfg) != ExitCode::SUCCESS {
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("replay") | Some("shrink") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: simctl {} <trace.json>", args[0]);
                return ExitCode::FAILURE;
            };
            let trace = match Trace::load(Path::new(path)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot load trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if args[0] == "shrink" {
                let shrunk = shrink(&trace.config, &trace.schedule, &trace.failure.oracle);
                let out = Trace::new(trace.config.clone(), shrunk, trace.failure.clone());
                match out.save(None) {
                    Ok(p) => {
                        println!(
                            "{} steps -> {} steps, saved {}",
                            trace.schedule.len(),
                            out.schedule.len(),
                            p.display()
                        );
                        return ExitCode::SUCCESS;
                    }
                    Err(e) => {
                        eprintln!("save failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let r = replay_trace(&trace);
            match r.failure {
                Some(f) if f.oracle == trace.failure.oracle => {
                    println!("reproduced: oracle `{}` at step {}: {}", f.oracle, f.step, f.message);
                    ExitCode::SUCCESS
                }
                Some(f) => {
                    eprintln!("different failure: oracle `{}` (recorded `{}`)", f.oracle, trace.failure.oracle);
                    ExitCode::FAILURE
                }
                None => {
                    eprintln!("trace no longer fails (recorded oracle `{}`)", trace.failure.oracle);
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: simctl run|sweep|replay|shrink ...");
            ExitCode::FAILURE
        }
    }
}
