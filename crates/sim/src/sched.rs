//! The seeded scheduler: the single-threaded event loop that owns every
//! steppable actor and decides, one RNG draw at a time, what happens
//! next.
//!
//! ## Schedule discipline
//!
//! Each simulated tick consists of a set of **mandatory** steps — one
//! `Emit` and one `Pump` per node plus one `Detect` — enqueued when the
//! tick opens. `Tick` only becomes choosable once the mandatory set is
//! drained, so every tick performs its full periodic work (the property
//! the staleness bound relies on) while the *order* of those steps, and
//! the placement of workload and chaos steps among them, is what the
//! seed explores. Workload ops and chaos commands become eligible at
//! their scheduled tick and stay in the pool until drawn — so a kill
//! "at tick 10" can land before, between, or after any of tick 10+'s
//! replication phases, which is exactly the interleaving space a
//! wall-clock harness cannot control.
//!
//! Same seed ⇒ same draw sequence ⇒ byte-identical schedule and digest.

use crate::config::SimConfig;
use crate::oracle::{Failure, Oracles};
use crate::world::SimWorld;
use crate::{Action, ActionKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one run (seeded or replayed).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Every step applied, in order — the trace.
    pub schedule: Vec<Action>,
    /// Rolling digest over actions and observable state; two runs are
    /// byte-identical iff their (schedule, digest) pairs match.
    pub digest: u64,
    /// First invariant violation, if any (the schedule ends at it).
    pub failure: Option<Failure>,
    /// Completed failovers.
    pub failovers: usize,
    /// Data packets forwarded end-to-end.
    pub forwarded: u64,
    /// Subscribers attached at the end of the run.
    pub users_live: usize,
    /// S1AP PDUs shed by admission control, summed over live slices.
    pub shed: u64,
    /// Pages issued, summed over live slices.
    pub paged: u64,
    /// Pages answered by a Service Request (idle-UE wake-ups).
    pub paging_resolved: u64,
    /// Pages that exhausted retransmission and expired.
    pub paging_expired: u64,
}

/// Run one seeded schedule to completion (or first oracle violation).
pub fn run(cfg: &SimConfig) -> RunResult {
    let mut w = SimWorld::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5C4E_D01E_5EED_0001);
    let mut oracles = Oracles::new();
    let mut schedule = Vec::new();

    // Pools the scheduler draws from.
    let mut mandatory: Vec<Action> = Vec::new();
    let mut eligible: Vec<Action> = Vec::new();
    let mut next_op = 0usize;
    let mut next_chaos = 0usize;
    // Chaos commands sorted by eligibility tick (indices stay the
    // config-order indices, so traces reference them stably).
    let mut chaos_order: Vec<usize> = (0..cfg.chaos.len()).collect();
    chaos_order.sort_by_key(|&i| cfg.chaos[i].at_tick);

    let failure = loop {
        let tick = w.now();
        while next_op < w.op_count() && w.op_tick(next_op) <= tick {
            eligible.push(Action::new(ActionKind::Workload, next_op as u32));
            next_op += 1;
        }
        while next_chaos < chaos_order.len() && cfg.chaos[chaos_order[next_chaos]].at_tick <= tick {
            eligible.push(Action::new(ActionKind::Chaos, chaos_order[next_chaos] as u32));
            next_chaos += 1;
        }

        // Draw uniformly over mandatory ∪ eligible ∪ {Tick if allowed}.
        let tick_ok = mandatory.is_empty() && tick < cfg.ticks;
        let total = mandatory.len() + eligible.len() + usize::from(tick_ok);
        if total == 0 {
            break None;
        }
        let i = rng.gen_range(0..total);
        let a = if i < mandatory.len() {
            mandatory.swap_remove(i)
        } else if i < mandatory.len() + eligible.len() {
            eligible.swap_remove(i - mandatory.len())
        } else {
            Action::tick()
        };

        w.apply(a);
        schedule.push(a);
        if a.kind == ActionKind::Tick {
            for k in 0..w.node_count() as u32 {
                mandatory.push(Action::new(ActionKind::Emit, k));
                mandatory.push(Action::new(ActionKind::Pump, k));
            }
            mandatory.push(Action::new(ActionKind::Detect, 0));
        }
        if let Some(f) = oracles.check(&w) {
            break Some(f);
        }
    };

    let failure = failure.or_else(|| oracles.check_final(&w));
    finish(w, schedule, failure)
}

/// Re-apply a recorded schedule verbatim — no RNG, no scheduling; the
/// trace *is* the schedule. Oracles run exactly as in [`run`], so a
/// failing trace fails again at the same step, and a shrunk candidate is
/// judged by whether it still fails.
pub fn replay(cfg: &SimConfig, schedule: &[Action]) -> RunResult {
    let mut w = SimWorld::new(cfg.clone());
    let mut oracles = Oracles::new();
    let mut applied = Vec::with_capacity(schedule.len());
    let mut failure = None;
    for &a in schedule {
        w.apply(a);
        applied.push(a);
        if let Some(f) = oracles.check(&w) {
            failure = Some(f);
            break;
        }
    }
    let failure = failure.or_else(|| oracles.check_final(&w));
    finish(w, applied, failure)
}

fn finish(w: SimWorld, schedule: Vec<Action>, failure: Option<Failure>) -> RunResult {
    let cluster = w.ha.cluster_ref();
    let live = (0..cluster.node_count()).filter(|&k| !cluster.is_dead(k));
    let (mut users_live, mut shed) = (0usize, 0u64);
    let (mut paged, mut paging_resolved, mut paging_expired) = (0u64, 0u64, 0u64);
    for k in live {
        let node = cluster.node_ref(k);
        users_live += node.user_count();
        for s in 0..node.slice_count() {
            let m = node.slice_ref(s).ctrl.metrics();
            shed += m.sig_shed_total();
            paged += m.paged;
            paging_resolved += m.paging_resolved;
            paging_expired += m.paging_expired;
        }
    }
    RunResult {
        digest: w.digest,
        failure,
        failovers: w.ha.failovers().len(),
        forwarded: w.forwarded,
        users_live,
        shed,
        paged,
        paging_resolved,
        paging_expired,
        schedule,
    }
}
