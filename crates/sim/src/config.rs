//! Simulation configuration: cluster shape, workload volume, the fault
//! scenario (chaos commands keyed on ticks), and optional intentional
//! bugs used to prove the oracles and the shrinker actually work.
//!
//! Everything here serializes into the trace file, so replaying a trace
//! needs no out-of-band context: `(config, schedule)` rebuilds the exact
//! run.

use serde::{Deserialize, Serialize};

/// A scheduled fault-scenario command. Commands become *eligible* at
/// `at_tick`; the seeded scheduler decides exactly where inside the
/// tick's step interleaving they land (that placement is the thing being
/// explored).
///
/// Per-node and per-wire compose: each node has exactly one replication
/// wire, so `node` names both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosKind {
    /// Crash the node: replication wire severed (in-flight frames lost),
    /// data region blackholes until failover. Guarded no-op if the node
    /// is already killed/dead or is the last live node.
    Kill,
    /// Partition the node's replication wire: nothing crosses it, but
    /// frames queue and survive until a `Heal`.
    Partition,
    /// Heal a partition.
    Heal,
    /// Set the wire's fixed latency to `amount` pumps.
    Delay,
    /// Set the wire's drop chance to `amount` per-mille.
    Drop,
    /// Set the wire's duplicate chance to `amount` per-mille.
    Duplicate,
}

/// One chaos command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosCmd {
    /// Tick at which this command becomes schedulable.
    pub at_tick: u64,
    pub kind: ChaosKind,
    /// Node (= wire) the command targets.
    pub node: u32,
    /// `Delay`: pumps; `Drop`/`Duplicate`: per-mille probability.
    pub amount: u32,
}

/// Intentional defects, injected to prove a violated invariant produces
/// a failing, shrinkable, replayable trace (they model real bug classes:
/// `DoubleAdopt` is a failover controller adopting one IMSI onto two
/// survivors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugKind {
    None,
    /// After every successful intra-node migration, also adopt the same
    /// IMSI onto a *different* live node — violating the single-owner
    /// invariant the `dup_imsi` oracle guards.
    DoubleAdopt,
    /// Disable the control plane's procedure-supervision timer while the
    /// workload still abandons a procedure mid-flight — the UE machine
    /// stays in a waiting state forever, which the `stuck_procedure`
    /// oracle exists to catch.
    StuckProcedure,
}

/// Full description of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed for both the workload generator and the scheduler.
    pub seed: u64,
    /// Cluster size (2..=8; ≥2 so a kill leaves a survivor).
    pub nodes: u32,
    /// Subscribers the workload attaches.
    pub users: u32,
    /// Tick budget: the scheduler stops advancing time here and drains
    /// what is still eligible.
    pub ticks: u64,
    /// HA counter-delta interval (the staleness bound on clean wires).
    pub counter_interval: u64,
    /// The fault scenario.
    pub chaos: Vec<ChaosCmd>,
    /// Intentional defect, if any.
    pub bug: BugKind,
    /// Check `max_counter_staleness ≤ counter_interval` on every
    /// failover. Only sound while replication wires are loss- and
    /// delay-free, so lossy scenarios turn it off.
    pub check_staleness: bool,
    /// Subscribers driven through the full per-message S1AP/NAS signaling
    /// path (attach handshake, optionally a handover) instead of the
    /// synthetic one-shot events. `0` disables signaling emulation and
    /// keeps the run byte-identical with pre-signaling builds.
    pub sig_users: u32,
    /// After attaching, signaling subscribers also run an S1 handover
    /// (HandoverRequired → HandoverRequest/Ack → HandoverCommand).
    pub sig_handover: bool,
    /// Control-plane procedure supervision timeout in ticks (`0` = off).
    /// When `> 0`, the `stuck_procedure` oracle asserts no UE stays
    /// mid-procedure beyond `2 × timeout + 2` ticks on a live node.
    pub procedure_timeout: u64,
    /// Storm devices: a synchronized wave of additional signaling
    /// subscribers whose attach attempts all become eligible at
    /// [`SimConfig::storm_tick`] (DESIGN.md §15). `0` disables the storm
    /// and keeps the run byte-identical with pre-storm builds.
    pub storm_users: u32,
    /// Tick at which the storm wave lands.
    pub storm_tick: u64,
    /// Enable control-plane admission control (per-eNodeB token bucket +
    /// in-flight ceiling) on every slice. Off = the storm hits an
    /// unprotected control plane.
    pub overload: bool,
    /// Signaling subscribers (a prefix of `sig_users`, skipping the
    /// attach abandoner) that run the idle cycle after attaching: S1
    /// release → buffered downlink → paging → Service Request wake. The
    /// last idler never answers its pages, so retransmission must
    /// escalate to expiry and drop its buffer. `0` disables the cycle
    /// and keeps runs byte-identical with pre-paging builds.
    pub idle_users: u32,
}

impl SimConfig {
    /// The acceptance scenario: a 2-node cluster, attaches + bearers,
    /// data traffic, intra-node migrations, and a kill landing mid-run —
    /// the scheduler decides exactly where the kill falls relative to
    /// migration, replication, pumping, and detection steps.
    pub fn two_node_failover(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 2,
            users: 16,
            ticks: 32,
            counter_interval: 4,
            chaos: vec![ChaosCmd { at_tick: 10, kind: ChaosKind::Kill, node: (seed % 2) as u32, amount: 0 }],
            bug: BugKind::None,
            check_staleness: true,
            sig_users: 0,
            sig_handover: false,
            procedure_timeout: 0,
            storm_users: 0,
            storm_tick: 0,
            overload: false,
            idle_users: 0,
        }
    }

    /// A 3-node cluster where one node's replication wire partitions and
    /// later heals. The detector declares the partitioned node dead
    /// (split-brain guard powers it off), so this explores
    /// failover-without-crash; staleness is unchecked because heartbeats
    /// stall.
    pub fn partition_heal(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 3,
            users: 18,
            ticks: 36,
            counter_interval: 4,
            chaos: vec![
                ChaosCmd { at_tick: 8, kind: ChaosKind::Partition, node: (seed % 3) as u32, amount: 0 },
                ChaosCmd { at_tick: 22, kind: ChaosKind::Heal, node: (seed % 3) as u32, amount: 0 },
            ],
            bug: BugKind::None,
            check_staleness: false,
            sig_users: 0,
            sig_handover: false,
            procedure_timeout: 0,
            storm_users: 0,
            storm_tick: 0,
            overload: false,
            idle_users: 0,
        }
    }

    /// Lossy replication: delay, duplication, and drops on every wire
    /// plus a kill. Exercises the standby's reorder/gap tolerance under
    /// schedule exploration; staleness unchecked (delayed heartbeats).
    pub fn lossy_wires(seed: u64) -> Self {
        let mut chaos = Vec::new();
        for node in 0..3u32 {
            chaos.push(ChaosCmd { at_tick: 2, kind: ChaosKind::Delay, node, amount: 2 });
            chaos.push(ChaosCmd { at_tick: 2, kind: ChaosKind::Drop, node, amount: 100 });
            chaos.push(ChaosCmd { at_tick: 2, kind: ChaosKind::Duplicate, node, amount: 100 });
        }
        chaos.push(ChaosCmd { at_tick: 14, kind: ChaosKind::Kill, node: (seed % 3) as u32, amount: 0 });
        SimConfig {
            seed,
            nodes: 3,
            users: 18,
            ticks: 36,
            counter_interval: 4,
            chaos,
            bug: BugKind::None,
            check_staleness: false,
            sig_users: 0,
            sig_handover: false,
            procedure_timeout: 0,
            storm_users: 0,
            storm_tick: 0,
            overload: false,
            idle_users: 0,
        }
    }

    /// Kill a node while attach handshakes are mid-flight on it: six
    /// subscribers run the per-message S1AP/NAS attach, the kill lands at
    /// tick 4 (squarely inside the handshake window), and one subscriber
    /// deliberately abandons its attach after the first message — the
    /// supervision timer must reap it. Staleness is unchecked because
    /// half-finished procedures legitimately lose their users.
    pub fn kill_mid_attach(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 2,
            users: 8,
            ticks: 40,
            counter_interval: 4,
            chaos: vec![ChaosCmd { at_tick: 4, kind: ChaosKind::Kill, node: (seed % 2) as u32, amount: 0 }],
            bug: BugKind::None,
            check_staleness: false,
            sig_users: 6,
            sig_handover: false,
            procedure_timeout: 6,
            storm_users: 0,
            storm_tick: 0,
            overload: false,
            idle_users: 0,
        }
    }

    /// A synchronized attach storm against an admission-controlled
    /// control plane: 24 storm devices all become eligible at tick 6 on
    /// top of steady data traffic and a few well-behaved signaling
    /// subscribers. Admission control is on, so the wave is partly shed
    /// with `CongestionReject` and the herd retries — the `no_livelock`
    /// oracle asserts in-flight procedures stay under the configured
    /// ceiling and steady-state data still forwards.
    pub fn attach_storm(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 2,
            users: 12,
            ticks: 48,
            counter_interval: 4,
            chaos: vec![],
            bug: BugKind::None,
            check_staleness: true,
            sig_users: 4,
            sig_handover: false,
            procedure_timeout: 6,
            storm_users: 24,
            storm_tick: 6,
            overload: true,
            idle_users: 0,
        }
    }

    /// The storm plus a node kill landing mid-wave: half the herd's
    /// serving node dies while shed devices are retrying. Failover,
    /// supervision expiry, and admission shedding all interleave;
    /// staleness is unchecked (procedures legitimately lose users).
    pub fn storm_kill(seed: u64) -> Self {
        SimConfig {
            chaos: vec![ChaosCmd { at_tick: 10, kind: ChaosKind::Kill, node: (seed % 2) as u32, amount: 0 }],
            check_staleness: false,
            ..Self::attach_storm(seed)
        }
    }

    /// The storm on a 3-node cluster with a replication-wire partition
    /// opening mid-wave and healing late: the partitioned node is
    /// declared dead while holding herd procedures, exercising
    /// shed-then-failover-then-retry. Staleness unchecked (heartbeats
    /// stall across the partition).
    pub fn storm_partition(seed: u64) -> Self {
        SimConfig {
            nodes: 3,
            chaos: vec![
                ChaosCmd { at_tick: 8, kind: ChaosKind::Partition, node: (seed % 3) as u32, amount: 0 },
                ChaosCmd { at_tick: 22, kind: ChaosKind::Heal, node: (seed % 3) as u32, amount: 0 },
            ],
            check_staleness: false,
            ..Self::attach_storm(seed)
        }
    }

    /// Capacity ramp (ISSUE 9): the largest population the deterministic
    /// harness drives — enough attaches that the per-slice index tables
    /// double several times mid-run — plus a storm-wave of churn and a
    /// kill landing while the tables are still growing. Exercises
    /// incremental table growth, slab slot free/reuse, and
    /// failover-during-growth under the single-owner, conservation, and
    /// seqlock oracles. Staleness is unchecked (the kill lands mid-ramp,
    /// so half-finished procedures legitimately lose users).
    pub fn mass_attach_ramp(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 2,
            users: 48,
            ticks: 56,
            counter_interval: 4,
            chaos: vec![ChaosCmd { at_tick: 12, kind: ChaosKind::Kill, node: (seed % 2) as u32, amount: 0 }],
            bug: BugKind::None,
            check_staleness: false,
            sig_users: 6,
            sig_handover: false,
            procedure_timeout: 6,
            storm_users: 16,
            storm_tick: 8,
            overload: true,
            idle_users: 0,
        }
    }

    /// The idle/paging acceptance scenario: signaling subscribers attach,
    /// release to idle, and have downlink arrive while suspended — the
    /// data path buffers, the control plane pages, and the subscriber
    /// wakes with a Service Request that flushes the buffer. The last
    /// idler ignores its pages, so retransmission must escalate to
    /// expiry and drop its buffer. The `stuck_idle` and
    /// `paging_accounting` oracles are the assertions.
    pub fn idle_wakeup_storm(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 2,
            users: 8,
            ticks: 56,
            counter_interval: 4,
            chaos: vec![],
            bug: BugKind::None,
            check_staleness: true,
            sig_users: 6,
            sig_handover: false,
            procedure_timeout: 6,
            storm_users: 0,
            storm_tick: 0,
            overload: false,
            idle_users: 4,
        }
    }

    /// The idle cycle plus a node kill landing inside the paging window:
    /// pages in flight on the dying node are lost with its buffered
    /// downlink, survivors keep paging, and adoption re-activates the
    /// dead node's suspended UEs. Staleness is unchecked (suspended and
    /// mid-page users legitimately lose buffered state in the crash).
    pub fn kill_mid_paging(seed: u64) -> Self {
        SimConfig {
            chaos: vec![ChaosCmd { at_tick: 30, kind: ChaosKind::Kill, node: (seed % 2) as u32, amount: 0 }],
            check_staleness: false,
            ..Self::idle_wakeup_storm(seed)
        }
    }

    /// Intra-node slice migrations landing while S1 handovers are in
    /// flight: the migration drops the in-flight procedure machine (the
    /// snapshot carries only committed state), so the handover must abort
    /// cleanly — accounted, no stuck UE, no conservation leak.
    pub fn migrate_mid_handover(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 3,
            users: 6,
            ticks: 48,
            counter_interval: 4,
            chaos: vec![],
            bug: BugKind::None,
            check_staleness: true,
            sig_users: 6,
            sig_handover: true,
            procedure_timeout: 6,
            storm_users: 0,
            storm_tick: 0,
            overload: false,
            idle_users: 0,
        }
    }
}
