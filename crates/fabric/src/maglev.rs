//! Maglev-style consistent-hash load balancing.
//!
//! The paper assumes the PEPC cluster is fronted by a load balancer that
//! owns the cluster's virtual IP and spreads users across PEPC nodes
//! (§3.4, citing Eisenbud et al., NSDI'16). This is that component: the
//! Maglev lookup-table construction, which gives near-perfectly even
//! spread and minimal disruption when nodes come and go.

/// A Maglev consistent-hash table mapping flow hashes to backends.
#[derive(Debug, Clone)]
pub struct Maglev {
    table: Vec<u32>,
    backends: Vec<String>,
    /// Backends still in service. Indices stay stable across removals so
    /// `lookup` results remain valid handles for the cluster.
    alive: Vec<bool>,
}

impl Maglev {
    /// Default lookup-table size; a prime ≫ the expected backend count,
    /// as the Maglev paper prescribes (they use 65537 for small setups).
    pub const DEFAULT_TABLE_SIZE: usize = 65537;

    /// Build a table over `backends` (names are arbitrary identifiers).
    ///
    /// # Panics
    /// Panics if `backends` is empty or `table_size` is not larger than
    /// the number of backends.
    pub fn new(backends: &[String], table_size: usize) -> Self {
        assert!(!backends.is_empty(), "need at least one backend");
        assert!(table_size > backends.len(), "table must exceed backend count");
        let n = backends.len();
        let m = table_size;
        let (offset, skip) = permutation_params(backends, m);
        let mut next = vec![0usize; n];
        let mut table = vec![u32::MAX; m];
        let mut filled = 0usize;
        'outer: loop {
            for i in 0..n {
                // Walk backend i's permutation to its next free slot.
                loop {
                    let c = (offset[i] + next[i] * skip[i]) % m;
                    next[i] += 1;
                    if table[c] == u32::MAX {
                        table[c] = i as u32;
                        filled += 1;
                        if filled == m {
                            break 'outer;
                        }
                        break;
                    }
                }
            }
        }
        Maglev { table, backends: backends.to_vec(), alive: vec![true; n] }
    }

    /// Repair the table in place after backend `dead` fails.
    ///
    /// Only the slots the dead backend owned are refilled — survivors
    /// continue their permutation walks into the vacated slots while
    /// every slot a survivor already owns stays put. That makes Maglev's
    /// minimal-disruption property *strict* for repair: keys mapped to a
    /// surviving backend never re-steer, and keys of the dead backend
    /// land deterministically on survivors. Backend indices are stable
    /// across removals ([`Self::lookup`] keeps returning the same handle
    /// for surviving backends).
    ///
    /// # Panics
    /// Panics if `dead` is out of range, already removed, or the last
    /// live backend.
    pub fn remove_backend(&mut self, dead: usize) {
        assert!(dead < self.backends.len(), "backend index out of range");
        assert!(self.alive[dead], "backend already removed");
        self.alive[dead] = false;
        assert!(self.alive.iter().any(|&a| a), "cannot remove the last live backend");

        let m = self.table.len();
        let n = self.backends.len();
        let mut filled = 0usize;
        for slot in self.table.iter_mut() {
            if *slot == dead as u32 {
                *slot = u32::MAX;
            } else {
                filled += 1;
            }
        }

        let (offset, skip) = permutation_params(&self.backends, m);
        let mut next = vec![0usize; n];
        'outer: while filled < m {
            for i in 0..n {
                if !self.alive[i] {
                    continue;
                }
                // Walk survivor i's permutation to its next vacated slot.
                loop {
                    let c = (offset[i] + next[i] * skip[i]) % m;
                    next[i] += 1;
                    if self.table[c] == u32::MAX {
                        self.table[c] = i as u32;
                        filled += 1;
                        if filled == m {
                            break 'outer;
                        }
                        break;
                    }
                }
            }
        }
    }

    /// Whether backend `i` is still in service.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// Live backends remaining.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Index of the backend responsible for `key`.
    pub fn lookup(&self, key: u64) -> usize {
        let h = fnv1a(&key.to_le_bytes(), 0x811C_9DC5) as usize;
        self.table[h % self.table.len()] as usize
    }

    /// Name of the backend responsible for `key`.
    pub fn backend(&self, key: u64) -> &str {
        &self.backends[self.lookup(key)]
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }
}

/// Each backend gets a permutation of table slots derived from two
/// hashes of its name (offset, skip). Shared by construction and repair
/// so a survivor's walk is identical in both.
fn permutation_params(backends: &[String], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = backends.len();
    let mut offset = vec![0usize; n];
    let mut skip = vec![0usize; n];
    for (i, b) in backends.iter().enumerate() {
        let h1 = fnv1a(b.as_bytes(), 0x811C_9DC5);
        let h2 = fnv1a(b.as_bytes(), 0x0100_0193);
        offset[i] = (h1 as usize) % m;
        skip[i] = (h2 as usize) % (m - 1) + 1;
    }
    (offset, skip)
}

#[inline]
fn fnv1a(data: &[u8], seed: u32) -> u32 {
    let mut h = seed ^ 0x811C_9DC5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("pepc-node-{i}")).collect()
    }

    #[test]
    fn lookup_is_deterministic() {
        let m = Maglev::new(&names(5), 1031);
        for k in 0..100u64 {
            assert_eq!(m.lookup(k), m.lookup(k));
        }
    }

    #[test]
    fn spread_is_roughly_even() {
        let m = Maglev::new(&names(5), 65537);
        let mut counts = [0usize; 5];
        for k in 0..100_000u64 {
            counts[m.lookup(k)] += 1;
        }
        let expected = 100_000 / 5;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() / expected as f64 <= 0.10,
                "backend {i} got {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn removing_a_backend_disrupts_few_keys() {
        let all = names(10);
        let without_last = all[..9].to_vec();
        let before = Maglev::new(&all, 65537);
        let after = Maglev::new(&without_last, 65537);
        let mut moved = 0;
        let mut to_removed = 0;
        for k in 0..50_000u64 {
            let b = before.backend(k);
            if b == "pepc-node-9" {
                to_removed += 1;
                continue; // those keys must move
            }
            if after.backend(k) != b {
                moved += 1;
            }
        }
        // Maglev guarantees *mostly* stable mappings; allow a few percent.
        let stable_keys = 50_000 - to_removed;
        assert!((moved as f64) < stable_keys as f64 * 0.05, "{moved} of {stable_keys} stable keys moved");
    }

    #[test]
    fn single_backend_takes_everything() {
        let m = Maglev::new(&names(1), 101);
        for k in 0..100u64 {
            assert_eq!(m.lookup(k), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_rejected() {
        let _ = Maglev::new(&[], 101);
    }

    #[test]
    fn every_slot_is_filled() {
        let m = Maglev::new(&names(3), 257);
        assert!(m.table.iter().all(|&s| s != u32::MAX));
        assert_eq!(m.backend_count(), 3);
    }

    #[test]
    fn repair_resteers_only_the_dead_backends_keys() {
        for size in [257usize, 1031, 65537] {
            let before = Maglev::new(&names(5), size);
            let mut after = before.clone();
            after.remove_backend(2);
            assert!(!after.is_alive(2));
            assert_eq!(after.alive_count(), 4);
            for k in 0..20_000u64 {
                let owner = before.lookup(k);
                if owner == 2 {
                    assert_ne!(after.lookup(k), 2, "dead backend still owns key {k} (size {size})");
                } else {
                    assert_eq!(after.lookup(k), owner, "surviving key {k} re-steered (size {size})");
                }
            }
            assert!(after.table.iter().all(|&s| s != u32::MAX && s != 2));
        }
    }

    #[test]
    fn repair_is_deterministic_and_composes() {
        let mut a = Maglev::new(&names(4), 1031);
        let mut b = a.clone();
        a.remove_backend(1);
        b.remove_backend(1);
        assert_eq!(a.table, b.table);
        // A second failure repairs again, still only vacated slots move.
        let before_second = a.clone();
        a.remove_backend(3);
        for k in 0..10_000u64 {
            let owner = before_second.lookup(k);
            if owner != 3 {
                assert_eq!(a.lookup(k), owner);
            } else {
                assert_ne!(a.lookup(k), 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "last live backend")]
    fn cannot_remove_last_backend() {
        let mut m = Maglev::new(&names(1), 101);
        m.remove_backend(0);
    }
}
