//! Bounded lock-free single-producer / single-consumer ring.
//!
//! This is the `rte_ring`-shaped primitive everything else is built on:
//! virtual NIC queues, control→data update channels inside a PEPC slice,
//! and migration channels. The implementation is a classic SPSC queue with
//! a power-of-two capacity, acquire/release index publication, and
//! producer/consumer-local cached views of the remote index so the common
//! case touches a single shared cache line per batch, not per element.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    head: CachePadded<AtomicUsize>, // next slot the consumer will read
    tail: CachePadded<AtomicUsize>, // next slot the producer will write
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: slots are handed off between exactly one producer and one
// consumer via the acquire/release protocol on head/tail; a slot is only
// written while invisible to the consumer and only read after publication.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// The producer endpoint. `!Clone`: single producer by construction.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's cached copy of `head`; refreshed only when full.
    cached_head: usize,
    /// Local shadow of `tail` (only this side writes it).
    tail: usize,
}

/// The consumer endpoint. `!Clone`: single consumer by construction.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's cached copy of `tail`; refreshed only when empty.
    cached_tail: usize,
    /// Local shadow of `head` (only this side writes it).
    head: usize,
}

/// Namespace type: create rings via [`SpscRing::with_capacity`].
pub struct SpscRing;

impl SpscRing {
    /// Create a ring holding at least `capacity` elements (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect::<Vec<_>>();
        let shared = Arc::new(Shared {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            producer_alive: AtomicBool::new(true),
            consumer_alive: AtomicBool::new(true),
        });
        (
            Producer { shared: Arc::clone(&shared), cached_head: 0, tail: 0 },
            Consumer { shared, cached_tail: 0, head: 0 },
        )
    }
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Try to enqueue one element; returns it back when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let cap = self.shared.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap {
            self.cached_head = self.shared.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return Err(value);
            }
        }
        let idx = self.tail & self.shared.mask;
        // SAFETY: slot `tail` is not visible to the consumer until the
        // Release store below, and the producer is unique.
        unsafe { (*self.shared.buf[idx].get()).write(value) };
        self.tail = self.tail.wrapping_add(1);
        self.shared.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Enqueue as many items from `iter` as fit; returns how many were
    /// accepted. This is the DPDK-style burst enqueue: the free-slot
    /// count is derived once per cached-head refresh and the fill loop
    /// checks only the iterator, not the ring.
    pub fn push_burst(&mut self, iter: &mut impl Iterator<Item = T>) -> usize {
        let cap = self.shared.mask + 1;
        let mut pushed = 0;
        loop {
            let mut free = cap - self.tail.wrapping_sub(self.cached_head);
            if free == 0 {
                self.cached_head = self.shared.head.load(Ordering::Acquire);
                free = cap - self.tail.wrapping_sub(self.cached_head);
                if free == 0 {
                    break;
                }
            }
            while free > 0 {
                let Some(v) = iter.next() else {
                    if pushed > 0 {
                        self.shared.tail.store(self.tail, Ordering::Release);
                    }
                    return pushed;
                };
                let idx = self.tail & self.shared.mask;
                // SAFETY: as in `push`.
                unsafe { (*self.shared.buf[idx].get()).write(v) };
                self.tail = self.tail.wrapping_add(1);
                pushed += 1;
                free -= 1;
            }
        }
        if pushed > 0 {
            self.shared.tail.store(self.tail, Ordering::Release);
        }
        pushed
    }

    /// Number of elements currently queued (approximate from this side).
    pub fn len(&self) -> usize {
        self.tail.wrapping_sub(self.shared.head.load(Ordering::Acquire))
    }

    /// True when no elements are queued (approximate from this side).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the consumer endpoint has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.shared.consumer_alive.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Relaxed);
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Depth/capacity gauge for this ring, for telemetry snapshots.
    pub fn gauge(&self, name: &str) -> pepc_telemetry::RingGauge {
        pepc_telemetry::RingGauge { name: name.to_string(), depth: self.len() as u64, capacity: self.capacity() as u64 }
    }

    /// Try to dequeue one element.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let idx = self.head & self.shared.mask;
        // SAFETY: the Acquire load of `tail` above proved the producer
        // published this slot; the consumer is unique.
        let value = unsafe { (*self.shared.buf[idx].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.shared.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Dequeue up to `max` elements into `out`; returns how many were
    /// taken. This is the DPDK-style burst dequeue: the available count
    /// is derived once per cached-tail refresh and the drain loop runs
    /// over `min(available, remaining)` without re-checking emptiness.
    pub fn pop_burst(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            let mut avail = self.cached_tail.wrapping_sub(self.head);
            if avail == 0 {
                self.cached_tail = self.shared.tail.load(Ordering::Acquire);
                avail = self.cached_tail.wrapping_sub(self.head);
                if avail == 0 {
                    break;
                }
            }
            let run = avail.min(max - taken);
            out.reserve(run);
            for _ in 0..run {
                let idx = self.head & self.shared.mask;
                // SAFETY: as in `pop`.
                out.push(unsafe { (*self.shared.buf[idx].get()).assume_init_read() });
                self.head = self.head.wrapping_add(1);
            }
            taken += run;
        }
        if taken > 0 {
            self.shared.head.store(self.head, Ordering::Release);
        }
        taken
    }

    /// Number of elements currently queued (approximate from this side).
    pub fn len(&self) -> usize {
        self.shared.tail.load(Ordering::Acquire).wrapping_sub(self.head)
    }

    /// True when no elements are queued (approximate from this side).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the producer endpoint has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.shared.producer_alive.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Relaxed);
        // Drain remaining elements so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn fifo_order() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u32>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, rx) = SpscRing::with_capacity::<u8>(100);
        assert_eq!(tx.capacity(), 128);
        assert_eq!(rx.capacity(), 128);
        let (tx, _rx) = SpscRing::with_capacity::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn consumer_gauge_reports_depth() {
        let (mut tx, rx) = SpscRing::with_capacity::<u8>(8);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let g = rx.gauge("update_ring");
        assert_eq!(g.name, "update_ring");
        assert_eq!(g.depth, 2);
        assert_eq!(g.capacity, 8);
    }

    #[test]
    fn push_to_full_returns_value() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(3));
        assert_eq!(rx.pop(), Some(1));
        tx.push(3).unwrap(); // slot freed
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn burst_enqueue_dequeue() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u32>(16);
        let mut src = 0..100u32;
        let n = tx.push_burst(&mut src);
        assert_eq!(n, 16); // ring capacity
        let mut out = Vec::new();
        assert_eq!(rx.pop_burst(&mut out, 10), 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.pop_burst(&mut out, 100), 6);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u8>(4);
        assert!(tx.is_empty() && rx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.pop();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = SpscRing::with_capacity::<u8>(4);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        let (tx, rx) = SpscRing::with_capacity::<u8>(4);
        drop(tx);
        assert!(rx.is_disconnected());
    }

    #[test]
    fn drops_remaining_elements() {
        static DROPS: Counter = Counter::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = SpscRing::with_capacity::<D>(8);
        assert!(tx.push(D).is_ok());
        assert!(tx.push(D).is_ok());
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_transfer_preserves_every_element() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = SpscRing::with_capacity::<u64>(1024);
        let producer = std::thread::spawn(move || {
            let mut i = 0;
            while i < N {
                if tx.push(i).is_ok() {
                    i += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        let mut sum = 0u64;
        let mut seen = 0u64;
        let mut expect = 0u64;
        while seen < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect, "out-of-order delivery");
                expect += 1;
                sum = sum.wrapping_add(v);
                seen += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn cross_thread_burst_transfer() {
        const N: usize = 100_000;
        let (mut tx, mut rx) = SpscRing::with_capacity::<usize>(256);
        let producer = std::thread::spawn(move || {
            let mut it = (0..N).peekable();
            while it.peek().is_some() {
                tx.push_burst(&mut it);
            }
        });
        let mut out = Vec::with_capacity(N);
        while out.len() < N {
            rx.pop_burst(&mut out, 64);
        }
        producer.join().unwrap();
        assert_eq!(out, (0..N).collect::<Vec<_>>());
    }
}
