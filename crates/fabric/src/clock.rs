//! Timestamps and measurement helpers.
//!
//! Every figure harness in `pepc-bench` reports either a packet rate
//! (Mpps) or a per-packet latency distribution; [`RateMeter`] and
//! [`LatencyHistogram`] are the shared implementations.

use std::time::{Duration, Instant};

// The histogram moved to `pepc-telemetry` so the core crates can record
// latencies without depending on fabric; re-exported here for existing
// call sites.
pub use pepc_telemetry::{HistogramSummary, LatencyHistogram};

/// A monotonic clock with a fixed origin, yielding cheap `u64` nanosecond
/// timestamps suitable for embedding in packets.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    pub fn new() -> Self {
        Clock { origin: Instant::now() }
    }

    /// Nanoseconds since this clock was created.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// Counts events over a wall-clock window and reports a rate.
#[derive(Debug)]
pub struct RateMeter {
    started: Instant,
    events: u64,
}

impl RateMeter {
    pub fn start() -> Self {
        RateMeter { started: Instant::now(), events: 0 }
    }

    /// Record `n` events (e.g. a burst of packets).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Elapsed time since `start`.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Events per second so far.
    pub fn rate(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Rate in millions of events (packets) per second — the unit the
    /// paper's figures use.
    pub fn mpps(&self) -> f64 {
        self.rate() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn rate_meter_counts() {
        let mut m = RateMeter::start();
        m.add(10);
        m.add(5);
        assert_eq!(m.events(), 15);
        std::thread::sleep(Duration::from_millis(5));
        assert!(m.rate() > 0.0);
        assert!(m.mpps() < 1.0);
    }

    #[test]
    fn histogram_reexport_still_works() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
    }
}
