//! Timestamps and measurement helpers.
//!
//! Every figure harness in `pepc-bench` reports either a packet rate
//! (Mpps) or a per-packet latency distribution; [`RateMeter`] and
//! [`LatencyHistogram`] are the shared implementations.
//!
//! Time itself is pluggable: a [`Clock`] reads either the host's
//! monotonic clock (the default — benchmarks measure real nanoseconds) or
//! a [`VirtualClock`], a process-shared counter advanced explicitly by a
//! test harness. The deterministic simulator (`pepc-sim`) substitutes
//! virtual clocks everywhere a component would otherwise consult
//! `Instant`, so a simulated run consumes *zero* wall time and two runs
//! with the same seed observe byte-identical timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// The histogram moved to `pepc-telemetry` so the core crates can record
// latencies without depending on fabric; re-exported here for existing
// call sites.
pub use pepc_telemetry::{HistogramSummary, LatencyHistogram};

/// Where a [`Clock`] reads its nanoseconds from.
#[derive(Debug, Clone, Copy)]
enum TimeSource {
    /// The host monotonic clock, relative to a fixed origin.
    Wall(Instant),
    /// An explicitly-advanced virtual time counter (see [`VirtualClock`]).
    Virtual(&'static AtomicU64),
}

/// A monotonic clock with a fixed origin, yielding cheap `u64` nanosecond
/// timestamps suitable for embedding in packets.
///
/// `Clock` is `Copy` (it is embedded per-slice and captured by worker
/// threads); a virtual-backed clock shares its counter with every copy,
/// so advancing the [`VirtualClock`] moves all of them at once.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    src: TimeSource,
}

impl Clock {
    /// A wall-time clock: nanoseconds elapse on their own.
    pub fn new() -> Self {
        Clock { src: TimeSource::Wall(Instant::now()) }
    }

    /// Nanoseconds since this clock was created (wall) or since virtual
    /// time zero (virtual).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self.src {
            TimeSource::Wall(origin) => origin.elapsed().as_nanos() as u64,
            TimeSource::Virtual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Whether this clock reads virtual time.
    pub fn is_virtual(&self) -> bool {
        matches!(self.src, TimeSource::Virtual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// An explicitly-driven time counter for deterministic tests.
///
/// Nanoseconds only move when a harness calls [`VirtualClock::advance_ns`];
/// every [`Clock`] handed out by [`VirtualClock::clock`] observes the same
/// counter. The counter is one leaked 8-byte allocation so clocks stay
/// `Copy` (a simulation harness creates a bounded number of clocks per
/// process, so the leak is a few KB at worst).
#[derive(Debug, Clone, Copy)]
pub struct VirtualClock {
    ns: &'static AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at nanosecond zero.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        VirtualClock { ns: Box::leak(Box::new(AtomicU64::new(0))) }
    }

    /// Current virtual time.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Move virtual time forward by `d` nanoseconds.
    pub fn advance_ns(&self, d: u64) {
        self.ns.fetch_add(d, Ordering::Relaxed);
    }

    /// A [`Clock`] reading this virtual counter. Hand it to every
    /// component whose timing the harness wants to control.
    pub fn clock(&self) -> Clock {
        Clock { src: TimeSource::Virtual(self.ns) }
    }
}

/// Counts events over a (wall or virtual) clock window and reports a rate.
#[derive(Debug)]
pub struct RateMeter {
    clock: Clock,
    start_ns: u64,
    events: u64,
}

impl RateMeter {
    pub fn start() -> Self {
        Self::start_with(Clock::new())
    }

    /// Start a meter on an explicit clock (virtual-time harnesses).
    pub fn start_with(clock: Clock) -> Self {
        RateMeter { start_ns: clock.now_ns(), clock, events: 0 }
    }

    /// Record `n` events (e.g. a burst of packets).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Elapsed time since `start`.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.clock.now_ns().saturating_sub(self.start_ns))
    }

    /// Events per second so far.
    pub fn rate(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Rate in millions of events (packets) per second — the unit the
    /// paper's figures use.
    pub fn mpps(&self) -> f64 {
        self.rate() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn rate_meter_counts() {
        let mut m = RateMeter::start();
        m.add(10);
        m.add(5);
        assert_eq!(m.events(), 15);
        std::thread::sleep(Duration::from_millis(5));
        assert!(m.rate() > 0.0);
        assert!(m.mpps() < 1.0);
    }

    #[test]
    fn histogram_reexport_still_works() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let v = VirtualClock::new();
        let c = v.clock();
        assert!(c.is_virtual());
        assert_eq!(c.now_ns(), 0);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now_ns(), 0, "virtual time ignores wall time");
        v.advance_ns(1_500);
        assert_eq!(c.now_ns(), 1_500);
    }

    #[test]
    fn virtual_clock_copies_share_the_counter() {
        let v = VirtualClock::new();
        let a = v.clock();
        let b = v.clock();
        let v2 = v; // Copy
        v2.advance_ns(7);
        assert_eq!(a.now_ns(), 7);
        assert_eq!(b.now_ns(), 7);
    }

    #[test]
    fn rate_meter_on_virtual_time() {
        let v = VirtualClock::new();
        let mut m = RateMeter::start_with(v.clock());
        m.add(1_000_000);
        v.advance_ns(1_000_000_000); // exactly one virtual second
        assert_eq!(m.elapsed(), Duration::from_secs(1));
        assert!((m.mpps() - 1.0).abs() < 1e-9, "mpps {}", m.mpps());
    }
}
