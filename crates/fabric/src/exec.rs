//! Worker threads with run-to-completion semantics.
//!
//! PEPC pins each slice's control and data threads to dedicated cores
//! (§3.2). [`Worker::spawn`] reproduces this: it starts an OS thread,
//! attempts a best-effort CPU affinity pin (silently skipped on hosts with
//! fewer cores — like this reproduction environment — or where the
//! syscall is unavailable), and drives a caller-supplied poll function
//! until asked to stop.
//!
//! The poll function returns [`Poll`]: `Busy` means work was done (poll
//! again immediately), `Idle` means nothing to do (the loop spins briefly —
//! run-to-completion threads never sleep), `Done` exits the loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifies a (virtual) core a worker is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId(pub usize);

/// What a poll function reports back to its driving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Work was performed; poll again immediately.
    Busy,
    /// Nothing to do right now.
    Idle,
    /// The worker's job is finished; exit the loop.
    Done,
}

/// Handle to a running worker thread.
pub struct Worker<R = ()> {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<R>>,
    core: CoreId,
}

impl<R: Send + 'static> Worker<R> {
    /// Spawn a worker on `core` running `poll` to completion.
    ///
    /// `poll` receives a `&stop` flag it may consult for long-running
    /// drains; the loop also checks the flag between polls. On exit the
    /// worker returns `finish()`'s value, retrieved via [`Worker::join`].
    pub fn spawn<P, F>(core: CoreId, mut poll: P, finish: F) -> Self
    where
        P: FnMut() -> Poll + Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("pepc-core-{}", core.0))
            .spawn(move || {
                pin_to_core(core);
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    match poll() {
                        Poll::Busy => {}
                        Poll::Idle => std::hint::spin_loop(),
                        Poll::Done => break,
                    }
                }
                finish()
            })
            .expect("spawn worker thread");
        Worker { stop, handle: Some(handle), core }
    }

    /// The core this worker was assigned.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Spawn a worker that owns a piece of state, polled via
    /// `poll(&mut state)`; [`Worker::join`] returns the state. This is how
    /// a PEPC slice gets its plane back after stopping the thread.
    pub fn spawn_state<P>(core: CoreId, mut state: R, mut poll: P) -> Self
    where
        P: FnMut(&mut R) -> Poll + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("pepc-core-{}", core.0))
            .spawn(move || {
                pin_to_core(core);
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    match poll(&mut state) {
                        Poll::Busy => {}
                        Poll::Idle => std::hint::spin_loop(),
                        Poll::Done => break,
                    }
                }
                state
            })
            .expect("spawn worker thread");
        Worker { stop, handle: Some(handle), core }
    }

    /// Ask the worker to stop at its next poll boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stop (if not already stopped) and wait for the worker, returning
    /// its final value.
    pub fn join(mut self) -> R {
        self.request_stop();
        self.handle.take().expect("worker already joined").join().expect("worker panicked")
    }
}

impl<R> Drop for Worker<R> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Best-effort CPU pinning; a no-op when the host has fewer cores than the
/// requested id or pinning is unsupported.
#[cfg(target_os = "linux")]
fn pin_to_core(core: CoreId) {
    // SAFETY: plain libc affinity call with a correctly-sized local set.
    unsafe {
        let mut set: libc_cpu_set = std::mem::zeroed();
        let ncpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if core.0 >= ncpus {
            return; // more workers than cores: let the scheduler timeslice
        }
        let word = core.0 / 64;
        let bit = core.0 % 64;
        if word < set.bits.len() {
            set.bits[word] |= 1 << bit;
            sched_setaffinity(0, std::mem::size_of::<libc_cpu_set>(), &set);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: CoreId) {}

#[cfg(target_os = "linux")]
#[repr(C)]
struct libc_cpu_set {
    bits: [u64; 16], // 1024 CPUs
}

#[cfg(target_os = "linux")]
extern "C" {
    fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const libc_cpu_set) -> i32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_runs_until_stopped() {
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let c3 = Arc::clone(&count);
        let w = Worker::spawn(
            CoreId(0),
            move || {
                c2.fetch_add(1, Ordering::Relaxed);
                Poll::Busy
            },
            move || c3.load(Ordering::Relaxed),
        );
        while count.load(Ordering::Relaxed) < 1000 {
            std::hint::spin_loop();
        }
        let final_count = w.join();
        assert!(final_count >= 1000);
    }

    #[test]
    fn worker_exits_on_done() {
        let w = Worker::spawn(
            CoreId(0),
            {
                let mut n = 0;
                move || {
                    n += 1;
                    if n >= 10 {
                        Poll::Done
                    } else {
                        Poll::Busy
                    }
                }
            },
            || 42u32,
        );
        assert_eq!(w.join(), 42);
    }

    #[test]
    fn idle_worker_still_stops() {
        let w = Worker::spawn(CoreId(3), || Poll::Idle, || "done");
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(w.join(), "done");
    }

    #[test]
    fn oversubscribed_core_id_is_tolerated() {
        // CoreId far beyond the host's core count: pin silently skipped.
        let w = Worker::spawn(CoreId(4096), || Poll::Done, || ());
        w.join();
    }

    #[test]
    fn spawn_state_returns_owned_state() {
        let w = Worker::spawn_state(CoreId(0), Vec::new(), |v: &mut Vec<u32>| {
            if v.len() < 5 {
                v.push(v.len() as u32);
                Poll::Busy
            } else {
                Poll::Done
            }
        });
        assert_eq!(w.join(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_stops_worker() {
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        {
            let _w = Worker::spawn(
                CoreId(0),
                move || {
                    c2.fetch_add(1, Ordering::Relaxed);
                    Poll::Busy
                },
                || (),
            );
        } // dropped here; must not hang
        let after = count.load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(count.load(Ordering::Relaxed), after, "worker kept running after drop");
    }
}
