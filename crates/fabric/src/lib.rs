//! # pepc-fabric — the packet-processing substrate PEPC runs on
//!
//! The paper runs PEPC inside NetBricks over DPDK: run-to-completion
//! threads pinned to cores, polling NIC queues, exchanging packets over
//! lock-free rings, with memory isolation provided by Rust's type system
//! rather than VMs/containers. None of that requires a physical NIC — what
//! the evaluation measures is state organisation and locking behaviour.
//! This crate therefore reproduces the *execution model* in user space:
//!
//! * [`ring::SpscRing`] — a bounded single-producer/single-consumer ring
//!   with cache-padded indices, the building block for every port and
//!   inter-thread channel on the data path (DPDK `rte_ring` equivalent).
//! * [`port::Port`] — a virtual NIC queue pair (rx/tx) with counters,
//!   supporting batched I/O like DPDK's burst API.
//! * [`wire::Wire`] — connects a tx queue to an rx queue, optionally
//!   injecting faults (drop / corrupt / rate-limit), in the spirit of the
//!   smoltcp examples' `--drop-chance` / `--corrupt-chance` switches.
//! * [`exec`] — worker threads with best-effort core pinning and a
//!   run-to-completion poll loop.
//! * [`clock`] — cheap timestamps and rate/latency meters used by every
//!   benchmark harness.
//! * [`maglev`] — a Maglev-style consistent-hash load balancer, standing in
//!   for the cluster load balancer that fronts a PEPC deployment (§3.4).

pub mod clock;
pub mod exec;
pub mod maglev;
pub mod pcap;
pub mod port;
pub mod ring;
pub mod wire;

pub use clock::{Clock, LatencyHistogram, RateMeter, VirtualClock};
pub use exec::{CoreId, Worker};
pub use maglev::Maglev;
pub use pcap::PcapWriter;
pub use port::{Port, PortPair, PortStats};
pub use ring::SpscRing;
pub use wire::{FaultSpec, Wire, WireStats};
