//! Libpcap-format trace capture.
//!
//! The smoltcp examples this reproduction's guides point at all take a
//! `--pcap` switch; the same discipline pays off when debugging an EPC:
//! captures from any point in the fabric open directly in Wireshark
//! (which dissects GTP-U natively). [`PcapWriter`] emits the classic
//! little-endian libpcap format, LINKTYPE_RAW (IP packets, no Ethernet),
//! matching what PEPC's pipeline carries.

use std::io::{self, Write};

/// Magic for microsecond-resolution little-endian pcap.
const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_RAW: packets begin with an IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;

/// Streams packets into any `Write` sink in libpcap format.
pub struct PcapWriter<W: Write> {
    sink: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&PCAP_MAGIC.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&65535u32.to_le_bytes())?; // snaplen
        sink.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { sink, packets: 0 })
    }

    /// Record one packet with a nanosecond timestamp on the fabric clock.
    pub fn record(&mut self, ts_ns: u64, data: &[u8]) -> io::Result<()> {
        let secs = (ts_ns / 1_000_000_000) as u32;
        let usecs = ((ts_ns % 1_000_000_000) / 1000) as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&usecs.to_le_bytes())?;
        let len = data.len() as u32;
        self.sink.write_all(&len.to_le_bytes())?; // captured
        self.sink.write_all(&len.to_le_bytes())?; // original
        self.sink.write_all(data)?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets recorded.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Flush and hand back the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_valid_pcap() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24, "global header is 24 bytes");
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE_RAW);
    }

    #[test]
    fn records_have_correct_framing() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record(1_500_000_000, &[0x45, 0, 0, 4]).unwrap();
        w.record(2_000_123_000, &[0x45]).unwrap();
        assert_eq!(w.packet_count(), 2);
        let bytes = w.finish().unwrap();
        // 24 global + (16 + 4) + (16 + 1)
        assert_eq!(bytes.len(), 24 + 20 + 17);
        // First record header: ts=1s, 500000 µs... 1_500_000_000ns = 1s + 500000µs.
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(bytes[28..32].try_into().unwrap()), 500_000);
        assert_eq!(u32::from_le_bytes(bytes[32..36].try_into().unwrap()), 4);
    }

    #[test]
    fn captures_real_pipeline_output() {
        use pepc_net::gtp::encap_gtpu;
        use pepc_net::ipv4::{IpProto, Ipv4Hdr};
        let mut m = pepc_net::Mbuf::new();
        let mut hdr = [0u8; 20];
        Ipv4Hdr::new(1, 2, IpProto::Udp, 0).emit(&mut hdr).unwrap();
        m.extend(&hdr);
        encap_gtpu(&mut m, 3, 4, 0xBEEF).unwrap();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record(0, m.data()).unwrap();
        let bytes = w.finish().unwrap();
        assert!(bytes.len() > 24 + 16 + 40);
    }
}
