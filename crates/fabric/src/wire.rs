//! Wires: pumps that move packets between ports with optional fault
//! injection (drop / corrupt / reorder / delay / duplicate / rate-limit),
//! mirroring the fault-injection discipline of the smoltcp examples
//! (`--drop-chance`, `--corrupt-chance`, `--tx-rate-limit`).
//!
//! A [`Wire`] is driven explicitly by calling [`Wire::pump`]; tests and the
//! traffic generator call it from their poll loops, keeping the whole
//! fabric deterministic and single-threaded unless threads are wanted.
//!
//! Beyond the probabilistic [`FaultSpec`] faults, a wire models two
//! link-level conditions directly:
//!
//! * [`Wire::sever`] — a permanent cut (crashed NIC): everything queued
//!   or in flight is lost, forever;
//! * [`Wire::set_partitioned`] — a reversible partition: nothing moves
//!   while partitioned, but frames stay queued at the source and in the
//!   delay line, and flow again after a heal. Senders whose queue fills
//!   during a long partition lose frames exactly as a real NIC ring
//!   overflows.

use crate::clock::Clock;
use crate::port::Port;
use pepc_net::Mbuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::Duration;

/// Fault-injection configuration for a wire.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Probability in [0,1] that a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability in [0,1] that one random byte of a packet is flipped.
    pub corrupt_chance: f64,
    /// Probability in [0,1] that a packet is swapped with its successor
    /// within the same pumped burst (adjacent reordering).
    pub reorder_chance: f64,
    /// Probability in [0,1] that a packet is delivered twice (the copy is
    /// injected immediately after the original).
    pub duplicate_chance: f64,
    /// Fixed latency, in pump calls: every packet sits in the wire's
    /// delay line for this many pumps before it becomes deliverable
    /// (0 = same-pump delivery, the historical behaviour).
    pub delay_pumps: u32,
    /// Token-bucket rate limit in packets per refill interval;
    /// `None` = unlimited.
    pub rate_limit: Option<u32>,
    /// Refill interval for the token bucket.
    pub shaping_interval: Duration,
    /// Seed for the fault RNG, so tests are reproducible.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            reorder_chance: 0.0,
            duplicate_chance: 0.0,
            delay_pumps: 0,
            rate_limit: None,
            shaping_interval: Duration::from_millis(50),
            seed: 0x5EED,
        }
    }
}

impl FaultSpec {
    /// A faultless wire.
    pub fn none() -> Self {
        Self::default()
    }
}

/// Statistics accumulated by a wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    pub forwarded: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub reordered: u64,
    /// Extra copies injected by duplication (each counted in `forwarded`
    /// too, if delivered).
    pub duplicated: u64,
    /// Packets that spent at least one pump in the delay line.
    pub delayed: u64,
    pub rate_limited: u64,
}

/// A unidirectional pump from one port's output to another port's input.
pub struct Wire {
    from: Port,
    to: Port,
    spec: FaultSpec,
    rng: StdRng,
    tokens: u32,
    clock: Clock,
    last_refill_ns: u64,
    stats: WireStats,
    scratch: Vec<Mbuf>,
    /// In-flight packets: `(due_pump, frame)`, FIFO by intake order.
    delay_line: VecDeque<(u64, Mbuf)>,
    /// Pump calls so far; the time base of the delay line.
    pump_seq: u64,
    severed: bool,
    partitioned: bool,
}

impl Wire {
    /// Build a wire that forwards everything `from` transmits into `to`.
    ///
    /// `from` here is the *far end* of the source port pair (the end whose
    /// rx ring sees the source's tx traffic), and `to` is the far end of
    /// the destination pair.
    pub fn new(from: Port, to: Port, spec: FaultSpec) -> Self {
        let tokens = spec.rate_limit.unwrap_or(u32::MAX);
        let rng = StdRng::seed_from_u64(spec.seed);
        let clock = Clock::new();
        Wire {
            from,
            to,
            spec,
            rng,
            tokens,
            last_refill_ns: clock.now_ns(),
            clock,
            stats: WireStats::default(),
            scratch: Vec::with_capacity(64),
            delay_line: VecDeque::new(),
            pump_seq: 0,
            severed: false,
            partitioned: false,
        }
    }

    /// Substitute the clock the token-bucket shaper reads (a virtual
    /// clock makes rate-limit refills deterministic under simulation).
    pub fn set_clock(&mut self, clock: Clock) {
        self.last_refill_ns = clock.now_ns();
        self.clock = clock;
    }

    /// Permanently cut the wire: everything pumped from now on — including
    /// frames already queued at the source or sitting in the delay line —
    /// is counted as dropped. This is how fault injection models a node
    /// crash, as opposed to the probabilistic losses of [`FaultSpec`] or a
    /// healable [`Wire::set_partitioned`] partition.
    pub fn sever(&mut self) {
        self.severed = true;
        self.stats.dropped += self.delay_line.len() as u64;
        self.delay_line.clear();
    }

    /// Whether [`Wire::sever`] has been called.
    pub fn is_severed(&self) -> bool {
        self.severed
    }

    /// Partition (`true`) or heal (`false`) the wire. While partitioned a
    /// pump moves nothing: frames wait at the source and in the delay
    /// line, and resume flowing after the heal — late, but intact.
    pub fn set_partitioned(&mut self, on: bool) {
        self.partitioned = on;
    }

    /// Whether the wire is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Update the fault parameters mid-run (scenario DSL hook). The RNG
    /// stream and accumulated stats are preserved; the token bucket is
    /// re-armed if the rate limit changed.
    pub fn set_fault_spec(&mut self, spec: FaultSpec) {
        if spec.rate_limit != self.spec.rate_limit {
            self.tokens = spec.rate_limit.unwrap_or(u32::MAX);
        }
        self.spec = spec;
    }

    /// The current fault parameters.
    pub fn fault_spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Move packets across the wire, applying faults. At most `max`
    /// packets are taken in from the source and at most `max` delivered
    /// from the delay line. Returns how many packets were forwarded.
    pub fn pump(&mut self, max: usize) -> usize {
        if self.severed {
            self.scratch.clear();
            self.from.rx_burst(&mut self.scratch, max);
            self.stats.dropped += self.scratch.len() as u64;
            self.scratch.clear();
            return 0;
        }
        if self.partitioned {
            return 0;
        }
        self.pump_seq += 1;
        if let Some(limit) = self.spec.rate_limit {
            let now = self.clock.now_ns();
            if now.saturating_sub(self.last_refill_ns) >= self.spec.shaping_interval.as_nanos() as u64 {
                self.tokens = limit;
                self.last_refill_ns = now;
            }
        }
        // Intake: pull a burst off the source, reorder within it, then
        // append to the delay line stamped with its delivery pump.
        self.scratch.clear();
        self.from.rx_burst(&mut self.scratch, max);
        if self.spec.reorder_chance > 0.0 && self.scratch.len() > 1 {
            for i in 1..self.scratch.len() {
                if self.rng.gen_bool(self.spec.reorder_chance) {
                    self.scratch.swap(i - 1, i);
                    self.stats.reordered += 1;
                }
            }
        }
        let due = self.pump_seq + u64::from(self.spec.delay_pumps);
        for m in self.scratch.drain(..) {
            if self.spec.delay_pumps > 0 {
                self.stats.delayed += 1;
            }
            self.delay_line.push_back((due, m));
        }
        // Delivery: everything whose due pump has arrived, oldest first.
        let mut forwarded = 0;
        while forwarded < max {
            match self.delay_line.front() {
                Some(&(d, _)) if d <= self.pump_seq => {}
                _ => break,
            }
            let (_, mut m) = self.delay_line.pop_front().expect("checked front");
            if self.spec.rate_limit.is_some() {
                if self.tokens == 0 {
                    self.stats.rate_limited += 1;
                    continue;
                }
                self.tokens -= 1;
            }
            if self.spec.drop_chance > 0.0 && self.rng.gen_bool(self.spec.drop_chance) {
                self.stats.dropped += 1;
                continue;
            }
            if self.spec.corrupt_chance > 0.0 && !m.is_empty() && self.rng.gen_bool(self.spec.corrupt_chance) {
                let idx = self.rng.gen_range(0..m.len());
                m.data_mut()[idx] ^= 0xFF;
                self.stats.corrupted += 1;
            }
            let dup =
                if self.spec.duplicate_chance > 0.0 { self.rng.gen_bool(self.spec.duplicate_chance) } else { false };
            if dup {
                self.stats.duplicated += 1;
                if self.to.tx(m.clone()) {
                    forwarded += 1;
                }
            }
            if self.to.tx(m) {
                forwarded += 1;
            }
        }
        self.stats.forwarded += forwarded as u64;
        forwarded
    }

    /// Packets currently sitting in the delay line (in flight).
    pub fn in_flight(&self) -> usize {
        self.delay_line.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WireStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::PortPair;

    /// Build (source port, wire, sink port): the source's transmissions
    /// cross the wire and arrive at the sink.
    fn rig(spec: FaultSpec) -> (Port, Wire, Port) {
        let (src, src_far) = PortPair::new(1024);
        let (sink_far, sink) = PortPair::new(1024);
        (src, Wire::new(src_far, sink_far, spec), sink)
    }

    #[test]
    fn clean_wire_forwards_everything() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec::none());
        for i in 0..100u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        let n = wire.pump(1000);
        assert_eq!(n, 100);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 1000);
        assert_eq!(out.len(), 100);
        assert_eq!(out[57].data(), &[57]);
        assert_eq!(wire.stats().forwarded, 100);
    }

    #[test]
    fn drop_chance_drops_roughly_that_fraction() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { drop_chance: 0.5, ..FaultSpec::default() });
        for _ in 0..1000 {
            src.tx(Mbuf::from_payload(&[0]));
        }
        while wire.pump(64) > 0 || wire.stats().forwarded + wire.stats().dropped < 1000 {
            if wire.stats().forwarded + wire.stats().dropped >= 1000 {
                break;
            }
        }
        let s = wire.stats();
        assert_eq!(s.forwarded + s.dropped, 1000);
        assert!((300..700).contains(&(s.dropped as usize)), "dropped {}", s.dropped);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 2000);
        assert_eq!(out.len() as u64, s.forwarded);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { corrupt_chance: 1.0, ..FaultSpec::default() });
        src.tx(Mbuf::from_payload(&[0u8; 32]));
        wire.pump(10);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 10);
        let flipped: usize = out[0].data().iter().filter(|&&b| b != 0).count();
        assert_eq!(flipped, 1);
        assert_eq!(wire.stats().corrupted, 1);
    }

    #[test]
    fn rate_limit_caps_a_burst() {
        let (mut src, mut wire, _sink) = rig(FaultSpec {
            rate_limit: Some(10),
            shaping_interval: Duration::from_secs(3600), // never refills in-test
            ..FaultSpec::default()
        });
        for _ in 0..50 {
            src.tx(Mbuf::new());
        }
        wire.pump(100);
        let s = wire.stats();
        assert_eq!(s.forwarded, 10);
        assert_eq!(s.rate_limited, 40);
    }

    #[test]
    fn rate_limit_refills_on_a_virtual_clock() {
        let v = crate::clock::VirtualClock::new();
        let (mut src, mut wire, _sink) =
            rig(FaultSpec { rate_limit: Some(10), shaping_interval: Duration::from_millis(1), ..FaultSpec::default() });
        wire.set_clock(v.clock());
        let feed = |src: &mut Port| {
            for _ in 0..30 {
                src.tx(Mbuf::new());
            }
        };
        feed(&mut src);
        wire.pump(100);
        assert_eq!(wire.stats().forwarded, 10, "first interval's tokens");
        feed(&mut src);
        wire.pump(100);
        assert_eq!(wire.stats().forwarded, 10, "no refill until virtual time moves");
        v.advance_ns(1_000_000);
        feed(&mut src);
        wire.pump(100);
        assert_eq!(wire.stats().forwarded, 20, "refill after one virtual interval");
    }

    #[test]
    fn seeded_faults_are_reproducible() {
        let run = || {
            let (mut src, mut wire, _sink) = rig(FaultSpec { drop_chance: 0.3, seed: 42, ..FaultSpec::default() });
            for _ in 0..200 {
                src.tx(Mbuf::new());
            }
            wire.pump(500);
            wire.stats().dropped
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reordering_permutes_but_conserves() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { reorder_chance: 0.5, seed: 7, ..FaultSpec::default() });
        for i in 0..200u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        wire.pump(500);
        let s = wire.stats();
        assert_eq!(s.forwarded, 200, "reordering must not lose packets");
        assert!(s.reordered > 0, "expected some swaps at 50%");
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 500);
        let mut seen: Vec<u8> = out.iter().map(|m| m.data()[0]).collect();
        assert_ne!(seen, (0..200).collect::<Vec<_>>(), "order should change");
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>(), "same multiset");
    }

    #[test]
    fn severed_wire_drops_everything_including_queued_frames() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec::none());
        for i in 0..10u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        wire.sever();
        assert!(wire.is_severed());
        assert_eq!(wire.pump(100), 0);
        src.tx(Mbuf::from_payload(&[99]));
        assert_eq!(wire.pump(100), 0);
        let s = wire.stats();
        assert_eq!(s.forwarded, 0);
        assert_eq!(s.dropped, 11);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 100);
        assert!(out.is_empty());
    }

    #[test]
    fn sever_loses_the_delay_line_too() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { delay_pumps: 5, ..FaultSpec::default() });
        for _ in 0..4 {
            src.tx(Mbuf::new());
        }
        wire.pump(100); // intake only; nothing due for 5 pumps
        assert_eq!(wire.in_flight(), 4);
        wire.sever();
        assert_eq!(wire.in_flight(), 0);
        assert_eq!(wire.stats().dropped, 4, "in-flight frames die with the wire");
        wire.pump(100);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 100);
        assert!(out.is_empty());
    }

    #[test]
    fn pump_respects_max() {
        let (mut src, mut wire, _sink) = rig(FaultSpec::none());
        for _ in 0..100 {
            src.tx(Mbuf::new());
        }
        assert_eq!(wire.pump(30), 30);
        assert_eq!(wire.pump(30), 30);
        assert_eq!(wire.pump(100), 40);
    }

    #[test]
    fn delay_holds_packets_for_exactly_n_pumps() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { delay_pumps: 3, ..FaultSpec::default() });
        src.tx(Mbuf::from_payload(&[1]));
        assert_eq!(wire.pump(10), 0, "pump 1: intake, due at pump 4");
        src.tx(Mbuf::from_payload(&[2]));
        assert_eq!(wire.pump(10), 0, "pump 2: second intake, due at pump 5");
        assert_eq!(wire.pump(10), 0, "pump 3");
        assert_eq!(wire.in_flight(), 2);
        assert_eq!(wire.pump(10), 1, "pump 4: first packet due");
        assert_eq!(wire.pump(10), 1, "pump 5: second packet due");
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].data(), &[1], "delay preserves order");
        assert_eq!(out[1].data(), &[2]);
        let s = wire.stats();
        assert_eq!(s.delayed, 2);
        assert_eq!(s.forwarded, 2);
    }

    #[test]
    fn delayed_wire_conserves_packets() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { delay_pumps: 2, ..FaultSpec::default() });
        for i in 0..50u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        let mut total = 0;
        for _ in 0..60 {
            total += wire.pump(8);
        }
        assert_eq!(total, 50);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 100);
        let seen: Vec<u8> = out.iter().map(|m| m.data()[0]).collect();
        assert_eq!(seen, (0..50).collect::<Vec<_>>(), "delay alone never reorders");
    }

    #[test]
    fn duplicate_delivers_the_copy_adjacent_to_the_original() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { duplicate_chance: 1.0, ..FaultSpec::default() });
        for i in 0..5u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        let n = wire.pump(100);
        assert_eq!(n, 10, "every packet delivered twice");
        let s = wire.stats();
        assert_eq!(s.duplicated, 5);
        assert_eq!(s.forwarded, 10);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 100);
        let seen: Vec<u8> = out.iter().map(|m| m.data()[0]).collect();
        assert_eq!(seen, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn duplicate_chance_is_seeded_and_partial() {
        let run = || {
            let (mut src, mut wire, _sink) = rig(FaultSpec { duplicate_chance: 0.4, seed: 11, ..FaultSpec::default() });
            for _ in 0..500 {
                src.tx(Mbuf::new());
            }
            wire.pump(2000);
            wire.stats()
        };
        let s = run();
        assert!((100..300).contains(&(s.duplicated as usize)), "duplicated {}", s.duplicated);
        assert_eq!(s.forwarded, 500 + s.duplicated);
        assert_eq!(run(), s, "same seed, same duplications");
    }

    #[test]
    fn partition_freezes_and_heal_releases() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec::none());
        for i in 0..10u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        wire.set_partitioned(true);
        assert!(wire.is_partitioned());
        assert_eq!(wire.pump(100), 0);
        assert_eq!(wire.pump(100), 0);
        assert_eq!(wire.stats().forwarded, 0);
        assert_eq!(wire.stats().dropped, 0, "partition loses nothing by itself");
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 100);
        assert!(out.is_empty(), "nothing crosses a partitioned wire");

        wire.set_partitioned(false);
        assert_eq!(wire.pump(100), 10, "queued frames flow after the heal");
        sink.rx_burst(&mut out, 100);
        assert_eq!(out.len(), 10);
        assert_eq!(out[3].data(), &[3], "order preserved across the partition");
    }

    #[test]
    fn set_fault_spec_midstream_changes_behaviour() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec::none());
        src.tx(Mbuf::from_payload(&[1]));
        assert_eq!(wire.pump(10), 1);
        wire.set_fault_spec(FaultSpec { drop_chance: 1.0, ..FaultSpec::default() });
        src.tx(Mbuf::from_payload(&[2]));
        assert_eq!(wire.pump(10), 0);
        assert_eq!(wire.stats().dropped, 1);
        wire.set_fault_spec(FaultSpec::none());
        src.tx(Mbuf::from_payload(&[3]));
        assert_eq!(wire.pump(10), 1);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 10);
        assert_eq!(out.len(), 2);
    }
}
