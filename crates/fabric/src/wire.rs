//! Wires: pumps that move packets between ports with optional fault
//! injection (drop / corrupt / rate-limit), mirroring the fault-injection
//! discipline of the smoltcp examples (`--drop-chance`, `--corrupt-chance`,
//! `--tx-rate-limit`).
//!
//! A [`Wire`] is driven explicitly by calling [`Wire::pump`]; tests and the
//! traffic generator call it from their poll loops, keeping the whole
//! fabric deterministic and single-threaded unless threads are wanted.

use crate::port::Port;
use pepc_net::Mbuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Fault-injection configuration for a wire.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Probability in [0,1] that a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability in [0,1] that one random byte of a packet is flipped.
    pub corrupt_chance: f64,
    /// Probability in [0,1] that a packet is swapped with its successor
    /// within the same pumped burst (adjacent reordering).
    pub reorder_chance: f64,
    /// Token-bucket rate limit in packets per refill interval;
    /// `None` = unlimited.
    pub rate_limit: Option<u32>,
    /// Refill interval for the token bucket.
    pub shaping_interval: Duration,
    /// Seed for the fault RNG, so tests are reproducible.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            reorder_chance: 0.0,
            rate_limit: None,
            shaping_interval: Duration::from_millis(50),
            seed: 0x5EED,
        }
    }
}

impl FaultSpec {
    /// A faultless wire.
    pub fn none() -> Self {
        Self::default()
    }
}

/// Statistics accumulated by a wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    pub forwarded: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub reordered: u64,
    pub rate_limited: u64,
}

/// A unidirectional pump from one port's output to another port's input.
pub struct Wire {
    from: Port,
    to: Port,
    spec: FaultSpec,
    rng: StdRng,
    tokens: u32,
    last_refill: Instant,
    stats: WireStats,
    scratch: Vec<Mbuf>,
    severed: bool,
}

impl Wire {
    /// Build a wire that forwards everything `from` transmits into `to`.
    ///
    /// `from` here is the *far end* of the source port pair (the end whose
    /// rx ring sees the source's tx traffic), and `to` is the far end of
    /// the destination pair.
    pub fn new(from: Port, to: Port, spec: FaultSpec) -> Self {
        let tokens = spec.rate_limit.unwrap_or(u32::MAX);
        let rng = StdRng::seed_from_u64(spec.seed);
        Wire {
            from,
            to,
            spec,
            rng,
            tokens,
            last_refill: Instant::now(),
            stats: WireStats::default(),
            scratch: Vec::with_capacity(64),
            severed: false,
        }
    }

    /// Permanently cut the wire: everything pumped from now on — including
    /// frames already queued at the source — is counted as dropped. This is
    /// how fault injection models a node crash or network partition, as
    /// opposed to the probabilistic losses of [`FaultSpec`].
    pub fn sever(&mut self) {
        self.severed = true;
    }

    /// Whether [`Wire::sever`] has been called.
    pub fn is_severed(&self) -> bool {
        self.severed
    }

    /// Move up to `max` packets across the wire, applying faults.
    /// Returns how many packets were forwarded.
    pub fn pump(&mut self, max: usize) -> usize {
        if self.severed {
            self.scratch.clear();
            self.from.rx_burst(&mut self.scratch, max);
            self.stats.dropped += self.scratch.len() as u64;
            self.scratch.clear();
            return 0;
        }
        if let Some(limit) = self.spec.rate_limit {
            if self.last_refill.elapsed() >= self.spec.shaping_interval {
                self.tokens = limit;
                self.last_refill = Instant::now();
            }
        }
        self.scratch.clear();
        self.from.rx_burst(&mut self.scratch, max);
        if self.spec.reorder_chance > 0.0 && self.scratch.len() > 1 {
            for i in 1..self.scratch.len() {
                if self.rng.gen_bool(self.spec.reorder_chance) {
                    self.scratch.swap(i - 1, i);
                    self.stats.reordered += 1;
                }
            }
        }
        let mut forwarded = 0;
        for mut m in self.scratch.drain(..) {
            if self.spec.rate_limit.is_some() {
                if self.tokens == 0 {
                    self.stats.rate_limited += 1;
                    continue;
                }
                self.tokens -= 1;
            }
            if self.spec.drop_chance > 0.0 && self.rng.gen_bool(self.spec.drop_chance) {
                self.stats.dropped += 1;
                continue;
            }
            if self.spec.corrupt_chance > 0.0 && !m.is_empty() && self.rng.gen_bool(self.spec.corrupt_chance) {
                let idx = self.rng.gen_range(0..m.len());
                m.data_mut()[idx] ^= 0xFF;
                self.stats.corrupted += 1;
            }
            if self.to.tx(m) {
                forwarded += 1;
            }
        }
        self.stats.forwarded += forwarded as u64;
        forwarded
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WireStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::PortPair;

    /// Build (source port, wire, sink port): the source's transmissions
    /// cross the wire and arrive at the sink.
    fn rig(spec: FaultSpec) -> (Port, Wire, Port) {
        let (src, src_far) = PortPair::new(1024);
        let (sink_far, sink) = PortPair::new(1024);
        (src, Wire::new(src_far, sink_far, spec), sink)
    }

    #[test]
    fn clean_wire_forwards_everything() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec::none());
        for i in 0..100u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        let n = wire.pump(1000);
        assert_eq!(n, 100);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 1000);
        assert_eq!(out.len(), 100);
        assert_eq!(out[57].data(), &[57]);
        assert_eq!(wire.stats().forwarded, 100);
    }

    #[test]
    fn drop_chance_drops_roughly_that_fraction() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { drop_chance: 0.5, ..FaultSpec::default() });
        for _ in 0..1000 {
            src.tx(Mbuf::from_payload(&[0]));
        }
        while wire.pump(64) > 0 || wire.stats().forwarded + wire.stats().dropped < 1000 {
            if wire.stats().forwarded + wire.stats().dropped >= 1000 {
                break;
            }
        }
        let s = wire.stats();
        assert_eq!(s.forwarded + s.dropped, 1000);
        assert!((300..700).contains(&(s.dropped as usize)), "dropped {}", s.dropped);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 2000);
        assert_eq!(out.len() as u64, s.forwarded);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { corrupt_chance: 1.0, ..FaultSpec::default() });
        src.tx(Mbuf::from_payload(&[0u8; 32]));
        wire.pump(10);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 10);
        let flipped: usize = out[0].data().iter().filter(|&&b| b != 0).count();
        assert_eq!(flipped, 1);
        assert_eq!(wire.stats().corrupted, 1);
    }

    #[test]
    fn rate_limit_caps_a_burst() {
        let (mut src, mut wire, _sink) = rig(FaultSpec {
            rate_limit: Some(10),
            shaping_interval: Duration::from_secs(3600), // never refills in-test
            ..FaultSpec::default()
        });
        for _ in 0..50 {
            src.tx(Mbuf::new());
        }
        wire.pump(100);
        let s = wire.stats();
        assert_eq!(s.forwarded, 10);
        assert_eq!(s.rate_limited, 40);
    }

    #[test]
    fn seeded_faults_are_reproducible() {
        let run = || {
            let (mut src, mut wire, _sink) = rig(FaultSpec { drop_chance: 0.3, seed: 42, ..FaultSpec::default() });
            for _ in 0..200 {
                src.tx(Mbuf::new());
            }
            wire.pump(500);
            wire.stats().dropped
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reordering_permutes_but_conserves() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec { reorder_chance: 0.5, seed: 7, ..FaultSpec::default() });
        for i in 0..200u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        wire.pump(500);
        let s = wire.stats();
        assert_eq!(s.forwarded, 200, "reordering must not lose packets");
        assert!(s.reordered > 0, "expected some swaps at 50%");
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 500);
        let mut seen: Vec<u8> = out.iter().map(|m| m.data()[0]).collect();
        assert_ne!(seen, (0..200).collect::<Vec<_>>(), "order should change");
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>(), "same multiset");
    }

    #[test]
    fn severed_wire_drops_everything_including_queued_frames() {
        let (mut src, mut wire, mut sink) = rig(FaultSpec::none());
        for i in 0..10u8 {
            src.tx(Mbuf::from_payload(&[i]));
        }
        wire.sever();
        assert!(wire.is_severed());
        assert_eq!(wire.pump(100), 0);
        src.tx(Mbuf::from_payload(&[99]));
        assert_eq!(wire.pump(100), 0);
        let s = wire.stats();
        assert_eq!(s.forwarded, 0);
        assert_eq!(s.dropped, 11);
        let mut out = Vec::new();
        sink.rx_burst(&mut out, 100);
        assert!(out.is_empty());
    }

    #[test]
    fn pump_respects_max() {
        let (mut src, mut wire, _sink) = rig(FaultSpec::none());
        for _ in 0..100 {
            src.tx(Mbuf::new());
        }
        assert_eq!(wire.pump(30), 30);
        assert_eq!(wire.pump(30), 30);
        assert_eq!(wire.pump(100), 40);
    }
}
