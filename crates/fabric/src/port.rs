//! Virtual NIC ports.
//!
//! A [`Port`] is one end of a virtual link: packets are received from an
//! rx ring and transmitted into a tx ring, in bursts, exactly like a DPDK
//! poll-mode driver queue pair. [`PortPair::new`] creates two connected
//! ports (a patch cable), which is how the traffic generator plugs into a
//! PEPC node in tests and benchmarks.

use crate::ring::{Consumer, Producer, SpscRing};
use pepc_net::Mbuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default queue depth for a port, matching common NIC descriptor counts.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Shared transmit/receive counters for a port.
#[derive(Debug, Default)]
pub struct PortStats {
    pub rx_packets: AtomicU64,
    pub rx_bytes: AtomicU64,
    pub tx_packets: AtomicU64,
    pub tx_bytes: AtomicU64,
    /// Packets dropped because the tx ring was full (back-pressure).
    pub tx_drops: AtomicU64,
}

impl PortStats {
    pub fn snapshot(&self) -> PortStatsSnapshot {
        PortStatsSnapshot {
            rx_packets: self.rx_packets.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            tx_packets: self.tx_packets.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            tx_drops: self.tx_drops.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PortStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStatsSnapshot {
    pub rx_packets: u64,
    pub rx_bytes: u64,
    pub tx_packets: u64,
    pub tx_bytes: u64,
    pub tx_drops: u64,
}

/// One end of a virtual link.
pub struct Port {
    rx: Consumer<Mbuf>,
    tx: Producer<Mbuf>,
    stats: Arc<PortStats>,
}

impl Port {
    /// Receive up to `max` packets into `out`; returns the burst size.
    pub fn rx_burst(&mut self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let before = out.len();
        let n = self.rx.pop_burst(out, max);
        if n > 0 {
            let bytes: u64 = out[before..].iter().map(|m| m.len() as u64).sum();
            self.stats.rx_packets.fetch_add(n as u64, Ordering::Relaxed);
            self.stats.rx_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        n
    }

    /// Receive a single packet if one is waiting.
    pub fn rx_one(&mut self) -> Option<Mbuf> {
        let m = self.rx.pop()?;
        self.stats.rx_packets.fetch_add(1, Ordering::Relaxed);
        self.stats.rx_bytes.fetch_add(m.len() as u64, Ordering::Relaxed);
        Some(m)
    }

    /// Transmit one packet; a full ring counts as a tail drop (as a NIC
    /// with exhausted descriptors would drop).
    pub fn tx(&mut self, m: Mbuf) -> bool {
        let len = m.len() as u64;
        match self.tx.push(m) {
            Ok(()) => {
                self.stats.tx_packets.fetch_add(1, Ordering::Relaxed);
                self.stats.tx_bytes.fetch_add(len, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.stats.tx_drops.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Transmit a burst, draining `pkts`; packets that do not fit are
    /// dropped and counted. Returns how many were sent.
    pub fn tx_burst(&mut self, pkts: &mut Vec<Mbuf>) -> usize {
        let total = pkts.len();
        let mut it = pkts.drain(..);
        let mut sent_bytes = 0u64;
        // Count bytes as we hand packets to the ring via a wrapping iterator.
        let mut counting = (&mut it).inspect(|m| {
            sent_bytes += m.len() as u64;
        });
        let sent = self.tx.push_burst(&mut counting);
        // Items pulled from `counting` but rejected by a full ring were
        // returned via Err inside push_burst? No: push_burst checks space
        // *before* pulling, so every pulled item was enqueued.
        drop(counting);
        let dropped = it.count(); // remainder did not fit
        debug_assert_eq!(sent + dropped, total);
        self.stats.tx_packets.fetch_add(sent as u64, Ordering::Relaxed);
        self.stats.tx_bytes.fetch_add(sent_bytes, Ordering::Relaxed);
        if dropped > 0 {
            self.stats.tx_drops.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        sent
    }

    /// Packets waiting in the receive ring.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Depth/capacity gauges for both rings of this port, for telemetry
    /// snapshots. `name` prefixes the ring labels (`<name>_rx`,
    /// `<name>_tx`).
    pub fn gauges(&self, name: &str) -> Vec<pepc_telemetry::RingGauge> {
        vec![
            self.rx.gauge(&format!("{name}_rx")),
            pepc_telemetry::RingGauge {
                name: format!("{name}_tx"),
                depth: self.tx.len() as u64,
                capacity: self.tx.capacity() as u64,
            },
        ]
    }

    /// Shared statistics handle (cloneable, readable from other threads).
    pub fn stats(&self) -> Arc<PortStats> {
        Arc::clone(&self.stats)
    }
}

/// A pair of connected ports, i.e. a patch cable.
pub struct PortPair;

impl PortPair {
    /// Create two ports wired back-to-back with `depth`-entry queues:
    /// whatever `a` transmits, `b` receives, and vice versa.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(depth: usize) -> (Port, Port) {
        let (a_tx, b_rx) = SpscRing::with_capacity(depth);
        let (b_tx, a_rx) = SpscRing::with_capacity(depth);
        (
            Port { rx: a_rx, tx: a_tx, stats: Arc::new(PortStats::default()) },
            Port { rx: b_rx, tx: b_tx, stats: Arc::new(PortStats::default()) },
        )
    }

    /// Create a unidirectional link: returns (tx-only producer port end,
    /// rx-only consumer port end) sharing one ring. The "unused" direction
    /// of each port is a zero-capacity stub.
    pub fn simplex(depth: usize) -> (Port, Port) {
        let (tx, rx) = SpscRing::with_capacity(depth);
        let (stub_tx, stub_rx) = SpscRing::with_capacity(2);
        (
            Port { rx: stub_rx, tx, stats: Arc::new(PortStats::default()) },
            Port { rx, tx: stub_tx, stats: Arc::new(PortStats::default()) },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_cable_carries_both_directions() {
        let (mut a, mut b) = PortPair::new(16);
        assert!(a.tx(Mbuf::from_payload(b"to-b")));
        assert!(b.tx(Mbuf::from_payload(b"to-a")));
        assert_eq!(b.rx_one().unwrap().data(), b"to-b");
        assert_eq!(a.rx_one().unwrap().data(), b"to-a");
        assert!(a.rx_one().is_none());
    }

    #[test]
    fn stats_count_packets_and_bytes() {
        let (mut a, mut b) = PortPair::new(16);
        a.tx(Mbuf::from_payload(&[0u8; 64]));
        a.tx(Mbuf::from_payload(&[0u8; 128]));
        let mut out = Vec::new();
        b.rx_burst(&mut out, 32);
        let sa = a.stats().snapshot();
        let sb = b.stats().snapshot();
        assert_eq!(sa.tx_packets, 2);
        assert_eq!(sa.tx_bytes, 192);
        assert_eq!(sb.rx_packets, 2);
        assert_eq!(sb.rx_bytes, 192);
        assert_eq!(sa.tx_drops, 0);
    }

    #[test]
    fn full_ring_counts_tail_drops() {
        let (mut a, _b) = PortPair::new(2);
        assert!(a.tx(Mbuf::new()));
        assert!(a.tx(Mbuf::new()));
        assert!(!a.tx(Mbuf::new()));
        assert_eq!(a.stats().snapshot().tx_drops, 1);
    }

    #[test]
    fn tx_burst_partial_fit() {
        let (mut a, mut b) = PortPair::new(4);
        let mut pkts: Vec<Mbuf> = (0..10).map(|_| Mbuf::from_payload(&[1u8; 10])).collect();
        let sent = a.tx_burst(&mut pkts);
        assert_eq!(sent, 4);
        assert!(pkts.is_empty(), "tx_burst consumes the input");
        let s = a.stats().snapshot();
        assert_eq!(s.tx_packets, 4);
        assert_eq!(s.tx_drops, 6);
        let mut out = Vec::new();
        assert_eq!(b.rx_burst(&mut out, 32), 4);
    }

    #[test]
    fn rx_pending_reflects_queue() {
        let (mut a, b) = PortPair::new(8);
        assert_eq!(b.rx_pending(), 0);
        a.tx(Mbuf::new());
        a.tx(Mbuf::new());
        assert_eq!(b.rx_pending(), 2);
    }

    #[test]
    fn port_gauges_cover_both_rings() {
        let (mut a, b) = PortPair::new(8);
        a.tx(Mbuf::new());
        a.tx(Mbuf::new());
        a.tx(Mbuf::new());
        let gauges = b.gauges("enb");
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0].name, "enb_rx");
        assert_eq!(gauges[0].depth, 3);
        assert_eq!(gauges[0].capacity, 8);
        assert_eq!(gauges[1].name, "enb_tx");
        assert_eq!(gauges[1].depth, 0);
    }

    #[test]
    fn simplex_link_flows_one_way() {
        let (mut tx_end, mut rx_end) = PortPair::simplex(8);
        assert!(tx_end.tx(Mbuf::from_payload(b"x")));
        assert_eq!(rx_end.rx_one().unwrap().data(), b"x");
    }

    #[test]
    fn burst_rx_respects_max() {
        let (mut a, mut b) = PortPair::new(64);
        for _ in 0..20 {
            a.tx(Mbuf::new());
        }
        let mut out = Vec::new();
        assert_eq!(b.rx_burst(&mut out, 8), 8);
        assert_eq!(b.rx_burst(&mut out, 8), 8);
        assert_eq!(b.rx_burst(&mut out, 8), 4);
    }
}
