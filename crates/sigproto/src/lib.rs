// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! # pepc-sigproto — cellular signaling protocols
//!
//! Everything a software EPC speaks on its control interfaces:
//!
//! * [`sctp`] — SCTP-lite, the transport under S1AP on the S1-MME
//!   interface (3GPP mandates SCTP; the paper used the Linux kernel's
//!   implementation and found it a bottleneck — see
//!   [`sctp::SerializedService`], which reproduces that bottleneck for
//!   Figure 11).
//! * [`s1ap`] — the S1 Application Protocol between eNodeB and MME:
//!   initial UE messages, NAS transport, context setup, path switch
//!   (X2 handover) and S1 handover messages.
//! * [`nas`] — Non-Access-Stratum EMM messages (attach, authentication,
//!   security mode, detach, tracking-area update) that ride inside S1AP.
//! * [`diameter`] — Diameter-lite for the S6a interface to the HSS
//!   (authentication-information and update-location exchanges).
//! * [`gx`] — Gx-lite credit-control messages to the PCRF.
//!
//! Encodings are compact binary layouts that preserve the *information
//! content and message flow* of the 3GPP protocols rather than their full
//! ASN.1/TLV grammars; every codec is exercised by round-trip and
//! malformed-input tests.

pub mod diameter;
pub mod gx;
pub mod nas;
pub mod s1ap;
pub mod sctp;

pub use diameter::DiameterMsg;
pub use gx::GxMsg;
pub use nas::NasMsg;
pub use s1ap::S1apPdu;
pub use sctp::{AssocState, Association, SctpChunk, SctpPacket};

/// Errors raised by signaling codecs and state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigError {
    /// Input ended before the structure was complete.
    Truncated(&'static str),
    /// A tag/type value is unknown.
    UnknownType(&'static str, u32),
    /// A message arrived that the state machine cannot accept in its
    /// current state.
    BadState(&'static str),
    /// Verification of cookie/digest failed.
    BadCookie,
    /// A field value is out of its legal range.
    BadValue(&'static str),
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::Truncated(w) => write!(f, "truncated {w}"),
            SigError::UnknownType(w, v) => write!(f, "unknown {w} type {v:#x}"),
            SigError::BadState(w) => write!(f, "message not allowed in state: {w}"),
            SigError::BadCookie => write!(f, "cookie verification failed"),
            SigError::BadValue(w) => write!(f, "illegal value for {w}"),
        }
    }
}

impl std::error::Error for SigError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SigError>;

pub(crate) mod wire {
    //! Byte-level read helpers shared by the codecs.
    use super::SigError;

    pub fn need(buf: &[u8], n: usize, what: &'static str) -> Result<(), SigError> {
        if buf.len() < n {
            Err(SigError::Truncated(what))
        } else {
            Ok(())
        }
    }

    pub fn u16_at(buf: &[u8], o: usize) -> u16 {
        u16::from_be_bytes([buf[o], buf[o + 1]])
    }

    pub fn u32_at(buf: &[u8], o: usize) -> u32 {
        u32::from_be_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
    }

    pub fn u64_at(buf: &[u8], o: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[o..o + 8]);
        u64::from_be_bytes(b)
    }
}
