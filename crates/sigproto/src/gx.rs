//! Gx-lite: credit-control between the PCEF (in the P-GW / PEPC data
//! plane) and the PCRF.
//!
//! The Gx interface (TS 29.212) installs charging/policy rules at session
//! establishment and reports usage back. Two exchanges:
//!
//! * **CCR-Initial / CCA-Initial** — at attach, the PCEF asks the PCRF for
//!   the subscriber's rules; the answer carries rule definitions
//!   (5-tuple-ish filters plus a QoS class and rate limit).
//! * **CCR-Update / CCA-Update** — periodic usage reporting; the PCRF may
//!   push updated rate limits.

use crate::wire::{need, u16_at, u32_at, u64_at};
use crate::{Result, SigError};

/// One policy/charging rule as carried on Gx: a destination-port match and
/// the treatment for matching traffic. (Real Gx carries IPFilterRule
/// strings; the match dimensions here are what the PCEF's BPF programs
/// consume.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GxRule {
    /// Rule identifier (also the PCEF match-action verdict).
    pub rule_id: u32,
    /// IP protocol to match (0 = any).
    pub proto: u8,
    /// Destination port range [lo, hi); lo == hi == 0 matches any port.
    pub dst_port_lo: u16,
    pub dst_port_hi: u16,
    /// QoS class identifier for matching traffic.
    pub qci: u8,
    /// Rate limit (kbps) for matching traffic; 0 = unlimited.
    pub rate_kbps: u32,
}

impl GxRule {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rule_id.to_be_bytes());
        out.push(self.proto);
        out.extend_from_slice(&self.dst_port_lo.to_be_bytes());
        out.extend_from_slice(&self.dst_port_hi.to_be_bytes());
        out.push(self.qci);
        out.extend_from_slice(&self.rate_kbps.to_be_bytes());
    }

    const WIRE_LEN: usize = 14;

    fn decode_at(buf: &[u8], off: usize) -> Result<Self> {
        need(buf, off + Self::WIRE_LEN, "gx rule")?;
        Ok(GxRule {
            rule_id: u32_at(buf, off),
            proto: buf[off + 4],
            dst_port_lo: u16_at(buf, off + 5),
            dst_port_hi: u16_at(buf, off + 7),
            qci: buf[off + 9],
            rate_kbps: u32_at(buf, off + 10),
        })
    }
}

/// A Gx message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GxMsg {
    /// PCEF → PCRF at session establishment.
    CcrInitial { session_id: u32, imsi: u64 },
    /// PCRF → PCEF: install these rules.
    CcaInitial { session_id: u32, result: u32, rules: Vec<GxRule> },
    /// PCEF → PCRF: usage report.
    CcrUpdate { session_id: u32, imsi: u64, uplink_bytes: u64, downlink_bytes: u64 },
    /// PCRF → PCEF: acknowledged; optionally a new aggregate rate limit.
    CcaUpdate { session_id: u32, result: u32, new_ambr_kbps: u32 },
}

impl GxMsg {
    const T_CCR_I: u8 = 1;
    const T_CCA_I: u8 = 2;
    const T_CCR_U: u8 = 3;
    const T_CCA_U: u8 = 4;

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            GxMsg::CcrInitial { session_id, imsi } => {
                out.push(Self::T_CCR_I);
                out.extend_from_slice(&session_id.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
            }
            GxMsg::CcaInitial { session_id, result, rules } => {
                out.push(Self::T_CCA_I);
                out.extend_from_slice(&session_id.to_be_bytes());
                out.extend_from_slice(&result.to_be_bytes());
                out.push(rules.len() as u8);
                for r in rules {
                    r.encode_into(&mut out);
                }
            }
            GxMsg::CcrUpdate { session_id, imsi, uplink_bytes, downlink_bytes } => {
                out.push(Self::T_CCR_U);
                out.extend_from_slice(&session_id.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
                out.extend_from_slice(&uplink_bytes.to_be_bytes());
                out.extend_from_slice(&downlink_bytes.to_be_bytes());
            }
            GxMsg::CcaUpdate { session_id, result, new_ambr_kbps } => {
                out.push(Self::T_CCA_U);
                out.extend_from_slice(&session_id.to_be_bytes());
                out.extend_from_slice(&result.to_be_bytes());
                out.extend_from_slice(&new_ambr_kbps.to_be_bytes());
            }
        }
        out
    }

    /// Parse bytes produced by [`GxMsg::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        need(buf, 1, "gx header")?;
        match buf[0] {
            Self::T_CCR_I => {
                need(buf, 13, "ccr-i")?;
                Ok(GxMsg::CcrInitial { session_id: u32_at(buf, 1), imsi: u64_at(buf, 5) })
            }
            Self::T_CCA_I => {
                need(buf, 10, "cca-i")?;
                let n = buf[9] as usize;
                let mut rules = Vec::with_capacity(n);
                for i in 0..n {
                    rules.push(GxRule::decode_at(buf, 10 + i * GxRule::WIRE_LEN)?);
                }
                Ok(GxMsg::CcaInitial { session_id: u32_at(buf, 1), result: u32_at(buf, 5), rules })
            }
            Self::T_CCR_U => {
                need(buf, 29, "ccr-u")?;
                Ok(GxMsg::CcrUpdate {
                    session_id: u32_at(buf, 1),
                    imsi: u64_at(buf, 5),
                    uplink_bytes: u64_at(buf, 13),
                    downlink_bytes: u64_at(buf, 21),
                })
            }
            Self::T_CCA_U => {
                need(buf, 13, "cca-u")?;
                Ok(GxMsg::CcaUpdate {
                    session_id: u32_at(buf, 1),
                    result: u32_at(buf, 5),
                    new_ambr_kbps: u32_at(buf, 9),
                })
            }
            other => Err(SigError::UnknownType("gx message", other.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> Vec<GxRule> {
        vec![
            GxRule { rule_id: 1, proto: 6, dst_port_lo: 80, dst_port_hi: 81, qci: 8, rate_kbps: 5000 },
            GxRule { rule_id: 2, proto: 17, dst_port_lo: 0, dst_port_hi: 0, qci: 9, rate_kbps: 0 },
        ]
    }

    #[test]
    fn roundtrip_all() {
        let msgs = vec![
            GxMsg::CcrInitial { session_id: 1, imsi: 404_01_0000000001 },
            GxMsg::CcaInitial { session_id: 1, result: 2001, rules: rules() },
            GxMsg::CcaInitial { session_id: 1, result: 2001, rules: vec![] },
            GxMsg::CcrUpdate { session_id: 1, imsi: 2, uplink_bytes: 1 << 40, downlink_bytes: 7 },
            GxMsg::CcaUpdate { session_id: 1, result: 2001, new_ambr_kbps: 20_000 },
        ];
        for m in msgs {
            assert_eq!(GxMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn rule_count_bounds_checked() {
        let mut enc = GxMsg::CcaInitial { session_id: 1, result: 2001, rules: rules() }.encode();
        enc[9] = 50; // claim 50 rules, only 2 present
        assert!(GxMsg::decode(&enc).is_err());
    }

    #[test]
    fn truncations_rejected() {
        let enc = GxMsg::CcrUpdate { session_id: 1, imsi: 2, uplink_bytes: 3, downlink_bytes: 4 }.encode();
        for cut in 0..enc.len() {
            assert!(GxMsg::decode(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(GxMsg::decode(&[0x7F]).is_err());
    }
}
