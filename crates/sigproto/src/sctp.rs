//! SCTP-lite: the transport under S1AP on the S1-MME interface.
//!
//! 3GPP mandates SCTP for S1AP. This module implements the parts of
//! RFC 4960 an S1-MME association actually exercises:
//!
//! * the four-way handshake (INIT → INIT-ACK(cookie) → COOKIE-ECHO →
//!   COOKIE-ACK) with a verification-tag check and a stateless-cookie
//!   digest, so a listener commits no state until the cookie returns;
//! * DATA / SACK with TSN-based cumulative acknowledgement and in-order
//!   delivery per stream (out-of-order TSNs are buffered and released
//!   once the gap fills);
//! * HEARTBEAT / HEARTBEAT-ACK and SHUTDOWN / SHUTDOWN-ACK / ABORT.
//!
//! What is deliberately *not* here: multi-homing, congestion control and
//! retransmission timers — S1AP runs over reliable in-memory links in this
//! reproduction, and the paper's observation about SCTP was about CPU cost
//! per message, not loss recovery. [`SerializedService`] models the
//! kernel-SCTP serialization bottleneck the paper measured in Figure 11.

use crate::wire::{need, u16_at, u32_at};
use crate::{Result, SigError};
use std::collections::BTreeMap;

/// An SCTP chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SctpChunk {
    Init { initiate_tag: u32, initial_tsn: u32 },
    InitAck { initiate_tag: u32, initial_tsn: u32, cookie: Vec<u8> },
    CookieEcho { cookie: Vec<u8> },
    CookieAck,
    Data { tsn: u32, stream_id: u16, stream_seq: u16, payload: Vec<u8> },
    Sack { cumulative_tsn: u32 },
    Heartbeat { nonce: u32 },
    HeartbeatAck { nonce: u32 },
    Shutdown,
    ShutdownAck,
    Abort,
}

impl SctpChunk {
    fn type_byte(&self) -> u8 {
        match self {
            SctpChunk::Data { .. } => 0,
            SctpChunk::Init { .. } => 1,
            SctpChunk::InitAck { .. } => 2,
            SctpChunk::Sack { .. } => 3,
            SctpChunk::Heartbeat { .. } => 4,
            SctpChunk::HeartbeatAck { .. } => 5,
            SctpChunk::Abort => 6,
            SctpChunk::Shutdown => 7,
            SctpChunk::ShutdownAck => 8,
            SctpChunk::CookieEcho { .. } => 10,
            SctpChunk::CookieAck => 11,
        }
    }
}

/// An SCTP packet: common header plus one or more chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SctpPacket {
    pub src_port: u16,
    pub dst_port: u16,
    /// Receiver's verification tag (0 only on INIT).
    pub verification_tag: u32,
    pub chunks: Vec<SctpChunk>,
}

impl SctpPacket {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.verification_tag.to_be_bytes());
        out.push(self.chunks.len() as u8);
        for c in &self.chunks {
            out.push(c.type_byte());
            match c {
                SctpChunk::Data { tsn, stream_id, stream_seq, payload } => {
                    out.extend_from_slice(&tsn.to_be_bytes());
                    out.extend_from_slice(&stream_id.to_be_bytes());
                    out.extend_from_slice(&stream_seq.to_be_bytes());
                    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
                    out.extend_from_slice(payload);
                }
                SctpChunk::Init { initiate_tag, initial_tsn } => {
                    out.extend_from_slice(&initiate_tag.to_be_bytes());
                    out.extend_from_slice(&initial_tsn.to_be_bytes());
                }
                SctpChunk::InitAck { initiate_tag, initial_tsn, cookie } => {
                    out.extend_from_slice(&initiate_tag.to_be_bytes());
                    out.extend_from_slice(&initial_tsn.to_be_bytes());
                    out.extend_from_slice(&(cookie.len() as u16).to_be_bytes());
                    out.extend_from_slice(cookie);
                }
                SctpChunk::Sack { cumulative_tsn } => {
                    out.extend_from_slice(&cumulative_tsn.to_be_bytes());
                }
                SctpChunk::Heartbeat { nonce } | SctpChunk::HeartbeatAck { nonce } => {
                    out.extend_from_slice(&nonce.to_be_bytes());
                }
                SctpChunk::CookieEcho { cookie } => {
                    out.extend_from_slice(&(cookie.len() as u16).to_be_bytes());
                    out.extend_from_slice(cookie);
                }
                SctpChunk::CookieAck | SctpChunk::Shutdown | SctpChunk::ShutdownAck | SctpChunk::Abort => {}
            }
        }
        out
    }

    /// Parse bytes produced by [`SctpPacket::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        need(buf, 9, "sctp header")?;
        let src_port = u16_at(buf, 0);
        let dst_port = u16_at(buf, 2);
        let verification_tag = u32_at(buf, 4);
        let n_chunks = buf[8] as usize;
        let mut off = 9;
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            need(buf, off + 1, "sctp chunk type")?;
            let t = buf[off];
            off += 1;
            let chunk = match t {
                0 => {
                    need(buf, off + 10, "data chunk")?;
                    let tsn = u32_at(buf, off);
                    let stream_id = u16_at(buf, off + 4);
                    let stream_seq = u16_at(buf, off + 6);
                    let len = u16_at(buf, off + 8) as usize;
                    off += 10;
                    need(buf, off + len, "data payload")?;
                    let payload = buf[off..off + len].to_vec();
                    off += len;
                    SctpChunk::Data { tsn, stream_id, stream_seq, payload }
                }
                1 => {
                    need(buf, off + 8, "init chunk")?;
                    let c = SctpChunk::Init { initiate_tag: u32_at(buf, off), initial_tsn: u32_at(buf, off + 4) };
                    off += 8;
                    c
                }
                2 => {
                    need(buf, off + 10, "init-ack chunk")?;
                    let initiate_tag = u32_at(buf, off);
                    let initial_tsn = u32_at(buf, off + 4);
                    let len = u16_at(buf, off + 8) as usize;
                    off += 10;
                    need(buf, off + len, "init-ack cookie")?;
                    let cookie = buf[off..off + len].to_vec();
                    off += len;
                    SctpChunk::InitAck { initiate_tag, initial_tsn, cookie }
                }
                3 => {
                    need(buf, off + 4, "sack chunk")?;
                    let c = SctpChunk::Sack { cumulative_tsn: u32_at(buf, off) };
                    off += 4;
                    c
                }
                4 | 5 => {
                    need(buf, off + 4, "heartbeat chunk")?;
                    let nonce = u32_at(buf, off);
                    off += 4;
                    if t == 4 {
                        SctpChunk::Heartbeat { nonce }
                    } else {
                        SctpChunk::HeartbeatAck { nonce }
                    }
                }
                6 => SctpChunk::Abort,
                7 => SctpChunk::Shutdown,
                8 => SctpChunk::ShutdownAck,
                10 => {
                    need(buf, off + 2, "cookie-echo chunk")?;
                    let len = u16_at(buf, off) as usize;
                    off += 2;
                    need(buf, off + len, "cookie-echo cookie")?;
                    let cookie = buf[off..off + len].to_vec();
                    off += len;
                    SctpChunk::CookieEcho { cookie }
                }
                11 => SctpChunk::CookieAck,
                other => return Err(SigError::UnknownType("sctp chunk", other.into())),
            };
            chunks.push(chunk);
        }
        Ok(SctpPacket { src_port, dst_port, verification_tag, chunks })
    }
}

/// Association state (RFC 4960 §4, minus the unused shutdown sub-states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    Closed,
    CookieWait,
    CookieEchoed,
    Established,
    ShutdownSent,
}

/// Events an association reports to its user (the S1AP layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SctpEvent {
    /// The association reached `Established`.
    Up,
    /// An ordered user message was delivered on `stream_id`.
    Delivery { stream_id: u16, payload: Vec<u8> },
    /// The association closed (shutdown completed or abort received).
    Down,
}

/// Weak keyed digest for the stateless cookie. Not cryptographic — this
/// reproduction's threat model is "bugs", not attackers — but it does
/// bind the cookie to the association parameters so corruption is caught.
fn cookie_digest(secret: u64, peer_tag: u32, peer_tsn: u32) -> u64 {
    let mut h = secret ^ 0x9E37_79B9_7F4A_7C15;
    for v in [u64::from(peer_tag), u64::from(peer_tsn)] {
        h ^= v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h = h.rotate_left(31).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    }
    h
}

/// One end of an SCTP association.
///
/// The association is sans-I/O: [`Association::handle_packet`] consumes an
/// incoming packet and returns events; outgoing packets accumulate in an
/// internal queue drained by [`Association::take_outbound`]. The caller
/// moves bytes however it likes (in-memory rings here).
#[derive(Debug)]
pub struct Association {
    state: AssocState,
    /// Our verification tag (peer must echo it).
    local_tag: u32,
    /// Peer's verification tag (we echo it).
    peer_tag: u32,
    local_port: u16,
    peer_port: u16,
    /// Next TSN we will assign to outgoing DATA.
    next_tsn: u32,
    /// Highest TSN received in sequence.
    cumulative_tsn: u32,
    /// Out-of-order TSNs waiting for the gap to fill.
    reorder: BTreeMap<u32, (u16, u16, Vec<u8>)>,
    /// Per-stream next expected stream-sequence-number (ordered delivery).
    stream_rx_seq: BTreeMap<u16, u16>,
    /// Per-stream next outgoing stream-sequence-number.
    stream_tx_seq: BTreeMap<u16, u16>,
    /// Per-stream messages buffered because their stream-seq is ahead.
    stream_pending: BTreeMap<u16, BTreeMap<u16, Vec<u8>>>,
    /// Cookie secret (listener side).
    secret: u64,
    outbound: Vec<SctpPacket>,
    /// Count of DATA chunks not yet SACKed (we SACK every packet here).
    pub data_rx: u64,
    pub data_tx: u64,
}

impl Association {
    /// Create an idle association endpoint.
    pub fn new(local_port: u16, peer_port: u16, local_tag: u32, secret: u64) -> Self {
        Association {
            state: AssocState::Closed,
            local_tag,
            peer_tag: 0,
            local_port,
            peer_port,
            next_tsn: 1,
            cumulative_tsn: 0,
            reorder: BTreeMap::new(),
            stream_rx_seq: BTreeMap::new(),
            stream_tx_seq: BTreeMap::new(),
            stream_pending: BTreeMap::new(),
            secret,
            outbound: Vec::new(),
            data_rx: 0,
            data_tx: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> AssocState {
        self.state
    }

    /// Begin the handshake (client side): queues an INIT.
    pub fn connect(&mut self) -> Result<()> {
        if self.state != AssocState::Closed {
            return Err(SigError::BadState("connect"));
        }
        self.queue(0, vec![SctpChunk::Init { initiate_tag: self.local_tag, initial_tsn: self.next_tsn }]);
        self.state = AssocState::CookieWait;
        Ok(())
    }

    /// Send an ordered user message on `stream_id` (S1AP uses stream 0 for
    /// non-UE and stream 1+ for UE-associated signaling).
    pub fn send(&mut self, stream_id: u16, payload: Vec<u8>) -> Result<()> {
        if self.state != AssocState::Established {
            return Err(SigError::BadState("send"));
        }
        let seq = self.stream_tx_seq.entry(stream_id).or_insert(0);
        let chunk = SctpChunk::Data { tsn: self.next_tsn, stream_id, stream_seq: *seq, payload };
        *seq = seq.wrapping_add(1);
        self.next_tsn = self.next_tsn.wrapping_add(1);
        self.data_tx += 1;
        let tag = self.peer_tag;
        self.queue(tag, vec![chunk]);
        Ok(())
    }

    /// Begin a graceful shutdown.
    pub fn shutdown(&mut self) -> Result<()> {
        if self.state != AssocState::Established {
            return Err(SigError::BadState("shutdown"));
        }
        let tag = self.peer_tag;
        self.queue(tag, vec![SctpChunk::Shutdown]);
        self.state = AssocState::ShutdownSent;
        Ok(())
    }

    /// Abort immediately.
    pub fn abort(&mut self) {
        if self.peer_tag != 0 {
            let tag = self.peer_tag;
            self.queue(tag, vec![SctpChunk::Abort]);
        }
        self.state = AssocState::Closed;
    }

    /// Queue a heartbeat probe.
    pub fn heartbeat(&mut self, nonce: u32) -> Result<()> {
        if self.state != AssocState::Established {
            return Err(SigError::BadState("heartbeat"));
        }
        let tag = self.peer_tag;
        self.queue(tag, vec![SctpChunk::Heartbeat { nonce }]);
        Ok(())
    }

    /// Drain packets queued for transmission.
    pub fn take_outbound(&mut self) -> Vec<SctpPacket> {
        std::mem::take(&mut self.outbound)
    }

    fn queue(&mut self, tag: u32, chunks: Vec<SctpChunk>) {
        self.outbound.push(SctpPacket {
            src_port: self.local_port,
            dst_port: self.peer_port,
            verification_tag: tag,
            chunks,
        });
    }

    /// Feed one received packet through the state machine; returns the
    /// events it produced.
    pub fn handle_packet(&mut self, pkt: &SctpPacket) -> Result<Vec<SctpEvent>> {
        // Verification-tag check (RFC 4960 §8.5): INIT carries tag 0,
        // everything else must carry our tag.
        let has_init = pkt.chunks.iter().any(|c| matches!(c, SctpChunk::Init { .. }));
        if !has_init && pkt.verification_tag != self.local_tag {
            return Err(SigError::BadValue("verification tag"));
        }
        let mut events = Vec::new();
        for chunk in &pkt.chunks {
            match chunk {
                SctpChunk::Init { initiate_tag, initial_tsn } => {
                    // Listener: respond statelessly with INIT-ACK + cookie.
                    let digest = cookie_digest(self.secret, *initiate_tag, *initial_tsn);
                    let mut cookie = Vec::with_capacity(16);
                    cookie.extend_from_slice(&initiate_tag.to_be_bytes());
                    cookie.extend_from_slice(&initial_tsn.to_be_bytes());
                    cookie.extend_from_slice(&digest.to_be_bytes());
                    self.queue(
                        *initiate_tag,
                        vec![SctpChunk::InitAck { initiate_tag: self.local_tag, initial_tsn: self.next_tsn, cookie }],
                    );
                }
                SctpChunk::InitAck { initiate_tag, initial_tsn, cookie } => {
                    if self.state != AssocState::CookieWait {
                        return Err(SigError::BadState("init-ack"));
                    }
                    self.peer_tag = *initiate_tag;
                    self.cumulative_tsn = initial_tsn.wrapping_sub(1);
                    let tag = self.peer_tag;
                    self.queue(tag, vec![SctpChunk::CookieEcho { cookie: cookie.clone() }]);
                    self.state = AssocState::CookieEchoed;
                }
                SctpChunk::CookieEcho { cookie } => {
                    // Listener: verify the cookie, then instantiate state.
                    if cookie.len() != 16 {
                        return Err(SigError::BadCookie);
                    }
                    let peer_tag = u32_at(cookie, 0);
                    let peer_tsn = u32_at(cookie, 4);
                    let digest = crate::wire::u64_at(cookie, 8);
                    if digest != cookie_digest(self.secret, peer_tag, peer_tsn) {
                        return Err(SigError::BadCookie);
                    }
                    self.peer_tag = peer_tag;
                    self.cumulative_tsn = peer_tsn.wrapping_sub(1);
                    let tag = self.peer_tag;
                    self.queue(tag, vec![SctpChunk::CookieAck]);
                    if self.state != AssocState::Established {
                        self.state = AssocState::Established;
                        events.push(SctpEvent::Up);
                    }
                }
                SctpChunk::CookieAck => {
                    if self.state != AssocState::CookieEchoed {
                        return Err(SigError::BadState("cookie-ack"));
                    }
                    self.state = AssocState::Established;
                    events.push(SctpEvent::Up);
                }
                SctpChunk::Data { tsn, stream_id, stream_seq, payload } => {
                    if self.state != AssocState::Established {
                        return Err(SigError::BadState("data"));
                    }
                    self.data_rx += 1;
                    self.ingest_data(*tsn, *stream_id, *stream_seq, payload.clone(), &mut events);
                    let cum = self.cumulative_tsn;
                    let tag = self.peer_tag;
                    self.queue(tag, vec![SctpChunk::Sack { cumulative_tsn: cum }]);
                }
                SctpChunk::Sack { .. } => {
                    // No retransmission machinery: SACKs are informational.
                }
                SctpChunk::Heartbeat { nonce } => {
                    let tag = self.peer_tag;
                    self.queue(tag, vec![SctpChunk::HeartbeatAck { nonce: *nonce }]);
                }
                SctpChunk::HeartbeatAck { .. } => {}
                SctpChunk::Shutdown => {
                    let tag = self.peer_tag;
                    self.queue(tag, vec![SctpChunk::ShutdownAck]);
                    self.state = AssocState::Closed;
                    events.push(SctpEvent::Down);
                }
                SctpChunk::ShutdownAck => {
                    if self.state != AssocState::ShutdownSent {
                        return Err(SigError::BadState("shutdown-ack"));
                    }
                    self.state = AssocState::Closed;
                    events.push(SctpEvent::Down);
                }
                SctpChunk::Abort => {
                    self.state = AssocState::Closed;
                    events.push(SctpEvent::Down);
                }
            }
        }
        Ok(events)
    }

    /// TSN-ordered ingest with gap buffering, then per-stream ordered
    /// release.
    fn ingest_data(
        &mut self,
        tsn: u32,
        stream_id: u16,
        stream_seq: u16,
        payload: Vec<u8>,
        events: &mut Vec<SctpEvent>,
    ) {
        let expected = self.cumulative_tsn.wrapping_add(1);
        if tsn == expected {
            self.cumulative_tsn = tsn;
            self.deliver_ordered(stream_id, stream_seq, payload, events);
            // Release any buffered TSNs that are now in sequence.
            loop {
                let next = self.cumulative_tsn.wrapping_add(1);
                match self.reorder.remove(&next) {
                    Some((sid, sseq, p)) => {
                        self.cumulative_tsn = next;
                        self.deliver_ordered(sid, sseq, p, events);
                    }
                    None => break,
                }
            }
        } else if tsn.wrapping_sub(expected) < u32::MAX / 2 {
            // Ahead of the gap: buffer (duplicates overwrite harmlessly).
            self.reorder.insert(tsn, (stream_id, stream_seq, payload));
        }
        // else: duplicate of an already-delivered TSN; drop.
    }

    /// Per-stream ordered delivery.
    fn deliver_ordered(&mut self, stream_id: u16, stream_seq: u16, payload: Vec<u8>, events: &mut Vec<SctpEvent>) {
        let next = self.stream_rx_seq.entry(stream_id).or_insert(0);
        if stream_seq == *next {
            *next = next.wrapping_add(1);
            events.push(SctpEvent::Delivery { stream_id, payload });
            // Flush buffered successors.
            if let Some(pending) = self.stream_pending.get_mut(&stream_id) {
                loop {
                    let want = *self.stream_rx_seq.get(&stream_id).expect("seeded above");
                    match pending.remove(&want) {
                        Some(p) => {
                            let n = self.stream_rx_seq.get_mut(&stream_id).expect("seeded above");
                            *n = n.wrapping_add(1);
                            events.push(SctpEvent::Delivery { stream_id, payload: p });
                        }
                        None => break,
                    }
                }
            }
        } else {
            self.stream_pending.entry(stream_id).or_default().insert(stream_seq, payload);
        }
    }
}

/// Models the kernel-SCTP bottleneck of the paper's Figure 11.
///
/// The paper scaled S1AP handling across control cores but found that the
/// shared kernel SCTP implementation serialized part of each message's
/// cost, so 8 cores handled ~120K attaches/s instead of 8×20K=160K. This
/// helper charges a caller-visible serialized cost per message: callers on
/// any thread funnel through one mutex for `serialized_ns` of work, then
/// do the rest of their processing in parallel.
pub struct SerializedService {
    lock: parking_lot_stub::Mutex,
    serialized_ns: u64,
}

/// A tiny private spin mutex so this crate doesn't need a parking_lot
/// dependency for one field.
mod parking_lot_stub {
    use std::sync::atomic::{AtomicBool, Ordering};

    #[derive(Default)]
    pub struct Mutex {
        flag: AtomicBool,
    }

    impl Mutex {
        pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
            while self.flag.swap(true, Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let r = f();
            self.flag.store(false, Ordering::Release);
            r
        }
    }
}

impl SerializedService {
    /// `serialized_ns`: nanoseconds of per-message work that cannot be
    /// parallelized across control cores.
    pub fn new(serialized_ns: u64) -> Self {
        SerializedService { lock: Default::default(), serialized_ns }
    }

    /// Pass one message through the serialized section.
    pub fn process(&self) {
        let ns = self.serialized_ns;
        self.lock.with(|| {
            let start = std::time::Instant::now();
            while (start.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuttle queued packets between two endpoints until both are idle,
    /// collecting delivered events per side.
    fn pump(a: &mut Association, b: &mut Association) -> (Vec<SctpEvent>, Vec<SctpEvent>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        loop {
            let a_out = a.take_outbound();
            let b_out = b.take_outbound();
            if a_out.is_empty() && b_out.is_empty() {
                break;
            }
            for p in a_out {
                let bytes = p.encode();
                let decoded = SctpPacket::decode(&bytes).unwrap();
                ev_b.extend(b.handle_packet(&decoded).unwrap());
            }
            for p in b_out {
                let bytes = p.encode();
                let decoded = SctpPacket::decode(&bytes).unwrap();
                ev_a.extend(a.handle_packet(&decoded).unwrap());
            }
        }
        (ev_a, ev_b)
    }

    fn established_pair() -> (Association, Association) {
        let mut client = Association::new(36412, 36412, 0xAAAA, 7);
        let mut server = Association::new(36412, 36412, 0xBBBB, 7);
        client.connect().unwrap();
        let (ev_c, ev_s) = pump(&mut client, &mut server);
        assert!(ev_c.contains(&SctpEvent::Up));
        assert!(ev_s.contains(&SctpEvent::Up));
        assert_eq!(client.state(), AssocState::Established);
        assert_eq!(server.state(), AssocState::Established);
        (client, server)
    }

    #[test]
    fn four_way_handshake_establishes() {
        established_pair();
    }

    #[test]
    fn data_is_delivered_in_order() {
        let (mut c, mut s) = established_pair();
        for i in 0..5u8 {
            c.send(1, vec![i]).unwrap();
        }
        let (_, ev_s) = pump(&mut c, &mut s);
        let deliveries: Vec<_> = ev_s
            .iter()
            .filter_map(|e| match e {
                SctpEvent::Delivery { stream_id, payload } => Some((*stream_id, payload.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(deliveries.len(), 5);
        for (i, (sid, p)) in deliveries.iter().enumerate() {
            assert_eq!(*sid, 1);
            assert_eq!(p, &vec![i as u8]);
        }
    }

    #[test]
    fn out_of_order_tsn_buffered_until_gap_fills() {
        let (mut c, mut s) = established_pair();
        c.send(0, vec![1]).unwrap();
        c.send(0, vec![2]).unwrap();
        c.send(0, vec![3]).unwrap();
        let mut pkts = c.take_outbound();
        // Deliver 3rd, then 1st, then 2nd.
        pkts.rotate_left(2);
        let mut events = Vec::new();
        for p in &pkts {
            events.extend(s.handle_packet(p).unwrap());
        }
        let payloads: Vec<u8> = events
            .iter()
            .filter_map(|e| match e {
                SctpEvent::Delivery { payload, .. } => Some(payload[0]),
                _ => None,
            })
            .collect();
        assert_eq!(payloads, vec![1, 2, 3], "ordered despite reordered arrival");
    }

    #[test]
    fn duplicate_data_not_redelivered() {
        let (mut c, mut s) = established_pair();
        c.send(0, b"x".to_vec()).unwrap();
        let pkts = c.take_outbound();
        let mut deliveries = 0;
        for _ in 0..3 {
            for p in &pkts {
                for e in s.handle_packet(p).unwrap() {
                    if matches!(e, SctpEvent::Delivery { .. }) {
                        deliveries += 1;
                    }
                }
            }
        }
        assert_eq!(deliveries, 1);
    }

    #[test]
    fn wrong_verification_tag_rejected() {
        let (mut c, mut s) = established_pair();
        c.send(0, b"x".to_vec()).unwrap();
        let mut pkts = c.take_outbound();
        pkts[0].verification_tag ^= 1;
        assert_eq!(s.handle_packet(&pkts[0]), Err(SigError::BadValue("verification tag")));
    }

    #[test]
    fn corrupted_cookie_rejected() {
        let mut client = Association::new(1, 2, 0xAAAA, 7);
        let mut server = Association::new(2, 1, 0xBBBB, 7);
        client.connect().unwrap();
        let init = client.take_outbound().remove(0);
        server.handle_packet(&init).unwrap();
        let init_ack = server.take_outbound().remove(0);
        client.handle_packet(&init_ack).unwrap();
        let mut cookie_echo = client.take_outbound().remove(0);
        if let SctpChunk::CookieEcho { cookie } = &mut cookie_echo.chunks[0] {
            cookie[10] ^= 0xFF;
        }
        assert_eq!(server.handle_packet(&cookie_echo), Err(SigError::BadCookie));
        assert_eq!(server.state(), AssocState::Closed, "no state from bad cookie");
    }

    #[test]
    fn graceful_shutdown_completes_both_sides() {
        let (mut c, mut s) = established_pair();
        c.shutdown().unwrap();
        let (ev_c, ev_s) = pump(&mut c, &mut s);
        assert!(ev_c.contains(&SctpEvent::Down));
        assert!(ev_s.contains(&SctpEvent::Down));
        assert_eq!(c.state(), AssocState::Closed);
        assert_eq!(s.state(), AssocState::Closed);
    }

    #[test]
    fn abort_tears_down_immediately() {
        let (mut c, mut s) = established_pair();
        c.abort();
        assert_eq!(c.state(), AssocState::Closed);
        let pkts = c.take_outbound();
        let ev = s.handle_packet(&pkts[0]).unwrap();
        assert!(ev.contains(&SctpEvent::Down));
    }

    #[test]
    fn heartbeat_is_acked() {
        let (mut c, mut s) = established_pair();
        c.heartbeat(0xDEAD).unwrap();
        let pkts = c.take_outbound();
        s.handle_packet(&pkts[0]).unwrap();
        let acks = s.take_outbound();
        assert!(acks.iter().flat_map(|p| &p.chunks).any(|ch| matches!(ch, SctpChunk::HeartbeatAck { nonce: 0xDEAD })));
    }

    #[test]
    fn send_before_established_rejected() {
        let mut a = Association::new(1, 2, 3, 4);
        assert!(a.send(0, vec![]).is_err());
        assert!(a.shutdown().is_err());
        assert!(a.heartbeat(0).is_err());
    }

    #[test]
    fn packet_codec_roundtrips_all_chunks() {
        let pkt = SctpPacket {
            src_port: 36412,
            dst_port: 36412,
            verification_tag: 0x1234_5678,
            chunks: vec![
                SctpChunk::Init { initiate_tag: 1, initial_tsn: 2 },
                SctpChunk::InitAck { initiate_tag: 3, initial_tsn: 4, cookie: vec![9; 16] },
                SctpChunk::CookieEcho { cookie: vec![8; 16] },
                SctpChunk::CookieAck,
                SctpChunk::Data { tsn: 5, stream_id: 1, stream_seq: 0, payload: b"s1ap".to_vec() },
                SctpChunk::Sack { cumulative_tsn: 5 },
                SctpChunk::Heartbeat { nonce: 6 },
                SctpChunk::HeartbeatAck { nonce: 6 },
                SctpChunk::Shutdown,
                SctpChunk::ShutdownAck,
                SctpChunk::Abort,
            ],
        };
        let enc = pkt.encode();
        assert_eq!(SctpPacket::decode(&enc).unwrap(), pkt);
    }

    #[test]
    fn truncated_packets_rejected_not_panicking() {
        let pkt = SctpPacket {
            src_port: 1,
            dst_port: 2,
            verification_tag: 3,
            chunks: vec![SctpChunk::Data { tsn: 1, stream_id: 0, stream_seq: 0, payload: vec![7; 32] }],
        };
        let enc = pkt.encode();
        for cut in 0..enc.len() {
            assert!(SctpPacket::decode(&enc[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn multiple_streams_order_independently() {
        let (mut c, mut s) = established_pair();
        c.send(1, b"a1".to_vec()).unwrap();
        c.send(2, b"b1".to_vec()).unwrap();
        c.send(1, b"a2".to_vec()).unwrap();
        let (_, ev_s) = pump(&mut c, &mut s);
        let seq: Vec<(u16, Vec<u8>)> = ev_s
            .into_iter()
            .filter_map(|e| match e {
                SctpEvent::Delivery { stream_id, payload } => Some((stream_id, payload)),
                _ => None,
            })
            .collect();
        assert_eq!(seq, vec![(1, b"a1".to_vec()), (2, b"b1".to_vec()), (1, b"a2".to_vec())]);
    }

    #[test]
    fn serialized_service_serializes() {
        use std::sync::Arc;
        use std::time::Instant;
        let svc = Arc::new(SerializedService::new(200_000)); // 200µs each
        let start = Instant::now();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || svc.process())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 4 × 200µs serialized should take at least ~800µs in total.
        assert!(start.elapsed().as_micros() >= 700, "elapsed {:?}", start.elapsed());
    }
}
