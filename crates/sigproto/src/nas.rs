//! Non-Access-Stratum (NAS) EMM messages — 3GPP TS 24.301.
//!
//! NAS is the protocol between the UE and the MME that rides *inside*
//! S1AP messages on the S1-MME interface. This module implements the EPS
//! Mobility Management (EMM) messages the attach / detach / TAU procedures
//! exchange, with IMSIs carried in BCD as on the wire.

use crate::wire::{need, u32_at, u64_at};
use crate::{Result, SigError};

/// A 15-digit IMSI stored as a plain integer (e.g. `404_01_0000000001`).
pub type Imsi = u64;

/// A GUTI — the temporary identifier the network assigns at attach so the
/// IMSI stops appearing over the radio link.
pub type Guti = u64;

/// EMM cause codes (subset).
pub mod cause {
    pub const SUCCESS: u8 = 0;
    pub const IMSI_UNKNOWN: u8 = 2;
    pub const ILLEGAL_UE: u8 = 3;
    pub const AUTH_FAILURE: u8 = 20;
    pub const NETWORK_FAILURE: u8 = 17;
    pub const CONGESTION: u8 = 22;
    /// "Protocol error, unspecified" — a message that makes no sense in
    /// the procedure's current state and cannot be queued or deduped.
    pub const PROTOCOL_ERROR: u8 = 111;
}

/// Encode an IMSI's 15 digits as packed BCD (8 bytes, high nibble of the
/// last byte = 0xF filler, as TS 23.003 prescribes for odd digit counts).
pub fn imsi_to_bcd(imsi: Imsi) -> [u8; 8] {
    let mut digits = [0u8; 15];
    let mut v = imsi;
    for d in digits.iter_mut().rev() {
        *d = (v % 10) as u8;
        v /= 10;
    }
    let mut out = [0u8; 8];
    for i in 0..7 {
        out[i] = digits[2 * i] << 4 | digits[2 * i + 1];
    }
    out[7] = digits[14] << 4 | 0x0F;
    out
}

/// Decode a packed-BCD IMSI (inverse of [`imsi_to_bcd`]).
pub fn imsi_from_bcd(bcd: &[u8; 8]) -> Result<Imsi> {
    let mut v: u64 = 0;
    for &b in bcd.iter().take(7) {
        let hi = b >> 4;
        let lo = b & 0xF;
        if hi > 9 || lo > 9 {
            return Err(SigError::BadValue("imsi bcd digit"));
        }
        v = v * 100 + u64::from(hi) * 10 + u64::from(lo);
    }
    let last = bcd[7] >> 4;
    if last > 9 || bcd[7] & 0xF != 0xF {
        return Err(SigError::BadValue("imsi bcd tail"));
    }
    Ok(v * 10 + u64::from(last))
}

/// EMM messages used by the attach / detach / TAU procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NasMsg {
    /// UE → MME: begin the attach procedure.
    AttachRequest {
        imsi: Imsi,
        /// UE network capability bits (ciphering algorithms etc.).
        ue_capability: u32,
    },
    /// MME → UE: authentication challenge (RAND, AUTN from the HSS).
    AuthenticationRequest { rand: u64, autn: u64 },
    /// UE → MME: challenge response (RES).
    AuthenticationResponse { res: u64 },
    /// MME → UE: reject (bad RES, unknown IMSI, ...).
    AuthenticationReject { cause: u8 },
    /// MME → UE: select security algorithms.
    SecurityModeCommand { integrity_alg: u8, ciphering_alg: u8 },
    /// UE → MME.
    SecurityModeComplete,
    /// MME → UE: attach succeeded; carries the GUTI and the UE's IP.
    AttachAccept {
        guti: Guti,
        ue_ip: u32,
        /// Tracking area the UE may roam within without updates.
        tac: u16,
    },
    /// UE → MME: final leg of attach.
    AttachComplete,
    /// MME → UE: attach failed.
    AttachReject { cause: u8 },
    /// UE → MME: leave the network.
    DetachRequest { guti: Guti },
    /// MME → UE.
    DetachAccept,
    /// MME → UE: network-triggered detach (TS 24.301 "Detach Request,
    /// UE terminated") — subscription withdrawn, operator action. The
    /// UE answers with a DetachAccept riding uplink NAS transport.
    NetworkDetachRequest { cause: u8 },
    /// UE → MME: entered a tracking area outside its list.
    TrackingAreaUpdateRequest { guti: Guti, tac: u16 },
    /// MME → UE.
    TrackingAreaUpdateAccept { tac: u16 },
    /// UE → MME: an idle UE has uplink data pending — re-establish the
    /// bearer (the idle→active transition that drives PEPC's two-level
    /// table promotion).
    ServiceRequest { guti: Guti },
    /// MME → UE: service request accepted; bearer re-established.
    ServiceAccept,
    /// MME → UE: service request refused (mailbox overflow / congestion,
    /// unknown GUTI carried via S1AP release instead).
    ServiceReject { cause: u8 },
    /// MME → UE: request shed by overload/admission control. Unlike the
    /// plain rejects, this carries an explicit back-off timer (TS 24.301
    /// T3346-style): the UE must wait `backoff_ms` before retrying, which
    /// is what turns shed load into *signaled* back-pressure instead of a
    /// silent drop the UE immediately retries against.
    CongestionReject { cause: u8, backoff_ms: u16 },
}

impl NasMsg {
    const T_ATTACH_REQ: u8 = 0x41;
    const T_ATTACH_ACC: u8 = 0x42;
    const T_ATTACH_CPL: u8 = 0x43;
    const T_ATTACH_REJ: u8 = 0x44;
    const T_DETACH_REQ: u8 = 0x45;
    const T_DETACH_ACC: u8 = 0x46;
    const T_NET_DETACH_REQ: u8 = 0x4A;
    const T_CONG_REJ: u8 = 0x47;
    const T_TAU_REQ: u8 = 0x48;
    const T_TAU_ACC: u8 = 0x49;
    const T_AUTH_REQ: u8 = 0x52;
    const T_AUTH_RSP: u8 = 0x53;
    const T_AUTH_REJ: u8 = 0x54;
    const T_SEC_CMD: u8 = 0x5D;
    const T_SEC_CPL: u8 = 0x5E;
    const T_SVC_REQ: u8 = 0x4D;
    const T_SVC_REJ: u8 = 0x4E;
    const T_SVC_ACC: u8 = 0x4F;

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            NasMsg::AttachRequest { imsi, ue_capability } => {
                out.push(Self::T_ATTACH_REQ);
                out.extend_from_slice(&imsi_to_bcd(*imsi));
                out.extend_from_slice(&ue_capability.to_be_bytes());
            }
            NasMsg::AuthenticationRequest { rand, autn } => {
                out.push(Self::T_AUTH_REQ);
                out.extend_from_slice(&rand.to_be_bytes());
                out.extend_from_slice(&autn.to_be_bytes());
            }
            NasMsg::AuthenticationResponse { res } => {
                out.push(Self::T_AUTH_RSP);
                out.extend_from_slice(&res.to_be_bytes());
            }
            NasMsg::AuthenticationReject { cause } => {
                out.push(Self::T_AUTH_REJ);
                out.push(*cause);
            }
            NasMsg::SecurityModeCommand { integrity_alg, ciphering_alg } => {
                out.push(Self::T_SEC_CMD);
                out.push(*integrity_alg);
                out.push(*ciphering_alg);
            }
            NasMsg::SecurityModeComplete => out.push(Self::T_SEC_CPL),
            NasMsg::AttachAccept { guti, ue_ip, tac } => {
                out.push(Self::T_ATTACH_ACC);
                out.extend_from_slice(&guti.to_be_bytes());
                out.extend_from_slice(&ue_ip.to_be_bytes());
                out.extend_from_slice(&tac.to_be_bytes());
            }
            NasMsg::AttachComplete => out.push(Self::T_ATTACH_CPL),
            NasMsg::AttachReject { cause } => {
                out.push(Self::T_ATTACH_REJ);
                out.push(*cause);
            }
            NasMsg::DetachRequest { guti } => {
                out.push(Self::T_DETACH_REQ);
                out.extend_from_slice(&guti.to_be_bytes());
            }
            NasMsg::DetachAccept => out.push(Self::T_DETACH_ACC),
            NasMsg::NetworkDetachRequest { cause } => {
                out.push(Self::T_NET_DETACH_REQ);
                out.push(*cause);
            }
            NasMsg::TrackingAreaUpdateRequest { guti, tac } => {
                out.push(Self::T_TAU_REQ);
                out.extend_from_slice(&guti.to_be_bytes());
                out.extend_from_slice(&tac.to_be_bytes());
            }
            NasMsg::TrackingAreaUpdateAccept { tac } => {
                out.push(Self::T_TAU_ACC);
                out.extend_from_slice(&tac.to_be_bytes());
            }
            NasMsg::ServiceRequest { guti } => {
                out.push(Self::T_SVC_REQ);
                out.extend_from_slice(&guti.to_be_bytes());
            }
            NasMsg::ServiceAccept => out.push(Self::T_SVC_ACC),
            NasMsg::ServiceReject { cause } => {
                out.push(Self::T_SVC_REJ);
                out.push(*cause);
            }
            NasMsg::CongestionReject { cause, backoff_ms } => {
                out.push(Self::T_CONG_REJ);
                out.push(*cause);
                out.extend_from_slice(&backoff_ms.to_be_bytes());
            }
        }
        out
    }

    /// Parse bytes produced by [`NasMsg::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        need(buf, 1, "nas header")?;
        match buf[0] {
            Self::T_ATTACH_REQ => {
                need(buf, 13, "attach request")?;
                let mut bcd = [0u8; 8];
                bcd.copy_from_slice(&buf[1..9]);
                Ok(NasMsg::AttachRequest { imsi: imsi_from_bcd(&bcd)?, ue_capability: u32_at(buf, 9) })
            }
            Self::T_AUTH_REQ => {
                need(buf, 17, "auth request")?;
                Ok(NasMsg::AuthenticationRequest { rand: u64_at(buf, 1), autn: u64_at(buf, 9) })
            }
            Self::T_AUTH_RSP => {
                need(buf, 9, "auth response")?;
                Ok(NasMsg::AuthenticationResponse { res: u64_at(buf, 1) })
            }
            Self::T_AUTH_REJ => {
                need(buf, 2, "auth reject")?;
                Ok(NasMsg::AuthenticationReject { cause: buf[1] })
            }
            Self::T_SEC_CMD => {
                need(buf, 3, "security mode command")?;
                Ok(NasMsg::SecurityModeCommand { integrity_alg: buf[1], ciphering_alg: buf[2] })
            }
            Self::T_SEC_CPL => Ok(NasMsg::SecurityModeComplete),
            Self::T_ATTACH_ACC => {
                need(buf, 15, "attach accept")?;
                Ok(NasMsg::AttachAccept {
                    guti: u64_at(buf, 1),
                    ue_ip: u32_at(buf, 9),
                    tac: crate::wire::u16_at(buf, 13),
                })
            }
            Self::T_ATTACH_CPL => Ok(NasMsg::AttachComplete),
            Self::T_ATTACH_REJ => {
                need(buf, 2, "attach reject")?;
                Ok(NasMsg::AttachReject { cause: buf[1] })
            }
            Self::T_DETACH_REQ => {
                need(buf, 9, "detach request")?;
                Ok(NasMsg::DetachRequest { guti: u64_at(buf, 1) })
            }
            Self::T_DETACH_ACC => Ok(NasMsg::DetachAccept),
            Self::T_NET_DETACH_REQ => {
                need(buf, 2, "network detach request")?;
                Ok(NasMsg::NetworkDetachRequest { cause: buf[1] })
            }
            Self::T_TAU_REQ => {
                need(buf, 11, "tau request")?;
                Ok(NasMsg::TrackingAreaUpdateRequest { guti: u64_at(buf, 1), tac: crate::wire::u16_at(buf, 9) })
            }
            Self::T_TAU_ACC => {
                need(buf, 3, "tau accept")?;
                Ok(NasMsg::TrackingAreaUpdateAccept { tac: crate::wire::u16_at(buf, 1) })
            }
            Self::T_SVC_REQ => {
                need(buf, 9, "service request")?;
                Ok(NasMsg::ServiceRequest { guti: u64_at(buf, 1) })
            }
            Self::T_SVC_ACC => Ok(NasMsg::ServiceAccept),
            Self::T_SVC_REJ => {
                need(buf, 2, "service reject")?;
                Ok(NasMsg::ServiceReject { cause: buf[1] })
            }
            Self::T_CONG_REJ => {
                need(buf, 4, "congestion reject")?;
                Ok(NasMsg::CongestionReject { cause: buf[1], backoff_ms: crate::wire::u16_at(buf, 2) })
            }
            other => Err(SigError::UnknownType("nas message", other.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcd_roundtrips_real_imsis() {
        for imsi in [404_01_0000000001u64, 310_410_123456789, 1, 999_99_9999999999] {
            let bcd = imsi_to_bcd(imsi);
            assert_eq!(imsi_from_bcd(&bcd).unwrap(), imsi, "imsi {imsi}");
        }
    }

    #[test]
    fn bcd_filler_nibble_enforced() {
        let mut bcd = imsi_to_bcd(404_01_0000000001);
        bcd[7] &= 0xF0; // clobber the 0xF filler
        assert!(imsi_from_bcd(&bcd).is_err());
    }

    #[test]
    fn bcd_rejects_non_decimal_digits() {
        let mut bcd = imsi_to_bcd(12345);
        bcd[0] = 0xAB;
        assert!(imsi_from_bcd(&bcd).is_err());
    }

    #[test]
    fn all_messages_roundtrip() {
        let msgs = vec![
            NasMsg::AttachRequest { imsi: 404_01_0000000042, ue_capability: 0xF0F0 },
            NasMsg::AuthenticationRequest { rand: 0x1122334455667788, autn: 0x99AABBCCDDEEFF00 },
            NasMsg::AuthenticationResponse { res: 0xCAFEBABE },
            NasMsg::AuthenticationReject { cause: cause::AUTH_FAILURE },
            NasMsg::SecurityModeCommand { integrity_alg: 2, ciphering_alg: 1 },
            NasMsg::SecurityModeComplete,
            NasMsg::AttachAccept { guti: 0xDEAD_BEEF_0001, ue_ip: 0x0A00_002A, tac: 0x1234 },
            NasMsg::AttachComplete,
            NasMsg::AttachReject { cause: cause::IMSI_UNKNOWN },
            NasMsg::DetachRequest { guti: 77 },
            NasMsg::DetachAccept,
            NasMsg::NetworkDetachRequest { cause: cause::NETWORK_FAILURE },
            NasMsg::TrackingAreaUpdateRequest { guti: 88, tac: 9 },
            NasMsg::TrackingAreaUpdateAccept { tac: 9 },
            NasMsg::ServiceRequest { guti: 99 },
            NasMsg::ServiceAccept,
            NasMsg::ServiceReject { cause: cause::CONGESTION },
            NasMsg::CongestionReject { cause: cause::CONGESTION, backoff_ms: 1500 },
        ];
        for m in msgs {
            let enc = m.encode();
            assert_eq!(NasMsg::decode(&enc).unwrap(), m, "roundtrip failed for {m:?}");
        }
    }

    #[test]
    fn truncations_rejected() {
        let enc = NasMsg::AttachRequest { imsi: 12345, ue_capability: 7 }.encode();
        for cut in 0..enc.len() {
            assert!(NasMsg::decode(&enc[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn congestion_reject_truncations_rejected() {
        let enc = NasMsg::CongestionReject { cause: cause::CONGESTION, backoff_ms: 0xABCD }.encode();
        assert_eq!(enc.len(), 4);
        for cut in 0..enc.len() {
            assert!(NasMsg::decode(&enc[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(matches!(NasMsg::decode(&[0xEE, 0, 0]), Err(SigError::UnknownType(_, 0xEE))));
    }
}
