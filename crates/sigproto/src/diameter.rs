//! Diameter-lite for the S6a interface (MME/PEPC-proxy ↔ HSS).
//!
//! S6a (TS 29.272) uses two exchanges during attach:
//!
//! * **Authentication-Information** (AIR/AIA): fetch authentication
//!   vectors (RAND, AUTN, XRES) for a subscriber.
//! * **Update-Location** (ULR/ULA): register the serving node and pull the
//!   subscription profile (AMBR, default QCI).
//!
//! The encoding keeps Diameter's command-code + request-flag framing and
//! hop-by-hop identifier for request/response matching, with fixed field
//! layouts instead of AVP TLVs.

use crate::wire::{need, u32_at, u64_at};
use crate::{Result, SigError};

/// Diameter result codes (subset).
pub mod result_code {
    pub const SUCCESS: u32 = 2001;
    pub const USER_UNKNOWN: u32 = 5001;
    pub const AUTHORIZATION_REJECTED: u32 = 5003;
}

/// S6a command codes.
pub mod command {
    pub const AUTHENTICATION_INFORMATION: u32 = 318;
    pub const UPDATE_LOCATION: u32 = 316;
}

/// An S6a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiameterMsg {
    /// MME → HSS: request authentication vectors.
    AuthInfoRequest {
        hop_id: u32,
        imsi: u64,
        /// Visited PLMN (operator) id.
        plmn: u32,
    },
    /// HSS → MME: one authentication vector.
    AuthInfoAnswer { hop_id: u32, result: u32, rand: u64, autn: u64, xres: u64 },
    /// MME → HSS: register this MME as serving the subscriber.
    UpdateLocationRequest {
        hop_id: u32,
        imsi: u64,
        /// Identifier of the serving MME / PEPC node.
        serving_node: u32,
    },
    /// HSS → MME: subscription profile.
    UpdateLocationAnswer {
        hop_id: u32,
        result: u32,
        /// Subscribed aggregate maximum bit rate (kbps).
        ambr_kbps: u32,
        /// Default bearer QoS class identifier.
        default_qci: u8,
    },
}

impl DiameterMsg {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        match self {
            DiameterMsg::AuthInfoRequest { hop_id, imsi, plmn } => {
                out.extend_from_slice(&command::AUTHENTICATION_INFORMATION.to_be_bytes());
                out.push(1); // request flag
                out.extend_from_slice(&hop_id.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
                out.extend_from_slice(&plmn.to_be_bytes());
            }
            DiameterMsg::AuthInfoAnswer { hop_id, result, rand, autn, xres } => {
                out.extend_from_slice(&command::AUTHENTICATION_INFORMATION.to_be_bytes());
                out.push(0);
                out.extend_from_slice(&hop_id.to_be_bytes());
                out.extend_from_slice(&result.to_be_bytes());
                out.extend_from_slice(&rand.to_be_bytes());
                out.extend_from_slice(&autn.to_be_bytes());
                out.extend_from_slice(&xres.to_be_bytes());
            }
            DiameterMsg::UpdateLocationRequest { hop_id, imsi, serving_node } => {
                out.extend_from_slice(&command::UPDATE_LOCATION.to_be_bytes());
                out.push(1);
                out.extend_from_slice(&hop_id.to_be_bytes());
                out.extend_from_slice(&imsi.to_be_bytes());
                out.extend_from_slice(&serving_node.to_be_bytes());
            }
            DiameterMsg::UpdateLocationAnswer { hop_id, result, ambr_kbps, default_qci } => {
                out.extend_from_slice(&command::UPDATE_LOCATION.to_be_bytes());
                out.push(0);
                out.extend_from_slice(&hop_id.to_be_bytes());
                out.extend_from_slice(&result.to_be_bytes());
                out.extend_from_slice(&ambr_kbps.to_be_bytes());
                out.push(*default_qci);
            }
        }
        out
    }

    /// Parse bytes produced by [`DiameterMsg::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        need(buf, 9, "diameter header")?;
        let code = u32_at(buf, 0);
        let is_request = buf[4] == 1;
        let hop_id = u32_at(buf, 5);
        match (code, is_request) {
            (command::AUTHENTICATION_INFORMATION, true) => {
                need(buf, 21, "air")?;
                Ok(DiameterMsg::AuthInfoRequest { hop_id, imsi: u64_at(buf, 9), plmn: u32_at(buf, 17) })
            }
            (command::AUTHENTICATION_INFORMATION, false) => {
                need(buf, 37, "aia")?;
                Ok(DiameterMsg::AuthInfoAnswer {
                    hop_id,
                    result: u32_at(buf, 9),
                    rand: u64_at(buf, 13),
                    autn: u64_at(buf, 21),
                    xres: u64_at(buf, 29),
                })
            }
            (command::UPDATE_LOCATION, true) => {
                need(buf, 21, "ulr")?;
                Ok(DiameterMsg::UpdateLocationRequest { hop_id, imsi: u64_at(buf, 9), serving_node: u32_at(buf, 17) })
            }
            (command::UPDATE_LOCATION, false) => {
                need(buf, 18, "ula")?;
                Ok(DiameterMsg::UpdateLocationAnswer {
                    hop_id,
                    result: u32_at(buf, 9),
                    ambr_kbps: u32_at(buf, 13),
                    default_qci: buf[17],
                })
            }
            (other, _) => Err(SigError::UnknownType("diameter command", other)),
        }
    }

    /// Hop-by-hop identifier for request/answer correlation.
    pub fn hop_id(&self) -> u32 {
        match self {
            DiameterMsg::AuthInfoRequest { hop_id, .. }
            | DiameterMsg::AuthInfoAnswer { hop_id, .. }
            | DiameterMsg::UpdateLocationRequest { hop_id, .. }
            | DiameterMsg::UpdateLocationAnswer { hop_id, .. } => *hop_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all() {
        let msgs = vec![
            DiameterMsg::AuthInfoRequest { hop_id: 1, imsi: 404_01_0000000001, plmn: 40401 },
            DiameterMsg::AuthInfoAnswer { hop_id: 1, result: result_code::SUCCESS, rand: 2, autn: 3, xres: 4 },
            DiameterMsg::UpdateLocationRequest { hop_id: 2, imsi: 5, serving_node: 6 },
            DiameterMsg::UpdateLocationAnswer {
                hop_id: 2,
                result: result_code::SUCCESS,
                ambr_kbps: 100_000,
                default_qci: 9,
            },
        ];
        for m in msgs {
            let enc = m.encode();
            let dec = DiameterMsg::decode(&enc).unwrap();
            assert_eq!(dec, m);
            assert_eq!(dec.hop_id(), m.hop_id());
        }
    }

    #[test]
    fn truncations_rejected() {
        let enc = DiameterMsg::AuthInfoAnswer { hop_id: 9, result: 2001, rand: 1, autn: 2, xres: 3 }.encode();
        for cut in 0..enc.len() {
            assert!(DiameterMsg::decode(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_command_rejected() {
        let mut enc = DiameterMsg::AuthInfoRequest { hop_id: 1, imsi: 2, plmn: 3 }.encode();
        enc[0..4].copy_from_slice(&999u32.to_be_bytes());
        assert!(matches!(DiameterMsg::decode(&enc), Err(SigError::UnknownType(_, 999))));
    }
}
