//! S1 Application Protocol (S1AP) — 3GPP TS 36.413.
//!
//! S1AP runs between the eNodeB and the MME over SCTP. NAS messages are
//! opaque byte containers inside the relevant PDUs, exactly as on the real
//! interface. This module implements the PDUs the paper's control plane
//! exercises: the attach call flow (InitialUEMessage, Downlink/Uplink NAS
//! transport, InitialContextSetup), both handover flavours (PathSwitch for
//! X2, HandoverRequired/Request/Command for S1) and UE context release.

use crate::wire::{need, u16_at, u32_at};
use crate::{Result, SigError};

/// An S1AP PDU.
///
/// `enb_ue_id` / `mme_ue_id` are the per-UE S1AP identifiers each side
/// allocates; `teid`s and transport addresses configure the S1-U bearer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S1apPdu {
    /// eNodeB → MME: first message for a UE; carries the initial NAS PDU
    /// (typically an Attach Request).
    InitialUeMessage {
        enb_ue_id: u32,
        /// E-UTRAN cell identifier the UE appeared in.
        ecgi: u32,
        /// Tracking area code.
        tac: u16,
        nas: Vec<u8>,
    },
    /// MME → eNodeB: NAS message for the UE.
    DownlinkNasTransport { enb_ue_id: u32, mme_ue_id: u32, nas: Vec<u8> },
    /// eNodeB → MME: NAS message from the UE.
    UplinkNasTransport { enb_ue_id: u32, mme_ue_id: u32, nas: Vec<u8> },
    /// MME → eNodeB: establish the UE context and the S1-U bearer; carries
    /// the gateway-side tunnel endpoint and the final NAS Attach Accept.
    InitialContextSetupRequest {
        enb_ue_id: u32,
        mme_ue_id: u32,
        /// Gateway S1-U TEID the eNodeB must send uplink traffic to.
        gw_teid: u32,
        /// Gateway transport address.
        gw_ip: u32,
        /// UE aggregate maximum bit rate (kbps).
        ambr_kbps: u32,
        nas: Vec<u8>,
    },
    /// eNodeB → MME: bearer is up; carries the eNodeB-side tunnel endpoint
    /// for downlink traffic.
    InitialContextSetupResponse { enb_ue_id: u32, mme_ue_id: u32, enb_teid: u32, enb_ip: u32 },
    /// eNodeB → MME after an X2 handover: the UE moved to a new eNodeB
    /// that has a direct link to the old one; switch the downlink path.
    PathSwitchRequest { enb_ue_id: u32, mme_ue_id: u32, new_enb_teid: u32, new_enb_ip: u32, ecgi: u32 },
    /// MME → eNodeB: path switched.
    PathSwitchRequestAck { enb_ue_id: u32, mme_ue_id: u32 },
    /// Source eNodeB → MME: S1 handover needed (no X2 link between the
    /// eNodeBs).
    HandoverRequired { enb_ue_id: u32, mme_ue_id: u32, target_ecgi: u32 },
    /// MME → target eNodeB: prepare resources for the incoming UE.
    HandoverRequest { mme_ue_id: u32, gw_teid: u32, gw_ip: u32, ambr_kbps: u32 },
    /// Target eNodeB → MME: resources ready; downlink tunnel endpoint.
    HandoverRequestAck { mme_ue_id: u32, new_enb_teid: u32, new_enb_ip: u32 },
    /// MME → source eNodeB: proceed with the handover.
    HandoverCommand { enb_ue_id: u32, mme_ue_id: u32 },
    /// MME → eNodeB: tear down the UE context (detach, inactivity).
    UeContextReleaseCommand { enb_ue_id: u32, mme_ue_id: u32, cause: u8 },
    /// eNodeB → MME.
    UeContextReleaseComplete { enb_ue_id: u32, mme_ue_id: u32 },
    /// eNodeB → MME: the eNodeB wants the UE's S1 context released
    /// (user inactivity, radio loss). The MME answers with a
    /// UEContextReleaseCommand and the UE transitions to idle — context
    /// retained, tunnels torn down.
    UeContextReleaseRequest { enb_ue_id: u32, mme_ue_id: u32, cause: u8 },
    /// MME → eNodeB: page an idle UE (downlink data pending). Carries
    /// the GUTI the UE is paged by (stand-in for the S-TMSI).
    Paging { mme_ue_id: u32, guti: u64 },
}

impl S1apPdu {
    const T_INITIAL_UE: u8 = 1;
    const T_DL_NAS: u8 = 2;
    const T_UL_NAS: u8 = 3;
    const T_ICS_REQ: u8 = 4;
    const T_ICS_RSP: u8 = 5;
    const T_PSW_REQ: u8 = 6;
    const T_PSW_ACK: u8 = 7;
    const T_HO_REQUIRED: u8 = 8;
    const T_HO_REQUEST: u8 = 9;
    const T_HO_REQ_ACK: u8 = 10;
    const T_HO_COMMAND: u8 = 11;
    const T_UECR_CMD: u8 = 12;
    const T_UECR_CPL: u8 = 13;
    const T_UECR_REQ: u8 = 14;
    const T_PAGING: u8 = 15;

    fn put_nas(out: &mut Vec<u8>, nas: &[u8]) {
        out.extend_from_slice(&(nas.len() as u16).to_be_bytes());
        out.extend_from_slice(nas);
    }

    fn get_nas(buf: &[u8], off: usize) -> Result<Vec<u8>> {
        need(buf, off + 2, "s1ap nas length")?;
        let len = u16_at(buf, off) as usize;
        need(buf, off + 2 + len, "s1ap nas body")?;
        Ok(buf[off + 2..off + 2 + len].to_vec())
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            S1apPdu::InitialUeMessage { enb_ue_id, ecgi, tac, nas } => {
                out.push(Self::T_INITIAL_UE);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&ecgi.to_be_bytes());
                out.extend_from_slice(&tac.to_be_bytes());
                Self::put_nas(&mut out, nas);
            }
            S1apPdu::DownlinkNasTransport { enb_ue_id, mme_ue_id, nas } => {
                out.push(Self::T_DL_NAS);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                Self::put_nas(&mut out, nas);
            }
            S1apPdu::UplinkNasTransport { enb_ue_id, mme_ue_id, nas } => {
                out.push(Self::T_UL_NAS);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                Self::put_nas(&mut out, nas);
            }
            S1apPdu::InitialContextSetupRequest { enb_ue_id, mme_ue_id, gw_teid, gw_ip, ambr_kbps, nas } => {
                out.push(Self::T_ICS_REQ);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&gw_teid.to_be_bytes());
                out.extend_from_slice(&gw_ip.to_be_bytes());
                out.extend_from_slice(&ambr_kbps.to_be_bytes());
                Self::put_nas(&mut out, nas);
            }
            S1apPdu::InitialContextSetupResponse { enb_ue_id, mme_ue_id, enb_teid, enb_ip } => {
                out.push(Self::T_ICS_RSP);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&enb_teid.to_be_bytes());
                out.extend_from_slice(&enb_ip.to_be_bytes());
            }
            S1apPdu::PathSwitchRequest { enb_ue_id, mme_ue_id, new_enb_teid, new_enb_ip, ecgi } => {
                out.push(Self::T_PSW_REQ);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&new_enb_teid.to_be_bytes());
                out.extend_from_slice(&new_enb_ip.to_be_bytes());
                out.extend_from_slice(&ecgi.to_be_bytes());
            }
            S1apPdu::PathSwitchRequestAck { enb_ue_id, mme_ue_id } => {
                out.push(Self::T_PSW_ACK);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
            }
            S1apPdu::HandoverRequired { enb_ue_id, mme_ue_id, target_ecgi } => {
                out.push(Self::T_HO_REQUIRED);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&target_ecgi.to_be_bytes());
            }
            S1apPdu::HandoverRequest { mme_ue_id, gw_teid, gw_ip, ambr_kbps } => {
                out.push(Self::T_HO_REQUEST);
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&gw_teid.to_be_bytes());
                out.extend_from_slice(&gw_ip.to_be_bytes());
                out.extend_from_slice(&ambr_kbps.to_be_bytes());
            }
            S1apPdu::HandoverRequestAck { mme_ue_id, new_enb_teid, new_enb_ip } => {
                out.push(Self::T_HO_REQ_ACK);
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&new_enb_teid.to_be_bytes());
                out.extend_from_slice(&new_enb_ip.to_be_bytes());
            }
            S1apPdu::HandoverCommand { enb_ue_id, mme_ue_id } => {
                out.push(Self::T_HO_COMMAND);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
            }
            S1apPdu::UeContextReleaseCommand { enb_ue_id, mme_ue_id, cause } => {
                out.push(Self::T_UECR_CMD);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.push(*cause);
            }
            S1apPdu::UeContextReleaseComplete { enb_ue_id, mme_ue_id } => {
                out.push(Self::T_UECR_CPL);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
            }
            S1apPdu::UeContextReleaseRequest { enb_ue_id, mme_ue_id, cause } => {
                out.push(Self::T_UECR_REQ);
                out.extend_from_slice(&enb_ue_id.to_be_bytes());
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.push(*cause);
            }
            S1apPdu::Paging { mme_ue_id, guti } => {
                out.push(Self::T_PAGING);
                out.extend_from_slice(&mme_ue_id.to_be_bytes());
                out.extend_from_slice(&guti.to_be_bytes());
            }
        }
        out
    }

    /// Parse bytes produced by [`S1apPdu::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        need(buf, 1, "s1ap header")?;
        match buf[0] {
            Self::T_INITIAL_UE => {
                need(buf, 11, "initial ue message")?;
                Ok(S1apPdu::InitialUeMessage {
                    enb_ue_id: u32_at(buf, 1),
                    ecgi: u32_at(buf, 5),
                    tac: u16_at(buf, 9),
                    nas: Self::get_nas(buf, 11)?,
                })
            }
            Self::T_DL_NAS => {
                need(buf, 9, "dl nas transport")?;
                Ok(S1apPdu::DownlinkNasTransport {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    nas: Self::get_nas(buf, 9)?,
                })
            }
            Self::T_UL_NAS => {
                need(buf, 9, "ul nas transport")?;
                Ok(S1apPdu::UplinkNasTransport {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    nas: Self::get_nas(buf, 9)?,
                })
            }
            Self::T_ICS_REQ => {
                need(buf, 21, "initial context setup request")?;
                Ok(S1apPdu::InitialContextSetupRequest {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    gw_teid: u32_at(buf, 9),
                    gw_ip: u32_at(buf, 13),
                    ambr_kbps: u32_at(buf, 17),
                    nas: Self::get_nas(buf, 21)?,
                })
            }
            Self::T_ICS_RSP => {
                need(buf, 17, "initial context setup response")?;
                Ok(S1apPdu::InitialContextSetupResponse {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    enb_teid: u32_at(buf, 9),
                    enb_ip: u32_at(buf, 13),
                })
            }
            Self::T_PSW_REQ => {
                need(buf, 21, "path switch request")?;
                Ok(S1apPdu::PathSwitchRequest {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    new_enb_teid: u32_at(buf, 9),
                    new_enb_ip: u32_at(buf, 13),
                    ecgi: u32_at(buf, 17),
                })
            }
            Self::T_PSW_ACK => {
                need(buf, 9, "path switch ack")?;
                Ok(S1apPdu::PathSwitchRequestAck { enb_ue_id: u32_at(buf, 1), mme_ue_id: u32_at(buf, 5) })
            }
            Self::T_HO_REQUIRED => {
                need(buf, 13, "handover required")?;
                Ok(S1apPdu::HandoverRequired {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    target_ecgi: u32_at(buf, 9),
                })
            }
            Self::T_HO_REQUEST => {
                need(buf, 17, "handover request")?;
                Ok(S1apPdu::HandoverRequest {
                    mme_ue_id: u32_at(buf, 1),
                    gw_teid: u32_at(buf, 5),
                    gw_ip: u32_at(buf, 9),
                    ambr_kbps: u32_at(buf, 13),
                })
            }
            Self::T_HO_REQ_ACK => {
                need(buf, 13, "handover request ack")?;
                Ok(S1apPdu::HandoverRequestAck {
                    mme_ue_id: u32_at(buf, 1),
                    new_enb_teid: u32_at(buf, 5),
                    new_enb_ip: u32_at(buf, 9),
                })
            }
            Self::T_HO_COMMAND => {
                need(buf, 9, "handover command")?;
                Ok(S1apPdu::HandoverCommand { enb_ue_id: u32_at(buf, 1), mme_ue_id: u32_at(buf, 5) })
            }
            Self::T_UECR_CMD => {
                need(buf, 10, "ue context release command")?;
                Ok(S1apPdu::UeContextReleaseCommand {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    cause: buf[9],
                })
            }
            Self::T_UECR_CPL => {
                need(buf, 9, "ue context release complete")?;
                Ok(S1apPdu::UeContextReleaseComplete { enb_ue_id: u32_at(buf, 1), mme_ue_id: u32_at(buf, 5) })
            }
            Self::T_UECR_REQ => {
                need(buf, 10, "ue context release request")?;
                Ok(S1apPdu::UeContextReleaseRequest {
                    enb_ue_id: u32_at(buf, 1),
                    mme_ue_id: u32_at(buf, 5),
                    cause: buf[9],
                })
            }
            Self::T_PAGING => {
                need(buf, 13, "paging")?;
                Ok(S1apPdu::Paging { mme_ue_id: u32_at(buf, 1), guti: crate::wire::u64_at(buf, 5) })
            }
            other => Err(SigError::UnknownType("s1ap pdu", other.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::NasMsg;

    fn sample_pdus() -> Vec<S1apPdu> {
        let nas = NasMsg::AttachRequest { imsi: 404_01_0000000007, ue_capability: 3 }.encode();
        vec![
            S1apPdu::InitialUeMessage { enb_ue_id: 1, ecgi: 0x100, tac: 5, nas: nas.clone() },
            S1apPdu::DownlinkNasTransport { enb_ue_id: 1, mme_ue_id: 2, nas: nas.clone() },
            S1apPdu::UplinkNasTransport { enb_ue_id: 1, mme_ue_id: 2, nas: vec![] },
            S1apPdu::InitialContextSetupRequest {
                enb_ue_id: 1,
                mme_ue_id: 2,
                gw_teid: 0xAB,
                gw_ip: 0x0A0A0A0A,
                ambr_kbps: 50_000,
                nas,
            },
            S1apPdu::InitialContextSetupResponse { enb_ue_id: 1, mme_ue_id: 2, enb_teid: 0xCD, enb_ip: 9 },
            S1apPdu::PathSwitchRequest { enb_ue_id: 3, mme_ue_id: 2, new_enb_teid: 4, new_enb_ip: 5, ecgi: 6 },
            S1apPdu::PathSwitchRequestAck { enb_ue_id: 3, mme_ue_id: 2 },
            S1apPdu::HandoverRequired { enb_ue_id: 3, mme_ue_id: 2, target_ecgi: 0x200 },
            S1apPdu::HandoverRequest { mme_ue_id: 2, gw_teid: 0xAB, gw_ip: 7, ambr_kbps: 1000 },
            S1apPdu::HandoverRequestAck { mme_ue_id: 2, new_enb_teid: 8, new_enb_ip: 9 },
            S1apPdu::HandoverCommand { enb_ue_id: 3, mme_ue_id: 2 },
            S1apPdu::UeContextReleaseCommand { enb_ue_id: 1, mme_ue_id: 2, cause: 1 },
            S1apPdu::UeContextReleaseComplete { enb_ue_id: 1, mme_ue_id: 2 },
            S1apPdu::UeContextReleaseRequest { enb_ue_id: 1, mme_ue_id: 2, cause: 4 },
            S1apPdu::Paging { mme_ue_id: 2, guti: 0xD00D_0000_0007 },
        ]
    }

    #[test]
    fn all_pdus_roundtrip() {
        for pdu in sample_pdus() {
            let enc = pdu.encode();
            assert_eq!(S1apPdu::decode(&enc).unwrap(), pdu, "roundtrip failed for {pdu:?}");
        }
    }

    #[test]
    fn embedded_nas_is_preserved_verbatim() {
        let nas = NasMsg::AttachAccept { guti: 42, ue_ip: 7, tac: 1 }.encode();
        let pdu = S1apPdu::DownlinkNasTransport { enb_ue_id: 1, mme_ue_id: 2, nas: nas.clone() };
        let enc = pdu.encode();
        if let S1apPdu::DownlinkNasTransport { nas: got, .. } = S1apPdu::decode(&enc).unwrap() {
            assert_eq!(NasMsg::decode(&got).unwrap(), NasMsg::decode(&nas).unwrap());
        } else {
            panic!("wrong pdu type");
        }
    }

    #[test]
    fn every_truncation_rejected() {
        for pdu in sample_pdus() {
            let enc = pdu.encode();
            for cut in 0..enc.len() {
                assert!(S1apPdu::decode(&enc[..cut]).is_err(), "cut {cut} of {pdu:?} accepted");
            }
        }
    }

    #[test]
    fn unknown_pdu_type_rejected() {
        assert!(matches!(S1apPdu::decode(&[0xEE]), Err(SigError::UnknownType(_, 0xEE))));
    }

    #[test]
    fn nas_length_field_bounds_checked() {
        // DL NAS transport claiming 100-byte NAS with only 2 bytes present.
        let mut enc = S1apPdu::DownlinkNasTransport { enb_ue_id: 1, mme_ue_id: 2, nas: vec![1, 2] }.encode();
        let ll = enc.len();
        enc[ll - 4..ll - 2].copy_from_slice(&100u16.to_be_bytes());
        assert!(S1apPdu::decode(&enc).is_err());
    }
}
