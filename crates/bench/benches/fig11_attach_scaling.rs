//! Figure 11 kernel: the serialized (kernel-SCTP-like) section that caps
//! control-core scaling, vs the parallelizable S1AP handling.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc_sigproto::sctp::SerializedService;

fn bench(c: &mut Criterion) {
    // The serialized share calibrated in fig11 (1/6 of ~50µs ≈ 8µs).
    let svc = SerializedService::new(8_000);
    c.bench_function("fig11_serialized_sctp_section", |b| b.iter(|| svc.process()));
    let free = SerializedService::new(0);
    c.bench_function("fig11_lock_only", |b| b.iter(|| free.process()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
