//! Software-RSS shard scaling: aggregate Mpps across 1→8 share-nothing
//! pipelines, extending the fig7 method (throughput vs cores) to the
//! in-process sharded data path of `pepc::ShardedDataPath`.
//!
//! Two series per shard count N, both over the same 10K-user mixed
//! uplink/downlink workload:
//!
//! * `shard_scale/seq/N` — the criterion loop driving steer → N×process
//!   → gather *sequentially* on one core (the overhead floor: it can
//!   only lose to a single pipeline).
//! * `shard_scale/aggregate/N` — printed in the same `bench … ns/iter`
//!   format but measured directly: per-shard busy time is clocked around
//!   each `process_pending` call, and the reported figure is
//!   `max(shard busy) / packets` — the per-packet wall-clock the slowest
//!   shard would impose if each shard ran on its own core, which is how
//!   fig7 counts a multi-core slice. `scripts/bench_shard.py` converts
//!   it to aggregate Mpps, checks the 1→4 scaling floor, and pins the
//!   per-stage ns/packet budget.
//!
//! Also printed per N: `stage_parse` / `stage_lookup` / `stage_enforce`
//! medians (merged across shards) and the steering imbalance (max/mean
//! packets, ×1000 to survive the integer-ish ns format).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pepc::data::PacketVerdict;
use pepc::LatencyHistogram;
use pepc_net::Mbuf;
use pepc_workload::harness::{default_sharded_path, ShardedSut, SystemUnderTest};
use pepc_workload::traffic::TrafficGen;
use std::time::Instant;

const USERS: u64 = 10_000;
const BURST: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn setup(shards: usize) -> (ShardedSut, TrafficGen) {
    let mut sut = ShardedSut::new(default_sharded_path(USERS as usize, shards));
    let keys = sut.attach_all(&(0..USERS).collect::<Vec<_>>());
    let gen = TrafficGen::new(keys);
    (sut, gen)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_scale");
    for shards in SHARD_COUNTS {
        let (mut sut, mut gen) = setup(shards);
        let mut burst: Vec<Mbuf> = Vec::with_capacity(BURST);
        let mut fwd: Vec<Mbuf> = Vec::with_capacity(BURST);
        g.bench_with_input(BenchmarkId::new("seq", shards), &shards, |b, _| {
            b.iter(|| {
                burst.clear();
                for _ in 0..BURST {
                    burst.push(gen.next_packet(0));
                }
                fwd.clear();
                sut.process_burst(&mut burst, &mut fwd);
                for out in fwd.drain(..) {
                    gen.recycle(out);
                }
            })
        });
    }
    g.finish();
    for shards in SHARD_COUNTS {
        aggregate(shards);
    }
}

/// The parallel-cores measurement: steer is untimed (it is the edge
/// stage), each shard's pipeline run is timed separately, and the
/// aggregate per-packet figure is `max(per-shard busy ns) / packets` —
/// wall-clock of the slowest shard, as if each ran on its own core.
fn aggregate(shards: usize) {
    const ROUNDS: usize = 4_000;
    let (mut sut, mut gen) = setup(shards);
    for d in sut.path.shards_mut() {
        d.set_stage_timing(true);
    }
    let mut burst: Vec<Mbuf> = Vec::with_capacity(BURST);
    let mut verdicts: Vec<PacketVerdict> = Vec::with_capacity(BURST);
    let mut busy_ns = vec![0u64; shards];
    let mut pkts = 0u64;
    // Warmup: fill the tables' primary level and the branch predictors.
    for _ in 0..ROUNDS / 10 {
        burst.clear();
        for _ in 0..BURST {
            burst.push(gen.next_packet(0));
        }
        for v in sut.path.process_burst(&mut burst, 0) {
            if let PacketVerdict::Forward(out) = v {
                gen.recycle(out);
            }
        }
    }
    for _ in 0..ROUNDS {
        burst.clear();
        for _ in 0..BURST {
            burst.push(gen.next_packet(0));
        }
        pkts += burst.len() as u64;
        sut.path.steer(&mut burst);
        for (s, busy) in busy_ns.iter_mut().enumerate() {
            let t0 = Instant::now();
            sut.path.process_pending(s, 0);
            *busy += t0.elapsed().as_nanos() as u64;
        }
        verdicts.clear();
        sut.path.collect_verdicts(&mut verdicts);
        for v in verdicts.drain(..) {
            if let PacketVerdict::Forward(out) = v {
                gen.recycle(out);
            }
        }
    }
    let max_busy = *busy_ns.iter().max().expect("at least one shard") as f64;
    emit(&format!("shard_scale/aggregate/{shards}"), max_busy / pkts as f64);
    let mut stages = [LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new()];
    for d in sut.path.shards() {
        for (total, h) in stages.iter_mut().zip(d.stage_latencies()) {
            total.merge(h);
        }
    }
    for (h, name) in stages.iter().zip(pepc::data::STAGE_NAMES) {
        emit(&format!("shard_scale/stage_{name}/{shards}"), h.quantile_ns(0.5) as f64);
    }
    // max/mean packet imbalance, ×1000 (the format prints one decimal).
    emit(&format!("shard_scale/imbalance/{shards}"), sut.path.shard_imbalance() * 1000.0);
}

/// Print in the criterion shim's line format so one parser serves both
/// the criterion groups and the direct measurements.
fn emit(name: &str, value: f64) {
    println!("bench {name:<50} {value:>12.1} ns/iter");
}

criterion_group!(benches, bench);
criterion_main!(benches);
