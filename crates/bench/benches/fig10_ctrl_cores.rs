// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Figure 10/11 kernel: one full attach procedure over S1AP/NAS/SCTP
//! against live HSS and PCRF backends — the per-attach cost that sets
//! control-core requirements.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc_bench::SctpS1apRig;

fn bench(c: &mut Criterion) {
    let mut rig = SctpS1apRig::new(3_000_000);
    let mut imsi = 404_01_0000000000u64;
    let mut enb_ue_id = 1u32;
    c.bench_function("fig10_full_attach_over_sctp", |b| {
        b.iter(|| {
            imsi += 1;
            enb_ue_id += 1;
            assert!(rig.attach(imsi, enb_ue_id));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
