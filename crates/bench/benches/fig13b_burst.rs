//! Figure 13b kernel: scalar vs burst data-plane throughput across burst
//! sizes, mixed uplink/downlink traffic over a 10K-user population.
//!
//! Every case processes the same 64 packets per iteration — scalar one at
//! a time, burst in `64 / N` calls of size `N` — so `ns/iter / 64` is
//! directly comparable ns/packet (`scripts/bench_burst.py` derives the
//! speedups committed in `BENCH_burst.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pepc::data::PacketVerdict;
use pepc_net::Mbuf;
use pepc_workload::harness::{default_pepc_slice, PepcSut, SystemUnderTest};
use pepc_workload::traffic::TrafficGen;

const USERS: u64 = 10_000;
const PKTS_PER_ITER: usize = 64;

fn setup() -> (PepcSut, TrafficGen) {
    let mut sut = PepcSut::new(default_pepc_slice(65_536, true, 32));
    let keys = sut.attach_all(&(0..USERS).collect::<Vec<_>>());
    let gen = TrafficGen::new(keys);
    (sut, gen)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13b_burst");

    {
        let (mut sut, mut gen) = setup();
        g.bench_function("scalar", |b| {
            b.iter(|| {
                for _ in 0..PKTS_PER_ITER {
                    let m = gen.next_packet(0);
                    if let PacketVerdict::Forward(out) = sut.slice.process_packet(m) {
                        gen.recycle(out);
                    }
                }
            })
        });
    }

    for burst_size in [1usize, 8, 32, 64] {
        let (mut sut, mut gen) = setup();
        let mut burst: Vec<Mbuf> = Vec::with_capacity(burst_size);
        g.bench_with_input(BenchmarkId::new("burst", burst_size), &burst_size, |b, &n| {
            b.iter(|| {
                for _ in 0..PKTS_PER_ITER / n {
                    burst.clear();
                    for _ in 0..n {
                        burst.push(gen.next_packet(0));
                    }
                    for v in sut.slice.process_burst(&mut burst) {
                        if let PacketVerdict::Forward(out) = v {
                            gen.recycle(out);
                        }
                    }
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
