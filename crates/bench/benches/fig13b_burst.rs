//! Figure 13b kernel: scalar vs burst data-plane throughput across burst
//! sizes, mixed uplink/downlink traffic over a 10K-user population.
//!
//! Every case processes the same 64 packets per iteration — scalar one at
//! a time, burst in `64 / N` calls of size `N` — so `ns/iter / 64` is
//! directly comparable ns/packet (`scripts/bench_burst.py` derives the
//! speedups committed in `BENCH_burst.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pepc::data::PacketVerdict;
use pepc_net::Mbuf;
use pepc_workload::harness::{default_pepc_slice, PepcSut, SystemUnderTest};
use pepc_workload::traffic::TrafficGen;

const USERS: u64 = 10_000;
const PKTS_PER_ITER: usize = 64;

fn setup() -> (PepcSut, TrafficGen) {
    let mut sut = PepcSut::new(default_pepc_slice(65_536, true, 32));
    let keys = sut.attach_all(&(0..USERS).collect::<Vec<_>>());
    let gen = TrafficGen::new(keys);
    (sut, gen)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13b_burst");

    {
        let (mut sut, mut gen) = setup();
        g.bench_function("scalar", |b| {
            b.iter(|| {
                for _ in 0..PKTS_PER_ITER {
                    let m = gen.next_packet(0);
                    if let PacketVerdict::Forward(out) = sut.slice.process_packet(m) {
                        gen.recycle(out);
                    }
                }
            })
        });
    }

    for burst_size in [1usize, 8, 32, 64] {
        let (mut sut, mut gen) = setup();
        let mut burst: Vec<Mbuf> = Vec::with_capacity(burst_size);
        let mut verdicts: Vec<PacketVerdict> = Vec::with_capacity(burst_size);
        g.bench_with_input(BenchmarkId::new("burst", burst_size), &burst_size, |b, &n| {
            b.iter(|| {
                for _ in 0..PKTS_PER_ITER / n {
                    burst.clear();
                    for _ in 0..n {
                        burst.push(gen.next_packet(0));
                    }
                    verdicts.clear();
                    sut.slice.process_burst_into(&mut burst, &mut verdicts);
                    for v in verdicts.drain(..) {
                        if let PacketVerdict::Forward(out) = v {
                            gen.recycle(out);
                        }
                    }
                }
            })
        });
    }
    g.finish();
    stage_medians();
}

/// Per-stage ns/packet medians of the burst-64 pipeline, printed in the
/// shim's `bench <name> <ns> ns/iter` format so `scripts/bench_burst.py`
/// can commit them to `BENCH_burst.json` next to the throughput numbers.
/// One amortized sample per burst per stage (see `DataPlane::
/// set_stage_timing`); the median is over bursts.
fn stage_medians() {
    const ROUNDS: usize = 4_000;
    let (mut sut, mut gen) = setup();
    sut.slice.data.set_stage_timing(true);
    let mut burst: Vec<Mbuf> = Vec::with_capacity(PKTS_PER_ITER);
    let mut verdicts: Vec<PacketVerdict> = Vec::with_capacity(PKTS_PER_ITER);
    for _ in 0..ROUNDS {
        burst.clear();
        for _ in 0..PKTS_PER_ITER {
            burst.push(gen.next_packet(0));
        }
        verdicts.clear();
        sut.slice.process_burst_into(&mut burst, &mut verdicts);
        for v in verdicts.drain(..) {
            if let PacketVerdict::Forward(out) = v {
                gen.recycle(out);
            }
        }
    }
    let stages = sut.slice.data.stage_latencies();
    for (h, name) in stages.iter().zip(pepc::data::STAGE_NAMES) {
        let name = format!("fig13b_burst/stage/{name}");
        println!("bench {name:<50} {:>12.1} ns/iter", h.quantile_ns(0.5) as f64);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
