//! Figure 9 kernel: packet cost for a user whose packets were parked by
//! an in-flight migration vs the undisturbed path.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::node::PepcNode;
use pepc_bench::NodeSut;
use pepc_workload::harness::SystemUnderTest;
use pepc_workload::traffic::TrafficGen;

fn bench(c: &mut Criterion) {
    let config = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 32 }, ..Default::default() },
        ..EpcConfig::default()
    };
    let mut sut = NodeSut::new(PepcNode::new(config, None));
    let ids: Vec<u64> = (0..1_000u64).collect();
    let keys = sut.attach_all(&ids);
    let mut gen = TrafficGen::new(keys);
    c.bench_function("fig09_packet_undisturbed", |b| {
        b.iter(|| {
            let m = gen.next_packet(0);
            if let Some(out) = sut.process(m) {
                gen.recycle(out);
            }
        })
    });
    let mut i = 0usize;
    c.bench_function("fig09_packet_plus_migration", |b| {
        b.iter(|| {
            let imsi = ids[i % ids.len()];
            i += 1;
            let cur = sut.node.demux().slice_for_imsi(imsi).unwrap();
            sut.migrate(imsi, 1 - cur);
            let m = gen.next_packet(0);
            if let Some(out) = sut.process(m) {
                gen.recycle(out);
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
