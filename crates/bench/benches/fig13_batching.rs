//! Figure 13 kernel: attach + packet at 1:1 signaling:data, with updates
//! synced every 32 packets vs every packet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pepc_workload::harness::{default_pepc_slice, PepcSut, SystemUnderTest};
use pepc_workload::signaling::SigEvent;
use pepc_workload::traffic::TrafficGen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_one_to_one");
    for sync_every in [32u32, 1] {
        let mut sut = PepcSut::new(default_pepc_slice(65_536, true, sync_every));
        let keys = sut.attach_all(&(0..10_000u64).collect::<Vec<_>>());
        let mut gen = TrafficGen::new(keys);
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("sync_every", sync_every), &sync_every, |b, _| {
            b.iter(|| {
                i += 1;
                sut.signal(SigEvent::Attach { imsi: i % 10_000 });
                let m = gen.next_packet(0);
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
