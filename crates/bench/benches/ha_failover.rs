// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

//! Failover blackout kernel: how long a killed node's users stay dark.
//!
//! `kill_to_first_forward` runs the whole recovery sequence per iteration
//! — build a replicated 3-node cluster, kill a node, run coordinator
//! ticks until the detector declares it dead and failover promotes its
//! users, then forward the first packet for a recovered user.
//! `setup_only` is the identical iteration without the kill, so
//! `scripts/bench_failover.py` can subtract it and commit the pure
//! blackout duration (kill → first forwarded packet) to
//! `BENCH_failover.json`. The two single-operation kernels price the HA
//! tax on the hot paths: a control event with synchronous replication,
//! and a full counter-delta tick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::ctrl::CtrlEvent;
use pepc_ha::{HaCluster, HaConfig};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};

const NODES: usize = 3;
const USERS: u64 = 64;
const IMSI_BASE: u64 = 404_01_0000000000;

fn uplink(teid: u32, ue_ip: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + 8];
    Ipv4Hdr::new(ue_ip, 0x0808_0808, IpProto::Udp, 8).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    m.extend(&hdr);
    encap_gtpu(&mut m, 0xC0A8_0001, 0x0AFE_0001, teid).unwrap();
    m
}

/// Build a replicated cluster with an attached population; returns the
/// victim node (home of the first IMSI) and that user's data-plane keys.
fn build(cfg: HaConfig) -> (HaCluster, usize, u64, (u32, u32)) {
    let template = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 1 }, ..SliceConfig::default() },
        ..EpcConfig::default()
    };
    let mut ha = HaCluster::new(NODES, template, cfg);
    for i in 0..USERS {
        let imsi = IMSI_BASE + i;
        ha.attach(imsi);
        ha.ctrl_event(CtrlEvent::S1Handover {
            imsi,
            new_enb_teid: 0xE000_0000 + (imsi as u32 & 0xFFFF),
            new_enb_ip: 0xC0A8_0001,
        });
    }
    let victim_imsi = IMSI_BASE;
    let victim = ha.owner_of(victim_imsi).unwrap();
    let keys = {
        let node = ha.cluster().node(victim);
        let s = node.demux().slice_for_imsi(victim_imsi).unwrap();
        let ctx = node.slice(s).ctrl.context_of(victim_imsi).unwrap();
        let g = ctx.ctrl_read();
        (g.tunnels.gw_teid, g.ue_ip)
    };
    (ha, victim, victim_imsi, keys)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ha_failover");

    // The HA tax on a control event: apply + snapshot + frame + wire pump
    // + standby apply, all synchronous.
    {
        let (mut ha, _, _, _) = build(HaConfig::default());
        let mut i = 0u64;
        g.bench_function("ctrl_event_replicated", |b| {
            b.iter(|| {
                let imsi = IMSI_BASE + (i % USERS);
                i += 1;
                black_box(ha.ctrl_event(CtrlEvent::S1Handover {
                    imsi,
                    new_enb_teid: 0xE100_0000 + (i as u32 & 0xFFFF),
                    new_enb_ip: 0xC0A8_0001,
                }));
            })
        });
    }

    // A full replication tick at counter_interval=1: every user's
    // counters snapshot, frame, cross the wire, and apply to the standby.
    {
        let cfg = HaConfig { counter_interval: 1, ..HaConfig::default() };
        let (mut ha, _, _, _) = build(cfg);
        g.bench_function("counter_delta_tick", |b| {
            b.iter(|| {
                ha.tick();
            })
        });
    }

    // Baseline: cluster construction + population, no failure.
    g.bench_function("setup_only", |b| {
        b.iter(|| {
            let (ha, victim, _, _) = build(HaConfig::default());
            black_box((ha, victim));
        })
    });

    // Full blackout: kill → heartbeats missed → declared dead → users
    // promoted → first packet for a recovered user forwards again.
    g.bench_function("kill_to_first_forward", |b| {
        b.iter(|| {
            let (mut ha, victim, _, (teid, ue_ip)) = build(HaConfig::default());
            let dead_after = HaConfig::default().detector.dead_after;
            ha.kill_node(victim);
            for _ in 0..dead_after {
                ha.tick();
            }
            assert_eq!(ha.failovers().len(), 1, "failover must have completed");
            assert!(ha.process(uplink(teid, ue_ip)).is_forward(), "recovered user forwards");
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
