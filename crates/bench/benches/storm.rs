//! Signaling-storm degradation curves (DESIGN.md §15, EXPERIMENTS.md
//! fig6/fig10 storm extension).
//!
//! A deterministic tick-driven overload model against a real
//! `ControlPlane`: the control plane processes at most `BUDGET_PER_TICK`
//! S1AP messages per tick from a shared ingress FIFO, procedure
//! supervision expires handshakes whose follow-ups queue for longer than
//! `PROC_TIMEOUT` ticks, and two populations compete for the budget:
//!
//! * **steady** — well-behaved attaches arriving at `STEADY_RATE` per
//!   tick from their own eNodeB (ECGI 0x200); their completion ratio is
//!   the *goodput* and their attach latency p99 the *tail* reported.
//! * **storm** — a [`BackoffHerd`] of `40 × multiplier` devices on a
//!   second eNodeB (ECGI 0x300), all colliding at `STORM_TICK`,
//!   re-colliding on exponential backoff after every shed or expiry.
//!
//! Each offered-load multiplier runs twice: `none` (admission control
//! off — the storm's admitted handshakes swamp the FIFO, steady
//! follow-ups expire, goodput collapses) and `admission` (per-eNodeB
//! token bucket + in-flight ceiling — the wave is shed in O(1) per
//! attempt with an explicit backoff, steady traffic keeps its budget).
//!
//! Everything except `handle_ns` (measured wall-clock per message) is a
//! deterministic function of the model, so `scripts/bench_storm.py` can
//! gate hard numbers: goodput at 10× overload ≥ 70% with admission,
//! collapse without, bounded steady p99.

use pepc::config::OverloadConfig;
use pepc::ctrl::{Allocator, ControlPlane};
use pepc::proxy::Proxy;
use pepc_backend::hss::sim_response;
use pepc_backend::{Hss, Pcrf};
use pepc_sigproto::nas::NasMsg;
use pepc_sigproto::s1ap::S1apPdu;
use pepc_workload::storm::{BackoffHerd, HerdOutcome};
use std::collections::VecDeque;
use std::time::Instant;

/// Control-plane work budget per tick in cost units (the "CPU" of the
/// model): 48 full procedure steps' worth.
const BUDGET_UNITS_PER_TICK: u64 = 48 * FULL_COST;
/// A full S1AP/NAS step: decode, route, run the machine, HSS/PCRF work.
const FULL_COST: u64 = 8;
/// A shed: admission classify + a 4-byte CongestionReject, before any
/// routing or per-UE work — the reason admitting early wins.
const SHED_COST: u64 = 1;
/// Ticks per run; a tick is 1 ms of virtual time.
const TICKS: u64 = 400;
/// Virtual nanoseconds per tick.
const TICK_NS: u64 = 1_000_000;
/// Steady attach arrivals per tick (×5 messages each ≈ 42% of budget).
const STEADY_RATE: u64 = 4;
/// Supervision timeout: a handshake whose next message queues longer
/// than this is expired and must restart.
const PROC_TIMEOUT: u64 = 12;
/// Tick the storm wave lands on.
const STORM_TICK: u64 = 50;
/// Storm devices per offered-load multiplier. At 10× the first volley
/// alone (1200 attaches + their expired-handshake retries) swamps the
/// budget for tens of ticks, well past the supervision timeout.
const DEVICES_PER_MULT: u64 = 120;
/// Offered-load multipliers swept (0 = no-storm baseline).
const MULTS: [u64; 5] = [0, 1, 2, 5, 10];
/// An attach that takes longer than this (ticks = ms) is not goodput:
/// real UEs abandon and upper layers declare failure long before.
const DEADLINE_TICKS: u64 = 50;

const STEADY_IMSI_BASE: u64 = 40_401_500_000;
const STORM_IMSI_BASE: u64 = 40_403_000_000;
const STEADY_ECGI: u32 = 0x200;
const STORM_ECGI: u32 = 0x300;

fn admission_policy() -> OverloadConfig {
    // Bucket rate matches the steady arrival rate (per eNodeB, so the
    // storm cell cannot starve the steady cell); the ceiling is sized to
    // stay clear of legitimate concurrency and only catch runaway
    // in-flight growth.
    OverloadConfig { enabled: true, enb_rate_per_tick: 4, enb_burst: 8, max_in_flight: 64, backoff_ms: 20 }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Steady,
    Storm,
}

struct Ue {
    imsi: u64,
    enb_ue_id: u32,
    ecgi: u32,
    kind: Kind,
    /// 0 send-attach … 4 send-attach-complete, 5 attached (see the sim's
    /// eNodeB emulator — same ladder).
    stage: u8,
    mme_ue_id: u32,
    rand: u64,
    arrival: u64,
    completed_at: Option<u64>,
}

struct Model {
    cp: ControlPlane,
    ues: Vec<Ue>,
    /// Ingress FIFO: (ue index, pdu built when enqueued).
    fifo: VecDeque<(usize, S1apPdu)>,
    /// (retry tick, ue index) for steady UEs backing off or restarting.
    retries: Vec<(u64, usize)>,
    herd: Option<BackoffHerd>,
    /// Storm imsi → ue index.
    storm_idx: std::collections::HashMap<u64, usize>,
    handle_ns: u64,
    handled: u64,
}

impl Model {
    fn new(mult: u64, admission: bool) -> Self {
        let steady_total = TICKS / 2 * STEADY_RATE; // arrivals stop at half-run so late attaches can still finish
        let storm_devices = mult * DEVICES_PER_MULT;
        let hss = std::sync::Arc::new(Hss::new());
        hss.provision_range(STEADY_IMSI_BASE, steady_total, 100_000);
        if storm_devices > 0 {
            hss.provision_range(STORM_IMSI_BASE, storm_devices, 300_000);
        }
        let pcrf = std::sync::Arc::new(Pcrf::with_standard_rules());
        let proxy = std::sync::Arc::new(Proxy::new(hss, pcrf, 1, 40401));
        let alloc = Allocator { teid_base: 0x1000, ue_ip_base: 0x0A00_0001, guti_base: 0xD00D_0000, mme_ue_id_base: 1 };
        let mut cp = ControlPlane::new(0x0AFE_0001, 1, alloc, Some(proxy));
        if admission {
            cp.set_overload(admission_policy());
        }
        let mut ues = Vec::new();
        for i in 0..steady_total {
            ues.push(Ue {
                imsi: STEADY_IMSI_BASE + i,
                enb_ue_id: 0x1000 + i as u32,
                ecgi: STEADY_ECGI,
                kind: Kind::Steady,
                stage: 0,
                mme_ue_id: 0,
                rand: 0,
                arrival: 1 + i / STEADY_RATE,
                completed_at: None,
            });
        }
        let mut storm_idx = std::collections::HashMap::new();
        for d in 0..storm_devices {
            storm_idx.insert(STORM_IMSI_BASE + d, ues.len());
            ues.push(Ue {
                imsi: STORM_IMSI_BASE + d,
                enb_ue_id: 0x8000 + d as u32,
                ecgi: STORM_ECGI,
                kind: Kind::Storm,
                stage: 0,
                mme_ue_id: 0,
                rand: 0,
                arrival: STORM_TICK,
                completed_at: None,
            });
        }
        let herd = (storm_devices > 0)
            .then(|| BackoffHerd::new(7, STORM_IMSI_BASE, storm_devices, STORM_TICK * TICK_NS, 20 * TICK_NS, 0));
        Model { cp, ues, fifo: VecDeque::new(), retries: Vec::new(), herd, storm_idx, handle_ns: 0, handled: 0 }
    }

    /// Build the message UE `i`'s stage calls for (the sim emulator's
    /// ladder) and enqueue it.
    fn enqueue(&mut self, i: usize) {
        let ue = &self.ues[i];
        let pdu = match ue.stage {
            0 => S1apPdu::InitialUeMessage {
                enb_ue_id: ue.enb_ue_id,
                ecgi: ue.ecgi,
                tac: 7,
                nas: NasMsg::AttachRequest { imsi: ue.imsi, ue_capability: 0xF0 }.encode(),
            },
            1 => S1apPdu::UplinkNasTransport {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                nas: NasMsg::AuthenticationResponse { res: sim_response(Hss::key_for(ue.imsi), ue.rand) }.encode(),
            },
            2 => S1apPdu::UplinkNasTransport {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                nas: NasMsg::SecurityModeComplete.encode(),
            },
            3 => S1apPdu::InitialContextSetupResponse {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                enb_teid: 0xE000 + (ue.imsi & 0xFFF) as u32,
                enb_ip: 0xC0A8_0002,
            },
            4 => S1apPdu::UplinkNasTransport {
                enb_ue_id: ue.enb_ue_id,
                mme_ue_id: ue.mme_ue_id,
                nas: NasMsg::AttachComplete.encode(),
            },
            _ => return,
        };
        self.fifo.push_back((i, pdu));
    }

    /// Process one queued message; returns its budget cost (a shed is
    /// an order of magnitude cheaper than a full procedure step).
    fn process(&mut self, i: usize, pdu: &S1apPdu, now: u64) -> u64 {
        let t0 = Instant::now();
        let rsp = self.cp.handle_s1ap(pdu);
        self.handle_ns += t0.elapsed().as_nanos() as u64;
        self.handled += 1;
        let before = self.ues[i].stage;
        let mut shed_backoff = None;
        // ICS response / attach complete are acknowledged silently.
        if matches!(self.ues[i].stage, 3 | 4) {
            self.ues[i].stage += 1;
        }
        for p in &rsp {
            let ue = &mut self.ues[i];
            match p {
                S1apPdu::DownlinkNasTransport { mme_ue_id, nas, .. } => match NasMsg::decode(nas) {
                    Ok(NasMsg::AuthenticationRequest { rand, .. }) if ue.stage == 0 => {
                        ue.rand = rand;
                        ue.mme_ue_id = *mme_ue_id;
                        ue.stage = 1;
                    }
                    Ok(NasMsg::SecurityModeCommand { .. }) if ue.stage == 1 => ue.stage = 2,
                    Ok(NasMsg::CongestionReject { backoff_ms, .. }) => {
                        shed_backoff = Some(u64::from(backoff_ms));
                    }
                    Ok(NasMsg::AttachReject { .. }) | Ok(NasMsg::AuthenticationReject { .. }) => {
                        ue.stage = 0;
                        ue.mme_ue_id = 0;
                    }
                    _ => {}
                },
                S1apPdu::InitialContextSetupRequest { mme_ue_id, .. } if ue.stage == 2 => {
                    ue.mme_ue_id = *mme_ue_id;
                    ue.stage = 3;
                }
                _ => {}
            }
        }
        let ue = &mut self.ues[i];
        let now_ns = now * TICK_NS;
        if let Some(backoff_ms) = shed_backoff {
            // Shed by admission control: honor the explicit backoff.
            ue.stage = 0;
            ue.mme_ue_id = 0;
            match ue.kind {
                Kind::Steady => self.retries.push((now + backoff_ms, i)),
                Kind::Storm => {
                    if let Some(h) = &mut self.herd {
                        h.on_result(ue.imsi, now_ns, HerdOutcome::Rejected { backoff_hint_ns: backoff_ms * TICK_NS })
                    }
                }
            }
            return SHED_COST;
        }
        if ue.stage >= 5 {
            if ue.completed_at.is_none() {
                ue.completed_at = Some(now);
            }
            if ue.kind == Kind::Storm {
                if let Some(h) = &mut self.herd {
                    h.on_result(ue.imsi, now_ns, HerdOutcome::Accepted);
                }
            }
            return FULL_COST;
        }
        if ue.stage > before || (before == 3 && ue.stage == 4) {
            self.enqueue(i);
            return FULL_COST;
        }
        // No progress: the procedure expired while this message queued
        // (or the response was consumed by a stale machine). Restart
        // from a fresh attach on the device's own schedule.
        ue.stage = 0;
        ue.mme_ue_id = 0;
        match ue.kind {
            Kind::Steady => self.retries.push((now + 10, i)),
            Kind::Storm => {
                if let Some(h) = &mut self.herd {
                    h.on_result(ue.imsi, now_ns, HerdOutcome::Timeout)
                }
            }
        }
        FULL_COST
    }

    fn run(&mut self) {
        let mut next_steady = 0usize;
        let steady_count = self.ues.iter().filter(|u| u.kind == Kind::Steady).count();
        for now in 0..TICKS {
            self.cp.note_tick(now);
            self.cp.expire_procedures(now, PROC_TIMEOUT);
            // Arrivals: steady trickle, storm herd attempts due now.
            while next_steady < steady_count && self.ues[next_steady].arrival <= now {
                self.enqueue(next_steady);
                next_steady += 1;
            }
            let mut due_imsis = Vec::new();
            if let Some(h) = &mut self.herd {
                while let Some((_, imsi)) = h.pop_due(now * TICK_NS) {
                    due_imsis.push(imsi);
                }
            }
            for imsi in due_imsis {
                let i = self.storm_idx[&imsi];
                self.ues[i].stage = 0;
                self.enqueue(i);
            }
            // Steady retries due this tick.
            let mut due: Vec<usize> = Vec::new();
            self.retries.retain(|&(at, i)| {
                if at <= now {
                    due.push(i);
                    false
                } else {
                    true
                }
            });
            for i in due {
                self.enqueue(i);
            }
            // Spend the tick's work budget (sheds are cheap, full
            // procedure steps expensive).
            let mut units = BUDGET_UNITS_PER_TICK;
            while units > 0 {
                let Some((i, pdu)) = self.fifo.pop_front() else { break };
                units = units.saturating_sub(self.process(i, &pdu, now));
            }
        }
    }

    fn report(&self, mode: &str, mult: u64) {
        let steady: Vec<&Ue> = self.ues.iter().filter(|u| u.kind == Kind::Steady).collect();
        let offered = steady.len() as f64;
        let completed: Vec<u64> = steady.iter().filter_map(|u| u.completed_at.map(|c| c - u.arrival)).collect();
        // Goodput counts only timely completions; an attach that limps
        // in after the deadline was, to the subscriber, an outage.
        let timely = completed.iter().filter(|&&l| l <= DEADLINE_TICKS).count();
        let goodput_pct = 100.0 * timely as f64 / offered;
        let p99 = if completed.is_empty() {
            9_999.0
        } else {
            let mut lat = completed;
            lat.sort_unstable();
            lat[((lat.len() as f64 * 0.99).ceil() as usize - 1).min(lat.len() - 1)] as f64
        };
        let m = self.cp.metrics();
        emit(&format!("storm/goodput_pct/{mode}/{mult}x"), goodput_pct);
        emit(&format!("storm/steady_p99_ms/{mode}/{mult}x"), p99);
        emit(&format!("storm/shed/{mode}/{mult}x"), m.sig_shed_total() as f64);
        emit(
            &format!("storm/handle_ns/{mode}/{mult}x"),
            if self.handled == 0 { 0.0 } else { self.handle_ns as f64 / self.handled as f64 },
        );
    }
}

/// Print in the criterion shim's line format so `scripts/bench_storm.py`
/// reuses the one parser every perf script shares.
fn emit(name: &str, value: f64) {
    println!("bench {name:<50} {value:>12.1} ns/iter");
}

fn main() {
    for &(mode, admission) in &[("none", false), ("admission", true)] {
        for mult in MULTS {
            let mut model = Model::new(mult, admission);
            model.run();
            model.report(mode, mult);
        }
    }
}
