//! Figure 14 kernel: per-packet state lookup with a small hot primary
//! table vs one flat table holding every user.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc::state::{ControlState, UeContext};
use pepc::twolevel::TwoLevelTable;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    const TOTAL: u64 = 1_000_000;
    const HOT: u64 = 10_000; // 1% always-on

    let mut two = TwoLevelTable::new(TOTAL as usize, u64::MAX);
    let mut flat = TwoLevelTable::new_single(TOTAL as usize);
    for k in 0..TOTAL {
        let v = UeContext::new(ControlState::new(k));
        if k < HOT {
            two.insert_active(k, Arc::clone(&v), 0);
        } else {
            two.insert_idle(k, Arc::clone(&v));
        }
        flat.insert_idle(k, v);
    }
    let mut i = 0u64;
    c.bench_function("fig14_two_level_hot_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (i >> 33) % HOT;
            two.get(k, 1).is_some()
        })
    });
    let mut i = 0u64;
    c.bench_function("fig14_single_table_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (i >> 33) % HOT;
            flat.get(k, 1).is_some()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
