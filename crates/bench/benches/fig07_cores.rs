//! Figure 7 kernel: a slice's full rx→process→tx step through its rings,
//! the unit that multiplies across share-nothing data cores.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc_workload::harness::{default_pepc_slice, PepcSut, SystemUnderTest};
use pepc_workload::traffic::TrafficGen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_slice_step");
    let imsis: Vec<u64> = (0..10_000u64).collect();
    let mut sut = PepcSut::new(default_pepc_slice(16_384, true, 32));
    let keys = sut.attach_all(&imsis);
    let mut gen = TrafficGen::new(keys);
    g.bench_function("burst_32", |b| {
        b.iter(|| {
            for _ in 0..32 {
                let m = gen.next_packet(0);
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
