//! Capacity curve: users vs RSS vs ns/packet (DESIGN.md §16,
//! EXPERIMENTS.md fig5 capacity extension).
//!
//! One `DataPlane` is grown through the milestone populations (default
//! 1M / 5M / 10M, override with `CAPACITY_SCALES=a,b,c`): every attach
//! allocates a context in the shared [`UeSlab`] arena and indexes its
//! handle by TEID and UE IP in the incremental-growth tables. At each
//! milestone the bench reports:
//!
//! * process RSS (`/proc/self/status` VmRSS) plus the RSS delta per
//!   user since the pre-population baseline — measurement buffers are
//!   pre-allocated before the baseline so the delta is state, not
//!   harness;
//! * the arena's own audit: slab bytes, table bytes, and state bytes
//!   per user ((slab + tables) / users) — the number the budget gate
//!   in `scripts/bench_capacity.py` holds;
//! * per-packet pipeline cost over uplinks to uniformly random users
//!   (the fig5 cache-footprint curve, extended past the paper's 1M);
//! * attach latency over the whole ramp segment (which contains every
//!   incremental-growth round) against a steady window of detach +
//!   re-attach at constant table occupancy. A stop-the-world rehash
//!   would put a users-sized spike in the ramp tail; bounded-relocation
//!   growth keeps ramp p99 within a small multiple of steady p99.
//!
//! Output uses the shared `bench <name> <value> ns/iter` line format so
//! `scripts/bench_capacity.py` reuses the one parser every perf script
//! shares.

// IMSI literals are written MCC_MNC_MSIN (e.g. 404_01_…).
#![allow(clippy::inconsistent_digit_grouping)]

use pepc::config::{IotConfig, TwoLevelConfig};
use pepc::data::{DataPlane, DpUpdate};
use pepc::state::{ControlState, CounterState, QosPolicy, TunnelState};
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use std::time::Instant;

const GW_IP: u32 = 0x0AFE_0001;
const ENB_IP: u32 = 0xC0A8_0001;
const UE_IP_BASE: u32 = 0x0A00_0001;
const TEID_BASE: u32 = 0x1000;
const IMSI_BASE: u64 = 404_01_0000000000;

/// Packets timed per milestone for the ns/packet curve.
const LOOKUP_ITERS: usize = 50_000;
/// Distinct pre-built packets the lookup loop cycles through.
const LOOKUP_POOL: usize = 4_096;
/// Detach + re-attach pairs in the steady window.
const STEADY_WINDOW: u64 = 20_000;

fn scales() -> Vec<u64> {
    let spec = std::env::var("CAPACITY_SCALES").unwrap_or_default();
    let parsed: Vec<u64> = spec.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    if parsed.is_empty() {
        vec![1_000_000, 5_000_000, 10_000_000]
    } else {
        parsed
    }
}

fn rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn user_ctrl(u: u64) -> ControlState {
    let mut ctrl = ControlState::new(IMSI_BASE + u);
    ctrl.ue_ip = UE_IP_BASE + u as u32;
    ctrl.qos = QosPolicy { qci: 9, ambr_kbps: 0, gbr_kbps: 0 };
    ctrl.tunnels = TunnelState { enb_teid: 0xE000_0000 + u as u32, enb_ip: ENB_IP, gw_teid: TEID_BASE + u as u32 };
    ctrl
}

/// One attach: allocate the context in the arena, index the handle by
/// both data-path keys. Returns wall-clock ns.
fn attach(dp: &mut DataPlane, u: u64) -> u64 {
    let ctrl = user_ctrl(u);
    let t0 = Instant::now();
    let h = dp.slab().alloc(ctrl, CounterState::default());
    dp.apply_update(
        DpUpdate::Insert { gw_teid: TEID_BASE + u as u32, ue_ip: UE_IP_BASE + u as u32, handle: h, active: true },
        0,
    );
    t0.elapsed().as_nanos() as u64
}

fn detach(dp: &mut DataPlane, u: u64) {
    dp.apply_update(DpUpdate::Remove { gw_teid: TEID_BASE + u as u32, ue_ip: UE_IP_BASE + u as u32 }, 0);
}

fn uplink(u: u64) -> Mbuf {
    let mut m = Mbuf::new();
    let payload_len = 64usize;
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(UE_IP_BASE + u as u32, 0x0808_0808, IpProto::Udp, UDP_HDR_LEN + payload_len)
        .emit(&mut hdr[..IPV4_HDR_LEN])
        .unwrap();
    UdpHdr::new(40_000, 443, payload_len).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0xAB; 64]);
    encap_gtpu(&mut m, ENB_IP, GW_IP, TEID_BASE + u as u32).unwrap();
    m
}

/// Deterministic uniform user picker (splitmix64) — no rand dependency
/// needed, and the same packet sequence on every run.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn emit(name: &str, value: f64) {
    println!("bench {name:<50} {value:>12.1} ns/iter");
}

fn main() {
    let scales = scales();
    let top = *scales.iter().max().unwrap();
    let mut dp = DataPlane::new(GW_IP, 1024, TwoLevelConfig::default(), IotConfig::default());

    // Pre-allocate every measurement buffer before the RSS baseline so
    // milestone deltas measure user state, not the harness.
    let mut ramp_ns: Vec<u64> = Vec::with_capacity(top as usize);
    let mut steady_ns: Vec<u64> = Vec::with_capacity(STEADY_WINDOW as usize);
    let mut pool: Vec<Mbuf> = Vec::with_capacity(LOOKUP_POOL);
    let rss_baseline = rss_bytes();

    let mut next = 0u64;
    for &n in &scales {
        // Ramp: attach users [next, n). This segment contains every
        // incremental-growth round between the previous milestone and
        // this one.
        ramp_ns.clear();
        while next < n {
            ramp_ns.push(attach(&mut dp, next));
            next += 1;
        }
        assert_eq!(dp.slab().live_slots(), n, "arena live slots must equal attached users");

        // Quiesce: let any in-flight drain finish, as the slice's idle
        // maintenance (tick / sync) would, so the milestone reports
        // converged footprint and lookup cost rather than the transient
        // dual-array state.
        while dp.tables_migrating() {
            dp.maintain_tables();
        }

        let label = n.to_string();
        let slab_bytes = dp.slab().bytes();
        let table_bytes = dp.table_bytes();
        let rss = rss_bytes();
        emit(&format!("capacity/users/{label}"), n as f64);
        emit(&format!("capacity/rss_bytes/{label}"), rss as f64);
        emit(&format!("capacity/rss_delta_per_user/{label}"), rss.saturating_sub(rss_baseline) as f64 / n as f64);
        emit(&format!("capacity/slab_bytes/{label}"), slab_bytes as f64);
        emit(&format!("capacity/table_bytes/{label}"), table_bytes as f64);
        emit(&format!("capacity/state_bytes_per_user/{label}"), (slab_bytes + table_bytes) as f64 / n as f64);

        // ns/packet over uplinks to uniformly random users.
        let mut rng = 0xC0FF_EE00u64 ^ n;
        pool.clear();
        for _ in 0..LOOKUP_POOL {
            pool.push(uplink(splitmix(&mut rng) % n));
        }
        let t0 = Instant::now();
        let mut forwarded = 0u64;
        for i in 0..LOOKUP_ITERS {
            let m = Mbuf::from_payload(pool[i % LOOKUP_POOL].data());
            if dp.process(m, 0).is_forward() {
                forwarded += 1;
            }
        }
        let pkt_ns = t0.elapsed().as_nanos() as f64 / LOOKUP_ITERS as f64;
        assert_eq!(forwarded, LOOKUP_ITERS as u64, "every uplink must resolve to a live user");
        emit(&format!("capacity/pkt_ns/{label}"), pkt_ns);

        // Steady window: attach a batch of *new* users at this
        // occupancy — identical cold-cache alloc + two-key index work
        // as the ramp, minus growth rounds (milestones sit well below
        // the next 3/4-load trigger) — then detach them so the next
        // ramp segment starts from exactly `n` users.
        steady_ns.clear();
        let window = STEADY_WINDOW.min(n / 10);
        for u in n..(n + window) {
            steady_ns.push(attach(&mut dp, u));
        }
        assert!(!dp.tables_migrating(), "steady window crossed a growth trigger");
        for u in n..(n + window) {
            detach(&mut dp, u);
        }
        assert_eq!(dp.slab().live_slots(), n, "steady window must restore the population");

        ramp_ns.sort_unstable();
        steady_ns.sort_unstable();
        emit(&format!("capacity/attach_ramp_p99_ns/{label}"), percentile(&ramp_ns, 0.99) as f64);
        emit(&format!("capacity/attach_ramp_max_ns/{label}"), *ramp_ns.last().unwrap_or(&0) as f64);
        emit(&format!("capacity/attach_steady_p99_ns/{label}"), percentile(&steady_ns, 0.99) as f64);
    }
}
