//! Figure 8 kernel: one complete user migration (extract → install →
//! demux repoint → queue drain).

use criterion::{criterion_group, criterion_main, Criterion};
use pepc::config::{BatchingConfig, EpcConfig, SliceConfig};
use pepc::node::PepcNode;
use pepc_bench::NodeSut;
use pepc_workload::harness::SystemUnderTest;

fn bench(c: &mut Criterion) {
    let config = EpcConfig {
        slices: 2,
        slice: SliceConfig { batching: BatchingConfig { sync_every_packets: 32 }, ..Default::default() },
        ..EpcConfig::default()
    };
    let mut sut = NodeSut::new(PepcNode::new(config, None));
    let ids: Vec<u64> = (0..10_000u64).collect();
    sut.attach_all(&ids);
    let mut i = 0usize;
    c.bench_function("fig08_one_migration", |b| {
        b.iter(|| {
            let imsi = ids[i % ids.len()];
            i += 1;
            let cur = sut.node.demux().slice_for_imsi(imsi).unwrap();
            assert!(sut.migrate(imsi, 1 - cur));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
