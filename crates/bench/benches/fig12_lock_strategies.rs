//! Figure 12 kernel: one data-path visit (ctrl read + counter write)
//! under each shared-state locking design, uncontended. The figure adds
//! the contention dimension; this isolates the lock-operation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc::state::ControlState;
use pepc::table::{DatapathWriterStore, GiantLockStore, PepcStore, StateStore};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_visit");
    const USERS: u64 = 100_000;
    let stores: Vec<(&str, Box<dyn StateStore>)> = vec![
        ("giant_lock", Box::new(GiantLockStore::new(USERS as usize))),
        ("datapath_writer", Box::new(DatapathWriterStore::new(USERS as usize))),
        ("pepc", Box::new(PepcStore::new(USERS as usize))),
    ];
    for (name, store) in &stores {
        for uid in 0..USERS {
            store.insert(uid, ControlState::new(uid));
        }
        let mut i = 0u64;
        g.bench_function(*name, |b| {
            b.iter(|| {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let uid = (i >> 33) % USERS;
                store.data_path_visit(uid, i.is_multiple_of(4), 100, i, &mut |c| c.imsi == uid)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
