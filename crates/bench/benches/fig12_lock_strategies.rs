//! Figure 12 measured: one data-path visit (control-view read + counter
//! charge) under each shared-state locking design.
//!
//! Two groups:
//!
//! * `fig12_visit` — uncontended visit cost. Isolates the lock-operation
//!   overhead itself: the giant/fine-grained rwlock designs pay atomic
//!   RMW acquisitions per visit, the seqlock design pays none.
//! * `fig12_contended` — the same visit loop racing a control thread
//!   applying signaling operations to random users, each holding the
//!   store's control critical section for a `CTRL_HOLD` window (control
//!   ops are long: the paper measures tens of microseconds of signaling
//!   work per event, §5.2). This is the paper's Figure 12 x-axis made
//!   concrete: under the giant lock every control op excludes the whole
//!   data path for its full duration, under per-user designs only the
//!   touched user is affected, and under the seqlock the data path never
//!   blocks at all (the control mutex is writer-side only; readers just
//!   retry the short odd-sequence publish window).
//!
//! ## Contention model (single-core honest)
//!
//! The hold window is a *sleep* inside the critical section, not a CPU
//! spin. On a single-core host a spinning holder conflates two effects —
//! the core is time-shared *and* the lock is held — and the measurement
//! degenerates into scheduler accounting (a reader that parks on the
//! giant mutex donates its timeslice to the holder, making the giant
//! lock look *better* under contention). Sleeping while holding keeps
//! the writer's CPU usage near zero, so the visit loop always has the
//! core, and the measured difference is purely how long each design's
//! data path is excluded by a control op — the quantity Figure 12 is
//! about. `USERS` is sized large enough that a visit colliding with the
//! one entry a per-user design holds locked is rare — at small
//! populations those collisions dominate the fine-grained stores'
//! numbers and the bench measures luck, not protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc::state::ControlState;
use pepc::table::{DatapathWriterStore, GiantLockStore, PepcStore, RwLockFineStore, StateStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USERS: u64 = 100_000;
/// How long each control op holds the store's control critical section
/// (nominal; `thread::sleep` rounds up by the timer slack, which only
/// lengthens holds equally for every store).
const CTRL_HOLD: Duration = Duration::from_micros(200);
/// Gap between control ops. Hold/(hold+gap) ≈ 50% control duty — an
/// aggressive signaling storm (dense handovers), the regime Figure 12's
/// right-hand side probes.
const CTRL_GAP: Duration = Duration::from_micros(200);

// Constructors, not instances: each store is built (and dropped) inside
// its own measurement so four 100k-user tables never coexist and skew
// later stores' cache/allocator behaviour.
type StoreCtor = fn() -> Arc<dyn StateStore>;

fn stores() -> Vec<(&'static str, StoreCtor)> {
    vec![
        ("giant_lock", || Arc::new(GiantLockStore::new(USERS as usize))),
        ("datapath_writer", || Arc::new(DatapathWriterStore::new(USERS as usize))),
        ("rwlock_fine", || Arc::new(RwLockFineStore::new(USERS as usize))),
        ("seqlock", || Arc::new(PepcStore::new(USERS as usize))),
    ]
}

fn populate(store: &dyn StateStore) {
    for uid in 0..USERS {
        store.insert(uid, ControlState::new(uid));
    }
}

fn visit(store: &dyn StateStore, i: &mut u64) -> Option<bool> {
    *i = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let uid = (*i >> 33) % USERS;
    store.data_path_visit(uid, i.is_multiple_of(4), 100, *i, &mut |v| v.tunnels.gw_teid != u32::MAX)
}

fn bench_uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_visit");
    for (name, ctor) in stores() {
        let store = ctor();
        populate(&*store);
        let mut i = 0u64;
        g.bench_function(name, |b| b.iter(|| visit(&*store, &mut i)));
    }
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_contended");
    for (name, ctor) in stores() {
        let store = ctor();
        populate(&*store);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lcg = 0x9E37_79B9u64;
                let mut issued = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let uid = (lcg >> 33) % USERS;
                    store.update_ctrl(uid, &mut |cs| {
                        cs.tunnels.enb_teid = (issued & 0xFFFF) as u32 + 1;
                        cs.tunnels.enb_ip = 0xC0A8_0001;
                        // The control op's duration is spent while the
                        // store's critical section is held — that is the
                        // design point Figure 12 probes (see module doc
                        // for why this is a sleep, not a spin).
                        std::thread::sleep(CTRL_HOLD);
                    });
                    issued += 1;
                    std::thread::sleep(CTRL_GAP);
                }
            })
        };
        let mut i = 0u64;
        g.bench_function(name, |b| b.iter(|| visit(&*store, &mut i)));
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("contention writer");
    }
    g.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended);
criterion_main!(benches);
