//! Figure 5 kernel: per-packet cost as the user table grows (cache
//! footprint of state lookup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pepc_workload::harness::{default_pepc_slice, PepcSut, SystemUnderTest};
use pepc_workload::traffic::TrafficGen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_lookup_scaling");
    g.sample_size(20);
    for users in [1_000u64, 10_000, 100_000, 500_000] {
        let mut sut = PepcSut::new(default_pepc_slice(users as usize, true, 32));
        let keys = sut.attach_all(&(0..users).collect::<Vec<_>>());
        let mut gen = TrafficGen::new(keys);
        g.bench_with_input(BenchmarkId::new("pepc_users", users), &users, |b, _| {
            b.iter(|| {
                let m = gen.next_packet(0);
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
