//! Figure 6 kernel: the cost of one signaling event on each system —
//! what multiplies with rate to produce the figure's throughput curves.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc_baseline::{BaselinePreset, ClassicConfig, ClassicEpc};
use pepc_workload::harness::{default_pepc_slice, ClassicSut, PepcSut, SystemUnderTest};
use pepc_workload::signaling::SigEvent;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_per_event");
    let imsis: Vec<u64> = (0..10_000u64).collect();

    let mut pepc = PepcSut::new(default_pepc_slice(16_384, true, 32));
    pepc.attach_all(&imsis);
    let mut i = 0u64;
    g.bench_function("pepc_s1_handover", |b| {
        b.iter(|| {
            i += 1;
            pepc.signal(SigEvent::S1Handover {
                imsi: imsis[(i % 10_000) as usize],
                new_enb_teid: i as u32,
                new_enb_ip: 0xC0A80001,
            })
        })
    });

    // Classic: the same event forces an MME→S-GW synchronization (the
    // calibrated stall is excluded here; this is the mechanism cost).
    let mut classic =
        ClassicSut::new(ClassicEpc::new(ClassicConfig::mechanisms_only(BaselinePreset::Industrial1)), "classic");
    classic.attach_all(&imsis);
    g.bench_function("classic_s1_handover_sync", |b| {
        b.iter(|| {
            i += 1;
            classic.signal(SigEvent::S1Handover {
                imsi: imsis[(i % 10_000) as usize],
                new_enb_teid: i as u32,
                new_enb_ip: 0xC0A80001,
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
