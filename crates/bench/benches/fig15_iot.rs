//! Figure 15 kernel: the stateless-IoT fast path (no per-user lookup) vs
//! the regular pipeline for one uplink packet.

use criterion::{criterion_group, criterion_main, Criterion};
use pepc::config::{IotConfig, TwoLevelConfig};
use pepc::data::DataPlane;
use pepc_net::gtp::encap_gtpu;
use pepc_net::ipv4::IpProto;
use pepc_net::udp::{UdpHdr, UDP_HDR_LEN};
use pepc_net::{Ipv4Hdr, Mbuf, IPV4_HDR_LEN};
use pepc_workload::harness::{default_pepc_slice, PepcSut, SystemUnderTest};

fn uplink(teid: u32) -> Mbuf {
    let mut m = Mbuf::new();
    let mut hdr = vec![0u8; IPV4_HDR_LEN + UDP_HDR_LEN];
    Ipv4Hdr::new(0x0A000001, 0x08080808, IpProto::Udp, UDP_HDR_LEN + 64).emit(&mut hdr[..IPV4_HDR_LEN]).unwrap();
    UdpHdr::new(1, 2, 64).emit(&mut hdr[IPV4_HDR_LEN..]).unwrap();
    m.extend(&hdr);
    m.extend(&[0u8; 64]);
    encap_gtpu(&mut m, 1, 2, teid).unwrap();
    m
}

fn bench(c: &mut Criterion) {
    // Regular path through an attached user.
    let mut sut = PepcSut::new(default_pepc_slice(200_000, true, 32));
    let keys = sut.attach_all(&(0..100_000u64).collect::<Vec<_>>());
    let teid = keys[0].teid;
    c.bench_function("fig15_regular_path", |b| b.iter(|| sut.process(uplink(teid)).is_some()));

    // IoT fast path: pool TEID, no state at all.
    let iot = IotConfig { enabled: true, teid_base: 0xF000_0000, ip_base: 0x6400_0000, pool_size: 100_000 };
    let mut dp = DataPlane::new(0x0AFE0001, 16, TwoLevelConfig::default(), iot);
    c.bench_function("fig15_iot_fast_path", |b| b.iter(|| dp.process(uplink(0xF000_0005), 0).is_forward()));
}

criterion_group!(benches, bench);
criterion_main!(benches);
