//! Figure 4 kernel: one data packet through PEPC vs through the classic
//! EPC's two-gateway pipeline (structural costs only; the full figure is
//! `figures --fig 4`).

use criterion::{criterion_group, criterion_main, Criterion};
use pepc_baseline::{BaselinePreset, ClassicConfig, ClassicEpc};
use pepc_workload::harness::{default_pepc_slice, ClassicSut, PepcSut, SystemUnderTest};
use pepc_workload::traffic::TrafficGen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_per_packet");
    let imsis: Vec<u64> = (0..1000u64).collect();

    let mut pepc = PepcSut::new(default_pepc_slice(1024, true, 32));
    let keys = pepc.attach_all(&imsis);
    let mut gen = TrafficGen::new(keys);
    g.bench_function("pepc", |b| {
        b.iter(|| {
            let m = gen.next_packet(0);
            if let Some(out) = pepc.process(m) {
                gen.recycle(out);
            }
        })
    });

    for (preset, name) in [
        (BaselinePreset::Industrial1, "industrial1"),
        (BaselinePreset::Industrial2, "industrial2"),
        (BaselinePreset::Oai, "oai_kernel_path"),
    ] {
        let mut sut = ClassicSut::new(ClassicEpc::new(ClassicConfig::mechanisms_only(preset)), name);
        let keys = sut.attach_all(&imsis);
        // Structural costs only for the DPDK presets; OAI keeps its
        // per-packet kernel cost.
        if preset == BaselinePreset::Oai {
            *sut.epc.config_mut() = ClassicConfig::preset(preset);
            sut.epc.config_mut().sync_window_ns = 0;
        }
        let mut gen = TrafficGen::new(keys);
        g.bench_function(name, |b| {
            b.iter(|| {
                let m = gen.next_packet(0);
                if let Some(out) = sut.process(m) {
                    gen.recycle(out);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
