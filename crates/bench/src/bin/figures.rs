//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! figures --all            # every figure, quick scale (~minutes)
//! figures --fig 5          # one figure
//! figures --fig 5 --full   # paper-scale populations (slower, more RAM)
//! ```
//!
//! Output is the rows each figure plots; EXPERIMENTS.md records a
//! captured run next to the paper's numbers.

use pepc_bench::{
    ablation_structural, fig04_comparison, fig05_users, fig06_signaling, fig07_cores, fig08_migration_tput,
    fig09_migration_latency, fig10_ctrl_cores, fig11_attach_scaling, fig12_lock_strategies, fig13_batching,
    fig14_two_level, fig15_iot, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let fig: Option<u32> =
        args.iter().position(|a| a == "--fig").and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok());
    let all = args.iter().any(|a| a == "--all") || fig.is_none();

    println!(
        "PEPC figure harness — scale: {:?} (populations {}; see DESIGN.md for substitutions)",
        scale,
        if scale == Scale::Full { "paper-size" } else { "1/10 paper-size" }
    );

    let run = |n: u32| all || fig == Some(n);
    if run(4) {
        fig04_comparison(scale);
    }
    if run(5) {
        fig05_users(scale);
    }
    if run(6) {
        fig06_signaling(scale);
    }
    if run(7) {
        fig07_cores(scale);
    }
    if run(8) {
        fig08_migration_tput(scale);
    }
    if run(9) {
        fig09_migration_latency(scale);
    }
    if run(10) {
        fig10_ctrl_cores(scale);
    }
    if run(11) {
        fig11_attach_scaling(scale);
    }
    if run(12) {
        fig12_lock_strategies(scale);
    }
    if run(13) {
        fig13_batching(scale);
    }
    if run(14) {
        fig14_two_level(scale);
    }
    if run(15) {
        fig15_iot(scale);
    }
    if args.iter().any(|a| a == "--ablation") || all {
        ablation_structural(scale);
    }
}
